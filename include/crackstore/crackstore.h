// Copyright 2026 The CrackStore Authors
//
// Umbrella header: the public surface of CrackStore in one include.
//
//   #include "crackstore/crackstore.h"
//
// pulls in the adaptive store facade, the four cracker operators, the
// benchmark workload kit and the two reference engines. Individual headers
// remain includable for finer-grained dependencies.

#ifndef CRACKSTORE_CRACKSTORE_H_
#define CRACKSTORE_CRACKSTORE_H_

// Core: the paper's contribution.
#include "core/access_path.h"             // type-erased per-column access paths
#include "core/adaptive_store.h"          // facade: DbOptions/Open/Close lifecycle,
                                          // tables, Ξ/^/Ω/Ψ entry points
#include "core/crack_kernels.h"           // crack-in-two / crack-in-three
#include "core/crack_policy.h"            // pivot disciplines (standard/stochastic/coarse)
#include "core/cracker_index.h"           // the cracker index
#include "core/group_cracker.h"           // Ω
#include "core/join_cracker.h"            // ^
#include "core/lineage.h"                 // piece lineage DAG (Figs. 5-6)
#include "core/merge_policy.h"            // piece fusion + delta-merge policies
#include "core/oid_set_ops.h"             // sorted-oid intersection (galloping)
#include "core/projection_cracker.h"      // Ψ
#include "core/range_bounds.h"            // range predicates
#include "core/sorted_column.h"           // the sort baseline
#include "core/typed_range.h"             // Value-typed predicates (strings)
#include "core/updatable_cracker_index.h" // differential updates

// Storage substrate.
#include "storage/bat.h"
#include "storage/dictionary.h"           // order-preserving string encoding
#include "storage/relation.h"

// Durability: commit log + checkpoints behind DbOptions (the store pulls
// these in itself; listed so the lifecycle surface is visible here).
#include "durability/checkpoint.h"
#include "durability/manifest.h"
#include "durability/wal.h"

// Engines (Fig. 1 / Fig. 9 comparisons).
#include "engine/colstore_engine.h"
#include "engine/rowstore_engine.h"

// SQL frontend (the "semantic analyzer" stage of §3: crackers are derived
// from the translation of SQL statements).
#include "sql/executor.h"
#include "sql/parser.h"

// Benchmark kit (§4).
#include "workload/contraction.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

// §2.2 simulation (Figs. 2-3).
#include "sim/crack_sim.h"

#endif  // CRACKSTORE_CRACKSTORE_H_
