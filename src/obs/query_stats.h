// Copyright 2026 The CrackStore Authors
//
// Deterministic cost accounting. The paper's Figures 2-3 argue in units of
// tuples read/written relative to a scan; wall-clock numbers depend on 2003
// hardware, touched-tuple counts do not. Storage and engine operations report
// their work into an IoStats so every experiment can print both.
//
// IoStats is the *per-operation* ledger: it rides the existing
// `IoStats* stats` plumbing through every select/crack/DML path and is
// summed into QueryResult/RunResult totals. The *store-wide* ledger is the
// obs::MetricsRegistry (obs/metrics.h); AdaptiveStore::AddIo mirrors every
// IoStats delta into the registry's io.* counters so exporters and SHOW
// STATS see the same numbers the facade accumulates.

#ifndef CRACKSTORE_OBS_QUERY_STATS_H_
#define CRACKSTORE_OBS_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace crackstore {

/// Counters for the logical work performed by an operation or a whole query
/// sequence. All counts are in tuples unless stated otherwise.
struct IoStats {
  uint64_t tuples_read = 0;      ///< tuples whose value was inspected
  uint64_t tuples_written = 0;   ///< tuples moved/copied/materialized
  uint64_t page_reads = 0;       ///< simulated disk page reads (rowstore)
  uint64_t page_writes = 0;      ///< simulated disk page writes (rowstore)
  uint64_t journal_writes = 0;   ///< redo-journal records (transaction cost)
  uint64_t catalog_ops = 0;      ///< catalog/schema mutations
  uint64_t cracks = 0;           ///< crack kernel invocations
  uint64_t pieces_created = 0;   ///< new pieces registered in a cracker index
  uint64_t pieces_touched = 0;   ///< existing pieces a crack/probe shuffled
  uint64_t kernel_writes = 0;    ///< tuple swaps performed by crack kernels

  IoStats& operator+=(const IoStats& other) {
    tuples_read += other.tuples_read;
    tuples_written += other.tuples_written;
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    journal_writes += other.journal_writes;
    catalog_ops += other.catalog_ops;
    cracks += other.cracks;
    pieces_created += other.pieces_created;
    pieces_touched += other.pieces_touched;
    kernel_writes += other.kernel_writes;
    return *this;
  }

  IoStats operator+(const IoStats& other) const {
    IoStats out = *this;
    out += other;
    return out;
  }

  IoStats operator-(const IoStats& other) const {
    IoStats out;
    out.tuples_read = tuples_read - other.tuples_read;
    out.tuples_written = tuples_written - other.tuples_written;
    out.page_reads = page_reads - other.page_reads;
    out.page_writes = page_writes - other.page_writes;
    out.journal_writes = journal_writes - other.journal_writes;
    out.catalog_ops = catalog_ops - other.catalog_ops;
    out.cracks = cracks - other.cracks;
    out.pieces_created = pieces_created - other.pieces_created;
    out.pieces_touched = pieces_touched - other.pieces_touched;
    out.kernel_writes = kernel_writes - other.kernel_writes;
    return out;
  }

  void Reset() { *this = IoStats{}; }

  /// Short single-line rendering for logs.
  std::string ToString() const;
};

}  // namespace crackstore

#endif  // CRACKSTORE_OBS_QUERY_STATS_H_
