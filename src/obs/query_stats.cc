// Copyright 2026 The CrackStore Authors

#include "obs/query_stats.h"

#include "util/string_util.h"

namespace crackstore {

std::string IoStats::ToString() const {
  return StrFormat(
      "read=%llu written=%llu page_r=%llu page_w=%llu journal=%llu "
      "catalog=%llu cracks=%llu pieces=%llu touched=%llu kernel_w=%llu",
      static_cast<unsigned long long>(tuples_read),
      static_cast<unsigned long long>(tuples_written),
      static_cast<unsigned long long>(page_reads),
      static_cast<unsigned long long>(page_writes),
      static_cast<unsigned long long>(journal_writes),
      static_cast<unsigned long long>(catalog_ops),
      static_cast<unsigned long long>(cracks),
      static_cast<unsigned long long>(pieces_created),
      static_cast<unsigned long long>(pieces_touched),
      static_cast<unsigned long long>(kernel_writes));
}

}  // namespace crackstore
