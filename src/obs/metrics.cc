// Copyright 2026 The CrackStore Authors

#include "obs/metrics.h"

#include "util/string_util.h"

namespace crackstore {
namespace obs {

namespace internal {

size_t AssignShard() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

bool MatchLike(const std::string& pattern, const std::string& text) {
  if (pattern.empty()) return true;
  // Iterative wildcard match with backtracking over the last '%'.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
    if (!help.empty()) help_[name] = help;
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
    if (!help.empty()) help_[name] = help;
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram());
    if (!help.empty()) help_[name] = help;
  }
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

namespace {

/// "crack.pieces_created" -> "crackstore_crack_pieces_created".
std::string PromName(const std::string& name) {
  std::string out = "crackstore_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderText(const std::string& like) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  auto help_for = [&](const std::string& name) {
    auto it = help_.find(name);
    return it == help_.end() ? std::string() : it->second;
  };
  for (const auto& kv : counters_) {
    if (!MatchLike(like, kv.first)) continue;
    const std::string pname = PromName(kv.first);
    const std::string help = help_for(kv.first);
    if (!help.empty()) out += "# HELP " + pname + " " + help + "\n";
    out += "# TYPE " + pname + " counter\n";
    out += StrFormat("%s %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(kv.second->Value()));
  }
  for (const auto& kv : gauges_) {
    if (!MatchLike(like, kv.first)) continue;
    const std::string pname = PromName(kv.first);
    const std::string help = help_for(kv.first);
    if (!help.empty()) out += "# HELP " + pname + " " + help + "\n";
    out += "# TYPE " + pname + " gauge\n";
    out += StrFormat("%s %lld\n", pname.c_str(),
                     static_cast<long long>(kv.second->Value()));
  }
  for (const auto& kv : histograms_) {
    if (!MatchLike(like, kv.first)) continue;
    const std::string pname = PromName(kv.first);
    const std::string help = help_for(kv.first);
    if (!help.empty()) out += "# HELP " + pname + " " + help + "\n";
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = kv.second->BucketCount(i);
      if (n == 0) continue;  // sparse export: empty log2 buckets are noise
      cumulative += n;
      const uint64_t le = Histogram::BucketUpperBound(i);
      out += StrFormat("%s_bucket{le=\"%llu\"} %llu\n", pname.c_str(),
                       static_cast<unsigned long long>(le),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(kv.second->TotalCount()));
    out += StrFormat("%s_sum %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(kv.second->Sum()));
    out += StrFormat("%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(kv.second->TotalCount()));
  }
  return out;
}

std::string MetricsRegistry::RenderJson(const std::string& like) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{";
  out += "\"counters\": {";
  bool first = true;
  for (const auto& kv : counters_) {
    if (!MatchLike(like, kv.first)) continue;
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %llu", JsonEscape(kv.first).c_str(),
                     static_cast<unsigned long long>(kv.second->Value()));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& kv : gauges_) {
    if (!MatchLike(like, kv.first)) continue;
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %lld", JsonEscape(kv.first).c_str(),
                     static_cast<long long>(kv.second->Value()));
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& kv : histograms_) {
    if (!MatchLike(like, kv.first)) continue;
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": {\"count\": %llu, \"sum\": %llu, \"buckets\": [",
                     JsonEscape(kv.first).c_str(),
                     static_cast<unsigned long long>(kv.second->TotalCount()),
                     static_cast<unsigned long long>(kv.second->Sum()));
    bool bfirst = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = kv.second->BucketCount(i);
      if (n == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += StrFormat(
          "[%llu, %llu]",
          static_cast<unsigned long long>(Histogram::BucketUpperBound(i)),
          static_cast<unsigned long long>(n));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::vector<MetricRow> MetricsRegistry::Rows(const std::string& like) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricRow> rows;
  for (const auto& kv : counters_) {
    if (!MatchLike(like, kv.first)) continue;
    rows.push_back({kv.first, "counter",
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          kv.second->Value()))});
  }
  for (const auto& kv : gauges_) {
    if (!MatchLike(like, kv.first)) continue;
    rows.push_back({kv.first, "gauge",
                    StrFormat("%lld",
                              static_cast<long long>(kv.second->Value()))});
  }
  for (const auto& kv : histograms_) {
    if (!MatchLike(like, kv.first)) continue;
    const uint64_t count = kv.second->TotalCount();
    const uint64_t sum = kv.second->Sum();
    rows.push_back(
        {kv.first, "histogram",
         StrFormat("count=%llu sum=%llu avg=%.1f",
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(sum),
                   count == 0 ? 0.0
                              : static_cast<double>(sum) /
                                    static_cast<double>(count))});
  }
  return rows;
}

}  // namespace obs
}  // namespace crackstore
