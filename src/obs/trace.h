// Copyright 2026 The CrackStore Authors
//
// Per-statement crack tracing: a QueryTrace collects RAII spans
// (parse -> plan -> per-column crack/select -> materialize) plus live event
// counters that hot paths bump through obs/instruments.h. The trace is
// threaded explicitly through the SQL layer via ExecContext and ambiently
// (thread_local) below it, so deep call sites — crack kernels, latches,
// snapshot filters — need no parameter plumbing. TaskPool propagates the
// ambient binding to its workers, so fan-out work lands in the right trace.
//
// Cost model: when no trace is bound, every hook is a thread_local load and
// a branch; span constructors do not even build their name strings.
// EXPLAIN ANALYZE binds a trace for one statement and renders the result.

#ifndef CRACKSTORE_OBS_TRACE_H_
#define CRACKSTORE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_stats.h"

namespace crackstore {
namespace obs {

/// Plain snapshot of the live event counters; span deltas are computed as
/// (snapshot at close) - (snapshot at open).
struct TraceCounters {
  uint64_t latch_acquisitions = 0;
  uint64_t latch_waits = 0;        ///< acquisitions that had to block
  uint64_t latch_wait_ns = 0;      ///< total blocked time
  uint64_t snap_rows_filtered = 0; ///< rows hidden by snapshot visibility
  uint64_t snap_override_hits = 0; ///< value overrides served to a snapshot
  uint64_t simd_calls[4] = {0, 0, 0, 0};  ///< crack kernel calls per tier
  uint64_t tasks_run = 0;
  uint64_t task_batches = 0;
  uint64_t policy_switches = 0;       ///< kAuto runtime policy switches
  uint64_t progressive_deferred = 0;  ///< rows progressive cuts deferred
  uint64_t select_spans = 0;          ///< spans answered without oid gathers
  uint64_t select_span_rows = 0;      ///< rows covered by span answers
  uint64_t select_materialized = 0;   ///< oids materialized into lists
  uint64_t agg_pushdown_rows = 0;     ///< rows reduced by aggregate kernels

  TraceCounters operator-(const TraceCounters& o) const {
    TraceCounters d;
    d.latch_acquisitions = latch_acquisitions - o.latch_acquisitions;
    d.latch_waits = latch_waits - o.latch_waits;
    d.latch_wait_ns = latch_wait_ns - o.latch_wait_ns;
    d.snap_rows_filtered = snap_rows_filtered - o.snap_rows_filtered;
    d.snap_override_hits = snap_override_hits - o.snap_override_hits;
    for (int i = 0; i < 4; ++i) d.simd_calls[i] = simd_calls[i] - o.simd_calls[i];
    d.tasks_run = tasks_run - o.tasks_run;
    d.task_batches = task_batches - o.task_batches;
    d.policy_switches = policy_switches - o.policy_switches;
    d.progressive_deferred = progressive_deferred - o.progressive_deferred;
    d.select_spans = select_spans - o.select_spans;
    d.select_span_rows = select_span_rows - o.select_span_rows;
    d.select_materialized = select_materialized - o.select_materialized;
    d.agg_pushdown_rows = agg_pushdown_rows - o.agg_pushdown_rows;
    return d;
  }

  uint64_t simd_total() const {
    return simd_calls[0] + simd_calls[1] + simd_calls[2] + simd_calls[3];
  }
};

/// One statement's trace. Spans are opened/closed on the binding thread;
/// the live counters are relaxed atomics so TaskPool workers bound to the
/// same trace can report concurrently.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    int depth = 0;
    double seconds = 0.0;
    IoStats io;             ///< IoStats delta observed while the span was open
    TraceCounters counters; ///< live-counter delta while the span was open
    bool open = false;

    // Bookkeeping while open.
    std::chrono::steady_clock::time_point start;
    const IoStats* watch = nullptr;
    IoStats watch_at_open;
    TraceCounters live_at_open;
  };

  /// Relaxed atomics bumped by obs/instruments.h hooks (possibly from
  /// TaskPool workers carrying this trace).
  struct Live {
    std::atomic<uint64_t> latch_acquisitions{0};
    std::atomic<uint64_t> latch_waits{0};
    std::atomic<uint64_t> latch_wait_ns{0};
    std::atomic<uint64_t> snap_rows_filtered{0};
    std::atomic<uint64_t> snap_override_hits{0};
    std::atomic<uint64_t> simd_calls[4] = {};
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> task_batches{0};
    std::atomic<uint64_t> policy_switches{0};
    std::atomic<uint64_t> progressive_deferred{0};
    std::atomic<uint64_t> select_spans{0};
    std::atomic<uint64_t> select_span_rows{0};
    std::atomic<uint64_t> select_materialized{0};
    std::atomic<uint64_t> agg_pushdown_rows{0};
  };

  /// Opens a span; returns its index for CloseSpan. `watch` (optional) is an
  /// IoStats the span snapshots at open and diffs at close — it must outlive
  /// the span.
  size_t OpenSpan(std::string name, const IoStats* watch = nullptr);
  void CloseSpan(size_t idx);

  /// Records an already-timed span (e.g. parse, measured before the trace
  /// had anything to wrap).
  void AddCompletedSpan(std::string name, double seconds);

  TraceCounters LiveSnapshot() const;
  std::vector<Span> Spans() const;

  /// Human-readable report: span tree with per-span timings and deltas,
  /// then statement totals (pieces touched, kernel writes, rows filtered by
  /// snapshot, latch wait time, SIMD tier calls).
  std::string Render(const IoStats& statement_io, double total_seconds) const;

  Live live;

 private:
  mutable std::mutex mu_;  // guards spans_/depth_ (cold: span open/close only)
  std::vector<Span> spans_;
  int depth_ = 0;
};

/// The trace bound to the current thread, or nullptr.
QueryTrace* CurrentTrace();

/// RAII thread_local binding; restores the previous binding on destruction.
class TraceBinding {
 public:
  explicit TraceBinding(QueryTrace* trace);
  ~TraceBinding();
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  QueryTrace* prev_;
};

/// RAII span against the ambient trace. When no trace is bound, construction
/// is a thread_local load and a branch — the name string is never built.
class TraceSpan {
 public:
  TraceSpan() = default;

  /// Span named "<op> <detail>" (detail omitted when empty).
  TraceSpan(const char* op, const std::string& detail,
            const IoStats* watch = nullptr);
  explicit TraceSpan(const char* op, const IoStats* watch = nullptr);

  TraceSpan(TraceSpan&& o) noexcept : trace_(o.trace_), idx_(o.idx_) {
    o.trace_ = nullptr;
  }
  TraceSpan& operator=(TraceSpan&& o) noexcept {
    Close();
    trace_ = o.trace_;
    idx_ = o.idx_;
    o.trace_ = nullptr;
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Close(); }

  void Close();

 private:
  QueryTrace* trace_ = nullptr;
  size_t idx_ = 0;
};

/// Execution context handed through the SQL layer. Today it carries only the
/// trace; it is the seam where deadlines/priorities would ride later.
struct ExecContext {
  QueryTrace* trace = nullptr;
};

}  // namespace obs
}  // namespace crackstore

#endif  // CRACKSTORE_OBS_TRACE_H_
