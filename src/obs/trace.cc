// Copyright 2026 The CrackStore Authors

#include "obs/trace.h"

#include "core/simd_dispatch.h"
#include "util/string_util.h"

namespace crackstore {
namespace obs {

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
}  // namespace

QueryTrace* CurrentTrace() { return g_current_trace; }

TraceBinding::TraceBinding(QueryTrace* trace) : prev_(g_current_trace) {
  g_current_trace = trace;
}

TraceBinding::~TraceBinding() { g_current_trace = prev_; }

size_t QueryTrace::OpenSpan(std::string name, const IoStats* watch) {
  const TraceCounters now = LiveSnapshot();
  std::lock_guard<std::mutex> lk(mu_);
  Span span;
  span.name = std::move(name);
  span.depth = depth_++;
  span.open = true;
  span.start = std::chrono::steady_clock::now();
  span.watch = watch;
  if (watch != nullptr) span.watch_at_open = *watch;
  span.live_at_open = now;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void QueryTrace::CloseSpan(size_t idx) {
  const TraceCounters now = LiveSnapshot();
  const auto end = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  if (idx >= spans_.size()) return;
  Span& span = spans_[idx];
  if (!span.open) return;
  span.open = false;
  span.seconds = std::chrono::duration<double>(end - span.start).count();
  if (span.watch != nullptr) span.io = *span.watch - span.watch_at_open;
  span.watch = nullptr;
  span.counters = now - span.live_at_open;
  --depth_;
}

void QueryTrace::AddCompletedSpan(std::string name, double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  Span span;
  span.name = std::move(name);
  span.depth = depth_;
  span.seconds = seconds;
  spans_.push_back(std::move(span));
}

TraceCounters QueryTrace::LiveSnapshot() const {
  TraceCounters c;
  c.latch_acquisitions = live.latch_acquisitions.load(std::memory_order_relaxed);
  c.latch_waits = live.latch_waits.load(std::memory_order_relaxed);
  c.latch_wait_ns = live.latch_wait_ns.load(std::memory_order_relaxed);
  c.snap_rows_filtered =
      live.snap_rows_filtered.load(std::memory_order_relaxed);
  c.snap_override_hits =
      live.snap_override_hits.load(std::memory_order_relaxed);
  for (int i = 0; i < 4; ++i) {
    c.simd_calls[i] = live.simd_calls[i].load(std::memory_order_relaxed);
  }
  c.tasks_run = live.tasks_run.load(std::memory_order_relaxed);
  c.task_batches = live.task_batches.load(std::memory_order_relaxed);
  c.policy_switches = live.policy_switches.load(std::memory_order_relaxed);
  c.progressive_deferred =
      live.progressive_deferred.load(std::memory_order_relaxed);
  c.select_spans = live.select_spans.load(std::memory_order_relaxed);
  c.select_span_rows = live.select_span_rows.load(std::memory_order_relaxed);
  c.select_materialized =
      live.select_materialized.load(std::memory_order_relaxed);
  c.agg_pushdown_rows =
      live.agg_pushdown_rows.load(std::memory_order_relaxed);
  return c;
}

std::vector<QueryTrace::Span> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

std::string QueryTrace::Render(const IoStats& statement_io,
                               double total_seconds) const {
  std::vector<Span> spans = Spans();
  const TraceCounters totals = LiveSnapshot();
  std::string out;
  for (const Span& span : spans) {
    std::string indent(static_cast<size_t>(span.depth) * 2, ' ');
    out += StrFormat("%s%-*s %9.3f ms", indent.c_str(),
                     static_cast<int>(28 - indent.size()), span.name.c_str(),
                     span.seconds * 1e3);
    const IoStats& io = span.io;
    if (io.tuples_read + io.tuples_written + io.cracks + io.pieces_created +
            io.kernel_writes >
        0) {
      out += StrFormat(
          "  read=%llu written=%llu cracks=%llu pieces+%llu touched=%llu "
          "kernel_w=%llu",
          static_cast<unsigned long long>(io.tuples_read),
          static_cast<unsigned long long>(io.tuples_written),
          static_cast<unsigned long long>(io.cracks),
          static_cast<unsigned long long>(io.pieces_created),
          static_cast<unsigned long long>(io.pieces_touched),
          static_cast<unsigned long long>(io.kernel_writes));
    }
    if (span.counters.snap_rows_filtered > 0) {
      out += StrFormat(" snap_filtered=%llu",
                       static_cast<unsigned long long>(
                           span.counters.snap_rows_filtered));
    }
    if (span.counters.latch_waits > 0) {
      out += StrFormat(" latch_waits=%llu",
                       static_cast<unsigned long long>(
                           span.counters.latch_waits));
    }
    out += "\n";
  }
  out += StrFormat("total                        %9.3f ms\n",
                   total_seconds * 1e3);
  out += StrFormat(
      "io: tuples read=%llu written=%llu, cracks=%llu, pieces created=%llu, "
      "pieces touched=%llu, crack kernel writes=%llu\n",
      static_cast<unsigned long long>(statement_io.tuples_read),
      static_cast<unsigned long long>(statement_io.tuples_written),
      static_cast<unsigned long long>(statement_io.cracks),
      static_cast<unsigned long long>(statement_io.pieces_created),
      static_cast<unsigned long long>(statement_io.pieces_touched),
      static_cast<unsigned long long>(statement_io.kernel_writes));
  out += StrFormat(
      "snapshot: rows filtered=%llu, override hits=%llu\n",
      static_cast<unsigned long long>(totals.snap_rows_filtered),
      static_cast<unsigned long long>(totals.snap_override_hits));
  out += StrFormat(
      "latches: acquisitions=%llu, waits=%llu, wait time=%.3f ms\n",
      static_cast<unsigned long long>(totals.latch_acquisitions),
      static_cast<unsigned long long>(totals.latch_waits),
      static_cast<double>(totals.latch_wait_ns) / 1e6);
  out += "simd kernel calls:";
  for (int i = 0; i < 4; ++i) {
    out += StrFormat(" %s=%llu",
                     SimdTierName(static_cast<SimdTier>(i)),
                     static_cast<unsigned long long>(totals.simd_calls[i]));
  }
  out += StrFormat("\ntasks: batches=%llu, run=%llu\n",
                   static_cast<unsigned long long>(totals.task_batches),
                   static_cast<unsigned long long>(totals.tasks_run));
  if (totals.policy_switches > 0 || totals.progressive_deferred > 0) {
    out += StrFormat(
        "policy: switches=%llu, progressive deferred rows=%llu\n",
        static_cast<unsigned long long>(totals.policy_switches),
        static_cast<unsigned long long>(totals.progressive_deferred));
  }
  if (totals.select_spans > 0 || totals.select_materialized > 0 ||
      totals.agg_pushdown_rows > 0) {
    out += StrFormat(
        "read path: spans=%llu (rows=%llu), materialized oids=%llu, "
        "agg pushdown rows=%llu\n",
        static_cast<unsigned long long>(totals.select_spans),
        static_cast<unsigned long long>(totals.select_span_rows),
        static_cast<unsigned long long>(totals.select_materialized),
        static_cast<unsigned long long>(totals.agg_pushdown_rows));
  }
  return out;
}

TraceSpan::TraceSpan(const char* op, const std::string& detail,
                     const IoStats* watch) {
  QueryTrace* trace = CurrentTrace();
  if (trace == nullptr) return;
  std::string name(op);
  if (!detail.empty()) {
    name += ' ';
    name += detail;
  }
  trace_ = trace;
  idx_ = trace->OpenSpan(std::move(name), watch);
}

TraceSpan::TraceSpan(const char* op, const IoStats* watch) {
  QueryTrace* trace = CurrentTrace();
  if (trace == nullptr) return;
  trace_ = trace;
  idx_ = trace->OpenSpan(std::string(op), watch);
}

void TraceSpan::Close() {
  if (trace_ != nullptr) {
    trace_->CloseSpan(idx_);
    trace_ = nullptr;
  }
}

}  // namespace obs
}  // namespace crackstore
