// Copyright 2026 The CrackStore Authors
//
// Hot-path instrumentation hooks. Core code calls these tiny free functions
// instead of touching the MetricsRegistry or the ambient QueryTrace
// directly; each hook bumps the matching named registry instrument and, when
// a trace is bound to the calling thread, the trace's live counters.
//
// Under -DCRACKSTORE_NO_METRICS every hook is an inline empty function, so
// the compiler deletes the call sites — the fig02 overhead gate in CI
// compares the two builds on the crack hot loop.
//
// Instrument catalog (see README "Observability"):
//   crack.cracks / crack.pieces_created / crack.pieces_touched /
//   crack.kernel_writes / crack.tuples_touched / crack.piece_size (histogram)
//   crack.progressive_deferred_rows
//   policy.switches
//   latch.range_acquisitions / latch.range_waits / latch.range_wait_ns
//   pool.batches / pool.tasks_run / pool.submitter_drains / pool.queue_depth
//   txn.begins / txn.commits / txn.aborts / txn.conflicts
//   versions.rows / versions.chain_entries (gauges) / vacuum.runs /
//   vacuum.purged_rows
//   merge.folds / merge.rows
//   snapshot.rows_filtered / snapshot.override_hits
//   select.spans / select.span_rows / select.materialized_oids
//   agg.pushdown_rows
//   simd.calls.{scalar,predicated,avx2,neon}
//   io.* (mirrored from every IoStats delta the facade accumulates)
//   sql.statements
//   wal.appends / wal.bytes_appended / wal.fsyncs /
//   wal.group_commit_txns (histogram) / wal.replays /
//   wal.replayed_records / wal.replay_ns
//   wal.checkpoints / wal.checkpoint_bytes / vacuum.auto_runs

#ifndef CRACKSTORE_OBS_INSTRUMENTS_H_
#define CRACKSTORE_OBS_INSTRUMENTS_H_

#include <cstdint>

namespace crackstore {

struct IoStats;

namespace obs {

#if defined(CRACKSTORE_NO_METRICS)

inline void RecordCrack(uint64_t, uint64_t, uint64_t, uint64_t) {}
inline void RecordPieceSize(uint64_t) {}
inline void RecordLatchAcquisition() {}
inline void RecordLatchWait(uint64_t) {}
inline void RecordTaskBatch(uint64_t) {}
inline void RecordTaskRun(bool) {}
inline void AddQueueDepth(int64_t) {}
inline void RecordTxnBegin() {}
inline void RecordTxnCommit() {}
inline void RecordTxnAbort() {}
inline void RecordTxnConflict() {}
inline void AddVersionRows(int64_t) {}
inline void AddVersionChainEntries(int64_t) {}
inline void RecordVacuum(uint64_t) {}
inline void RecordMerge(uint64_t) {}
inline void RecordSnapshotFiltered(uint64_t) {}
inline void RecordSnapshotOverride(uint64_t) {}
inline void RecordSpanAnswer(uint64_t, uint64_t) {}
inline void RecordMaterializedOids(uint64_t) {}
inline void RecordAggPushdown(uint64_t) {}
inline void RecordSimdCall(int) {}
inline void MirrorIo(const IoStats&) {}
inline void RecordSqlStatement() {}
inline void RecordPolicySwitch() {}
inline void RecordProgressiveDeferred(uint64_t) {}
inline void RecordWalAppend(uint64_t) {}
inline void RecordWalFsync() {}
inline void RecordWalGroupCommit(uint64_t) {}
inline void RecordWalReplay(uint64_t, uint64_t) {}
inline void RecordCheckpoint(uint64_t) {}
inline void RecordAutovacuum() {}

#else

/// One crack kernel run: tuples inspected, tuple swaps it performed, and how
/// many new pieces it registered (the touched piece count is 1 per kernel).
void RecordCrack(uint64_t tuples, uint64_t kernel_writes,
                 uint64_t pieces_created, uint64_t pieces_touched);
/// Size of a piece produced by a crack (feeds the piece-size histogram).
void RecordPieceSize(uint64_t size);

void RecordLatchAcquisition();
void RecordLatchWait(uint64_t ns);

void RecordTaskBatch(uint64_t tasks);
void RecordTaskRun(bool submitter);
void AddQueueDepth(int64_t delta);

void RecordTxnBegin();
void RecordTxnCommit();
void RecordTxnAbort();
void RecordTxnConflict();

/// Version-log level tracking (gauges; deltas may be negative on vacuum or
/// rollback).
void AddVersionRows(int64_t delta);
void AddVersionChainEntries(int64_t delta);
void RecordVacuum(uint64_t purged_rows);

/// A delta-merge fold into a rebuilt accelerator; `rows` is the number of
/// tuples the rebuilt accelerator absorbed.
void RecordMerge(uint64_t rows);

void RecordSnapshotFiltered(uint64_t rows);
void RecordSnapshotOverride(uint64_t hits);

/// One selection answered as an OidSpanSet: `spans` contiguous pieces
/// covering `rows` qualifying rows, zero oids materialized.
void RecordSpanAnswer(uint64_t spans, uint64_t rows);

/// `rows` oids materialized into a list at a true boundary (caller asked
/// for oids, span set unavailable, or a permuted-layout intersection).
void RecordMaterializedOids(uint64_t rows);

/// `rows` reduced by the horizontal aggregate kernels instead of a
/// materialize-then-loop pass.
void RecordAggPushdown(uint64_t rows);

/// One dispatched crack kernel call on the given SimdTier (0..3).
void RecordSimdCall(int tier);

/// Mirrors an IoStats delta into the registry's io.* counters.
void MirrorIo(const IoStats& io);

void RecordSqlStatement();

/// One runtime policy switch landed by the kAuto workload detector.
void RecordPolicySwitch();

/// Rows a budgeted progressive cut left unpartitioned this pass.
void RecordProgressiveDeferred(uint64_t rows);

/// One record appended to the commit log (`bytes` = framed size).
void RecordWalAppend(uint64_t bytes);
/// One fsync issued against the commit log.
void RecordWalFsync();
/// One group-commit fsync covering `txns` commit records.
void RecordWalGroupCommit(uint64_t txns);
/// One recovery replay of a commit log (`ns` = wall clock).
void RecordWalReplay(uint64_t records, uint64_t ns);
/// One checkpoint written (`bytes` = checkpoint file size).
void RecordCheckpoint(uint64_t bytes);
/// One vacuum pass triggered by the autovacuum maintenance hook.
void RecordAutovacuum();

#endif  // CRACKSTORE_NO_METRICS

}  // namespace obs
}  // namespace crackstore

#endif  // CRACKSTORE_OBS_INSTRUMENTS_H_
