// Copyright 2026 The CrackStore Authors
//
// Store-wide metrics registry: named counters, gauges, and log-scale
// histograms with lock-free hot paths. The store adapts itself — physical
// reorganization happens as a side effect of queries — and this registry is
// how an operator (or a future self-driving policy) watches it happen.
//
// Design:
//  * Counter — 16 cache-line-padded shards; each thread hashes to a shard
//    once and then increments with a relaxed fetch_add. No contention on
//    the fan-out paths (TaskPool workers land on distinct shards).
//  * Gauge — single relaxed atomic int64 (Set/Add), for levels like queue
//    depth and version-log size.
//  * Histogram — log2 buckets (bucket i holds values whose bit width is i),
//    plus sum and count. One relaxed fetch_add per observation.
//  * MetricsRegistry::Global() hands out stable instrument pointers; the
//    registration map is mutex-guarded but hot sites cache the pointer in a
//    function-local static, so registration cost is paid once per process.
//  * Compiling with -DCRACKSTORE_NO_METRICS turns every mutator into an
//    inline no-op; instruments still exist so call sites need no #ifdefs.
//
// Exporters: RenderText emits Prometheus-style text ("crackstore_" prefix,
// dots mapped to underscores), RenderJson a machine-readable snapshot that
// bench binaries embed in their --json output, and Rows() a tabular view
// shared by SQL `SHOW STATS` and the shell `stats` command.

#ifndef CRACKSTORE_OBS_METRICS_H_
#define CRACKSTORE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crackstore {
namespace obs {

#if defined(CRACKSTORE_NO_METRICS)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

namespace internal {
/// Round-robin shard assignment; each thread gets a sticky shard index.
size_t AssignShard();
inline size_t ShardIndex() {
  thread_local size_t idx = AssignShard();
  return idx;
}
}  // namespace internal

/// Monotonic counter, sharded to keep concurrent increments off a single
/// cache line. Value() sums the shards (reads are rare: exporters only).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
#if !defined(CRACKSTORE_NO_METRICS)
    shards_[internal::ShardIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time level (queue depth, version-log size). Signed so transient
/// over-decrements during concurrent teardown cannot wrap.
class Gauge {
 public:
  void Set(int64_t v) {
#if !defined(CRACKSTORE_NO_METRICS)
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(int64_t d) {
#if !defined(CRACKSTORE_NO_METRICS)
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale histogram: bucket i counts values v with bit_width(v) == i,
/// i.e. v in [2^(i-1), 2^i - 1]; bucket 0 counts v == 0. Upper bounds are
/// therefore 0, 1, 3, 7, 15, ... — enough resolution for piece sizes and
/// latency-style distributions without per-observation allocation.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit widths 0..64

  static size_t BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    return 64 - static_cast<size_t>(__builtin_clzll(v));
  }

  /// Inclusive upper bound of bucket i (for exporters).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  void Observe(uint64_t v) {
#if !defined(CRACKSTORE_NO_METRICS)
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// SQL-LIKE glob: '%' matches any run (including empty), '_' one character.
/// An empty pattern matches everything (SHOW STATS with no LIKE clause).
bool MatchLike(const std::string& pattern, const std::string& text);

/// One row of the tabular stats view: {name, type, rendered value}.
using MetricRow = std::array<std::string, 3>;

class MetricsRegistry {
 public:
  /// The process-wide registry every instrument registers into.
  static MetricsRegistry& Global();

  /// Returns the named instrument, creating it on first use. Pointers are
  /// stable for the life of the registry; `help` is kept from the first
  /// registration and shown in the Prometheus export.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Zeroes every instrument (names and help strings survive).
  void ResetAll();

  /// Prometheus text exposition; `like` filters instrument names with
  /// MatchLike semantics ("" = all).
  std::string RenderText(const std::string& like = "") const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count", "sum", "buckets": [[le, n], ...]}}}.
  std::string RenderJson(const std::string& like = "") const;

  /// Sorted {name, type, value} rows for SHOW STATS / shell `stats`.
  std::vector<MetricRow> Rows(const std::string& like = "") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace obs
}  // namespace crackstore

#endif  // CRACKSTORE_OBS_METRICS_H_
