// Copyright 2026 The CrackStore Authors

#include "obs/instruments.h"

#if !defined(CRACKSTORE_NO_METRICS)

#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/trace.h"

namespace crackstore {
namespace obs {

namespace {

// Each hook caches its instrument pointers in function-local statics: the
// registry mutex is paid once per process per instrument, after which a hook
// is a call, a relaxed fetch_add, and a thread_local trace check.
MetricsRegistry& Reg() { return MetricsRegistry::Global(); }

}  // namespace

void RecordCrack(uint64_t tuples, uint64_t kernel_writes,
                 uint64_t pieces_created, uint64_t pieces_touched) {
  static Counter* cracks =
      Reg().GetCounter("crack.cracks", "crack kernel invocations");
  static Counter* touched_tuples = Reg().GetCounter(
      "crack.tuples_touched", "tuples inspected by crack kernels");
  static Counter* writes = Reg().GetCounter(
      "crack.kernel_writes", "tuple swaps performed by crack kernels");
  static Counter* created = Reg().GetCounter(
      "crack.pieces_created", "new pieces registered in cracker indexes");
  static Counter* touched = Reg().GetCounter(
      "crack.pieces_touched", "existing pieces shuffled by crack kernels");
  cracks->Add(1);
  touched_tuples->Add(tuples);
  writes->Add(kernel_writes);
  created->Add(pieces_created);
  touched->Add(pieces_touched);
}

void RecordPieceSize(uint64_t size) {
  static Histogram* h = Reg().GetHistogram(
      "crack.piece_size", "sizes of pieces produced by cracks (tuples)");
  h->Observe(size);
}

void RecordLatchAcquisition() {
  static Counter* c = Reg().GetCounter("latch.range_acquisitions",
                                       "piece range-lock acquisitions");
  c->Add(1);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
}

void RecordLatchWait(uint64_t ns) {
  static Counter* waits = Reg().GetCounter(
      "latch.range_waits", "range-lock acquisitions that blocked");
  static Counter* wait_ns =
      Reg().GetCounter("latch.range_wait_ns", "total range-lock blocked time");
  waits->Add(1);
  wait_ns->Add(ns);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.latch_waits.fetch_add(1, std::memory_order_relaxed);
    t->live.latch_wait_ns.fetch_add(ns, std::memory_order_relaxed);
  }
}

void RecordTaskBatch(uint64_t tasks) {
  static Counter* batches =
      Reg().GetCounter("pool.batches", "task batches submitted");
  static Counter* submitted =
      Reg().GetCounter("pool.tasks_submitted", "tasks submitted in batches");
  batches->Add(1);
  submitted->Add(tasks);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.task_batches.fetch_add(1, std::memory_order_relaxed);
  }
}

void RecordTaskRun(bool submitter) {
  static Counter* run = Reg().GetCounter("pool.tasks_run", "tasks executed");
  static Counter* drains = Reg().GetCounter(
      "pool.submitter_drains", "tasks drained by the submitting thread");
  run->Add(1);
  if (submitter) drains->Add(1);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.tasks_run.fetch_add(1, std::memory_order_relaxed);
  }
}

void AddQueueDepth(int64_t delta) {
  static Gauge* g =
      Reg().GetGauge("pool.queue_depth", "batches waiting in the task queue");
  g->Add(delta);
}

void RecordTxnBegin() {
  static Counter* c = Reg().GetCounter("txn.begins", "transactions begun");
  c->Add(1);
}

void RecordTxnCommit() {
  static Counter* c = Reg().GetCounter("txn.commits", "transactions committed");
  c->Add(1);
}

void RecordTxnAbort() {
  static Counter* c = Reg().GetCounter("txn.aborts", "transactions rolled back");
  c->Add(1);
}

void RecordTxnConflict() {
  static Counter* c = Reg().GetCounter(
      "txn.conflicts", "first-committer-wins write conflicts");
  c->Add(1);
}

void AddVersionRows(int64_t delta) {
  static Gauge* g =
      Reg().GetGauge("versions.rows", "rows with live version-log entries");
  g->Add(delta);
}

void AddVersionChainEntries(int64_t delta) {
  static Gauge* g = Reg().GetGauge("versions.chain_entries",
                                   "superseded-value chain entries");
  g->Add(delta);
}

void RecordVacuum(uint64_t purged_rows) {
  static Counter* runs = Reg().GetCounter("vacuum.runs", "vacuum invocations");
  static Counter* purged = Reg().GetCounter(
      "vacuum.purged_rows", "row versions folded below the low-water mark");
  runs->Add(1);
  purged->Add(purged_rows);
}

void RecordMerge(uint64_t rows) {
  static Counter* folds =
      Reg().GetCounter("merge.folds", "delta-merge rebuilds");
  static Counter* merged =
      Reg().GetCounter("merge.rows", "tuples absorbed by delta merges");
  folds->Add(1);
  merged->Add(rows);
}

void RecordSnapshotFiltered(uint64_t rows) {
  if (rows == 0) return;
  static Counter* c = Reg().GetCounter(
      "snapshot.rows_filtered", "rows hidden from a statement's snapshot");
  c->Add(rows);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.snap_rows_filtered.fetch_add(rows, std::memory_order_relaxed);
  }
}

void RecordSnapshotOverride(uint64_t hits) {
  if (hits == 0) return;
  static Counter* c = Reg().GetCounter(
      "snapshot.override_hits", "superseded values served to old snapshots");
  c->Add(hits);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.snap_override_hits.fetch_add(hits, std::memory_order_relaxed);
  }
}

void RecordSpanAnswer(uint64_t spans, uint64_t rows) {
  if (spans == 0) return;
  static Counter* c = Reg().GetCounter(
      "select.spans", "contiguous spans handed out as selection answers");
  static Counter* r = Reg().GetCounter(
      "select.span_rows", "rows answered through span sets (never gathered)");
  c->Add(spans);
  r->Add(rows);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.select_spans.fetch_add(spans, std::memory_order_relaxed);
    t->live.select_span_rows.fetch_add(rows, std::memory_order_relaxed);
  }
}

void RecordMaterializedOids(uint64_t rows) {
  if (rows == 0) return;
  static Counter* c = Reg().GetCounter(
      "select.materialized_oids", "oids materialized into answer lists");
  c->Add(rows);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.select_materialized.fetch_add(rows, std::memory_order_relaxed);
  }
}

void RecordAggPushdown(uint64_t rows) {
  if (rows == 0) return;
  static Counter* c = Reg().GetCounter(
      "agg.pushdown_rows", "rows reduced by pushed-down aggregate kernels");
  c->Add(rows);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.agg_pushdown_rows.fetch_add(rows, std::memory_order_relaxed);
  }
}

void RecordSimdCall(int tier) {
  static Counter* tiers[4] = {
      Reg().GetCounter("simd.calls.scalar", "crack kernel calls, scalar tier"),
      Reg().GetCounter("simd.calls.predicated",
                       "crack kernel calls, predicated tier"),
      Reg().GetCounter("simd.calls.avx2", "crack kernel calls, AVX2 tier"),
      Reg().GetCounter("simd.calls.neon", "crack kernel calls, NEON tier"),
  };
  if (tier < 0 || tier > 3) return;
  tiers[tier]->Add(1);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.simd_calls[tier].fetch_add(1, std::memory_order_relaxed);
  }
}

void MirrorIo(const IoStats& io) {
  static Counter* tuples_read =
      Reg().GetCounter("io.tuples_read", "tuples whose value was inspected");
  static Counter* tuples_written = Reg().GetCounter(
      "io.tuples_written", "tuples moved/copied/materialized");
  static Counter* journal_writes =
      Reg().GetCounter("io.journal_writes", "redo-journal records");
  static Counter* catalog_ops =
      Reg().GetCounter("io.catalog_ops", "catalog/schema mutations");
  if (io.tuples_read) tuples_read->Add(io.tuples_read);
  if (io.tuples_written) tuples_written->Add(io.tuples_written);
  if (io.journal_writes) journal_writes->Add(io.journal_writes);
  if (io.catalog_ops) catalog_ops->Add(io.catalog_ops);
}

void RecordSqlStatement() {
  static Counter* c =
      Reg().GetCounter("sql.statements", "SQL statements executed");
  c->Add(1);
}

void RecordPolicySwitch() {
  static Counter* c = Reg().GetCounter(
      "policy.switches", "runtime crack-policy switches by the detector");
  c->Add(1);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.policy_switches.fetch_add(1, std::memory_order_relaxed);
  }
}

void RecordProgressiveDeferred(uint64_t rows) {
  if (rows == 0) return;
  static Counter* c = Reg().GetCounter(
      "crack.progressive_deferred_rows",
      "rows budgeted progressive cuts left for later queries");
  c->Add(rows);
  if (QueryTrace* t = CurrentTrace()) {
    t->live.progressive_deferred.fetch_add(rows, std::memory_order_relaxed);
  }
}

void RecordWalAppend(uint64_t bytes) {
  static Counter* appends =
      Reg().GetCounter("wal.appends", "records appended to the commit log");
  static Counter* total = Reg().GetCounter(
      "wal.bytes_appended", "framed bytes appended to the commit log");
  appends->Add(1);
  total->Add(bytes);
}

void RecordWalFsync() {
  static Counter* c =
      Reg().GetCounter("wal.fsyncs", "fsyncs issued against the commit log");
  c->Add(1);
}

void RecordWalGroupCommit(uint64_t txns) {
  static Histogram* h = Reg().GetHistogram(
      "wal.group_commit_txns", "commit records covered per group-commit fsync");
  h->Observe(txns);
}

void RecordWalReplay(uint64_t records, uint64_t ns) {
  static Counter* replays =
      Reg().GetCounter("wal.replays", "recovery replays of a commit log");
  static Counter* recs = Reg().GetCounter(
      "wal.replayed_records", "log records applied during recovery");
  static Counter* time =
      Reg().GetCounter("wal.replay_ns", "wall clock spent replaying, ns");
  replays->Add(1);
  recs->Add(records);
  time->Add(ns);
}

void RecordCheckpoint(uint64_t bytes) {
  static Counter* runs =
      Reg().GetCounter("wal.checkpoints", "checkpoints written");
  static Counter* total = Reg().GetCounter(
      "wal.checkpoint_bytes", "bytes written into checkpoint files");
  runs->Add(1);
  total->Add(bytes);
}

void RecordAutovacuum() {
  static Counter* c = Reg().GetCounter(
      "vacuum.auto_runs", "vacuum passes triggered by the maintenance hook");
  c->Add(1);
}

}  // namespace obs
}  // namespace crackstore

#endif  // !CRACKSTORE_NO_METRICS
