// Copyright 2026 The CrackStore Authors
//
// Result delivery sinks (paper §2.1, Fig. 1): the cost of a query depends
// heavily on where its answer goes — (a) materialized into a new table,
// (b) shipped to the front-end, or (c) merely counted. Each sink performs
// the real work of its mode (journaled inserts, wire formatting, nothing)
// so the benchmarked spread is genuine, not simulated.

#ifndef CRACKSTORE_ENGINE_SINKS_H_
#define CRACKSTORE_ENGINE_SINKS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rowstore/row_table.h"
#include "storage/relation.h"
#include "storage/types.h"
#include "util/status.h"

namespace crackstore {

/// Delivery modes of Fig. 1.
enum class DeliveryMode : uint8_t {
  kMaterialize = 0,  ///< (a) INSERT INTO newR SELECT ...
  kPrint = 1,        ///< (b) ship formatted tuples to the front-end
  kCount = 2,        ///< (c) SELECT COUNT(*)
};

const char* DeliveryModeName(DeliveryMode mode);

/// Consumer of result tuples.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Receives one result tuple.
  virtual Status Consume(const std::vector<Value>& row) = 0;

  /// Called once after the last tuple (commit point / flush).
  virtual Status Finish() { return Status::OK(); }

  /// Tuples consumed so far.
  uint64_t count() const { return count_; }

 protected:
  uint64_t count_ = 0;
};

/// Mode (c): counts tuples, nothing else.
class CountSink : public ResultSink {
 public:
  Status Consume(const std::vector<Value>& row) override {
    (void)row;
    ++count_;
    return Status::OK();
  }
};

/// Result-set wire encodings for FrontendSink.
enum class WireFormat : uint8_t {
  kBinary = 0,  ///< length-framed tagged binary rows (DB wire protocols)
  kText = 1,    ///< tab-separated text (CLI front-ends)
};

/// Mode (b): encodes every tuple into a wire buffer and periodically
/// "flushes" by recycling the buffer. The encoding cost is real; nothing
/// reaches stdout.
class FrontendSink : public ResultSink {
 public:
  explicit FrontendSink(WireFormat format = WireFormat::kBinary,
                        size_t flush_bytes = 64 * 1024)
      : format_(format), flush_bytes_(flush_bytes) {}

  Status Consume(const std::vector<Value>& row) override;

  /// Total bytes that crossed the simulated wire.
  uint64_t bytes_shipped() const { return bytes_shipped_; }

 private:
  WireFormat format_;
  size_t flush_bytes_;
  std::string buffer_;
  uint64_t bytes_shipped_ = 0;
};

/// Mode (a) for the row engine: inserts every tuple into a fresh RowTable
/// (with its journal), then commits.
class RowMaterializeSink : public ResultSink {
 public:
  explicit RowMaterializeSink(std::shared_ptr<RowTable> target)
      : target_(std::move(target)) {}

  Status Consume(const std::vector<Value>& row) override {
    ++count_;
    return target_->Insert(row);
  }

  Status Finish() override {
    target_->Commit();
    return Status::OK();
  }

  const std::shared_ptr<RowTable>& target() const { return target_; }

 private:
  std::shared_ptr<RowTable> target_;
};

/// Mode (a) for the column engine: appends every tuple to a Relation.
class ColumnMaterializeSink : public ResultSink {
 public:
  explicit ColumnMaterializeSink(std::shared_ptr<Relation> target)
      : target_(std::move(target)) {}

  Status Consume(const std::vector<Value>& row) override {
    ++count_;
    return target_->AppendRow(row);
  }

  const std::shared_ptr<Relation>& target() const { return target_; }

 private:
  std::shared_ptr<Relation> target_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_SINKS_H_
