// Copyright 2026 The CrackStore Authors
//
// RowEngine: the traditional N-ary engine stand-in (MySQL/PostgreSQL/SQLite
// class in the paper's experiments). Tuple-at-a-time Volcano execution over
// journaled slotted-page tables, a catalog for partitioned tables, and a
// plan-budgeted optimizer. Used by the Fig. 1 / Fig. 9 / §5.1 benchmarks.

#ifndef CRACKSTORE_ENGINE_ROWSTORE_ENGINE_H_
#define CRACKSTORE_ENGINE_ROWSTORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/range_bounds.h"
#include "engine/plan_optimizer.h"
#include "engine/sinks.h"
#include "engine/volcano.h"
#include "rowstore/row_table.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// Measured outcome of one statement.
struct RunResult {
  uint64_t count = 0;        ///< result tuples
  double seconds = 0.0;      ///< wall clock
  IoStats io;                ///< deterministic cost delta
  uint64_t bytes_shipped = 0;  ///< kPrint only: wire bytes
  bool truncated = false;      ///< deadline hit before completion
  JoinAlgo join_algo = JoinAlgo::kHash;  ///< chain joins only
  uint64_t plans_considered = 0;         ///< chain joins only
};

/// Engine-wide knobs.
struct RowEngineOptions {
  RowTableOptions table_options;       ///< journaled vs light tables
  PlanOptimizerOptions optimizer;      ///< plan-space budget (Fig. 9)
  double statement_deadline_seconds = 0.0;  ///< 0 = no deadline
};

/// See file comment.
class RowEngine {
 public:
  explicit RowEngine(RowEngineOptions options = {});
  CRACK_DISALLOW_COPY_AND_ASSIGN(RowEngine);

  /// Bulk-loads a column relation into a new row table registered in the
  /// catalog. Loading is journaled per `table_options`.
  Result<std::shared_ptr<RowTable>> ImportRelation(const Relation& relation,
                                                   std::string table_name = "");

  /// SELECT <*> FROM `table` WHERE `column` IN range, delivered per `mode`
  /// (Fig. 1). For kMaterialize, `result_name` names the new table (dropped
  /// and recreated when it exists).
  Result<RunResult> RunSelect(const std::string& table,
                              const std::string& column,
                              const RangeBounds& range, DeliveryMode mode,
                              const std::string& result_name = "tmp_result");

  /// The §5.1 SQL-level Ξ cracker: two full scans split `table` into
  /// fragments `<base>_in` (predicate true) and `<base>_out` (false), both
  /// materialized, journaled, and registered as partitions of `base`.
  Result<RunResult> CrackTableSql(const std::string& table,
                                  const std::string& column,
                                  const RangeBounds& range,
                                  const std::string& base);

  /// SELECT over a partitioned table: prunes fragments via catalog bounds,
  /// scans only intersecting fragments (the post-crack fast path of §5.1).
  Result<RunResult> RunSelectPartitioned(const std::string& base,
                                         const std::string& column,
                                         const RangeBounds& range,
                                         DeliveryMode mode);

  /// k-way linear chain join (Fig. 9): tables[0] ⋈ tables[1] ⋈ ... with
  /// join condition left.`out_col` == right.`in_col`. The optimizer picks
  /// hash joins while its plan budget lasts and nested loops beyond it.
  Result<RunResult> RunChainJoin(const std::vector<std::string>& tables,
                                 const std::string& out_col,
                                 const std::string& in_col,
                                 DeliveryMode mode = DeliveryMode::kCount);

  Catalog& catalog() { return catalog_; }
  const RowEngineOptions& options() const { return options_; }

 private:
  /// Snapshot of all counters this engine can touch.
  IoStats TotalStats() const;

  /// Pulls `root` to completion into `sink`, honouring the deadline.
  Result<uint64_t> Drain(RowIterator* root, ResultSink* sink,
                         bool* truncated);

  RowEngineOptions options_;
  Catalog catalog_;
  std::shared_ptr<Journal> journal_;
  uint64_t import_counter_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_ROWSTORE_ENGINE_H_
