// Copyright 2026 The CrackStore Authors

#include "engine/volcano.h"

#include "engine/sinks.h"

namespace crackstore {

Status SeqScanIterator::Open() {
  page_ = 0;
  slot_ = 0;
  return Status::OK();
}

Status SeqScanIterator::Next(std::vector<Value>* row, bool* eof) {
  HeapFile& file = table_->file();
  // Skip exhausted (or empty) pages.
  while (page_ < file.num_pages() && slot_ >= file.PageSlotCount(page_)) {
    ++page_;
    slot_ = 0;
  }
  if (page_ >= file.num_pages()) {
    *eof = true;
    return Status::OK();
  }
  if (slot_ == 0) ++file.stats().page_reads;
  std::string_view bytes =
      file.Read(TupleId{page_, slot_}, /*count_io=*/false);
  ++file.stats().tuples_read;
  auto decoded = table_->codec().Decode(bytes);
  if (!decoded.ok()) return decoded.status();
  *row = std::move(*decoded);
  *eof = false;
  ++slot_;
  return Status::OK();
}

Status FilterIterator::Next(std::vector<Value>* row, bool* eof) {
  while (true) {
    CRACK_RETURN_NOT_OK(child_->Next(row, eof));
    if (*eof) return Status::OK();
    const Value& v = (*row)[col_];
    if (range_.Contains(v.ToInt64()) != negate_) return Status::OK();
  }
}

Status ProjectIterator::Next(std::vector<Value>* row, bool* eof) {
  std::vector<Value> child_row;
  CRACK_RETURN_NOT_OK(child_->Next(&child_row, eof));
  if (*eof) return Status::OK();
  row->clear();
  row->reserve(columns_.size());
  for (size_t c : columns_) row->push_back(child_row[c]);
  return Status::OK();
}

Status NestedLoopJoinIterator::Open() {
  CRACK_RETURN_NOT_OK(left_->Open());
  CRACK_RETURN_NOT_OK(right_->Open());
  left_valid_ = false;
  return Status::OK();
}

Status NestedLoopJoinIterator::Next(std::vector<Value>* row, bool* eof) {
  std::vector<Value> right_row;
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      CRACK_RETURN_NOT_OK(left_->Next(&left_row_, &left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
      left_valid_ = true;
      CRACK_RETURN_NOT_OK(right_->Open());  // rescan inner per outer tuple
    }
    bool right_eof = false;
    CRACK_RETURN_NOT_OK(right_->Next(&right_row, &right_eof));
    if (right_eof) {
      left_valid_ = false;
      continue;
    }
    if (left_row_[left_col_].ToInt64() == right_row[right_col_].ToInt64()) {
      row->clear();
      row->reserve(left_row_.size() + right_row.size());
      row->insert(row->end(), left_row_.begin(), left_row_.end());
      row->insert(row->end(), right_row.begin(), right_row.end());
      *eof = false;
      return Status::OK();
    }
  }
}

void NestedLoopJoinIterator::Close() {
  left_->Close();
  right_->Close();
}

Status HashJoinIterator::Open() {
  CRACK_RETURN_NOT_OK(left_->Open());
  CRACK_RETURN_NOT_OK(right_->Open());
  build_.clear();
  built_ = false;
  matches_ = nullptr;
  match_idx_ = 0;
  return Status::OK();
}

Status HashJoinIterator::Next(std::vector<Value>* row, bool* eof) {
  if (!built_) {
    std::vector<Value> r;
    bool r_eof = false;
    while (true) {
      CRACK_RETURN_NOT_OK(right_->Next(&r, &r_eof));
      if (r_eof) break;
      build_[r[right_col_].ToInt64()].push_back(r);
    }
    built_ = true;
  }
  while (true) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      const std::vector<Value>& right_row = (*matches_)[match_idx_++];
      row->clear();
      row->reserve(probe_row_.size() + right_row.size());
      row->insert(row->end(), probe_row_.begin(), probe_row_.end());
      row->insert(row->end(), right_row.begin(), right_row.end());
      *eof = false;
      return Status::OK();
    }
    bool l_eof = false;
    CRACK_RETURN_NOT_OK(left_->Next(&probe_row_, &l_eof));
    if (l_eof) {
      *eof = true;
      return Status::OK();
    }
    auto it = build_.find(probe_row_[left_col_].ToInt64());
    matches_ = it == build_.end() ? nullptr : &it->second;
    match_idx_ = 0;
  }
}

void HashJoinIterator::Close() {
  left_->Close();
  right_->Close();
  build_.clear();
}

Result<uint64_t> Execute(RowIterator* root, ResultSink* sink) {
  CRACK_RETURN_NOT_OK(root->Open());
  std::vector<Value> row;
  bool eof = false;
  uint64_t count = 0;
  while (true) {
    CRACK_RETURN_NOT_OK(root->Next(&row, &eof));
    if (eof) break;
    CRACK_RETURN_NOT_OK(sink->Consume(row));
    ++count;
  }
  CRACK_RETURN_NOT_OK(sink->Finish());
  root->Close();
  return count;
}

}  // namespace crackstore
