// Copyright 2026 The CrackStore Authors
//
// ColumnEngine: the binary-relational engine stand-in (MonetDB class in the
// paper's experiments). Operator-at-a-time execution over whole BATs —
// tight typed loops, no per-tuple virtual calls — which is why its lines in
// Figs. 1 and 9 stay flat where the row engines climb. Range selections are
// served by the per-column ColumnAccessPath layer (core/access_path.h): the
// default configuration scans (the paper's MonetDB baseline), but the same
// engine runs cracked or sorted access — the cracking module plugs in
// underneath exactly as the paper's MonetDB module does.

#ifndef CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_
#define CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/access_path.h"
#include "core/range_bounds.h"
#include "core/txn_manager.h"
#include "engine/rowstore_engine.h"  // RunResult
#include "engine/sinks.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// Engine-wide knobs.
struct ColumnEngineOptions {
  double statement_deadline_seconds = 0.0;  ///< 0 = no deadline
  /// Per-column physical access. kScan reproduces the paper's MonetDB
  /// baseline; kCrack turns the engine adaptive (policy selects the pivot
  /// discipline).
  AccessStrategy strategy = AccessStrategy::kScan;
  CrackPolicyOptions policy;
  MergeBudget merge_budget;
  DeltaMergeOptions delta_merge;

  /// The per-column slice of these options.
  AccessPathConfig path_config() const {
    return AccessPathConfig{strategy, policy, merge_budget, delta_merge};
  }
};

/// See file comment.
class ColumnEngine {
 public:
  explicit ColumnEngine(ColumnEngineOptions options = {});
  CRACK_DISALLOW_COPY_AND_ASSIGN(ColumnEngine);

  /// Registers a column table.
  Status AddTable(std::shared_ptr<Relation> relation);

  Result<std::shared_ptr<Relation>> table(const std::string& name) const;

  // --- transactions ---------------------------------------------------------
  // The engine shares the facade's MVCC vocabulary (core/txn_manager.h):
  // auto-commit DML stamps committed versions immediately, explicit
  // transactions pin a snapshot, see their own writes, and conflict
  // first-committer-wins. The engine is a serial component (one statement
  // at a time); its transactions exist for snapshot reads and rollback,
  // not thread concurrency.

  /// Opens a transaction pinned at the current committed snapshot.
  Result<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Rollback(TxnId txn);

  /// Folds versions below the low-water snapshot into the access paths
  /// (physical tombstones + FlushDeltas).
  Status Vacuum();

  /// SELECT ... WHERE column IN range through the column's access path,
  /// delivered per `mode` (Fig. 1's MonetDB line). The predicate is typed
  /// (numeric RangeBounds convert implicitly; string endpoints reach
  /// dictionary-encoded string columns). Materialization gathers
  /// column-at-a-time. `txn` selects the read snapshot (latest committed
  /// for kNoTxn).
  Result<RunResult> RunSelect(const std::string& table,
                              const std::string& column,
                              const TypedRange& range, DeliveryMode mode,
                              const std::string& result_name = "tmp_result",
                              TxnId txn = kNoTxn);

  /// k-way linear chain join (Fig. 9), BAT-at-a-time: per step one hash
  /// build over the next table's `in_col` and one probe of the current
  /// frontier; result cardinality is tracked exactly via multiplicities.
  Result<RunResult> RunChainJoin(const std::vector<std::string>& tables,
                                 const std::string& out_col,
                                 const std::string& in_col,
                                 DeliveryMode mode = DeliveryMode::kCount);

  /// One leg of a RunSelectCountBatch.
  struct SelectSpec {
    std::string table;
    std::string column;
    TypedRange range;
  };

  /// Evaluates many independent count-selections, fanning legs over the
  /// global TaskPool. Legs over *distinct* columns run concurrently (each
  /// leg touches only its own access path); legs sharing a column are
  /// chained into one task, because the engine keeps its paths serial (no
  /// per-column latches — that protocol lives in AdaptiveStore). Paths are
  /// created (and tombstones replayed) up front on the calling thread.
  /// Returns per-leg counts in spec order.
  Result<std::vector<uint64_t>> RunSelectCountBatch(
      const std::vector<SelectSpec>& specs);

  // --- DML ------------------------------------------------------------------
  // Row-level writes through the same access paths the selections use (the
  // facade's WHERE-driven DML sits one layer up, in AdaptiveStore).

  /// Appends one row (numeric values coerced to the column types) and
  /// notifies every materialized access path of the table.
  Status Insert(const std::string& table, std::vector<Value> values,
                TxnId txn = kNoTxn);

  /// Stamps a delete version for row `oid`; selections at later snapshots
  /// exclude it (the row stays physical until Vacuum). AlreadyExists when
  /// the row is already dead at the snapshot.
  Status Delete(const std::string& table, Oid oid, TxnId txn = kNoTxn);

  /// Overwrites one column of row `oid` (base write-through plus the
  /// column's access-path delta), logging the superseded value for older
  /// snapshots. The value is typed: numerics for numeric columns, strings
  /// for string columns. NotFound when the row is dead at the snapshot.
  Status Update(const std::string& table, const std::string& column, Oid oid,
                const Value& value, TxnId txn = kNoTxn);

  /// The materialized result of the last kMaterialize select.
  const std::shared_ptr<Relation>& last_result() const { return last_result_; }

 private:
  /// One in-flight engine transaction.
  struct TxnState {
    Snapshot snap;
    bool abort_only = false;
    std::map<std::string, std::vector<Oid>> touched;
    struct Undo {
      std::string table;
      std::string column;
      Oid oid = 0;
      Value old_value;
    };
    std::vector<Undo> undo;
  };

  /// The access path of (table, column), created on first touch.
  Result<ColumnAccessPath*> PathFor(const std::string& table,
                                    const std::string& column,
                                    const std::shared_ptr<Bat>& bat);

  /// The version log of `table`, created on demand.
  VersionedTable* VersionsFor(const std::string& table);
  VersionedTable* VersionsIfAny(const std::string& table) const;

  Result<Snapshot> ReadSnapshot(TxnId txn) const;

  /// Resolves the stamp a DML call writes: the transaction's marker, or a
  /// freshly committed timestamp for auto-commit (sets *snap / *implicit).
  Result<Ts> WriteStamp(TxnId txn, Snapshot* snap);

  ColumnEngineOptions options_;
  std::map<std::string, std::shared_ptr<Relation>> tables_;
  std::map<std::string, std::unique_ptr<ColumnAccessPath>> paths_;
  std::map<std::string, std::unique_ptr<VersionedTable>> versions_;
  TxnManager txn_mgr_;
  std::map<TxnId, TxnState> txns_;
  std::shared_ptr<Relation> last_result_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_
