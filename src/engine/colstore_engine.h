// Copyright 2026 The CrackStore Authors
//
// ColumnEngine: the binary-relational engine stand-in (MonetDB class in the
// paper's experiments). Operator-at-a-time execution over whole BATs —
// tight typed loops, no per-tuple virtual calls — which is why its lines in
// Figs. 1 and 9 stay flat where the row engines climb. The cracking module
// (core/) plugs in underneath exactly as the paper's MonetDB module does.

#ifndef CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_
#define CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/range_bounds.h"
#include "engine/rowstore_engine.h"  // RunResult
#include "engine/sinks.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// Engine-wide knobs.
struct ColumnEngineOptions {
  double statement_deadline_seconds = 0.0;  ///< 0 = no deadline
};

/// See file comment.
class ColumnEngine {
 public:
  explicit ColumnEngine(ColumnEngineOptions options = {});
  CRACK_DISALLOW_COPY_AND_ASSIGN(ColumnEngine);

  /// Registers a column table.
  Status AddTable(std::shared_ptr<Relation> relation);

  Result<std::shared_ptr<Relation>> table(const std::string& name) const;

  /// Vectorized SELECT ... WHERE column IN range, delivered per `mode`
  /// (Fig. 1's MonetDB line). Materialization gathers column-at-a-time.
  Result<RunResult> RunSelect(const std::string& table,
                              const std::string& column,
                              const RangeBounds& range, DeliveryMode mode,
                              const std::string& result_name = "tmp_result");

  /// k-way linear chain join (Fig. 9), BAT-at-a-time: per step one hash
  /// build over the next table's `in_col` and one probe of the current
  /// frontier; result cardinality is tracked exactly via multiplicities.
  Result<RunResult> RunChainJoin(const std::vector<std::string>& tables,
                                 const std::string& out_col,
                                 const std::string& in_col,
                                 DeliveryMode mode = DeliveryMode::kCount);

  /// The materialized result of the last kMaterialize select.
  const std::shared_ptr<Relation>& last_result() const { return last_result_; }

 private:
  ColumnEngineOptions options_;
  std::map<std::string, std::shared_ptr<Relation>> tables_;
  std::shared_ptr<Relation> last_result_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_COLSTORE_ENGINE_H_
