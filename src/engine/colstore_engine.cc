// Copyright 2026 The CrackStore Authors

#include "engine/colstore_engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "core/task_pool.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

ColumnEngine::ColumnEngine(ColumnEngineOptions options) : options_(options) {}

Status ColumnEngine::AddTable(std::shared_ptr<Relation> relation) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (tables_.count(relation->name()) > 0) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  tables_.emplace(relation->name(), std::move(relation));
  return Status::OK();
}

Result<std::shared_ptr<Relation>> ColumnEngine::table(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

Result<ColumnAccessPath*> ColumnEngine::PathFor(
    const std::string& table, const std::string& column,
    const std::shared_ptr<Bat>& bat) {
  std::string key = table + "." + column;
  auto it = paths_.find(key);
  if (it == paths_.end()) {
    CRACK_ASSIGN_OR_RETURN(
        std::unique_ptr<ColumnAccessPath> path,
        CreateColumnAccessPath(bat, options_.path_config()));
    // Replay the table's tombstones: the lazy accelerator build reads the
    // append-only base, which still holds deleted rows physically.
    auto tomb = tombstones_.find(table);
    if (tomb != tombstones_.end()) {
      for (Oid oid : tomb->second) {
        Status st = path->Delete(oid);
        CRACK_DCHECK(st.ok());
        (void)st;
      }
    }
    it = paths_.emplace(key, std::move(path)).first;
  }
  return it->second.get();
}

Status ColumnEngine::Insert(const std::string& table,
                            std::vector<Value> values) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  CRACK_RETURN_NOT_OK(CoerceRow(rel->schema(), &values));
  CRACK_RETURN_NOT_OK(rel->AppendRow(values));
  Oid oid = (rel->num_columns() > 0 ? rel->column(size_t{0})->head_base()
                                    : 0) +
            rel->num_rows() - 1;
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    auto it = paths_.find(table + "." + rel->schema().column(c).name);
    if (it == paths_.end()) continue;
    CRACK_RETURN_NOT_OK(it->second->Insert(values[c], oid));
  }
  return Status::OK();
}

Status ColumnEngine::Delete(const std::string& table, Oid oid) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  Oid base = rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
  if (oid < base || oid >= base + rel->num_rows()) {
    return Status::InvalidArgument(
        StrFormat("oid %llu outside %s's row range",
                  static_cast<unsigned long long>(oid), table.c_str()));
  }
  if (!tombstones_[table].insert(oid).second) {
    return Status::AlreadyExists(
        StrFormat("oid %llu already deleted",
                  static_cast<unsigned long long>(oid)));
  }
  std::string prefix = table + ".";
  for (auto it = paths_.lower_bound(prefix);
       it != paths_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    CRACK_RETURN_NOT_OK(it->second->Delete(oid));
  }
  return Status::OK();
}

Status ColumnEngine::Update(const std::string& table,
                            const std::string& column, Oid oid,
                            const Value& value) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  auto bat_result = (*rel_result)->column(column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;
  Oid base = bat->head_base();
  if (oid < base || oid >= base + bat->size()) {
    return Status::InvalidArgument(
        StrFormat("oid %llu outside %s's row range",
                  static_cast<unsigned long long>(oid), table.c_str()));
  }
  auto tomb = tombstones_.find(table);
  if (tomb != tombstones_.end() && tomb->second.count(oid) > 0) {
    return Status::NotFound(
        StrFormat("oid %llu is deleted",
                  static_cast<unsigned long long>(oid)));
  }
  CRACK_RETURN_NOT_OK(bat->SetValue(static_cast<size_t>(oid - base), value));
  auto it = paths_.find(table + "." + column);
  if (it != paths_.end()) {
    CRACK_RETURN_NOT_OK(it->second->Update(oid, value));
  }
  return Status::OK();
}

namespace {

/// Column-at-a-time gather of `rows` from `src` into `dst`.
Status GatherColumn(const Bat& src, const std::vector<uint32_t>& rows,
                    Bat* dst) {
  switch (src.tail_type()) {
    case ValueType::kInt32: {
      const int32_t* s = src.TailData<int32_t>();
      for (uint32_t r : rows) dst->Append<int32_t>(s[r]);
      return Status::OK();
    }
    case ValueType::kInt64: {
      const int64_t* s = src.TailData<int64_t>();
      for (uint32_t r : rows) dst->Append<int64_t>(s[r]);
      return Status::OK();
    }
    case ValueType::kFloat64: {
      const double* s = src.TailData<double>();
      for (uint32_t r : rows) dst->Append<double>(s[r]);
      return Status::OK();
    }
    case ValueType::kOid: {
      const Oid* s = src.TailData<Oid>();
      for (uint32_t r : rows) dst->Append<Oid>(s[r]);
      return Status::OK();
    }
    case ValueType::kString: {
      for (uint32_t r : rows) dst->AppendString(src.GetString(r));
      return Status::OK();
    }
  }
  return Status::Internal("unknown column type");
}

/// Source row indexes of an access-path answer, ascending.
std::vector<uint32_t> MatchRows(const AccessSelection& sel, Oid base) {
  std::vector<uint32_t> rows;
  rows.reserve(sel.count);
  if (sel.contiguous) {
    for (size_t i = 0; i < sel.view.oids.size(); ++i) {
      rows.push_back(static_cast<uint32_t>(sel.view.oids.Get<Oid>(i) - base));
    }
    std::sort(rows.begin(), rows.end());
  } else {
    for (Oid oid : sel.oids) {
      rows.push_back(static_cast<uint32_t>(oid - base));
    }
  }
  return rows;
}

}  // namespace

Result<RunResult> ColumnEngine::RunSelect(const std::string& table,
                                          const std::string& column,
                                          const TypedRange& range,
                                          DeliveryMode mode,
                                          const std::string& result_name) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  auto col_result = rel->column(column);
  if (!col_result.ok()) return col_result.status();
  std::shared_ptr<Bat> bat = *col_result;

  RunResult run;
  WallTimer timer;

  CRACK_ASSIGN_OR_RETURN(ColumnAccessPath * path, PathFor(table, column, bat));
  CRACK_ASSIGN_OR_RETURN(
      AccessSelection sel,
      path->SelectTyped(range, /*want_oids=*/mode != DeliveryMode::kCount,
                        &run.io));
  run.count = sel.count;

  switch (mode) {
    case DeliveryMode::kCount:
      break;
    case DeliveryMode::kPrint: {
      std::vector<uint32_t> matches = MatchRows(sel, bat->head_base());
      FrontendSink sink;
      std::vector<Value> row(rel->num_columns());
      for (uint32_t r : matches) {
        for (size_t c = 0; c < rel->num_columns(); ++c) {
          row[c] = rel->column(c)->GetValue(r);
        }
        CRACK_RETURN_NOT_OK(sink.Consume(row));
      }
      run.bytes_shipped = sink.bytes_shipped();
      run.io.tuples_read += matches.size() * rel->num_columns();
      break;
    }
    case DeliveryMode::kMaterialize: {
      std::vector<uint32_t> matches = MatchRows(sel, bat->head_base());
      auto out = Relation::Create(result_name, rel->schema());
      if (!out.ok()) return out.status();
      for (size_t c = 0; c < rel->num_columns(); ++c) {
        CRACK_RETURN_NOT_OK(
            GatherColumn(*rel->column(c), matches, (*out)->column(c).get()));
      }
      run.io.tuples_read += matches.size() * rel->num_columns();
      run.io.tuples_written += matches.size() * rel->num_columns();
      last_result_ = *out;
      break;
    }
  }

  run.seconds = timer.ElapsedSeconds();
  return run;
}

Result<std::vector<uint64_t>> ColumnEngine::RunSelectCountBatch(
    const std::vector<SelectSpec>& specs) {
  // Phase 1 (serial): resolve columns and force-create every path, so the
  // parallel phase never mutates the paths_ map or the tombstone registry.
  struct Leg {
    ColumnAccessPath* path = nullptr;
    const SelectSpec* spec = nullptr;
    Status status;
    uint64_t count = 0;
  };
  std::vector<Leg> legs(specs.size());
  std::unordered_map<std::string, std::vector<size_t>> by_column;
  for (size_t i = 0; i < specs.size(); ++i) {
    auto rel_result = this->table(specs[i].table);
    if (!rel_result.ok()) return rel_result.status();
    auto bat = (*rel_result)->column(specs[i].column);
    if (!bat.ok()) return bat.status();
    CRACK_ASSIGN_OR_RETURN(legs[i].path,
                           PathFor(specs[i].table, specs[i].column, *bat));
    legs[i].spec = &specs[i];
    by_column[specs[i].table + "." + specs[i].column].push_back(i);
  }

  // Phase 2 (parallel): one task per distinct column; legs sharing a column
  // run back-to-back inside their task (the serial path may crack or fold
  // deltas on every select).
  std::vector<std::function<void()>> tasks;
  tasks.reserve(by_column.size());
  for (auto& [key, indices] : by_column) {
    std::vector<size_t>* group = &indices;
    tasks.emplace_back([&legs, group] {
      for (size_t i : *group) {
        Leg& leg = legs[i];
        auto sel = leg.path->SelectTyped(leg.spec->range,
                                         /*want_oids=*/false, nullptr);
        if (!sel.ok()) {
          leg.status = sel.status();
          continue;
        }
        leg.count = sel->count;
      }
    });
  }
  TaskPool::Global()->RunBatch(std::move(tasks));

  std::vector<uint64_t> counts;
  counts.reserve(legs.size());
  for (Leg& leg : legs) {
    CRACK_RETURN_NOT_OK(leg.status);
    counts.push_back(leg.count);
  }
  return counts;
}

Result<RunResult> ColumnEngine::RunChainJoin(
    const std::vector<std::string>& tables, const std::string& out_col,
    const std::string& in_col, DeliveryMode mode) {
  if (tables.size() < 2) {
    return Status::InvalidArgument("chain join needs at least two tables");
  }
  if (mode != DeliveryMode::kCount) {
    return Status::Unimplemented("column chain join delivers counts");
  }

  RunResult run;
  WallTimer timer;

  // Frontier: out-column value -> number of join paths reaching it.
  std::unordered_map<int64_t, uint64_t> frontier;
  {
    auto rel = this->table(tables[0]);
    if (!rel.ok()) return rel.status();
    auto out_bat = (*rel)->column(out_col);
    if (!out_bat.ok()) return out_bat.status();
    if ((*out_bat)->tail_type() != ValueType::kInt64) {
      return Status::Unimplemented("chain join requires int64 columns");
    }
    const int64_t* d = (*out_bat)->TailData<int64_t>();
    size_t n = (*out_bat)->size();
    frontier.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) ++frontier[d[i]];
    run.io.tuples_read += n;
  }

  for (size_t t = 1; t < tables.size(); ++t) {
    auto rel = this->table(tables[t]);
    if (!rel.ok()) return rel.status();
    auto in_bat = (*rel)->column(in_col);
    if (!in_bat.ok()) return in_bat.status();
    auto out_bat = (*rel)->column(out_col);
    if (!out_bat.ok()) return out_bat.status();
    if ((*in_bat)->tail_type() != ValueType::kInt64 ||
        (*out_bat)->tail_type() != ValueType::kInt64) {
      return Status::Unimplemented("chain join requires int64 columns");
    }
    const int64_t* in_d = (*in_bat)->TailData<int64_t>();
    const int64_t* out_d = (*out_bat)->TailData<int64_t>();
    size_t n = (*in_bat)->size();

    // One pass: every row whose in-value is reachable extends the paths to
    // its out-value.
    std::unordered_map<int64_t, uint64_t> next;
    next.reserve(frontier.size() * 2);
    for (size_t i = 0; i < n; ++i) {
      auto it = frontier.find(in_d[i]);
      if (it == frontier.end()) continue;
      next[out_d[i]] += it->second;
    }
    run.io.tuples_read += 2 * n;
    frontier = std::move(next);

    if (options_.statement_deadline_seconds > 0.0 &&
        timer.ElapsedSeconds() > options_.statement_deadline_seconds) {
      run.truncated = true;
      break;
    }
  }

  run.count = 0;
  for (const auto& [value, paths] : frontier) run.count += paths;
  run.seconds = timer.ElapsedSeconds();
  return run;
}

}  // namespace crackstore
