// Copyright 2026 The CrackStore Authors

#include "engine/colstore_engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "core/task_pool.h"
#include "obs/instruments.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

ColumnEngine::ColumnEngine(ColumnEngineOptions options) : options_(options) {}

Status ColumnEngine::AddTable(std::shared_ptr<Relation> relation) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (tables_.count(relation->name()) > 0) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  tables_.emplace(relation->name(), std::move(relation));
  return Status::OK();
}

Result<std::shared_ptr<Relation>> ColumnEngine::table(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

Result<ColumnAccessPath*> ColumnEngine::PathFor(
    const std::string& table, const std::string& column,
    const std::shared_ptr<Bat>& bat) {
  std::string key = table + "." + column;
  auto it = paths_.find(key);
  if (it == paths_.end()) {
    CRACK_ASSIGN_OR_RETURN(
        std::unique_ptr<ColumnAccessPath> path,
        CreateColumnAccessPath(bat, options_.path_config()));
    // Replay the table's vacuum-purged rows: the lazy accelerator build
    // reads the append-only base, which still holds them physically.
    // (Versioned deletes are filtered by the SnapshotView at read time.)
    VersionedTable* vt = VersionsIfAny(table);
    if (vt != nullptr) {
      for (Oid oid : vt->PurgedOids()) {
        Status st = path->Delete(oid);
        CRACK_DCHECK(st.ok() || st.IsNotFound());
        (void)st;
      }
    }
    it = paths_.emplace(key, std::move(path)).first;
  }
  return it->second.get();
}

VersionedTable* ColumnEngine::VersionsFor(const std::string& table) {
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    Oid base = 0;
    size_t rows = 0;
    auto t = tables_.find(table);
    if (t != tables_.end()) {
      base = t->second->num_columns() > 0
                 ? t->second->column(size_t{0})->head_base()
                 : 0;
      rows = t->second->num_rows();
    }
    it = versions_
             .emplace(table, std::make_unique<VersionedTable>(base, rows))
             .first;
  }
  return it->second.get();
}

VersionedTable* ColumnEngine::VersionsIfAny(const std::string& table) const {
  auto it = versions_.find(table);
  return it == versions_.end() ? nullptr : it->second.get();
}

Result<Snapshot> ColumnEngine::ReadSnapshot(TxnId txn) const {
  if (txn == kNoTxn) return txn_mgr_.LatestSnapshot();
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(
        StrFormat("no active engine transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  return it->second.snap;
}

Result<Ts> ColumnEngine::WriteStamp(TxnId txn, Snapshot* snap) {
  if (txn == kNoTxn) {
    // Auto-commit: the engine is serial, so the single-row statement can
    // stamp its commit timestamp directly.
    TxnId t = txn_mgr_.Begin();
    CRACK_ASSIGN_OR_RETURN(*snap, txn_mgr_.SnapshotOf(t));
    return txn_mgr_.FinishCommit(t);
  }
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(
        StrFormat("no active engine transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  if (it->second.abort_only) {
    return Status::Aborted(
        "transaction hit a write-write conflict; roll it back");
  }
  *snap = it->second.snap;
  return TxnStamp(txn);
}

Result<TxnId> ColumnEngine::Begin() {
  TxnId txn = txn_mgr_.Begin();
  TxnState state;
  CRACK_ASSIGN_OR_RETURN(state.snap, txn_mgr_.SnapshotOf(txn));
  txns_.emplace(txn, std::move(state));
  return txn;
}

Status ColumnEngine::Commit(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(
        StrFormat("no active engine transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  if (it->second.abort_only) {
    CRACK_RETURN_NOT_OK(Rollback(txn));
    return Status::Aborted(
        "transaction hit a write-write conflict and was rolled back");
  }
  TxnState state = std::move(it->second);
  txns_.erase(it);
  for (const auto& [table, oids] : state.touched) {
    Status st = VersionsFor(table)->ValidateWriteSet(state.snap, txn, oids);
    if (!st.ok()) {
      txns_.emplace(txn, std::move(state));
      CRACK_RETURN_NOT_OK(Rollback(txn));
      return st;
    }
  }
  CRACK_ASSIGN_OR_RETURN(Ts cts, txn_mgr_.FinishCommit(txn));
  for (const auto& [table, oids] : state.touched) {
    VersionsFor(table)->CommitTxn(txn, cts, oids);
  }
  return Status::OK();
}

Status ColumnEngine::Rollback(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::NotFound(
        StrFormat("no active engine transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  TxnState state = std::move(it->second);
  txns_.erase(it);
  Status result = Status::OK();
  for (auto u = state.undo.rbegin(); u != state.undo.rend(); ++u) {
    auto rel = this->table(u->table);
    if (!rel.ok()) {
      result = rel.status();
      continue;
    }
    auto bat = (*rel)->column(u->column);
    if (!bat.ok()) {
      result = bat.status();
      continue;
    }
    Status st = (*bat)->SetValue(
        static_cast<size_t>(u->oid - (*bat)->head_base()), u->old_value);
    if (!st.ok()) result = st;
    auto pit = paths_.find(u->table + "." + u->column);
    if (pit != paths_.end()) {
      st = pit->second->Update(u->oid, u->old_value);
      if (!st.ok() && !st.IsNotFound()) result = st;
    }
  }
  for (const auto& [table, oids] : state.touched) {
    VersionsFor(table)->RollbackTxn(txn, oids);
  }
  Status fin = txn_mgr_.FinishRollback(txn);
  if (!fin.ok()) result = fin;
  return result;
}

Status ColumnEngine::Vacuum() {
  Ts low_water = txn_mgr_.low_water();
  for (auto& [name, vt] : versions_) {
    VersionedTable::VacuumResult res = vt->Vacuum(low_water);
    if (res.purged.empty()) continue;
    std::string prefix = name + ".";
    for (auto it = paths_.lower_bound(prefix);
         it != paths_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      for (Oid oid : res.purged) {
        Status st = it->second->Delete(oid);
        if (!st.ok() && !st.IsNotFound() && !st.IsAlreadyExists()) return st;
      }
      CRACK_RETURN_NOT_OK(it->second->FlushDeltas());
    }
  }
  return Status::OK();
}

Status ColumnEngine::Insert(const std::string& table,
                            std::vector<Value> values, TxnId txn) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  CRACK_RETURN_NOT_OK(CoerceRow(rel->schema(), &values));
  Snapshot snap;
  CRACK_ASSIGN_OR_RETURN(Ts stamp, WriteStamp(txn, &snap));
  Oid oid = (rel->num_columns() > 0 ? rel->column(size_t{0})->head_base()
                                    : 0) +
            rel->num_rows();
  VersionsFor(table)->NoteInsert(oid, stamp);
  if (txn != kNoTxn) txns_[txn].touched[table].push_back(oid);
  CRACK_RETURN_NOT_OK(rel->AppendRow(values));
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    auto it = paths_.find(table + "." + rel->schema().column(c).name);
    if (it == paths_.end()) continue;
    CRACK_RETURN_NOT_OK(it->second->Insert(values[c], oid));
  }
  return Status::OK();
}

Status ColumnEngine::Delete(const std::string& table, Oid oid, TxnId txn) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  Oid base = rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
  if (oid < base || oid >= base + rel->num_rows()) {
    return Status::InvalidArgument(
        StrFormat("oid %llu outside %s's row range",
                  static_cast<unsigned long long>(oid), table.c_str()));
  }
  Snapshot snap;
  CRACK_ASSIGN_OR_RETURN(Ts stamp, WriteStamp(txn, &snap));
  VersionedTable* vt = VersionsFor(table);
  std::string why;
  switch (vt->AdmitWrite(oid, snap, txn, &why)) {
    case VersionedTable::Admission::kSkip:
      return Status::AlreadyExists(
          StrFormat("oid %llu already deleted",
                    static_cast<unsigned long long>(oid)));
    case VersionedTable::Admission::kConflict:
      if (txn != kNoTxn) txns_[txn].abort_only = true;
      return Status::Aborted("DELETE " + why);
    case VersionedTable::Admission::kOk:
      break;
  }
  if (txn != kNoTxn) txns_[txn].touched[table].push_back(oid);
  vt->StampDelete(oid, stamp);
  return Status::OK();
}

Status ColumnEngine::Update(const std::string& table,
                            const std::string& column, Oid oid,
                            const Value& value, TxnId txn) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  auto bat_result = (*rel_result)->column(column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;
  Oid base = bat->head_base();
  if (oid < base || oid >= base + bat->size()) {
    return Status::InvalidArgument(
        StrFormat("oid %llu outside %s's row range",
                  static_cast<unsigned long long>(oid), table.c_str()));
  }
  Snapshot snap;
  CRACK_ASSIGN_OR_RETURN(Ts stamp, WriteStamp(txn, &snap));
  VersionedTable* vt = VersionsFor(table);
  std::string why;
  switch (vt->AdmitWrite(oid, snap, txn, &why)) {
    case VersionedTable::Admission::kSkip:
      return Status::NotFound(
          StrFormat("oid %llu is deleted",
                    static_cast<unsigned long long>(oid)));
    case VersionedTable::Admission::kConflict:
      if (txn != kNoTxn) txns_[txn].abort_only = true;
      return Status::Aborted("UPDATE " + why);
    case VersionedTable::Admission::kOk:
      break;
  }
  size_t row = static_cast<size_t>(oid - base);
  Value old_value = bat->GetValue(row);
  vt->StampUpdate(oid, column, old_value, stamp);
  if (txn != kNoTxn) {
    TxnState& state = txns_[txn];
    state.touched[table].push_back(oid);
    state.undo.push_back(
        TxnState::Undo{table, column, oid, std::move(old_value)});
  }
  CRACK_RETURN_NOT_OK(bat->SetValue(row, value));
  auto it = paths_.find(table + "." + column);
  if (it != paths_.end()) {
    CRACK_RETURN_NOT_OK(it->second->Update(oid, value));
  }
  return Status::OK();
}

namespace {

/// Column-at-a-time gather of `rows` from `src` into `dst`.
Status GatherColumn(const Bat& src, const std::vector<uint32_t>& rows,
                    Bat* dst) {
  switch (src.tail_type()) {
    case ValueType::kInt32: {
      const int32_t* s = src.TailData<int32_t>();
      for (uint32_t r : rows) dst->Append<int32_t>(s[r]);
      return Status::OK();
    }
    case ValueType::kInt64: {
      const int64_t* s = src.TailData<int64_t>();
      for (uint32_t r : rows) dst->Append<int64_t>(s[r]);
      return Status::OK();
    }
    case ValueType::kFloat64: {
      const double* s = src.TailData<double>();
      for (uint32_t r : rows) dst->Append<double>(s[r]);
      return Status::OK();
    }
    case ValueType::kOid: {
      const Oid* s = src.TailData<Oid>();
      for (uint32_t r : rows) dst->Append<Oid>(s[r]);
      return Status::OK();
    }
    case ValueType::kString: {
      for (uint32_t r : rows) dst->AppendString(src.GetString(r));
      return Status::OK();
    }
  }
  return Status::Internal("unknown column type");
}

/// Source row indexes of an access-path answer, ascending.
std::vector<uint32_t> MatchRows(const AccessSelection& sel, Oid base) {
  std::vector<uint32_t> rows;
  rows.reserve(sel.count);
  if (sel.contiguous) {
    for (size_t i = 0; i < sel.view.oids.size(); ++i) {
      rows.push_back(static_cast<uint32_t>(sel.view.oids.Get<Oid>(i) - base));
    }
    std::sort(rows.begin(), rows.end());
  } else {
    for (Oid oid : sel.oids) {
      rows.push_back(static_cast<uint32_t>(oid - base));
    }
  }
  return rows;
}

}  // namespace

Result<RunResult> ColumnEngine::RunSelect(const std::string& table,
                                          const std::string& column,
                                          const TypedRange& range,
                                          DeliveryMode mode,
                                          const std::string& result_name,
                                          TxnId txn) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  auto col_result = rel->column(column);
  if (!col_result.ok()) return col_result.status();
  std::shared_ptr<Bat> bat = *col_result;

  RunResult run;
  WallTimer timer;
  obs::TraceSpan trace_span("engine select", table + "." + column, &run.io);

  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  SnapshotView view;
  VersionedTable* vt = VersionsIfAny(table);
  if (vt != nullptr) view = vt->ViewFor(snap, column);

  CRACK_ASSIGN_OR_RETURN(ColumnAccessPath * path, PathFor(table, column, bat));
  CRACK_ASSIGN_OR_RETURN(
      AccessSelection sel,
      path->SelectTyped(range, /*want_oids=*/mode != DeliveryMode::kCount,
                        &run.io, view.active() ? &view : nullptr));
  run.count = sel.count;

  switch (mode) {
    case DeliveryMode::kCount:
      break;
    case DeliveryMode::kPrint: {
      std::vector<uint32_t> matches = MatchRows(sel, bat->head_base());
      FrontendSink sink;
      std::vector<Value> row(rel->num_columns());
      for (uint32_t r : matches) {
        for (size_t c = 0; c < rel->num_columns(); ++c) {
          row[c] = rel->column(c)->GetValue(r);
        }
        CRACK_RETURN_NOT_OK(sink.Consume(row));
      }
      run.bytes_shipped = sink.bytes_shipped();
      run.io.tuples_read += matches.size() * rel->num_columns();
      break;
    }
    case DeliveryMode::kMaterialize: {
      std::vector<uint32_t> matches = MatchRows(sel, bat->head_base());
      auto out = Relation::Create(result_name, rel->schema());
      if (!out.ok()) return out.status();
      for (size_t c = 0; c < rel->num_columns(); ++c) {
        CRACK_RETURN_NOT_OK(
            GatherColumn(*rel->column(c), matches, (*out)->column(c).get()));
      }
      run.io.tuples_read += matches.size() * rel->num_columns();
      run.io.tuples_written += matches.size() * rel->num_columns();
      last_result_ = *out;
      break;
    }
  }

  run.seconds = timer.ElapsedSeconds();
  obs::MirrorIo(run.io);
  return run;
}

Result<std::vector<uint64_t>> ColumnEngine::RunSelectCountBatch(
    const std::vector<SelectSpec>& specs) {
  // Phase 1 (serial): resolve columns and force-create every path, so the
  // parallel phase never mutates the paths_ map or the tombstone registry.
  struct Leg {
    ColumnAccessPath* path = nullptr;
    const SelectSpec* spec = nullptr;
    SnapshotView view;  ///< latest-committed read filter (built up front)
    Status status;
    uint64_t count = 0;
  };
  std::vector<Leg> legs(specs.size());
  std::unordered_map<std::string, std::vector<size_t>> by_column;
  Snapshot snap = txn_mgr_.LatestSnapshot();
  for (size_t i = 0; i < specs.size(); ++i) {
    auto rel_result = this->table(specs[i].table);
    if (!rel_result.ok()) return rel_result.status();
    auto bat = (*rel_result)->column(specs[i].column);
    if (!bat.ok()) return bat.status();
    CRACK_ASSIGN_OR_RETURN(legs[i].path,
                           PathFor(specs[i].table, specs[i].column, *bat));
    legs[i].spec = &specs[i];
    VersionedTable* vt = VersionsIfAny(specs[i].table);
    if (vt != nullptr) legs[i].view = vt->ViewFor(snap, specs[i].column);
    by_column[specs[i].table + "." + specs[i].column].push_back(i);
  }

  // Phase 2 (parallel): one task per distinct column; legs sharing a column
  // run back-to-back inside their task (the serial path may crack or fold
  // deltas on every select).
  std::vector<std::function<void()>> tasks;
  tasks.reserve(by_column.size());
  for (auto& [key, indices] : by_column) {
    std::vector<size_t>* group = &indices;
    tasks.emplace_back([&legs, group] {
      for (size_t i : *group) {
        Leg& leg = legs[i];
        auto sel = leg.path->SelectTyped(leg.spec->range,
                                         /*want_oids=*/false, nullptr,
                                         leg.view.active() ? &leg.view
                                                           : nullptr);
        if (!sel.ok()) {
          leg.status = sel.status();
          continue;
        }
        leg.count = sel->count;
      }
    });
  }
  TaskPool::Global()->RunBatch(std::move(tasks));

  std::vector<uint64_t> counts;
  counts.reserve(legs.size());
  for (Leg& leg : legs) {
    CRACK_RETURN_NOT_OK(leg.status);
    counts.push_back(leg.count);
  }
  return counts;
}

Result<RunResult> ColumnEngine::RunChainJoin(
    const std::vector<std::string>& tables, const std::string& out_col,
    const std::string& in_col, DeliveryMode mode) {
  if (tables.size() < 2) {
    return Status::InvalidArgument("chain join needs at least two tables");
  }
  if (mode != DeliveryMode::kCount) {
    return Status::Unimplemented("column chain join delivers counts");
  }

  RunResult run;
  WallTimer timer;

  // Frontier: out-column value -> number of join paths reaching it.
  std::unordered_map<int64_t, uint64_t> frontier;
  {
    auto rel = this->table(tables[0]);
    if (!rel.ok()) return rel.status();
    auto out_bat = (*rel)->column(out_col);
    if (!out_bat.ok()) return out_bat.status();
    if ((*out_bat)->tail_type() != ValueType::kInt64) {
      return Status::Unimplemented("chain join requires int64 columns");
    }
    const int64_t* d = (*out_bat)->TailData<int64_t>();
    size_t n = (*out_bat)->size();
    frontier.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) ++frontier[d[i]];
    run.io.tuples_read += n;
  }

  for (size_t t = 1; t < tables.size(); ++t) {
    auto rel = this->table(tables[t]);
    if (!rel.ok()) return rel.status();
    auto in_bat = (*rel)->column(in_col);
    if (!in_bat.ok()) return in_bat.status();
    auto out_bat = (*rel)->column(out_col);
    if (!out_bat.ok()) return out_bat.status();
    if ((*in_bat)->tail_type() != ValueType::kInt64 ||
        (*out_bat)->tail_type() != ValueType::kInt64) {
      return Status::Unimplemented("chain join requires int64 columns");
    }
    const int64_t* in_d = (*in_bat)->TailData<int64_t>();
    const int64_t* out_d = (*out_bat)->TailData<int64_t>();
    size_t n = (*in_bat)->size();

    // One pass: every row whose in-value is reachable extends the paths to
    // its out-value.
    std::unordered_map<int64_t, uint64_t> next;
    next.reserve(frontier.size() * 2);
    for (size_t i = 0; i < n; ++i) {
      auto it = frontier.find(in_d[i]);
      if (it == frontier.end()) continue;
      next[out_d[i]] += it->second;
    }
    run.io.tuples_read += 2 * n;
    frontier = std::move(next);

    if (options_.statement_deadline_seconds > 0.0 &&
        timer.ElapsedSeconds() > options_.statement_deadline_seconds) {
      run.truncated = true;
      break;
    }
  }

  run.count = 0;
  for (const auto& [value, paths] : frontier) run.count += paths;
  run.seconds = timer.ElapsedSeconds();
  obs::MirrorIo(run.io);
  return run;
}

}  // namespace crackstore
