// Copyright 2026 The CrackStore Authors

#include "engine/rowstore_engine.h"

#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

RowEngine::RowEngine(RowEngineOptions options)
    : options_(options), journal_(std::make_shared<Journal>()) {}

IoStats RowEngine::TotalStats() const {
  IoStats total = catalog_.stats();
  total += journal_->stats();
  for (const std::string& name : catalog_.RowTableNames()) {
    auto table = catalog_.GetRowTable(name);
    CRACK_DCHECK(table.ok());
    total += (*table)->file().stats();
  }
  return total;
}

namespace {

/// Computes a - b per field (counters only grow).
IoStats StatsDelta(const IoStats& after, const IoStats& before) {
  IoStats d;
  d.tuples_read = after.tuples_read - before.tuples_read;
  d.tuples_written = after.tuples_written - before.tuples_written;
  d.page_reads = after.page_reads - before.page_reads;
  d.page_writes = after.page_writes - before.page_writes;
  d.journal_writes = after.journal_writes - before.journal_writes;
  d.catalog_ops = after.catalog_ops - before.catalog_ops;
  d.cracks = after.cracks - before.cracks;
  d.pieces_created = after.pieces_created - before.pieces_created;
  return d;
}

}  // namespace

Result<std::shared_ptr<RowTable>> RowEngine::ImportRelation(
    const Relation& relation, std::string table_name) {
  if (table_name.empty()) {
    table_name = relation.name();
  }
  if (catalog_.HasTable(table_name)) {
    return Status::AlreadyExists("table exists: " + table_name);
  }
  auto table = RowTable::Create(table_name, relation.schema(),
                                options_.table_options, journal_);
  for (size_t i = 0; i < relation.num_rows(); ++i) {
    CRACK_RETURN_NOT_OK(table->Insert(relation.GetRow(i)));
  }
  table->Commit();
  CRACK_RETURN_NOT_OK(catalog_.RegisterRowTable(table));
  return table;
}

Result<uint64_t> RowEngine::Drain(RowIterator* root, ResultSink* sink,
                                  bool* truncated) {
  *truncated = false;
  CRACK_RETURN_NOT_OK(root->Open());
  std::vector<Value> row;
  bool eof = false;
  uint64_t count = 0;
  WallTimer deadline_timer;
  double deadline = options_.statement_deadline_seconds;
  while (true) {
    CRACK_RETURN_NOT_OK(root->Next(&row, &eof));
    if (eof) break;
    CRACK_RETURN_NOT_OK(sink->Consume(row));
    ++count;
    // Checked per tuple: under a nested-loop fallback plan a single tuple
    // may take an inner-relation scan to surface, so coarser checks would
    // overshoot the deadline by orders of magnitude.
    if (deadline > 0.0 && deadline_timer.ElapsedSeconds() > deadline) {
      *truncated = true;
      break;
    }
  }
  CRACK_RETURN_NOT_OK(sink->Finish());
  root->Close();
  return count;
}

Result<RunResult> RowEngine::RunSelect(const std::string& table,
                                       const std::string& column,
                                       const RangeBounds& range,
                                       DeliveryMode mode,
                                       const std::string& result_name) {
  auto table_result = catalog_.GetRowTable(table);
  if (!table_result.ok()) return table_result.status();
  std::shared_ptr<RowTable> src = *table_result;
  int col = src->schema().FieldIndex(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in " + table);
  }

  RunResult run;
  IoStats before = TotalStats();
  WallTimer timer;

  auto tree = std::make_unique<FilterIterator>(
      std::make_unique<SeqScanIterator>(src), static_cast<size_t>(col),
      range);

  std::unique_ptr<ResultSink> sink;
  std::shared_ptr<RowTable> target;
  switch (mode) {
    case DeliveryMode::kCount:
      sink = std::make_unique<CountSink>();
      break;
    case DeliveryMode::kPrint:
      sink = std::make_unique<FrontendSink>();
      break;
    case DeliveryMode::kMaterialize: {
      if (catalog_.HasTable(result_name)) {
        CRACK_RETURN_NOT_OK(catalog_.DropTable(result_name));
      }
      target = RowTable::Create(result_name, src->schema(),
                                options_.table_options, journal_);
      CRACK_RETURN_NOT_OK(catalog_.RegisterRowTable(target));
      sink = std::make_unique<RowMaterializeSink>(target);
      break;
    }
  }

  CRACK_ASSIGN_OR_RETURN(run.count, Drain(tree.get(), sink.get(),
                                          &run.truncated));
  run.seconds = timer.ElapsedSeconds();
  run.io = StatsDelta(TotalStats(), before);
  if (mode == DeliveryMode::kPrint) {
    run.bytes_shipped =
        static_cast<FrontendSink*>(sink.get())->bytes_shipped();
  }
  return run;
}

Result<RunResult> RowEngine::CrackTableSql(const std::string& table,
                                           const std::string& column,
                                           const RangeBounds& range,
                                           const std::string& base) {
  auto table_result = catalog_.GetRowTable(table);
  if (!table_result.ok()) return table_result.status();
  std::shared_ptr<RowTable> src = *table_result;
  int col = src->schema().FieldIndex(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in " + table);
  }

  RunResult run;
  IoStats before = TotalStats();
  WallTimer timer;

  // SELECT INTO <base>_in WHERE pred — first full scan.
  std::string in_name = base + "_in";
  std::string out_name = base + "_out";
  for (const std::string& frag : {in_name, out_name}) {
    if (catalog_.HasTable(frag)) {
      CRACK_RETURN_NOT_OK(catalog_.DropTable(frag));
    }
  }
  auto in_table = RowTable::Create(in_name, src->schema(),
                                   options_.table_options, journal_);
  CRACK_RETURN_NOT_OK(catalog_.RegisterRowTable(in_table));
  {
    FilterIterator tree(std::make_unique<SeqScanIterator>(src),
                        static_cast<size_t>(col), range);
    RowMaterializeSink sink(in_table);
    bool truncated = false;
    CRACK_ASSIGN_OR_RETURN(run.count, Drain(&tree, &sink, &truncated));
  }

  // SELECT INTO <base>_out WHERE NOT pred — second full scan (SQL cannot
  // route one scan into two result tables, §5.1).
  auto out_table = RowTable::Create(out_name, src->schema(),
                                    options_.table_options, journal_);
  CRACK_RETURN_NOT_OK(catalog_.RegisterRowTable(out_table));
  {
    FilterIterator tree(std::make_unique<SeqScanIterator>(src),
                        static_cast<size_t>(col), range, /*negate=*/true);
    RowMaterializeSink sink(out_table);
    bool truncated = false;
    CRACK_RETURN_NOT_OK(Drain(&tree, &sink, &truncated).status());
  }

  // Register the partitioned table.
  if (!catalog_.GetFragments(base).ok()) {
    CRACK_RETURN_NOT_OK(catalog_.CreatePartitionedTable(base));
  }
  FragmentInfo in_info;
  in_info.fragment_table = in_name;
  in_info.column = column;
  in_info.lo = range.lo;
  in_info.lo_inclusive = range.lo_incl;
  in_info.hi = range.hi;
  in_info.hi_inclusive = range.hi_incl;
  in_info.row_count = in_table->num_rows();
  CRACK_RETURN_NOT_OK(catalog_.AddFragment(base, in_info));

  FragmentInfo out_info;
  out_info.fragment_table = out_name;
  out_info.column = column;
  // The complement of a double-sided range is not an interval; only
  // single-sided predicates give the out-fragment usable bounds.
  if (range.lo == INT64_MIN) {
    out_info.lo = range.hi;
    out_info.lo_inclusive = !range.hi_incl;
    out_info.hi = INT64_MAX;
    out_info.hi_inclusive = true;
  } else if (range.hi == INT64_MAX) {
    out_info.lo = INT64_MIN;
    out_info.lo_inclusive = true;
    out_info.hi = range.lo;
    out_info.hi_inclusive = !range.lo_incl;
  } else {
    out_info.lo = INT64_MIN;
    out_info.lo_inclusive = true;
    out_info.hi = INT64_MAX;
    out_info.hi_inclusive = true;
  }
  out_info.row_count = out_table->num_rows();
  CRACK_RETURN_NOT_OK(catalog_.AddFragment(base, out_info));

  run.seconds = timer.ElapsedSeconds();
  run.io = StatsDelta(TotalStats(), before);
  return run;
}

Result<RunResult> RowEngine::RunSelectPartitioned(const std::string& base,
                                                  const std::string& column,
                                                  const RangeBounds& range,
                                                  DeliveryMode mode) {
  CRACK_ASSIGN_OR_RETURN(
      std::vector<FragmentInfo> fragments,
      catalog_.FragmentsIntersecting(base, column, range.lo, range.hi));

  RunResult run;
  IoStats before = TotalStats();
  WallTimer timer;

  std::unique_ptr<ResultSink> sink;
  switch (mode) {
    case DeliveryMode::kCount:
      sink = std::make_unique<CountSink>();
      break;
    case DeliveryMode::kPrint:
      sink = std::make_unique<FrontendSink>();
      break;
    case DeliveryMode::kMaterialize:
      return Status::Unimplemented(
          "partitioned materialize: run per-fragment RunSelect instead");
  }

  for (const FragmentInfo& frag : fragments) {
    auto table = catalog_.GetRowTable(frag.fragment_table);
    if (!table.ok()) return table.status();
    int col = (*table)->schema().FieldIndex(column);
    if (col < 0) {
      return Status::NotFound("no column '" + column + "' in fragment");
    }
    FilterIterator tree(std::make_unique<SeqScanIterator>(*table),
                        static_cast<size_t>(col), range);
    bool truncated = false;
    CRACK_ASSIGN_OR_RETURN(uint64_t n, Drain(&tree, sink.get(), &truncated));
    run.count += n;
    run.truncated |= truncated;
  }
  run.seconds = timer.ElapsedSeconds();
  run.io = StatsDelta(TotalStats(), before);
  if (mode == DeliveryMode::kPrint) {
    run.bytes_shipped =
        static_cast<FrontendSink*>(sink.get())->bytes_shipped();
  }
  return run;
}

Result<RunResult> RowEngine::RunChainJoin(
    const std::vector<std::string>& tables, const std::string& out_col,
    const std::string& in_col, DeliveryMode mode) {
  if (tables.size() < 2) {
    return Status::InvalidArgument("chain join needs at least two tables");
  }

  RunResult run;
  IoStats before = TotalStats();
  WallTimer timer;

  PlanDecision plan = PlanChainJoin(tables.size(), options_.optimizer);
  run.join_algo = plan.algo;
  run.plans_considered = plan.plans_considered;

  // Left-deep pipeline.
  std::unique_ptr<RowIterator> tree;
  size_t width = 0;
  size_t last_out_idx = 0;
  for (size_t i = 0; i < tables.size(); ++i) {
    auto table = catalog_.GetRowTable(tables[i]);
    if (!table.ok()) return table.status();
    const Schema& schema = (*table)->schema();
    int out_idx = schema.FieldIndex(out_col);
    int in_idx = schema.FieldIndex(in_col);
    if (out_idx < 0 || in_idx < 0) {
      return Status::NotFound("join columns missing in " + tables[i]);
    }
    auto scan = std::make_unique<SeqScanIterator>(*table);
    if (i == 0) {
      tree = std::move(scan);
    } else {
      size_t left_col = width - last_out_idx;  // see below
      if (plan.algo == JoinAlgo::kHash) {
        tree = std::make_unique<HashJoinIterator>(
            std::move(tree), std::move(scan), left_col,
            static_cast<size_t>(in_idx));
      } else {
        tree = std::make_unique<NestedLoopJoinIterator>(
            std::move(tree), std::move(scan), left_col,
            static_cast<size_t>(in_idx));
      }
    }
    // The out column of table i sits at concatenated offset
    // width + out_idx; remember its distance from the new width.
    last_out_idx = schema.num_columns() - static_cast<size_t>(out_idx);
    width += schema.num_columns();
  }

  std::unique_ptr<ResultSink> sink;
  switch (mode) {
    case DeliveryMode::kCount:
      sink = std::make_unique<CountSink>();
      break;
    case DeliveryMode::kPrint:
      sink = std::make_unique<FrontendSink>();
      break;
    case DeliveryMode::kMaterialize:
      return Status::Unimplemented("chain join materialize not supported");
  }

  CRACK_ASSIGN_OR_RETURN(run.count,
                         Drain(tree.get(), sink.get(), &run.truncated));
  run.seconds = timer.ElapsedSeconds();
  run.io = StatsDelta(TotalStats(), before);
  if (mode == DeliveryMode::kPrint) {
    run.bytes_shipped =
        static_cast<FrontendSink*>(sink.get())->bytes_shipped();
  }
  return run;
}

}  // namespace crackstore
