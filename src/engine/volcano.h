// Copyright 2026 The CrackStore Authors
//
// Volcano-style iterators for the row-store engine: "Most systems use a
// Volcano-like query evaluation scheme [Gra93]. Tuples are read from source
// relations and passed up the tree through filter-, join-, and projection-
// nodes." (paper §3.4.1). Tuple-at-a-time, virtual-call-per-tuple — exactly
// the cost profile of the traditional engines in Figs. 1 and 9.

#ifndef CRACKSTORE_ENGINE_VOLCANO_H_
#define CRACKSTORE_ENGINE_VOLCANO_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/range_bounds.h"
#include "rowstore/row_table.h"
#include "storage/types.h"
#include "util/result.h"

namespace crackstore {

/// Pull-based tuple iterator.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Prepares the subtree for iteration; may be called again to rescan.
  virtual Status Open() = 0;

  /// Produces the next tuple into `*row`; sets `*eof` at end of stream.
  virtual Status Next(std::vector<Value>* row, bool* eof) = 0;

  virtual void Close() = 0;
};

/// Leaf: physical-order scan of a RowTable, decoding every tuple.
class SeqScanIterator : public RowIterator {
 public:
  explicit SeqScanIterator(std::shared_ptr<RowTable> table)
      : table_(std::move(table)) {}

  Status Open() override;
  Status Next(std::vector<Value>* row, bool* eof) override;
  void Close() override {}

 private:
  std::shared_ptr<RowTable> table_;
  PageId page_ = 0;
  uint32_t slot_ = 0;
};

/// σ: passes tuples whose column `col` satisfies `range` (or fails it, when
/// `negate` — the NOT-predicate scan of the SQL-level cracker, §5.1).
class FilterIterator : public RowIterator {
 public:
  FilterIterator(std::unique_ptr<RowIterator> child, size_t col,
                 RangeBounds range, bool negate = false)
      : child_(std::move(child)), col_(col), range_(range), negate_(negate) {}

  Status Open() override { return child_->Open(); }
  Status Next(std::vector<Value>* row, bool* eof) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<RowIterator> child_;
  size_t col_;
  RangeBounds range_;
  bool negate_;
};

/// π: keeps the listed column positions, in order.
class ProjectIterator : public RowIterator {
 public:
  ProjectIterator(std::unique_ptr<RowIterator> child,
                  std::vector<size_t> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  Status Open() override { return child_->Open(); }
  Status Next(std::vector<Value>* row, bool* eof) override;
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<RowIterator> child_;
  std::vector<size_t> columns_;
};

/// ⋈ (nested loop): for every left tuple, rescans the right subtree — the
/// "expensive nested-loop join" a budget-exhausted optimizer falls back to
/// (paper §5.1, Fig. 9). Equi-join on left column `left_col` == right column
/// `right_col`; output is the concatenated tuple.
class NestedLoopJoinIterator : public RowIterator {
 public:
  NestedLoopJoinIterator(std::unique_ptr<RowIterator> left,
                         std::unique_ptr<RowIterator> right, size_t left_col,
                         size_t right_col)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_col_(left_col),
        right_col_(right_col) {}

  Status Open() override;
  Status Next(std::vector<Value>* row, bool* eof) override;
  void Close() override;

 private:
  std::unique_ptr<RowIterator> left_;
  std::unique_ptr<RowIterator> right_;
  size_t left_col_;
  size_t right_col_;
  std::vector<Value> left_row_;
  bool left_valid_ = false;
};

/// ⋈ (hash): builds on the right input, probes with the left. Duplicate
/// build keys chain.
class HashJoinIterator : public RowIterator {
 public:
  HashJoinIterator(std::unique_ptr<RowIterator> left,
                   std::unique_ptr<RowIterator> right, size_t left_col,
                   size_t right_col)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_col_(left_col),
        right_col_(right_col) {}

  Status Open() override;
  Status Next(std::vector<Value>* row, bool* eof) override;
  void Close() override;

 private:
  std::unique_ptr<RowIterator> left_;
  std::unique_ptr<RowIterator> right_;
  size_t left_col_;
  size_t right_col_;
  std::unordered_map<int64_t, std::vector<std::vector<Value>>> build_;
  std::vector<Value> probe_row_;
  const std::vector<std::vector<Value>>* matches_ = nullptr;
  size_t match_idx_ = 0;
  bool built_ = false;
};

/// Drains `root` into `sink`; returns the tuple count.
Result<uint64_t> Execute(RowIterator* root, class ResultSink* sink);

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_VOLCANO_H_
