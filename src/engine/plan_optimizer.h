// Copyright 2026 The CrackStore Authors
//
// A deliberately classical join-order optimizer with a bounded search space.
// Paper §5.1 / Fig. 9: "the join-optimizer currently deployed (too) quickly
// reaches its limitations and falls back to a default solution. The effect
// is an expensive nested-loop join or even breaking the system by running
// out of optimizer resource space." This module reproduces that behaviour
// mechanically: it exhaustively enumerates bushy join trees for a chain
// query (no cross products) and, once the enumeration exceeds its plan
// budget, gives up and returns the nested-loop default.

#ifndef CRACKSTORE_ENGINE_PLAN_OPTIMIZER_H_
#define CRACKSTORE_ENGINE_PLAN_OPTIMIZER_H_

#include <cstdint>
#include <cstddef>

namespace crackstore {

/// Physical join algorithm chosen for a chain.
enum class JoinAlgo : uint8_t {
  kHash = 0,        ///< hash join per step (the optimized plan)
  kNestedLoop = 1,  ///< tuple-at-a-time nested loop (the fallback default)
};

const char* JoinAlgoName(JoinAlgo algo);

/// Outcome of planning one k-way chain join.
struct PlanDecision {
  JoinAlgo algo = JoinAlgo::kHash;
  uint64_t plans_considered = 0;  ///< enumeration work actually performed
  bool budget_exhausted = false;  ///< true when the enumerator gave up
};

/// Options of the toy optimizer.
struct PlanOptimizerOptions {
  /// Maximum number of (sub)plans the enumerator may visit before falling
  /// back to the nested-loop default. Catalan growth exhausts this around
  /// 10-12 relations for the default value.
  uint64_t plan_budget = 10000;
};

/// Plans an n-relation chain join (n-1 equi-joins along the chain). The
/// enumeration really runs (its cost is the planning cost); the decision
/// reports how much of the budget it burned.
PlanDecision PlanChainJoin(size_t num_relations,
                           const PlanOptimizerOptions& options);

}  // namespace crackstore

#endif  // CRACKSTORE_ENGINE_PLAN_OPTIMIZER_H_
