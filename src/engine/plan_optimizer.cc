// Copyright 2026 The CrackStore Authors

#include "engine/plan_optimizer.h"

namespace crackstore {

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kHash:
      return "hash";
    case JoinAlgo::kNestedLoop:
      return "nested-loop";
  }
  return "?";
}

namespace {

/// Counts bushy join trees over the contiguous chain [lo, hi], aborting once
/// `*visited` exceeds the budget. Returns false on abort.
bool EnumerateChainPlans(size_t lo, size_t hi, uint64_t budget,
                         uint64_t* visited) {
  if (*visited > budget) return false;
  ++*visited;
  if (lo >= hi) return true;  // single relation: a leaf "plan"
  // Every split point yields a (left-tree, right-tree) combination; a real
  // System-R style enumerator walks them all to cost them.
  for (size_t split = lo; split < hi; ++split) {
    if (!EnumerateChainPlans(lo, split, budget, visited)) return false;
    if (!EnumerateChainPlans(split + 1, hi, budget, visited)) return false;
    if (*visited > budget) return false;
  }
  return true;
}

}  // namespace

PlanDecision PlanChainJoin(size_t num_relations,
                           const PlanOptimizerOptions& options) {
  PlanDecision decision;
  if (num_relations < 2) {
    decision.plans_considered = 1;
    return decision;
  }
  uint64_t visited = 0;
  bool finished = EnumerateChainPlans(0, num_relations - 1,
                                      options.plan_budget, &visited);
  decision.plans_considered = visited;
  decision.budget_exhausted = !finished;
  decision.algo = finished ? JoinAlgo::kHash : JoinAlgo::kNestedLoop;
  return decision;
}

}  // namespace crackstore
