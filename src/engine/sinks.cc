// Copyright 2026 The CrackStore Authors

#include "engine/sinks.h"

#include <cstring>

namespace crackstore {

const char* DeliveryModeName(DeliveryMode mode) {
  switch (mode) {
    case DeliveryMode::kMaterialize:
      return "materialize";
    case DeliveryMode::kPrint:
      return "print";
    case DeliveryMode::kCount:
      return "count";
  }
  return "?";
}

namespace {

template <typename T>
void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// One tagged binary value: [tag byte][payload].
void PutBinaryValue(std::string* out, const Value& v) {
  if (v.is_int32()) {
    out->push_back(1);
    PutRaw<int32_t>(out, v.AsInt32());
  } else if (v.is_int64()) {
    out->push_back(2);
    PutRaw<int64_t>(out, v.AsInt64());
  } else if (v.is_double()) {
    out->push_back(3);
    PutRaw<double>(out, v.AsDouble());
  } else if (v.is_string()) {
    out->push_back(4);
    const std::string& s = v.AsString();
    PutRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  } else if (v.is_oid()) {
    out->push_back(5);
    PutRaw<Oid>(out, v.AsOid());
  } else {
    out->push_back(0);  // null
  }
}

}  // namespace

Status FrontendSink::Consume(const std::vector<Value>& row) {
  ++count_;
  size_t before = buffer_.size();
  if (format_ == WireFormat::kText) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) buffer_ += '\t';
      buffer_ += row[i].ToString();
    }
    buffer_ += '\n';
  } else {
    // Row frame: [u32 length][tagged values...], patched after encoding.
    size_t frame_start = buffer_.size();
    PutRaw<uint32_t>(&buffer_, 0);
    for (const Value& v : row) PutBinaryValue(&buffer_, v);
    uint32_t frame_len =
        static_cast<uint32_t>(buffer_.size() - frame_start - sizeof(uint32_t));
    std::memcpy(buffer_.data() + frame_start, &frame_len, sizeof(uint32_t));
  }
  bytes_shipped_ += buffer_.size() - before;
  if (buffer_.size() >= flush_bytes_) {
    buffer_.clear();  // wire flush; the bytes were already accounted
  }
  return Status::OK();
}

}  // namespace crackstore
