// Copyright 2026 The CrackStore Authors

#include "storage/types.h"

#include "util/string_util.h"

namespace crackstore {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kOid:
      return "oid";
    case ValueType::kInt32:
      return "int32";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kFloat64:
      return "float64";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int64_t Value::ToInt64() const {
  if (is_int32()) return AsInt32();
  if (is_int64()) return AsInt64();
  if (is_oid()) return static_cast<int64_t>(AsOid());
  if (is_double()) return static_cast<int64_t>(AsDouble());
  CRACK_DCHECK(false);
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int32()) return StrFormat("%d", AsInt32());
  if (is_int64()) return StrFormat("%lld", static_cast<long long>(AsInt64()));
  if (is_double()) return StrFormat("%g", AsDouble());
  if (is_string()) return AsString();
  if (is_oid()) {
    return StrFormat("oid#%llu", static_cast<unsigned long long>(AsOid()));
  }
  return "?";
}

}  // namespace crackstore
