// Copyright 2026 The CrackStore Authors

#include "storage/bat.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace crackstore {

Bat::Bat(ValueType tail_type, std::string name, std::shared_ptr<VarHeap> heap)
    : name_(std::move(name)),
      tail_type_(tail_type),
      width_(ValueTypeWidth(tail_type)),
      heap_(std::move(heap)) {
  if (tail_type_ == ValueType::kString && heap_ == nullptr) {
    heap_ = std::make_shared<VarHeap>();
  }
}

std::shared_ptr<Bat> Bat::Create(ValueType tail_type, std::string name,
                                 std::shared_ptr<VarHeap> heap) {
  return std::shared_ptr<Bat>(
      new Bat(tail_type, std::move(name), std::move(heap)));
}

void Bat::AppendString(std::string_view s) {
  CRACK_DCHECK(tail_type_ == ValueType::kString);
  uint64_t offset = heap_->Intern(s);
  size_t pos = count_ * width_;
  if (pos + width_ > data_.size()) Grow();
  std::memcpy(data_.data() + pos, &offset, sizeof(uint64_t));
  ++count_;
  InvalidateStats();
}

Status Bat::AppendValue(const Value& v) {
  switch (tail_type_) {
    case ValueType::kInt32:
      if (!v.is_int32()) break;
      Append<int32_t>(v.AsInt32());
      return Status::OK();
    case ValueType::kInt64:
      if (v.is_int64()) {
        Append<int64_t>(v.AsInt64());
        return Status::OK();
      }
      if (v.is_int32()) {
        Append<int64_t>(v.AsInt32());
        return Status::OK();
      }
      break;
    case ValueType::kFloat64:
      if (!v.is_double()) break;
      Append<double>(v.AsDouble());
      return Status::OK();
    case ValueType::kOid:
      if (!v.is_oid()) break;
      Append<Oid>(v.AsOid());
      return Status::OK();
    case ValueType::kString:
      if (!v.is_string()) break;
      AppendString(v.AsString());
      return Status::OK();
  }
  return Status::TypeMismatch(
      StrFormat("cannot append %s to %s tail", v.ToString().c_str(),
                ValueTypeName(tail_type_)));
}

Status Bat::SetNumeric(size_t i, int64_t value) {
  if (i >= count_) {
    return Status::InvalidArgument(
        StrFormat("row %zu out of range (size %zu)", i, count_));
  }
  switch (tail_type_) {
    case ValueType::kInt32:
      if (value < std::numeric_limits<int32_t>::min() ||
          value > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument(
            StrFormat("value %lld overflows int32",
                      static_cast<long long>(value)));
      }
      MutableTailData<int32_t>()[i] = static_cast<int32_t>(value);
      return Status::OK();
    case ValueType::kInt64:
      MutableTailData<int64_t>()[i] = value;
      return Status::OK();
    case ValueType::kFloat64:
      MutableTailData<double>()[i] = static_cast<double>(value);
      return Status::OK();
    case ValueType::kOid:
    case ValueType::kString:
      break;
  }
  return Status::TypeMismatch(
      StrFormat("cannot overwrite %s tail with a number",
                ValueTypeName(tail_type_)));
}

Status Bat::SetString(size_t i, std::string_view s) {
  if (i >= count_) {
    return Status::InvalidArgument(
        StrFormat("row %zu out of range (size %zu)", i, count_));
  }
  if (tail_type_ != ValueType::kString) {
    return Status::TypeMismatch(
        StrFormat("cannot overwrite %s tail with a string",
                  ValueTypeName(tail_type_)));
  }
  uint64_t offset = heap_->Intern(s);
  std::memcpy(data_.data() + i * width_, &offset, sizeof(uint64_t));
  InvalidateStats();
  return Status::OK();
}

Status Bat::SetValue(size_t i, const Value& v) {
  if (v.is_string()) return SetString(i, v.AsString());
  if (tail_type_ == ValueType::kFloat64 && v.is_double()) {
    if (i >= count_) {
      return Status::InvalidArgument(
          StrFormat("row %zu out of range (size %zu)", i, count_));
    }
    MutableTailData<double>()[i] = v.AsDouble();
    return Status::OK();
  }
  if (v.is_null()) {
    return Status::InvalidArgument("cannot overwrite with a null value");
  }
  return SetNumeric(i, v.ToInt64());
}

Value Bat::GetValue(size_t i) const {
  CRACK_DCHECK(i < count_);
  switch (tail_type_) {
    case ValueType::kInt32:
      return Value(Get<int32_t>(i));
    case ValueType::kInt64:
      return Value(Get<int64_t>(i));
    case ValueType::kFloat64:
      return Value(Get<double>(i));
    case ValueType::kOid:
      return Value::FromOid(Get<Oid>(i));
    case ValueType::kString:
      return Value(std::string(GetString(i)));
  }
  return Value();
}

std::string_view Bat::GetString(size_t i) const {
  CRACK_DCHECK(tail_type_ == ValueType::kString);
  CRACK_DCHECK(i < count_);
  uint64_t offset;
  std::memcpy(&offset, data_.data() + i * width_, sizeof(uint64_t));
  return heap_->Read(offset);
}

namespace {

template <typename T>
void ScanStats(const uint8_t* data, size_t n, BatStats* stats) {
  const T* values = reinterpret_cast<const T*>(data);
  bool sorted = true;
  T mn = values[0];
  T mx = values[0];
  for (size_t i = 1; i < n; ++i) {
    sorted &= values[i - 1] <= values[i];
    mn = std::min(mn, values[i]);
    mx = std::max(mx, values[i]);
  }
  stats->sorted_asc = sorted;
  stats->min = static_cast<int64_t>(mn);
  stats->max = static_cast<int64_t>(mx);
}

}  // namespace

const BatStats& Bat::ComputeStats() const {
  if (stats_.valid) return stats_;
  stats_ = BatStats{};
  stats_.valid = true;
  if (count_ == 0) {
    stats_.sorted_asc = true;
    return stats_;
  }
  switch (tail_type_) {
    case ValueType::kInt32:
      ScanStats<int32_t>(data_.data(), count_, &stats_);
      break;
    case ValueType::kInt64:
      ScanStats<int64_t>(data_.data(), count_, &stats_);
      break;
    case ValueType::kFloat64:
      ScanStats<double>(data_.data(), count_, &stats_);
      break;
    case ValueType::kOid:
    case ValueType::kString:
      ScanStats<uint64_t>(data_.data(), count_, &stats_);
      break;
  }
  return stats_;
}

std::shared_ptr<Bat> Bat::Clone(std::string name) const {
  auto out = Create(tail_type_, name.empty() ? name_ + "_clone" : name, heap_);
  out->head_base_ = head_base_;
  out->data_.assign(data_.begin(), data_.begin() + count_ * width_);
  out->count_ = count_;
  return out;
}

std::shared_ptr<Bat> BatView::Materialize(std::string name) const {
  CRACK_DCHECK(valid());
  auto out =
      Bat::Create(bat_->tail_type(),
                  name.empty() ? bat_->name() + "_view" : name, bat_->heap());
  out->set_head_base(bat_->head_base() + offset_);
  out->Reserve(size_);
  size_t width = ValueTypeWidth(bat_->tail_type());
  if (size_ > 0) {
    std::memcpy(out->mutable_raw_data(), bat_->raw_data() + offset_ * width,
                size_ * width);
  }
  out->SetCountUnsafe(size_);
  return out;
}

}  // namespace crackstore
