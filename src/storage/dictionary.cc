// Copyright 2026 The CrackStore Authors

#include "storage/dictionary.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "storage/bat.h"
#include "util/string_util.h"

namespace crackstore {

StringDictionary::StringDictionary(std::shared_ptr<VarHeap> heap, int64_t gap)
    : heap_(std::move(heap)), gap_(gap) {
  CRACK_DCHECK(heap_ != nullptr);
  CRACK_DCHECK(gap_ >= 2);
}

Result<StringDictionary> StringDictionary::FromColumn(const Bat& column,
                                                      int64_t gap) {
  if (column.tail_type() != ValueType::kString) {
    return Status::TypeMismatch(
        StrFormat("dictionary needs a string column; %s is %s",
                  column.name().c_str(), ValueTypeName(column.tail_type())));
  }
  StringDictionary dict(column.heap(), gap);
  // The heap deduplicates, so distinct offsets are exactly the distinct
  // strings of the column.
  std::unordered_set<uint64_t> seen;
  const uint64_t* offsets = column.TailData<uint64_t>();
  for (size_t i = 0; i < column.size(); ++i) {
    if (seen.insert(offsets[i]).second) {
      dict.entries_.push_back(Entry{offsets[i], 0});
    }
  }
  std::sort(dict.entries_.begin(), dict.entries_.end(),
            [&dict](const Entry& a, const Entry& b) {
              return dict.Str(a) < dict.Str(b);
            });
  // Shrink the grid when the distinct count would overflow int64 at the
  // requested spacing (keeps bulk loads of huge dictionaries valid).
  int64_t n = static_cast<int64_t>(dict.entries_.size());
  if (n > 0 && dict.gap_ > std::numeric_limits<int64_t>::max() / (n + 1)) {
    dict.gap_ = std::max<int64_t>(2, std::numeric_limits<int64_t>::max() /
                                         (n + 2));
  }
  for (size_t i = 0; i < dict.entries_.size(); ++i) {
    dict.entries_[i].code = (static_cast<int64_t>(i) + 1) * dict.gap_;
  }
  return dict;
}

size_t StringDictionary::LowerBound(std::string_view s) const {
  size_t lo = 0;
  size_t hi = entries_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (Str(entries_[mid]) < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool StringDictionary::CodeFor(std::string_view s, int64_t* code) const {
  size_t pos = LowerBound(s);
  if (pos == entries_.size() || Str(entries_[pos]) != s) return false;
  *code = entries_[pos].code;
  return true;
}

std::string_view StringDictionary::StringFor(int64_t code) const {
  // Codes ascend with strings, so the entry table is sorted by code too.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), code,
      [](const Entry& e, int64_t c) { return e.code < c; });
  CRACK_DCHECK(it != entries_.end() && it->code == code);
  return Str(*it);
}

bool StringDictionary::CeilCode(std::string_view s, int64_t* code) const {
  size_t pos = LowerBound(s);
  if (pos == entries_.size()) return false;
  *code = entries_[pos].code;
  return true;
}

bool StringDictionary::FloorCode(std::string_view s, int64_t* code) const {
  size_t pos = LowerBound(s);
  if (pos < entries_.size() && Str(entries_[pos]) == s) {
    *code = entries_[pos].code;
    return true;
  }
  if (pos == 0) return false;
  *code = entries_[pos - 1].code;
  return true;
}

void StringDictionary::Rebuild(RemapMap* remap) {
  remap->clear();
  remap->reserve(entries_.size());
  int64_t n = static_cast<int64_t>(entries_.size());
  if (n > 0 && gap_ > std::numeric_limits<int64_t>::max() / (n + 1)) {
    gap_ = std::max<int64_t>(2, std::numeric_limits<int64_t>::max() / (n + 2));
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    int64_t fresh = (static_cast<int64_t>(i) + 1) * gap_;
    (*remap)[entries_[i].code] = fresh;
    entries_[i].code = fresh;
  }
  ++rebuilds_;
}

int64_t StringDictionary::InternOrdered(std::string_view s,
                                        const RemapHook& remap) {
  size_t pos = LowerBound(s);
  if (pos < entries_.size() && Str(entries_[pos]) == s) {
    return entries_[pos].code;  // known string: idempotent
  }

  int64_t code = 0;
  bool fits = false;
  if (entries_.empty()) {
    code = gap_;
    fits = true;
  } else if (pos == 0) {
    // New global minimum: step below the current front (never exhausts
    // until the int64 floor).
    int64_t front = entries_.front().code;
    if (front > std::numeric_limits<int64_t>::min() + gap_) {
      code = front - gap_;
      fits = true;
    }
  } else if (pos == entries_.size()) {
    // New global maximum: the common append-at-the-end shape.
    int64_t back = entries_.back().code;
    if (back < std::numeric_limits<int64_t>::max() - gap_) {
      code = back + gap_;
      fits = true;
    }
  } else {
    // Strictly between two neighbors: take the midpoint of their codes.
    int64_t before = entries_[pos - 1].code;
    int64_t after = entries_[pos].code;
    if (after - before >= 2) {
      code = before + (after - before) / 2;
      fits = true;
    }
  }

  if (!fits) {
    // Gap exhausted: reassign everything on the grid, let dependents remap
    // their code columns/accelerators, then slot the new string in.
    RemapMap mapping;
    Rebuild(&mapping);
    if (remap != nullptr) remap(mapping);
    if (pos == 0) {
      code = entries_.front().code - gap_;
    } else if (pos == entries_.size()) {
      code = entries_.back().code + gap_;
    } else {
      code = entries_[pos - 1].code +
             (entries_[pos].code - entries_[pos - 1].code) / 2;
    }
  }

  uint64_t offset = heap_->Intern(s);
  entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos),
                  Entry{offset, code});
  return code;
}

}  // namespace crackstore
