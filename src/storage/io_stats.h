// Copyright 2026 The CrackStore Authors
//
// Deterministic cost accounting. The paper's Figures 2-3 argue in units of
// tuples read/written relative to a scan; wall-clock numbers depend on 2003
// hardware, touched-tuple counts do not. Storage and engine operations report
// their work into an IoStats so every experiment can print both.

#ifndef CRACKSTORE_STORAGE_IO_STATS_H_
#define CRACKSTORE_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace crackstore {

/// Counters for the logical work performed by an operation or a whole query
/// sequence. All counts are in tuples unless stated otherwise.
struct IoStats {
  uint64_t tuples_read = 0;      ///< tuples whose value was inspected
  uint64_t tuples_written = 0;   ///< tuples moved/copied/materialized
  uint64_t page_reads = 0;       ///< simulated disk page reads (rowstore)
  uint64_t page_writes = 0;      ///< simulated disk page writes (rowstore)
  uint64_t journal_writes = 0;   ///< redo-journal records (transaction cost)
  uint64_t catalog_ops = 0;      ///< catalog/schema mutations
  uint64_t cracks = 0;           ///< crack kernel invocations
  uint64_t pieces_created = 0;   ///< new pieces registered in a cracker index

  IoStats& operator+=(const IoStats& other) {
    tuples_read += other.tuples_read;
    tuples_written += other.tuples_written;
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    journal_writes += other.journal_writes;
    catalog_ops += other.catalog_ops;
    cracks += other.cracks;
    pieces_created += other.pieces_created;
    return *this;
  }

  IoStats operator+(const IoStats& other) const {
    IoStats out = *this;
    out += other;
    return out;
  }

  void Reset() { *this = IoStats{}; }

  /// Short single-line rendering for logs.
  std::string ToString() const;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_IO_STATS_H_
