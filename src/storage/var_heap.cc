// Copyright 2026 The CrackStore Authors

#include "storage/var_heap.h"

#include <cstring>

namespace crackstore {

uint64_t VarHeap::Intern(std::string_view s) {
  auto it = dictionary_.find(std::string(s));
  if (it != dictionary_.end()) return it->second;
  uint64_t offset = data_.size();
  uint32_t len = static_cast<uint32_t>(s.size());
  data_.resize(data_.size() + sizeof(uint32_t) + s.size());
  std::memcpy(data_.data() + offset, &len, sizeof(uint32_t));
  std::memcpy(data_.data() + offset + sizeof(uint32_t), s.data(), s.size());
  dictionary_.emplace(std::string(s), offset);
  return offset;
}

std::string_view VarHeap::Read(uint64_t offset) const {
  CRACK_DCHECK(offset + sizeof(uint32_t) <= data_.size());
  uint32_t len;
  std::memcpy(&len, data_.data() + offset, sizeof(uint32_t));
  CRACK_DCHECK(offset + sizeof(uint32_t) + len <= data_.size());
  return std::string_view(data_.data() + offset + sizeof(uint32_t), len);
}

}  // namespace crackstore
