// Copyright 2026 The CrackStore Authors

#include "storage/relation.h"

#include <limits>
#include <unordered_set>

#include "util/string_util.h"

namespace crackstore {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + ValueTypeName(c.type));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

Result<std::shared_ptr<Relation>> Relation::Create(std::string name,
                                                   Schema schema) {
  std::unordered_set<std::string> seen;
  std::vector<std::shared_ptr<Bat>> columns;
  columns.reserve(schema.num_columns());
  for (const auto& def : schema.columns()) {
    if (!seen.insert(def.name).second) {
      return Status::InvalidArgument("duplicate column name: " + def.name);
    }
    columns.push_back(Bat::Create(def.type, name + "." + def.name));
  }
  return std::shared_ptr<Relation>(
      new Relation(std::move(name), std::move(schema), std::move(columns)));
}

Result<std::shared_ptr<Relation>> Relation::FromColumns(
    std::string name, Schema schema,
    std::vector<std::shared_ptr<Bat>> columns) {
  if (schema.num_columns() != columns.size()) {
    return Status::InvalidArgument(
        StrFormat("schema has %zu columns, got %zu BATs",
                  schema.num_columns(), columns.size()));
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::InvalidArgument("null column BAT");
    }
    if (columns[i]->size() != rows) {
      return Status::InvalidArgument(
          StrFormat("column %zu has %zu rows, expected %zu", i,
                    columns[i]->size(), rows));
    }
    if (columns[i]->tail_type() != schema.column(i).type) {
      return Status::TypeMismatch(
          StrFormat("column %zu is %s, schema says %s", i,
                    ValueTypeName(columns[i]->tail_type()),
                    ValueTypeName(schema.column(i).type)));
    }
  }
  return std::shared_ptr<Relation>(
      new Relation(std::move(name), std::move(schema), std::move(columns)));
}

Result<std::shared_ptr<Bat>> Relation::column(const std::string& col) const {
  int idx = schema_.FieldIndex(col);
  if (idx < 0) {
    return Status::NotFound("no column '" + col + "' in " + name_);
  }
  return columns_[static_cast<size_t>(idx)];
}

namespace {

bool IsCompatible(ValueType type, const Value& v) {
  switch (type) {
    case ValueType::kInt32:
      return v.is_int32();
    case ValueType::kInt64:
      return v.is_int64() || v.is_int32();
    case ValueType::kFloat64:
      return v.is_double();
    case ValueType::kOid:
      return v.is_oid();
    case ValueType::kString:
      return v.is_string();
  }
  return false;
}

}  // namespace

Status CoerceRow(const Schema& schema, std::vector<Value>* values) {
  if (values == nullptr || values->size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu",
                  values == nullptr ? 0 : values->size(),
                  schema.num_columns()));
  }
  for (size_t i = 0; i < values->size(); ++i) {
    Value& v = (*values)[i];
    ValueType want = schema.column(i).type;
    if (IsCompatible(want, v)) continue;
    // Numeric widening/narrowing: SQL literals arrive as int64.
    bool numeric = v.is_int32() || v.is_int64() || v.is_double();
    if (!numeric) {
      return Status::TypeMismatch(
          StrFormat("value %s does not fit column %s:%s",
                    v.ToString().c_str(), schema.column(i).name.c_str(),
                    ValueTypeName(want)));
    }
    if (want == ValueType::kInt32) {
      int64_t wide = v.is_double() ? static_cast<int64_t>(v.AsDouble())
                                   : v.ToInt64();
      if (wide < std::numeric_limits<int32_t>::min() ||
          wide > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument(
            StrFormat("value %lld overflows int32 column %s",
                      static_cast<long long>(wide),
                      schema.column(i).name.c_str()));
      }
      v = Value(static_cast<int32_t>(wide));
    } else if (want == ValueType::kInt64) {
      v = Value(v.is_double() ? static_cast<int64_t>(v.AsDouble())
                              : v.ToInt64());
    } else if (want == ValueType::kFloat64) {
      v = Value(static_cast<double>(v.ToInt64()));
    } else {
      return Status::TypeMismatch(
          StrFormat("value %s does not fit column %s:%s",
                    v.ToString().c_str(), schema.column(i).name.c_str(),
                    ValueTypeName(want)));
    }
  }
  return Status::OK();
}

Status Relation::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu", values.size(),
                  columns_.size()));
  }
  // Validate the full tuple before mutating any column so that a failure
  // cannot leave columns with diverging lengths.
  for (size_t i = 0; i < values.size(); ++i) {
    if (!IsCompatible(schema_.column(i).type, values[i])) {
      return Status::TypeMismatch(
          StrFormat("value %s does not fit column %s:%s",
                    values[i].ToString().c_str(),
                    schema_.column(i).name.c_str(),
                    ValueTypeName(schema_.column(i).type)));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Status st = columns_[i]->AppendValue(values[i]);
    CRACK_DCHECK(st.ok());
  }
  return Status::OK();
}

std::vector<Value> Relation::GetRow(size_t i) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->GetValue(i));
  return out;
}

size_t Relation::total_bytes() const {
  size_t total = 0;
  for (const auto& col : columns_) total += col->tail_bytes();
  return total;
}

}  // namespace crackstore
