// Copyright 2026 The CrackStore Authors
//
// Value types understood by the storage layer. The cracking experiments use
// fixed-width integers (tapestry tables are permutations of 1..N), but the
// store supports the usual scalar types plus strings via a variable heap.

#ifndef CRACKSTORE_STORAGE_TYPES_H_
#define CRACKSTORE_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/macros.h"

namespace crackstore {

/// Object identifier: the surrogate key that glues vertical fragments
/// together (paper §3.1, Ψ-cracking) and names tuples inside BATs.
using Oid = uint64_t;

/// Sentinel for "no oid".
inline constexpr Oid kInvalidOid = ~0ULL;

/// Runtime type tag of a BAT tail.
enum class ValueType : uint8_t {
  kOid = 0,
  kInt32 = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,  // stored as uint64 offsets into a VarHeap
};

/// Returns the in-storage width of a value of `type` in bytes.
inline size_t ValueTypeWidth(ValueType type) {
  switch (type) {
    case ValueType::kOid:
      return sizeof(Oid);
    case ValueType::kInt32:
      return sizeof(int32_t);
    case ValueType::kInt64:
      return sizeof(int64_t);
    case ValueType::kFloat64:
      return sizeof(double);
    case ValueType::kString:
      return sizeof(uint64_t);
  }
  return 0;
}

/// Stable display name, e.g. "int64".
const char* ValueTypeName(ValueType type);

/// Maps a C++ type to its ValueType tag (compile-time).
template <typename T>
struct TypeTraits;

template <>
struct TypeTraits<int32_t> {
  static constexpr ValueType kType = ValueType::kInt32;
};
template <>
struct TypeTraits<int64_t> {
  static constexpr ValueType kType = ValueType::kInt64;
};
template <>
struct TypeTraits<double> {
  static constexpr ValueType kType = ValueType::kFloat64;
};
template <>
struct TypeTraits<Oid> {
  static constexpr ValueType kType = ValueType::kOid;
};

/// A dynamically-typed scalar used at API boundaries (predicate constants,
/// row materialization). Hot loops never touch Value; they run on typed
/// contiguous arrays.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int32_t v) : repr_(v) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  static Value FromOid(Oid oid) {
    Value v;
    v.repr_ = oid;
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int32() const { return std::holds_alternative<int32_t>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_oid() const { return std::holds_alternative<Oid>(repr_); }

  int32_t AsInt32() const { return std::get<int32_t>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  Oid AsOid() const { return std::get<Oid>(repr_); }

  /// Numeric widening view: any numeric alternative as int64 (DCHECKs on
  /// strings/null).
  int64_t ToInt64() const;

  /// Renders the value for diagnostics.
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, int32_t, int64_t, double, std::string, Oid>
      repr_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_TYPES_H_
