// Copyright 2026 The CrackStore Authors
//
// VarHeap: the variable-sized atom heap of a BAT (paper Fig. 7). String
// tails store fixed-width offsets into a shared heap, so the tail itself
// stays a contiguous fixed-width array and crack kernels can shuffle string
// columns exactly like integer columns.

#ifndef CRACKSTORE_STORAGE_VAR_HEAP_H_
#define CRACKSTORE_STORAGE_VAR_HEAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/macros.h"

namespace crackstore {

/// Append-only heap of length-prefixed byte strings. Identical strings are
/// deduplicated so that equality of offsets implies equality of values (the
/// property MonetDB exploits for cheap grouping on strings).
class VarHeap {
 public:
  VarHeap() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(VarHeap);

  /// Interns `s`, returning its heap offset. Re-interning an existing string
  /// returns the original offset.
  uint64_t Intern(std::string_view s);

  /// Reads the string stored at `offset`. The view is valid until the heap
  /// grows (vector reallocation); callers copy if they need persistence.
  std::string_view Read(uint64_t offset) const;

  /// Number of distinct strings interned.
  size_t num_strings() const { return dictionary_.size(); }

  /// Total bytes used by string payloads (excluding dedup bookkeeping).
  size_t payload_bytes() const { return data_.size(); }

 private:
  // Layout per entry: [uint32 length][bytes...]
  std::vector<char> data_;
  std::unordered_map<std::string, uint64_t> dictionary_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_VAR_HEAP_H_
