// Copyright 2026 The CrackStore Authors
//
// Relation: an N-ary relational table decomposed into one BAT per attribute,
// the mapping MonetDB's SQL compiler applies (paper §3.4.2): each attribute
// becomes a bat[oid, type] with a shared dense head of surrogate oids.

#ifndef CRACKSTORE_STORAGE_RELATION_H_
#define CRACKSTORE_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bat.h"
#include "storage/types.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {

/// One attribute of a relation schema.
struct ColumnDef {
  std::string name;
  ValueType type;
};

/// An ordered list of attribute definitions.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the attribute called `name`, or -1.
  int FieldIndex(const std::string& name) const;

  /// Human-readable rendering, e.g. "(k:int64, a:int64)".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Coerces a row of dynamically-typed values to `schema` in place: numeric
/// alternatives widen/narrow to the column type (int64 literal into an int32
/// or double column, etc.), with range checks on narrowing. Fails on arity
/// mismatch and non-numeric type mismatches.
Status CoerceRow(const Schema& schema, std::vector<Value>* values);

/// A named N-ary table stored column-wise as BATs.
class Relation {
 public:
  /// Creates an empty relation; fails on duplicate column names.
  static Result<std::shared_ptr<Relation>> Create(std::string name,
                                                  Schema schema);

  /// Wraps pre-built columns (all must have equal length).
  static Result<std::shared_ptr<Relation>> FromColumns(
      std::string name, Schema schema,
      std::vector<std::shared_ptr<Bat>> columns);

  CRACK_DISALLOW_COPY_AND_ASSIGN(Relation);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }
  size_t num_columns() const { return columns_.size(); }

  const std::shared_ptr<Bat>& column(size_t i) const {
    CRACK_DCHECK(i < columns_.size());
    return columns_[i];
  }

  /// Column lookup by attribute name.
  Result<std::shared_ptr<Bat>> column(const std::string& name) const;

  /// Appends one tuple; all values must match the schema.
  Status AppendRow(const std::vector<Value>& values);

  /// Reads row `i` back as dynamically-typed values.
  std::vector<Value> GetRow(size_t i) const;

  /// Total tail bytes across columns.
  size_t total_bytes() const;

 private:
  Relation(std::string name, Schema schema,
           std::vector<std::shared_ptr<Bat>> columns)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columns_(std::move(columns)) {}

  std::string name_;
  Schema schema_;
  std::vector<std::shared_ptr<Bat>> columns_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_RELATION_H_
