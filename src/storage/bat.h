// Copyright 2026 The CrackStore Authors
//
// Bat: Binary Association Table, the storage unit of the column substrate
// (paper §3.4.2, Fig. 7). A BAT is a contiguous area of fixed-length records
// with a *void* (dense, virtual) head of oids and a typed tail. Variable
// length values live in a VarHeap; the tail then stores fixed-width offsets.
//
// Contiguity is the property cracking depends on: crack kernels shuffle the
// tail in place and pieces are represented as zero-copy BatViews.

#ifndef CRACKSTORE_STORAGE_BAT_H_
#define CRACKSTORE_STORAGE_BAT_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"
#include "storage/var_heap.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {

/// Cached tail statistics; feed the cracker index and the toy optimizer.
struct BatStats {
  bool valid = false;
  bool sorted_asc = false;
  int64_t min = 0;   ///< numeric view of the minimum (meaningless for strings)
  int64_t max = 0;   ///< numeric view of the maximum
};

/// A binary table [void head | typed tail]. See file comment.
class Bat {
 public:
  /// Creates an empty BAT with the given tail type. String BATs allocate a
  /// private VarHeap unless one is shared in via `heap`.
  static std::shared_ptr<Bat> Create(ValueType tail_type,
                                     std::string name = "",
                                     std::shared_ptr<VarHeap> heap = nullptr);

  /// Builds a BAT by copying a typed vector (head oids are 0..n-1).
  template <typename T>
  static std::shared_ptr<Bat> FromVector(const std::vector<T>& values,
                                         std::string name = "") {
    auto bat = Create(TypeTraits<T>::kType, std::move(name));
    bat->Reserve(values.size());
    bat->count_ = values.size();
    if (!values.empty()) {
      std::memcpy(bat->data_.data(), values.data(),
                  values.size() * sizeof(T));
    }
    return bat;
  }

  CRACK_DISALLOW_COPY_AND_ASSIGN(Bat);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ValueType tail_type() const { return tail_type_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// First oid of the dense head; head oid of row i is head_base() + i.
  Oid head_base() const { return head_base_; }
  void set_head_base(Oid base) { head_base_ = base; }

  /// Pre-allocates capacity for `n` tuples.
  void Reserve(size_t n) { data_.resize(n * width_); }

  /// Typed access to the contiguous tail. T must match tail_type().
  template <typename T>
  const T* TailData() const {
    CRACK_DCHECK(TypeTraits<T>::kType == tail_type_ ||
                 (tail_type_ == ValueType::kString &&
                  TypeTraits<T>::kType == ValueType::kOid));
    return reinterpret_cast<const T*>(data_.data());
  }

  template <typename T>
  T* MutableTailData() {
    CRACK_DCHECK(TypeTraits<T>::kType == tail_type_ ||
                 (tail_type_ == ValueType::kString &&
                  TypeTraits<T>::kType == ValueType::kOid));
    InvalidateStats();
    return reinterpret_cast<T*>(data_.data());
  }

  /// Appends one typed value.
  template <typename T>
  void Append(T value) {
    CRACK_DCHECK(TypeTraits<T>::kType == tail_type_);
    size_t offset = count_ * width_;
    if (offset + width_ > data_.size()) Grow();
    std::memcpy(data_.data() + offset, &value, sizeof(T));
    ++count_;
    InvalidateStats();
  }

  /// Appends a string tail value (interned into the heap).
  void AppendString(std::string_view s);

  /// Appends a dynamically-typed value; fails on a type mismatch.
  Status AppendValue(const Value& v);

  /// Overwrites element i of a numeric tail with the int64-widened `value`
  /// (update write-through). Fails on string tails and narrowing overflow.
  Status SetNumeric(size_t i, int64_t value);

  /// Overwrites element i of a string tail with `s` (interned into the
  /// heap). Fails on non-string tails.
  Status SetString(size_t i, std::string_view s);

  /// Typed overwrite of element i: strings route to SetString, numerics to
  /// the matching width (preserving double fractions, unlike SetNumeric).
  Status SetValue(size_t i, const Value& v);

  /// Reads element i as a dynamically-typed Value.
  Value GetValue(size_t i) const;

  /// Reads element i of a string BAT.
  std::string_view GetString(size_t i) const;

  /// Typed point read.
  template <typename T>
  T Get(size_t i) const {
    CRACK_DCHECK(i < count_);
    return TailData<T>()[i];
  }

  /// The string heap (nullptr for non-string BATs).
  const std::shared_ptr<VarHeap>& heap() const { return heap_; }

  /// Raw byte access for width-agnostic bulk copies.
  const uint8_t* raw_data() const { return data_.data(); }
  uint8_t* mutable_raw_data() {
    InvalidateStats();
    return data_.data();
  }

  /// Sets the logical tuple count after a bulk raw write into reserved
  /// storage. Callers must have Reserve()d at least `n` tuples.
  void SetCountUnsafe(size_t n) {
    CRACK_DCHECK(n * width_ <= data_.size());
    count_ = n;
    InvalidateStats();
  }

  /// Computes (and caches) tail statistics with one scan.
  const BatStats& ComputeStats() const;

  /// Drops cached statistics after a mutation.
  void InvalidateStats() { stats_.valid = false; }

  /// Deep copy (fresh storage, shared heap for strings).
  std::shared_ptr<Bat> Clone(std::string name = "") const;

  /// Bytes of tail storage in use.
  size_t tail_bytes() const { return count_ * width_; }

 private:
  Bat(ValueType tail_type, std::string name, std::shared_ptr<VarHeap> heap);

  void Grow() {
    size_t new_cap = data_.empty() ? 64 * width_ : data_.size() * 2;
    data_.resize(new_cap);
  }

  std::string name_;
  ValueType tail_type_;
  size_t width_;
  Oid head_base_ = 0;
  std::vector<uint8_t> data_;
  size_t count_ = 0;
  std::shared_ptr<VarHeap> heap_;
  mutable BatStats stats_;
};

/// BatView: a zero-copy window [offset, offset+size) over a parent BAT
/// (MonetDB's "BAT view", paper §3.4.2). A piece in the cracker index is a
/// BatView; creating one costs O(1) and no catalog locking.
class BatView {
 public:
  BatView() = default;

  /// Views the whole of `bat`.
  explicit BatView(std::shared_ptr<Bat> bat)
      : bat_(std::move(bat)), offset_(0), size_(bat_ ? bat_->size() : 0) {}

  /// Views rows [offset, offset+size) of `bat`.
  BatView(std::shared_ptr<Bat> bat, size_t offset, size_t size)
      : bat_(std::move(bat)), offset_(offset), size_(size) {
    CRACK_DCHECK(bat_ == nullptr || offset_ + size_ <= bat_->size());
  }

  bool valid() const { return bat_ != nullptr; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t offset() const { return offset_; }
  const std::shared_ptr<Bat>& bat() const { return bat_; }

  /// Head oid of view row i (dense head arithmetic).
  Oid HeadOid(size_t i) const {
    CRACK_DCHECK(i < size_);
    return bat_->head_base() + offset_ + i;
  }

  template <typename T>
  const T* data() const {
    return bat_->TailData<T>() + offset_;
  }

  template <typename T>
  T Get(size_t i) const {
    CRACK_DCHECK(i < size_);
    return bat_->TailData<T>()[offset_ + i];
  }

  Value GetValue(size_t i) const {
    CRACK_DCHECK(i < size_);
    return bat_->GetValue(offset_ + i);
  }

  /// Sub-view relative to this view.
  BatView Slice(size_t offset, size_t size) const {
    CRACK_DCHECK(offset + size <= size_);
    return BatView(bat_, offset_ + offset, size);
  }

  /// Copies the viewed rows into a fresh standalone BAT.
  std::shared_ptr<Bat> Materialize(std::string name = "") const;

 private:
  std::shared_ptr<Bat> bat_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_BAT_H_
