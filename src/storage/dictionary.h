// Copyright 2026 The CrackStore Authors
//
// StringDictionary: the order-preserving encoding layer between the string
// storage substrate (VarHeap, paper Fig. 7) and the numeric crack kernels.
// Every distinct string of a column maps to a dense-ish int64 code such
// that code(a) < code(b) iff a < b (bytewise), so range and equality
// predicates over strings become range predicates over codes and the
// existing cracker machinery applies unchanged.
//
// Codes are assigned on a gapped grid (multiples of `gap`), so an unseen
// string that sorts *between* two known strings usually takes the midpoint
// of its neighbors' codes without disturbing anything already encoded. Only
// when a gap is exhausted (or the code domain would overflow) does the
// dictionary reassign every code — and then it reports the old->new mapping
// through a caller-supplied remap hook, so code columns and accelerators
// built on the old assignment can follow. The mapping is monotone: relative
// order of codes never changes, which is what lets a cracked column stay
// cracked across a rebuild.

#ifndef CRACKSTORE_STORAGE_DICTIONARY_H_
#define CRACKSTORE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/var_heap.h"
#include "util/macros.h"
#include "util/result.h"

namespace crackstore {

class Bat;

/// See file comment.
class StringDictionary {
 public:
  /// Default spacing between adjacent codes: 2^32 leaves ~32 midpoint
  /// insertions between any two neighbors before a rebuild.
  static constexpr int64_t kDefaultGap = int64_t{1} << 32;

  /// An empty dictionary interning into `heap` (shared with the column it
  /// encodes, so offset equality keeps implying string equality).
  explicit StringDictionary(std::shared_ptr<VarHeap> heap,
                            int64_t gap = kDefaultGap);

  /// Builds the dictionary over the distinct strings of a kString column
  /// (sharing its heap). Fails on a non-string column.
  static Result<StringDictionary> FromColumn(const Bat& column,
                                             int64_t gap = kDefaultGap);

  StringDictionary(StringDictionary&&) = default;
  StringDictionary& operator=(StringDictionary&&) = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(StringDictionary);

  /// Distinct strings encoded.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Full-reassignment count (diagnostics; each one fired the remap hook).
  size_t rebuilds() const { return rebuilds_; }

  int64_t gap() const { return gap_; }

  /// Exact lookup: the code of `s`, if interned.
  bool CodeFor(std::string_view s, int64_t* code) const;

  /// The string behind `code` (must be a code this dictionary handed out).
  std::string_view StringFor(int64_t code) const;

  /// The smallest code whose string is >= `s` (false when `s` sorts after
  /// every interned string). With `CeilCode`/`FloorCode` any string range
  /// translates to a code range, interned or not.
  bool CeilCode(std::string_view s, int64_t* code) const;

  /// The largest code whose string is <= `s` (false when `s` sorts before
  /// every interned string).
  bool FloorCode(std::string_view s, int64_t* code) const;

  /// Old code -> new code, monotone. Only pre-existing codes appear.
  using RemapMap = std::unordered_map<int64_t, int64_t>;
  using RemapHook = std::function<void(const RemapMap&)>;

  /// Interns `s` with an order-preserving code (idempotent for known
  /// strings). When the neighboring codes leave no integer in between, all
  /// codes are reassigned on the gapped grid and `remap` fires with the
  /// old->new mapping *before* the new code is returned, so the caller can
  /// rewrite dependent state first.
  int64_t InternOrdered(std::string_view s, const RemapHook& remap = nullptr);

 private:
  struct Entry {
    uint64_t offset;  ///< heap offset of the string
    int64_t code;
  };

  std::string_view Str(const Entry& e) const { return heap_->Read(e.offset); }

  /// Index of the first entry whose string is >= `s`.
  size_t LowerBound(std::string_view s) const;

  /// Reassigns every code on the gapped grid; fills `*remap` old -> new.
  void Rebuild(RemapMap* remap);

  std::shared_ptr<VarHeap> heap_;
  std::vector<Entry> entries_;  ///< ascending by string and (hence) by code
  int64_t gap_;
  size_t rebuilds_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_STORAGE_DICTIONARY_H_
