// Copyright 2026 The CrackStore Authors

#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace crackstore {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Applies CRACKSTORE_LOG_LEVEL once, before the first level read. An
/// explicit SetLogLevel afterwards still wins (it writes g_min_level).
void InitLevelFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CRACKSTORE_LOG_LEVEL");
    if (env == nullptr) return;
    LogLevel level;
    if (ParseLogLevel(env, &level)) {
      g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "[WARN logging] ignoring unrecognized "
                   "CRACKSTORE_LOG_LEVEL='%s'\n",
                   env);
    }
  });
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  InitLevelFromEnv();  // keep a later env init from clobbering this call
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  InitLevelFromEnv();
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& spec, LogLevel* out) {
  std::string lower;
  lower.reserve(spec.size());
  for (char c : spec) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  InitLevelFromEnv();
  if (static_cast<int>(level_) >= g_min_level.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace crackstore
