// Copyright 2026 The CrackStore Authors

#include "util/status.h"

namespace crackstore {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace crackstore
