// Copyright 2026 The CrackStore Authors
//
// Small string helpers (printf-style formatting, joining) so that modules do
// not each reinvent them.

#ifndef CRACKSTORE_UTIL_STRING_UTIL_H_
#define CRACKSTORE_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace crackstore {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Parses a "--key=value" style command-line flag; returns true and fills
/// `*value` when `arg` matches `--name=`.
bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value);

/// Human-readable count, e.g. 1200000 -> "1.2M".
std::string HumanCount(uint64_t n);

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_STRING_UTIL_H_
