// Copyright 2026 The CrackStore Authors
//
// Minimal leveled logging to stderr. Benchmarks print their data to stdout;
// everything diagnostic goes through here so the two never mix.

#ifndef CRACKSTORE_UTIL_LOGGING_H_
#define CRACKSTORE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace crackstore {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crackstore

#define CRACK_LOG(level)                                               \
  ::crackstore::internal::LogMessage(::crackstore::LogLevel::k##level, \
                                     __FILE__, __LINE__)

#endif  // CRACKSTORE_UTIL_LOGGING_H_
