// Copyright 2026 The CrackStore Authors
//
// Minimal leveled logging to stderr. Benchmarks print their data to stdout;
// everything diagnostic goes through here so the two never mix.

#ifndef CRACKSTORE_UTIL_LOGGING_H_
#define CRACKSTORE_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace crackstore {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted. The default is kInfo, or the
/// value of the CRACKSTORE_LOG_LEVEL environment variable at first use
/// (accepted: debug|info|warn|error, case-insensitive, or 0-3).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a CRACKSTORE_LOG_LEVEL-style spelling; returns false (and leaves
/// `out` untouched) on anything unrecognized. Exposed for tests.
bool ParseLogLevel(const std::string& spec, LogLevel* out);

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crackstore

#define CRACK_LOG(level)                                               \
  ::crackstore::internal::LogMessage(::crackstore::LogLevel::k##level, \
                                     __FILE__, __LINE__)

/// Emits on the 1st, (n+1)th, (2n+1)th, ... pass over this site — rate
/// limiting for per-query diagnostics on hot paths. The counter is a relaxed
/// atomic, so concurrent callers may occasionally both log; that is fine for
/// diagnostics and keeps the site to one uncontended fetch_add.
#define CRACK_LOG_EVERY_N(level, n)                                       \
  static ::std::atomic<uint64_t> CRACK_LOG_COUNTER_NAME(__LINE__){0};     \
  if (CRACK_LOG_COUNTER_NAME(__LINE__).fetch_add(                         \
          1, ::std::memory_order_relaxed) %                               \
          static_cast<uint64_t>(n) ==                                     \
      0)                                                                  \
  CRACK_LOG(level)

#define CRACK_LOG_COUNTER_NAME(line) CRACK_LOG_COUNTER_PASTE(line)
#define CRACK_LOG_COUNTER_PASTE(line) crack_log_every_n_##line

#endif  // CRACKSTORE_UTIL_LOGGING_H_
