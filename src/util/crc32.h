// Copyright 2026 The CrackStore Authors
//
// CRC-32 (ISO 3309 / zlib polynomial), table-driven. Used by the journal to
// checksum redo records the way real WAL implementations do — both as
// corruption detection and as the honest CPU cost of durable logging.

#ifndef CRACKSTORE_UTIL_CRC32_H_
#define CRACKSTORE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace crackstore {

/// Computes CRC-32 of `data`, continuing from `seed` (0 for a fresh
/// computation). Streaming-safe: crc(a+b) == Crc32(b, Crc32(a)).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_CRC32_H_
