// Copyright 2026 The CrackStore Authors
//
// Wall-clock timing utilities for the benchmark harnesses.

#ifndef CRACKSTORE_UTIL_TIMER_H_
#define CRACKSTORE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace crackstore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop windows; used to
/// separate e.g. crack time from result-construction time in one query.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_TIMER_H_
