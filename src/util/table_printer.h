// Copyright 2026 The CrackStore Authors
//
// TablePrinter / CsvWriter: every benchmark binary emits the series a paper
// figure plots. CSV goes to stdout (machine-readable); an aligned table can
// additionally be rendered for humans.

#ifndef CRACKSTORE_UTIL_TABLE_PRINTER_H_
#define CRACKSTORE_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace crackstore {

/// Collects rows of string cells and renders them as CSV and/or as an
/// aligned ASCII table.
class TablePrinter {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; its arity should match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders all rows as CSV to `out` (header first). Cells containing commas
  /// or quotes are quoted per RFC 4180.
  void PrintCsv(std::FILE* out) const;

  /// Renders an aligned, pipe-separated table to `out`.
  void PrintAligned(std::FILE* out) const;

  /// Renders the aligned table as a string (SQL/shell result support).
  std::string RenderAligned() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  static std::string EscapeCsv(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_TABLE_PRINTER_H_
