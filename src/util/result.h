// Copyright 2026 The CrackStore Authors
//
// Result<T>: a value-or-Status union, the return type of fallible factory
// functions (Arrow's arrow::Result idiom).

#ifndef CRACKSTORE_UTIL_RESULT_H_
#define CRACKSTORE_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/macros.h"
#include "util/status.h"

namespace crackstore {

/// Holds either a successfully produced T or the Status explaining why one
/// could not be produced. Accessing the value of an errored Result aborts in
/// debug builds (use ok()/status() first, or CRACK_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error Status: `return Status::NotFound(..)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    CRACK_DCHECK(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error (or OK if this holds a value).
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors. Only valid when ok().
  const T& ValueOrDie() const& {
    CRACK_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CRACK_CHECK(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    CRACK_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Like ValueOrDie but only DCHECKs; used by CRACK_ASSIGN_OR_RETURN after
  /// the ok() test already happened.
  T ValueUnsafe() && {
    CRACK_DCHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Returns the value, or `alternative` when errored.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_RESULT_H_
