// Copyright 2026 The CrackStore Authors

#include "util/table_printer.h"

#include <algorithm>

namespace crackstore {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::EscapeCsv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) std::fputc(',', out);
      std::fputs(EscapeCsv(row[i]).c_str(), out);
    }
    std::fputc('\n', out);
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintAligned(std::FILE* out) const {
  std::fputs(RenderAligned().c_str(), out);
}

std::string TablePrinter::RenderAligned() const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i];
      if (row[i].size() < widths[i]) out.append(widths[i] - row[i].size(), ' ');
    }
    // Trailing alignment padding on the last cell is noise; trim it.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  if (!header_.empty()) {
    append_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i == 0 ? 0 : 3);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace crackstore
