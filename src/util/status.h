// Copyright 2026 The CrackStore Authors
//
// Status: the error-reporting vocabulary of CrackStore. The library is built
// without exceptions (database-kernel idiom, cf. Arrow/RocksDB); every
// fallible public API returns a Status or a Result<T>.

#ifndef CRACKSTORE_UTIL_STATUS_H_
#define CRACKSTORE_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "util/macros.h"

namespace crackstore {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kTypeMismatch = 8,
  kIoError = 9,
  kAborted = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, movable success/error value. The OK state carries no allocation;
/// error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    CRACK_DCHECK(code != StatusCode::kOk);
    rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  /// True iff this represents success.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsTypeMismatch() const { return code() == StatusCode::kTypeMismatch; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Appends context to an error message; no-op on OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_STATUS_H_
