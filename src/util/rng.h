// Copyright 2026 The CrackStore Authors
//
// Deterministic pseudo-random number generation. Every source of randomness
// in CrackStore (tapestry shuffles, query-bound draws, strolling walks) flows
// through these generators so that experiments are reproducible from a seed.

#ifndef CRACKSTORE_UTIL_RNG_H_
#define CRACKSTORE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace crackstore {

/// SplitMix64: tiny, fast, passes BigCrush; used both directly and to seed
/// Pcg32. Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG32 (Melissa O'Neill, pcg-random.org): the workhorse generator.
class Pcg32 {
 public:
  /// Seeds state and stream from a single 64-bit seed via SplitMix64.
  explicit Pcg32(uint64_t seed) {
    SplitMix64 sm(seed);
    state_ = sm.Next();
    inc_ = sm.Next() | 1u;  // stream selector must be odd
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  uint32_t NextBounded(uint32_t bound) {
    CRACK_DCHECK(bound > 0);
    uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
    uint32_t lo = static_cast<uint32_t>(m);
    if (lo < bound) {
      uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<uint64_t>(NextU32()) * bound;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    CRACK_DCHECK(lo <= hi);
    uint64_t span =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(NextU64());  // full range
    // 64-bit rejection sampling.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
      v = NextU64();
    } while (v >= limit);
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + v % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
};

/// Fisher-Yates shuffle using Pcg32.
template <typename T>
void Shuffle(std::vector<T>* v, Pcg32* rng) {
  if (v->size() < 2) return;
  for (size_t i = v->size() - 1; i > 0; --i) {
    size_t j = rng->NextBounded(static_cast<uint32_t>(i + 1));
    std::swap((*v)[i], (*v)[j]);
  }
}

}  // namespace crackstore

#endif  // CRACKSTORE_UTIL_RNG_H_
