// Copyright 2026 The CrackStore Authors

#include "util/string_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace crackstore {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string key = "--" + name + "=";
  if (!StartsWith(arg, key)) return false;
  *value = arg.substr(key.size());
  return true;
}

std::string HumanCount(uint64_t n) {
  if (n >= 1000000000ULL) {
    return StrFormat("%.1fG", static_cast<double>(n) / 1e9);
  }
  if (n >= 1000000ULL) {
    return StrFormat("%.1fM", static_cast<double>(n) / 1e6);
  }
  if (n >= 1000ULL) {
    return StrFormat("%.1fk", static_cast<double>(n) / 1e3);
  }
  return StrFormat("%llu", static_cast<unsigned long long>(n));
}

}  // namespace crackstore
