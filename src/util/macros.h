// Copyright 2026 The CrackStore Authors
//
// Common low-level macros used across the codebase.

#ifndef CRACKSTORE_UTIL_MACROS_H_
#define CRACKSTORE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Marks a class as non-copyable (but still movable if move members exist).
#define CRACK_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

/// Branch prediction hints. Used sparingly on hot paths (crack kernels).
#if defined(__GNUC__) || defined(__clang__)
#define CRACK_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define CRACK_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define CRACK_PREDICT_TRUE(x) (x)
#define CRACK_PREDICT_FALSE(x) (x)
#endif

/// Internal invariant check. Always on in debug builds; in release builds the
/// condition is still evaluated only when CRACKSTORE_FORCE_DCHECK is defined.
/// Failures abort: an invariant violation inside the cracker index means the
/// physical data layout no longer matches the index and continuing would
/// silently return wrong query answers.
#if !defined(NDEBUG) || defined(CRACKSTORE_FORCE_DCHECK)
#define CRACK_DCHECK(condition)                                          \
  do {                                                                   \
    if (CRACK_PREDICT_FALSE(!(condition))) {                             \
      std::fprintf(stderr, "CRACK_DCHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
#else
#define CRACK_DCHECK(condition) \
  do {                          \
  } while (0)
#endif

/// Check that is always enabled, for conditions on untrusted/public inputs in
/// contexts where returning a Status is not possible (constructors of cheap
/// value types).
#define CRACK_CHECK(condition)                                         \
  do {                                                                 \
    if (CRACK_PREDICT_FALSE(!(condition))) {                           \
      std::fprintf(stderr, "CRACK_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #condition);                    \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

/// Propagates a non-OK Status from an expression, Arrow/RocksDB style.
#define CRACK_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::crackstore::Status _st = (expr);            \
    if (CRACK_PREDICT_FALSE(!_st.ok())) {         \
      return _st;                                 \
    }                                             \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, or returns its
/// error Status. `lhs` may declare a new variable.
#define CRACK_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (CRACK_PREDICT_FALSE(!result_name.ok())) {              \
    return result_name.status();                             \
  }                                                          \
  lhs = std::move(result_name).ValueUnsafe()

#define CRACK_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define CRACK_ASSIGN_OR_RETURN_CONCAT(x, y) CRACK_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define CRACK_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  CRACK_ASSIGN_OR_RETURN_IMPL(                                                 \
      CRACK_ASSIGN_OR_RETURN_CONCAT(_crack_result_, __COUNTER__), lhs, rexpr)

#endif  // CRACKSTORE_UTIL_MACROS_H_
