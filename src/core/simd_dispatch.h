// Copyright 2026 The CrackStore Authors
//
// Runtime SIMD dispatch for the crack/scan kernels. The partition kernels
// are the hot path of the whole store (paper §3.4.2: reorganization cost
// rides along with query execution), so they come in three tiers:
//
//   kScalar      — the branchy Hoare / Dutch-national-flag reference in
//                  crack_kernels.h;
//   kPredicated  — block-wise predicated: a branchless scalar loop fills a
//                  64-bit out-of-register predicate bitmap per block, the
//                  consumer walks set bits with ctz/clz — no data-dependent
//                  branches in the scan;
//   kAvx2/kNeon  — the same bitmap frontier, but the block predicate is
//                  computed with vector compares + movemask (8/4 lanes).
//
// The vector tiers are *bit-identical* to the scalar kernel: bitmaps are
// consumed in exact Hoare order (lowest misplaced-left index paired with
// highest misplaced-right index), so split positions, the permuted layout,
// the oid map and the `writes` accounting all match the scalar reference
// exactly — determinism the experiments and the parity fuzz both rely on.
//
// Tier selection is runtime: cpuid (`__builtin_cpu_supports`) on x86,
// compile-time on ARM, overridable per process with CRACKSTORE_SIMD=
// scalar|predicated|avx2|neon (clamped to what the hardware supports).
// Call sites use the dispatch wrappers in crack_kernels.h; tests force
// tiers explicitly through the *Tier entry points below.

#ifndef CRACKSTORE_CORE_SIMD_DISPATCH_H_
#define CRACKSTORE_CORE_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/types.h"

namespace crackstore {

/// Outcome of a two-way crack.
struct CrackSplit {
  size_t split = 0;      ///< first index of the right-hand partition
  uint64_t writes = 0;   ///< tuple writes performed (2 per swap)
};

/// Outcome of a three-way crack.
struct Crack3Split {
  size_t first = 0;      ///< first index of the middle partition
  size_t second = 0;     ///< first index of the upper partition
  uint64_t writes = 0;   ///< tuple writes performed
};

/// Kernel implementation tiers, ordered by ambition.
enum class SimdTier : uint8_t {
  kScalar = 0,
  kPredicated = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Stable lowercase name ("scalar", "predicated", "avx2", "neon").
const char* SimdTierName(SimdTier tier);

/// Parses a CRACKSTORE_SIMD-style name. Returns false on unknown input.
bool ParseSimdTier(const std::string& name, SimdTier* out);

/// True when this binary can execute `tier` on this machine.
bool SimdTierSupported(SimdTier tier);

/// The best tier the hardware supports (never consults the environment).
SimdTier BestSupportedSimdTier();

/// The tier the dispatch wrappers use: BestSupportedSimdTier(), unless
/// CRACKSTORE_SIMD names a supported tier to force. Unsupported requests
/// clamp to the best supported tier. Cached after the first call.
SimdTier ActiveSimdTier();

// ---------------------------------------------------------------------------
// Tier-explicit kernels, instantiated for int32_t / int64_t / double.
// `tier` must be supported (SimdTierSupported); the dispatch wrappers in
// crack_kernels.h guarantee this, tests should check before forcing.
// ---------------------------------------------------------------------------

/// Partitions so values `< pivot` come first; split = first index >= pivot.
template <typename T>
CrackSplit CrackInTwoLtTier(T* data, Oid* oids, size_t n, T pivot,
                            SimdTier tier);

/// Partitions so values `<= pivot` come first; split = first index > pivot.
template <typename T>
CrackSplit CrackInTwoLeTier(T* data, Oid* oids, size_t n, T pivot,
                            SimdTier tier);

/// Three-way partition into [ below | middle | above ]. The scalar tier is
/// the single-pass Dutch-national-flag reference; vector tiers run two
/// crack-in-two passes (by `lo`, then by `hi` over the tail), so their
/// split positions match the scalar tier exactly while `writes` and the
/// intra-partition layout are deterministic per tier (predicated and the
/// vector tiers agree bit-for-bit with each other).
template <typename T>
Crack3Split CrackInThreeTier(T* data, Oid* oids, size_t n, T lo, bool lo_incl,
                             T hi, bool hi_incl, SimdTier tier);

// ---------------------------------------------------------------------------
// Bitmap utilities. Producers zero the tail bits of the last word, so
// consumers may popcount whole words.
// ---------------------------------------------------------------------------

inline size_t BitmapWords(size_t n) { return (n + 63) / 64; }

inline bool BitmapTest(const uint64_t* bm, size_t i) {
  return (bm[i >> 6] >> (i & 63)) & 1;
}

inline void BitmapSet(uint64_t* bm, size_t i) {
  bm[i >> 6] |= uint64_t{1} << (i & 63);
}

inline void BitmapClearBit(uint64_t* bm, size_t i) {
  bm[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

/// Population count over a bitmap covering `n` bits.
size_t BitmapCount(const uint64_t* bm, size_t n);

/// Sets every bit below `n`, zeroes the tail of the last word.
void BitmapFill(uint64_t* bm, size_t n);

/// Vectorized range predicate: bit i of `bm` = data[i] inside the range
///   (lo_incl ? v >= lo : v > lo) && (hi_incl ? v <= hi : v < hi),
/// with `has_lo` / `has_hi` disabling a side. Instantiated for
/// int32_t / int64_t / double; `tier` defaults to the active tier.
template <typename T>
void RangeMatchMask(const T* data, size_t n, bool has_lo, T lo, bool lo_incl,
                    bool has_hi, T hi, bool hi_incl, uint64_t* bm,
                    SimdTier tier);

template <typename T>
inline void RangeMatchMask(const T* data, size_t n, bool has_lo, T lo,
                           bool lo_incl, bool has_hi, T hi, bool hi_incl,
                           uint64_t* bm) {
  RangeMatchMask(data, n, has_lo, lo, lo_incl, has_hi, hi, hi_incl, bm,
                 ActiveSimdTier());
}

// ---------------------------------------------------------------------------
// Horizontal span reductions — the aggregate-pushdown kernels. One pass over
// a contiguous span computes count/sum/min/max together, so a pushed-down
// SUM/MIN/MAX/COUNT never materializes an oid list.
//
// Bit-identity across tiers is by construction:
//   * integer sums accumulate wrapping uint64 (modular arithmetic is
//     order-free, so lane-parallel partial sums match the scalar loop);
//   * double sums use one canonical 8-stride pattern in every tier —
//     acc[i & 7] += v, then acc[0..7] reduced left to right — which is
//     exactly two 4-lane AVX2 accumulators, so the vector tier performs the
//     *same* additions in the same order per stride;
//   * min/max are order-free (NaN-free data; the snapshot scan kernels
//     share this contract).
// The masked variants substitute the identity (+0.0 / 0 for sums, skipped
// for min/max) at masked-off positions inside the same pattern.
// ---------------------------------------------------------------------------

/// All reductions of one span. `sum_i`/`min_i`/`max_i` are filled for
/// integer instantiations (sum_i wraps mod 2^64), `sum_d`/`min_d`/`max_d`
/// for double. min/max are meaningful only when `count > 0`.
struct SpanAggregates {
  uint64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0.0;
  int64_t min_i = 0;
  int64_t max_i = 0;
  double min_d = 0.0;
  double max_d = 0.0;
};

/// Reduces data[0, n). Instantiated for int32_t / int64_t / double.
template <typename T>
SpanAggregates AggregateSpanTier(const T* data, size_t n, SimdTier tier);

/// Reduces the rows of data[0, n) whose bit is set in `bm` (the
/// visibility-mask shape VisibleMask/RangeMatchMask produce).
template <typename T>
SpanAggregates AggregateSpanMaskedTier(const T* data, size_t n,
                                       const uint64_t* bm, SimdTier tier);

template <typename T>
inline SpanAggregates AggregateSpan(const T* data, size_t n) {
  return AggregateSpanTier(data, n, ActiveSimdTier());
}

template <typename T>
inline SpanAggregates AggregateSpanMasked(const T* data, size_t n,
                                          const uint64_t* bm) {
  return AggregateSpanMaskedTier(data, n, bm, ActiveSimdTier());
}

extern template CrackSplit CrackInTwoLtTier<int32_t>(int32_t*, Oid*, size_t,
                                                     int32_t, SimdTier);
extern template CrackSplit CrackInTwoLtTier<int64_t>(int64_t*, Oid*, size_t,
                                                     int64_t, SimdTier);
extern template CrackSplit CrackInTwoLtTier<double>(double*, Oid*, size_t,
                                                    double, SimdTier);
extern template CrackSplit CrackInTwoLeTier<int32_t>(int32_t*, Oid*, size_t,
                                                     int32_t, SimdTier);
extern template CrackSplit CrackInTwoLeTier<int64_t>(int64_t*, Oid*, size_t,
                                                     int64_t, SimdTier);
extern template CrackSplit CrackInTwoLeTier<double>(double*, Oid*, size_t,
                                                    double, SimdTier);
extern template Crack3Split CrackInThreeTier<int32_t>(int32_t*, Oid*, size_t,
                                                      int32_t, bool, int32_t,
                                                      bool, SimdTier);
extern template Crack3Split CrackInThreeTier<int64_t>(int64_t*, Oid*, size_t,
                                                      int64_t, bool, int64_t,
                                                      bool, SimdTier);
extern template Crack3Split CrackInThreeTier<double>(double*, Oid*, size_t,
                                                     double, bool, double,
                                                     bool, SimdTier);
extern template void RangeMatchMask<int32_t>(const int32_t*, size_t, bool,
                                             int32_t, bool, bool, int32_t,
                                             bool, uint64_t*, SimdTier);
extern template void RangeMatchMask<int64_t>(const int64_t*, size_t, bool,
                                             int64_t, bool, bool, int64_t,
                                             bool, uint64_t*, SimdTier);
extern template void RangeMatchMask<double>(const double*, size_t, bool,
                                            double, bool, bool, double, bool,
                                            uint64_t*, SimdTier);
extern template SpanAggregates AggregateSpanTier<int32_t>(const int32_t*,
                                                          size_t, SimdTier);
extern template SpanAggregates AggregateSpanTier<int64_t>(const int64_t*,
                                                          size_t, SimdTier);
extern template SpanAggregates AggregateSpanTier<double>(const double*, size_t,
                                                         SimdTier);
extern template SpanAggregates AggregateSpanMaskedTier<int32_t>(
    const int32_t*, size_t, const uint64_t*, SimdTier);
extern template SpanAggregates AggregateSpanMaskedTier<int64_t>(
    const int64_t*, size_t, const uint64_t*, SimdTier);
extern template SpanAggregates AggregateSpanMaskedTier<double>(
    const double*, size_t, const uint64_t*, SimdTier);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_SIMD_DISPATCH_H_
