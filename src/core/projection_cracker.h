// Copyright 2026 The CrackStore Authors
//
// Ψ-cracking (paper §3.1): a projection π_attr(R) suggests splitting R
// vertically into
//   P1 = π_attr(R)            (the projected attribute group)
//   P2 = π_{attr(R) - attr}(R) (all remaining attributes)
// where each fragment carries a duplicate-free surrogate oid, so the
// original table is reconstructed by a natural 1:1 join on the surrogates.

#ifndef CRACKSTORE_CORE_PROJECTION_CRACKER_H_
#define CRACKSTORE_CORE_PROJECTION_CRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/query_stats.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// The two vertical fragments produced by Ψ. Each is a Relation whose first
/// column is the surrogate "oid" (type kOid).
struct ProjectionCrackResult {
  std::shared_ptr<Relation> projected;  ///< P1: oid + requested attributes
  std::shared_ptr<Relation> remainder;  ///< P2: oid + the other attributes
};

/// Applies the Ψ cracker: splits `relation` on the attribute list `attrs`.
/// Fails if `attrs` is empty, names an unknown column, or covers every
/// column (an empty remainder would make the split pointless — callers
/// should simply project instead).
Result<ProjectionCrackResult> CrackProjection(
    const std::shared_ptr<Relation>& relation,
    const std::vector<std::string>& attrs, IoStats* stats = nullptr);

/// Inverse of CrackProjection: 1:1-joins the fragments on their surrogate
/// oids and restores the original column order of `original_schema`.
Result<std::shared_ptr<Relation>> ReconstructProjection(
    const ProjectionCrackResult& cracked, const Schema& original_schema,
    const std::string& name, IoStats* stats = nullptr);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_PROJECTION_CRACKER_H_
