// Copyright 2026 The CrackStore Authors

#include "core/txn_manager.h"

#include <algorithm>

#include "core/simd_dispatch.h"
#include "obs/instruments.h"
#include "util/string_util.h"

namespace crackstore {

// --- SnapshotView -----------------------------------------------------------

SnapshotView SnapshotView::WithOverrides(
    std::vector<std::pair<Oid, Value>> overrides) const {
  SnapshotView out;
  out.snap_ = snap_;
  out.table_ = table_;
  out.horizon_ = horizon_;
  out.all_below_horizon_visible_ = all_below_horizon_visible_;
  out.overrides_ = std::move(overrides);
  for (const auto& [oid, value] : out.overrides_) {
    out.overridden_.insert(oid);
  }
  return out;
}

bool SnapshotView::RowVisible(Oid oid) const {
  if (!active()) return true;
  // Rows appended after the view opened postdate the snapshot even before
  // their insert stamp is observable.
  if (oid >= horizon_) {
    obs::RecordSnapshotFiltered(1);
    return false;
  }
  if (all_below_horizon_visible_) return true;
  bool visible = table_->RowVisibleAt(oid, snap_);
  if (!visible) obs::RecordSnapshotFiltered(1);
  return visible;
}

void SnapshotView::VisibleMask(const Oid* oids, size_t n, uint64_t* bm) const {
  size_t words = BitmapWords(n);
  if (!active()) {
    BitmapFill(bm, n);
    return;
  }
  for (size_t w = 0; w < words; ++w) bm[w] = 0;
  if (all_below_horizon_visible_ && overridden_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      bm[i >> 6] |= uint64_t(oids[i] < horizon_) << (i & 63);
    }
    return;
  }
  // General case: one shared latch acquisition for the whole batch (the
  // per-row Hides() path re-locks per probe).
  std::shared_lock<std::shared_mutex> lock(table_->mu_);
  for (size_t i = 0; i < n; ++i) {
    Oid oid = oids[i];
    bool ok = oid < horizon_ && overridden_.count(oid) == 0 &&
              (all_below_horizon_visible_ ||
               table_->RowVisibleLocked(oid, snap_));
    bm[i >> 6] |= uint64_t(ok) << (i & 63);
  }
  obs::RecordSnapshotFiltered(n - BitmapCount(bm, n));
}

void SnapshotView::VisibleRangeMask(Oid first, size_t n, uint64_t* bm) const {
  if (!active()) {
    BitmapFill(bm, n);
    return;
  }
  if (all_below_horizon_visible_ && overridden_.empty()) {
    // Contiguous oids against a horizon: a single clip point.
    size_t visible = first >= horizon_
                         ? 0
                         : std::min<size_t>(n, size_t(horizon_ - first));
    BitmapFill(bm, visible);
    for (size_t w = BitmapWords(visible); w < BitmapWords(n); ++w) bm[w] = 0;
    obs::RecordSnapshotFiltered(n - visible);
    return;
  }
  size_t words = BitmapWords(n);
  for (size_t w = 0; w < words; ++w) bm[w] = 0;
  std::shared_lock<std::shared_mutex> lock(table_->mu_);
  for (size_t i = 0; i < n; ++i) {
    Oid oid = first + i;
    bool ok = oid < horizon_ && overridden_.count(oid) == 0 &&
              (all_below_horizon_visible_ ||
               table_->RowVisibleLocked(oid, snap_));
    bm[i >> 6] |= uint64_t(ok) << (i & 63);
  }
  obs::RecordSnapshotFiltered(n - BitmapCount(bm, n));
}

const Value* SnapshotView::OverrideFor(Oid oid) const {
  if (!active() || overridden_.count(oid) == 0) return nullptr;
  for (const auto& [o, value] : overrides_) {
    if (o == oid) {
      obs::RecordSnapshotOverride(1);
      return &value;
    }
  }
  return nullptr;
}

// --- VersionedTable ---------------------------------------------------------

void VersionedTable::NoteInsert(Oid oid, Ts stamp) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // A re-used oid can only come from a failed physical append whose stamp
  // was rolled back (or vacuumed): reset the slot wholesale.
  purged_.erase(oid);
  if (rows_.count(oid) == 0) obs::AddVersionRows(1);
  RowVersion v;
  v.begin = stamp;
  v.write_ts = IsTxnStamp(stamp) ? 0 : stamp;
  rows_[oid] = v;
  if (oid >= horizon_) horizon_ = oid + 1;
}

VersionedTable::Admission VersionedTable::AdmitWrite(
    Oid oid, const Snapshot& snap, TxnId writer,
    std::string* conflict_detail) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (purged_.count(oid) > 0) return Admission::kSkip;
  auto it = rows_.find(oid);
  if (it == rows_.end()) {
    if (oid >= horizon_) return Admission::kSkip;  // row postdates everything
    RowVersion v;
    v.writer = writer;
    rows_.emplace(oid, v);
    obs::AddVersionRows(1);
    return Admission::kOk;
  }
  RowVersion& v = it->second;
  if (v.writer != kNoTxn && v.writer != writer) {
    if (conflict_detail != nullptr) {
      *conflict_detail = StrFormat(
          "row %llu is write-locked by txn %llu",
          static_cast<unsigned long long>(oid),
          static_cast<unsigned long long>(v.writer));
    }
    obs::RecordTxnConflict();
    return Admission::kConflict;
  }
  if (!v.VisibleTo(snap)) return Admission::kSkip;
  if (v.write_ts > snap.read_ts) {
    // A competing transaction committed a write to this row after our
    // snapshot: first committer wins, the later one must abort.
    if (conflict_detail != nullptr) {
      *conflict_detail = StrFormat(
          "row %llu was committed by ts %llu after snapshot ts %llu",
          static_cast<unsigned long long>(oid),
          static_cast<unsigned long long>(v.write_ts),
          static_cast<unsigned long long>(snap.read_ts));
    }
    obs::RecordTxnConflict();
    return Admission::kConflict;
  }
  v.writer = writer;
  return Admission::kOk;
}

void VersionedTable::StampDelete(Oid oid, Ts stamp) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (rows_.count(oid) == 0) obs::AddVersionRows(1);
  RowVersion& v = rows_[oid];
  v.end = stamp;
  if (!IsTxnStamp(stamp)) {
    v.write_ts = std::max(v.write_ts, stamp);
    v.writer = kNoTxn;
  }
}

void VersionedTable::StampUpdate(Oid oid, const std::string& column,
                                 Value old_value, Ts stamp) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  chains_[column][oid].push_back(ValueVersion{std::move(old_value), stamp});
  obs::AddVersionChainEntries(1);
  if (!IsTxnStamp(stamp)) {
    if (rows_.count(oid) == 0) obs::AddVersionRows(1);
    RowVersion& v = rows_[oid];
    v.write_ts = std::max(v.write_ts, stamp);
    v.writer = kNoTxn;
  }
}

void VersionedTable::CommitTxn(TxnId txn, Ts cts,
                               const std::vector<Oid>& touched) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Ts marker = TxnStamp(txn);
  for (Oid oid : touched) {
    auto it = rows_.find(oid);
    if (it == rows_.end()) continue;
    RowVersion& v = it->second;
    if (v.begin == marker) v.begin = cts;
    if (v.end == marker) v.end = cts;
    if (v.writer == txn) {
      v.writer = kNoTxn;
      v.write_ts = std::max(v.write_ts, cts);
    }
  }
  for (auto& [column, per_oid] : chains_) {
    for (Oid oid : touched) {
      auto it = per_oid.find(oid);
      if (it == per_oid.end()) continue;
      for (ValueVersion& vv : it->second) {
        if (vv.end == marker) vv.end = cts;
      }
    }
  }
}

void VersionedTable::RollbackTxn(TxnId txn, const std::vector<Oid>& touched) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Ts marker = TxnStamp(txn);
  for (Oid oid : touched) {
    auto it = rows_.find(oid);
    if (it == rows_.end()) continue;
    RowVersion& v = it->second;
    if (v.begin == marker) {
      // The physical row (if the append landed) is garbage: visible to
      // nobody, reclaimed by the next vacuum.
      v.begin = kTsAborted;
      v.end = kTsInfinity;
    }
    if (v.end == marker) v.end = kTsInfinity;
    if (v.writer == txn) v.writer = kNoTxn;
  }
  for (auto& [column, per_oid] : chains_) {
    for (Oid oid : touched) {
      auto it = per_oid.find(oid);
      if (it == per_oid.end()) continue;
      auto& versions = it->second;
      const size_t before = versions.size();
      versions.erase(std::remove_if(versions.begin(), versions.end(),
                                    [marker](const ValueVersion& vv) {
                                      return vv.end == marker;
                                    }),
                     versions.end());
      obs::AddVersionChainEntries(
          -static_cast<int64_t>(before - versions.size()));
      if (versions.empty()) per_oid.erase(it);
    }
  }
}

Status VersionedTable::ValidateWriteSet(const Snapshot& snap, TxnId txn,
                                        const std::vector<Oid>& touched) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (Oid oid : touched) {
    auto it = rows_.find(oid);
    if (it == rows_.end()) continue;
    const RowVersion& v = it->second;
    if (v.write_ts > snap.read_ts && v.writer != txn) {
      return Status::Aborted(StrFormat(
          "write-write conflict on row %llu: committed at ts %llu after "
          "snapshot ts %llu",
          static_cast<unsigned long long>(oid),
          static_cast<unsigned long long>(v.write_ts),
          static_cast<unsigned long long>(snap.read_ts)));
    }
  }
  return Status::OK();
}

SnapshotView VersionedTable::ViewFor(const Snapshot& snap,
                                     const std::string& column,
                                     bool force_active) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SnapshotView view;
  bool no_state = rows_.empty() && purged_.empty() && chains_.empty();
  if (!force_active && no_state) {
    return view;  // inactive: nothing to hide
  }
  view.snap_ = snap;
  view.table_ = this;
  view.horizon_ = horizon_;
  // Stable for the view's lifetime: any stamp landing after this point
  // either belongs to a row beyond the horizon or carries a commit
  // timestamp past the snapshot — invisible changes at a fixed read_ts.
  view.all_below_horizon_visible_ = no_state;
  auto cit = chains_.find(column);
  if (cit != chains_.end()) {
    for (const auto& [oid, versions] : cit->second) {
      if (versions.empty()) continue;
      // The newest supersession not yet observable means the physical value
      // postdates the snapshot; the value the snapshot reads is the oldest
      // version whose supersession it cannot observe.
      if (StampVisible(versions.back().end, snap)) continue;
      for (const ValueVersion& vv : versions) {
        if (!StampVisible(vv.end, snap)) {
          view.overrides_.emplace_back(oid, vv.value);
          view.overridden_.insert(oid);
          break;
        }
      }
    }
  }
  return view;
}

bool VersionedTable::RowVisibleLocked(Oid oid, const Snapshot& snap) const {
  if (purged_.count(oid) > 0) return false;
  auto it = rows_.find(oid);
  if (it == rows_.end()) return oid < horizon_;
  return it->second.VisibleTo(snap);
}

bool VersionedTable::RowVisibleAt(Oid oid, const Snapshot& snap) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return RowVisibleLocked(oid, snap);
}

std::vector<Oid> VersionedTable::InvisibleOids(const Snapshot& snap, Oid base,
                                               size_t rows) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Oid> out;
  for (Oid oid : purged_) {
    if (oid >= base && oid < base + rows) out.push_back(oid);
  }
  for (const auto& [oid, v] : rows_) {
    if (oid < base || oid >= base + rows) continue;
    if (purged_.count(oid) > 0) continue;
    if (!v.VisibleTo(snap)) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> VersionedTable::PurgedOids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Oid> out(purged_.begin(), purged_.end());
  std::sort(out.begin(), out.end());
  return out;
}

VersionedTable::VacuumResult VersionedTable::Vacuum(Ts low_water) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  VacuumResult result;
  // 1. Superseded values nobody at or above the low-water mark can read.
  for (auto cit = chains_.begin(); cit != chains_.end();) {
    auto& per_oid = cit->second;
    for (auto oit = per_oid.begin(); oit != per_oid.end();) {
      auto& versions = oit->second;
      size_t before = versions.size();
      versions.erase(
          std::remove_if(versions.begin(), versions.end(),
                         [low_water](const ValueVersion& vv) {
                           return !IsTxnStamp(vv.end) &&
                                  vv.end != kTsInfinity && vv.end <= low_water;
                         }),
          versions.end());
      result.chain_entries_dropped += before - versions.size();
      oit = versions.empty() ? per_oid.erase(oit) : std::next(oit);
    }
    cit = per_oid.empty() ? chains_.erase(cit) : std::next(cit);
  }
  // 2. Row stamps. Which oids still hang in a value log?
  std::unordered_set<Oid> chained;
  for (const auto& [column, per_oid] : chains_) {
    for (const auto& [oid, versions] : per_oid) chained.insert(oid);
  }
  for (auto it = rows_.begin(); it != rows_.end();) {
    const RowVersion& v = it->second;
    if (v.writer != kNoTxn || IsTxnStamp(v.end) ||
        (IsTxnStamp(v.begin) && v.begin != kTsAborted)) {
      ++it;  // an open transaction still owns a stamp here
      continue;
    }
    bool aborted_insert = v.begin == kTsAborted;
    bool dead_to_all =
        v.end != kTsInfinity && !IsTxnStamp(v.end) && v.end <= low_water;
    if (aborted_insert || dead_to_all) {
      result.purged.push_back(it->first);
      purged_.insert(it->first);
      it = rows_.erase(it);
      continue;
    }
    bool fully_visible = v.begin <= low_water && v.end == kTsInfinity &&
                         v.write_ts <= low_water &&
                         chained.count(it->first) == 0;
    if (fully_visible) {
      ++result.versions_dropped;
      it = rows_.erase(it);
      continue;
    }
    ++it;
  }
  std::sort(result.purged.begin(), result.purged.end());
  obs::AddVersionChainEntries(
      -static_cast<int64_t>(result.chain_entries_dropped));
  obs::AddVersionRows(-static_cast<int64_t>(result.purged.size() +
                                            result.versions_dropped));
  obs::RecordVacuum(result.purged.size() + result.versions_dropped);
  return result;
}

VersionedTable::Counts VersionedTable::counts() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Counts c;
  c.row_versions = rows_.size();
  c.purged = purged_.size();
  for (const auto& [column, per_oid] : chains_) {
    for (const auto& [oid, versions] : per_oid) {
      c.chain_entries += versions.size();
    }
  }
  return c;
}

bool VersionedTable::empty() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.empty() && purged_.empty() && chains_.empty();
}

Oid VersionedTable::horizon() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return horizon_;
}

// --- TxnManager -------------------------------------------------------------

Snapshot TxnManager::LatestSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{next_ts_ - 1, kNoTxn};
}

TxnId TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId txn = next_txn_++;
  active_.emplace(txn, next_ts_ - 1);
  obs::RecordTxnBegin();
  return txn;
}

Result<Snapshot> TxnManager::SnapshotOf(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound(
        StrFormat("no active transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  return Snapshot{it->second, txn};
}

bool TxnManager::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.count(txn) > 0;
}

Result<Ts> TxnManager::FinishCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::NotFound(
        StrFormat("no active transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  active_.erase(it);
  obs::RecordTxnCommit();
  return next_ts_++;
}

Status TxnManager::FinishRollback(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.erase(txn) == 0) {
    return Status::NotFound(
        StrFormat("no active transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  obs::RecordTxnAbort();
  return Status::OK();
}

Ts TxnManager::low_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  Ts low = next_ts_ - 1;
  for (const auto& [txn, read_ts] : active_) low = std::min(low, read_ts);
  return low;
}

Ts TxnManager::last_commit_ts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ts_ - 1;
}

size_t TxnManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

}  // namespace crackstore
