// Copyright 2026 The CrackStore Authors
//
// Sorted-oid set operations for multi-predicate selections. The conjunction
// path intersects per-column qualifying oid lists; when one list is much
// smaller than the other — a tight predicate against a loose one — a linear
// merge wastes a pass over the big list. Galloping (exponential search from
// a moving cursor, Bentley & Yao) costs O(m log(n/m)) instead of O(n + m),
// the classic win for skewed list sizes (ROADMAP: "Galloping conjunction
// intersection").

#ifndef CRACKSTORE_CORE_OID_SET_OPS_H_
#define CRACKSTORE_CORE_OID_SET_OPS_H_

#include <vector>

#include "storage/types.h"

namespace crackstore {

/// Size ratio (larger/smaller) above which IntersectSorted switches from
/// the linear merge to galloping. The microbench (micro_crack_kernels,
/// BM_IntersectSorted vs BM_IntersectLinear) puts the crossover between 8x
/// and 64x on this hardware; 32 keeps the merge for near-balanced lists and
/// the exponential search for the skewed shapes it wins outright.
inline constexpr size_t kGallopRatio = 32;

/// Classic two-cursor linear merge. O(|a| + |b|).
std::vector<Oid> IntersectSortedLinear(const std::vector<Oid>& a,
                                       const std::vector<Oid>& b);

/// For each probe, exponential search forward in `large` from a moving
/// cursor, then binary search inside the located 2^k window.
/// O(|small| log(|large|/|small|)). Requires both inputs ascending; callers
/// may pass the operands in either order.
std::vector<Oid> IntersectSortedGalloping(const std::vector<Oid>& small,
                                          const std::vector<Oid>& large);

/// True when IntersectSorted would gallop for these list sizes (the size
/// skew exceeds kGallopRatio). Exposed so callers can mirror the choice in
/// their cost accounting.
bool ShouldGallop(size_t a_size, size_t b_size);

/// Intersection of two ascending oid lists, picking the merge algorithm by
/// size skew: galloping when one side is >= kGallopRatio times the other,
/// the linear merge otherwise.
std::vector<Oid> IntersectSorted(const std::vector<Oid>& a,
                                 const std::vector<Oid>& b);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_OID_SET_OPS_H_
