// Copyright 2026 The CrackStore Authors
//
// Sorted-oid set operations for multi-predicate selections. The conjunction
// path intersects per-column qualifying oid lists; when one list is much
// smaller than the other — a tight predicate against a loose one — a linear
// merge wastes a pass over the big list. Galloping (exponential search from
// a moving cursor, Bentley & Yao) costs O(m log(n/m)) instead of O(n + m),
// the classic win for skewed list sizes (ROADMAP: "Galloping conjunction
// intersection").

#ifndef CRACKSTORE_CORE_OID_SET_OPS_H_
#define CRACKSTORE_CORE_OID_SET_OPS_H_

#include <vector>

#include "core/oid_span_set.h"
#include "storage/types.h"

namespace crackstore {

/// Size ratio (larger/smaller) above which IntersectSorted switches from
/// the linear merge to galloping. The microbench (micro_crack_kernels,
/// BM_IntersectSorted vs BM_IntersectLinear) puts the crossover between 8x
/// and 64x on this hardware; 32 keeps the merge for near-balanced lists and
/// the exponential search for the skewed shapes it wins outright.
inline constexpr size_t kGallopRatio = 32;

/// Classic two-cursor linear merge. O(|a| + |b|).
std::vector<Oid> IntersectSortedLinear(const std::vector<Oid>& a,
                                       const std::vector<Oid>& b);

/// For each probe, exponential search forward in `large` from a moving
/// cursor, then binary search inside the located 2^k window.
/// O(|small| log(|large|/|small|)). Requires both inputs ascending; callers
/// may pass the operands in either order.
std::vector<Oid> IntersectSortedGalloping(const std::vector<Oid>& small,
                                          const std::vector<Oid>& large);

/// True when IntersectSorted would gallop for these list sizes (the size
/// skew exceeds kGallopRatio). Exposed so callers can mirror the choice in
/// their cost accounting.
bool ShouldGallop(size_t a_size, size_t b_size);

/// Intersection of two ascending oid lists, picking the merge algorithm by
/// size skew: galloping when one side is >= kGallopRatio times the other,
/// the linear merge otherwise.
std::vector<Oid> IntersectSorted(const std::vector<Oid>& a,
                                 const std::vector<Oid>& b);

// ---------------------------------------------------------------------------
// Span-aware intersections: conjunction legs that answered with an
// OidSpanSet intersect without materializing their oid lists first.
// ---------------------------------------------------------------------------

/// True when `set` can be consumed as sorted oid *intervals* directly:
/// identity layout (spans ARE ascending oid ranges). Exception bits and
/// extras are handled by the helpers below; a permuted layout is not (its
/// spans are unordered in oid space), so it materializes instead.
bool SpanSetIntersectable(const OidSpanSet& set);

/// Intersects an ascending oid list with an identity-layout span set:
/// gallops the list across the spans (lower_bound per span from a moving
/// cursor), tests the exception overlay per hit, then merges the qualifying
/// extras in. O(spans log n + hits + extras). Requires
/// SpanSetIntersectable(set).
std::vector<Oid> IntersectWithIdentitySpans(const std::vector<Oid>& sorted,
                                            const OidSpanSet& set);

/// Intersects two identity-layout span sets by interval overlap, producing
/// a third identity span set over *absolute* oids (identity base 0) —
/// O(spans_a + spans_b), no per-row work at all. Exceptions and extras on
/// either input degrade to the list paths; this helper requires both sets
/// to carry none (callers check exceptions() == 0 && extras() == 0).
OidSpanSet IntersectIdentitySpanSets(const OidSpanSet& a,
                                     const OidSpanSet& b);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_OID_SET_OPS_H_
