// Copyright 2026 The CrackStore Authors
//
// Piece fusion heuristics (paper §3.2/§7): "the cracker index grows quickly
// and becomes the target of a resource management challenge... Fusion of
// pieces becomes a necessity, but which heuristic works best remains an open
// issue." A MergeBudget caps the number of registered boundaries per column;
// when exceeded, a policy picks victims to drop. Dropping a boundary moves
// no data — it only forgets navigation knowledge, so future queries over the
// fused region pay scan+crack cost again. The ablation bench compares the
// policies.

#ifndef CRACKSTORE_CORE_MERGE_POLICY_H_
#define CRACKSTORE_CORE_MERGE_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/cracker_index.h"
#include "obs/query_stats.h"

namespace crackstore {

/// Victim-selection heuristics for piece fusion.
enum class MergePolicyKind : uint8_t {
  kNone = 0,             ///< unlimited index growth (paper's default)
  kLeastRecentlyUsed,    ///< drop the boundary untouched the longest
  kOldestFirst,          ///< drop the earliest-created boundary (FIFO)
  kSmallestPieces,       ///< drop the boundary separating the two smallest
                         ///< adjacent pieces (keeps big cuts, fuses crumbs)
};

const char* MergePolicyKindName(MergePolicyKind kind);

/// Parses "none", "lru", "fifo", "smallest"; falls back to kNone.
MergePolicyKind MergePolicyKindFromString(const std::string& s);

/// A budget on boundaries per cracker index plus the fusion policy applied
/// when it overflows.
struct MergeBudget {
  MergePolicyKind kind = MergePolicyKind::kNone;
  size_t max_bounds = 0;  ///< 0 = unlimited

  bool unlimited() const {
    return kind == MergePolicyKind::kNone || max_bounds == 0;
  }
};

/// When an access path folds its pending write deltas (inserts, tombstones)
/// back into the accelerator. Orthogonal to the boundary-fusion MergeBudget
/// above: that one forgets navigation knowledge, this one moves delta data.
enum class DeltaMergePolicy : uint8_t {
  kImmediate = 0,     ///< every write merges right away (writes pay)
  kThreshold = 1,     ///< merge when the delta outgrows a fraction of the
                      ///< accelerator (amortized; reads filter small deltas)
  kRippleOnSelect = 2,  ///< writes never merge; the next selection folds the
                        ///< delta before answering (first read pays)
};

const char* DeltaMergePolicyName(DeltaMergePolicy policy);

/// Parses "immediate", "threshold", "ripple"; false on anything else.
bool ParseDeltaMergePolicy(const std::string& s, DeltaMergePolicy* out);

/// Per-column delta-merge configuration.
struct DeltaMergeOptions {
  DeltaMergePolicy policy = DeltaMergePolicy::kThreshold;
  /// kThreshold: merge once pending inserts + tombstones exceed this
  /// fraction of the accelerator's tuple count.
  double threshold_fraction = 0.1;
};

namespace internal {

/// For kSmallestPieces: the combined size of the pieces adjacent to the cut
/// positions of boundary `value`.
template <typename T>
uint64_t AdjacentPieceMass(const std::vector<CrackPiece<T>>& pieces, T value,
                           const CrackBound<T>& bound) {
  uint64_t mass = 0;
  auto count_at = [&pieces, &mass](size_t pos) {
    for (const auto& p : pieces) {
      if (p.end == pos || p.begin == pos) mass += p.size();
    }
  };
  (void)value;
  if (bound.has_excl) count_at(bound.pos_excl);
  if (bound.has_incl && (!bound.has_excl || bound.pos_incl != bound.pos_excl)) {
    count_at(bound.pos_incl);
  }
  return mass;
}

}  // namespace internal

/// Enforces `budget` on `index`, removing boundaries until it fits. Returns
/// the number of boundaries dropped (each drop fuses pieces, no data moves).
template <typename T>
size_t EnforceMergeBudget(CrackerIndex<T>* index, const MergeBudget& budget,
                          IoStats* stats = nullptr) {
  if (budget.unlimited()) return 0;
  size_t dropped = 0;
  while (index->num_bounds() > budget.max_bounds) {
    std::vector<CrackBound<T>> bounds = index->Bounds();
    CRACK_DCHECK(!bounds.empty());
    size_t victim = 0;
    switch (budget.kind) {
      case MergePolicyKind::kNone:
        return dropped;  // unreachable given unlimited() check
      case MergePolicyKind::kLeastRecentlyUsed: {
        uint64_t best = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < bounds.size(); ++i) {
          if (bounds[i].last_used < best) {
            best = bounds[i].last_used;
            victim = i;
          }
        }
        break;
      }
      case MergePolicyKind::kOldestFirst: {
        uint64_t best = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < bounds.size(); ++i) {
          if (bounds[i].created < best) {
            best = bounds[i].created;
            victim = i;
          }
        }
        break;
      }
      case MergePolicyKind::kSmallestPieces: {
        std::vector<CrackPiece<T>> pieces = index->Pieces();
        uint64_t best = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < bounds.size(); ++i) {
          uint64_t mass =
              internal::AdjacentPieceMass(pieces, bounds[i].value, bounds[i]);
          if (mass < best) {
            best = mass;
            victim = i;
          }
        }
        break;
      }
    }
    Status st = index->RemoveBound(bounds[victim].value);
    CRACK_DCHECK(st.ok());
    ++dropped;
    if (stats != nullptr) ++stats->catalog_ops;
  }
  return dropped;
}

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_MERGE_POLICY_H_
