// Copyright 2026 The CrackStore Authors
//
// OidSpanSet: the zero-materialization answer representation of the read
// path. Cracking's central property (paper §2.2) is that a range answer is a
// *contiguous piece* of the cracked column; materializing it into a
// std::vector<Oid> throws that away and caps every downstream consumer at
// pointer-chasing speed. An OidSpanSet keeps the answer as
//
//   * an ordered list of contiguous [begin, end) position spans over one
//     layout — either a permuted oid column (the cracker/sorted oid BAT) or
//     the identity layout (oid = identity_base + position, the scan case);
//   * a word-wise exception bitmap over the concatenated span positions,
//     marking rows the answer must *exclude* (snapshot-hidden rows, vacuum
//     tombstones, value misses inside a conservative piece);
//   * a sorted list of extra oids the spans cannot express (delta-buffer
//     inserts, snapshot override re-admissions).
//
// ToOids() is lazy and only runs at true materialization boundaries; counts,
// aggregates and span-aware intersections consume the spans directly.

#ifndef CRACKSTORE_CORE_OID_SPAN_SET_H_
#define CRACKSTORE_CORE_OID_SPAN_SET_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "storage/bat.h"
#include "storage/types.h"

namespace crackstore {

/// One contiguous [begin, end) position range over the bound layout.
struct OidSpan {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// See file comment.
class OidSpanSet {
 public:
  OidSpanSet() = default;

  /// Binds the permuted layout: position p of a span resolves to
  /// oid_map[p]. The map is shared (zero-copy) with the accelerator; the
  /// set pins it alive. Callers must not consume the set after the
  /// accelerator may have reshuffled (the serial-statement contract).
  void BindOidMap(std::shared_ptr<Bat> oid_map) {
    oid_map_ = std::move(oid_map);
  }

  /// Binds the identity layout: position p resolves to base + p.
  void BindIdentity(Oid base) {
    oid_map_ = nullptr;
    identity_base_ = base;
  }

  bool identity() const { return oid_map_ == nullptr; }
  Oid identity_base() const { return identity_base_; }
  const std::shared_ptr<Bat>& oid_map() const { return oid_map_; }

  /// Appends a span; coalesces with the previous span when adjacent.
  /// Spans must arrive in ascending, non-overlapping position order.
  void AddSpan(size_t begin, size_t end);

  /// Excludes the row at concatenated span position `concat_pos` (position
  /// within the concatenation of all spans added so far, in order).
  void MarkException(size_t concat_pos);

  /// Adds an oid the spans cannot express (delta insert / override
  /// re-admission). Sorted lazily at consumption time.
  void AddExtra(Oid oid);

  /// Total positions covered by the spans (before exceptions).
  uint64_t span_rows() const { return span_rows_; }
  uint64_t exceptions() const { return exception_count_; }
  uint64_t extras() const { return extras_.size(); }
  size_t num_spans() const { return spans_.size(); }
  const std::vector<OidSpan>& spans() const { return spans_; }
  const std::vector<Oid>& extra_oids() const { return extras_; }

  /// True when the set carries no structure at all (never populated).
  bool empty_structure() const {
    return spans_.empty() && extras_.empty();
  }

  /// Qualifying rows: span positions minus exceptions plus extras.
  uint64_t count() const {
    return span_rows_ - exception_count_ + extras_.size();
  }

  /// True when position `concat_pos` is excluded by the exception overlay.
  bool IsException(size_t concat_pos) const {
    if (exceptions_.empty()) return false;
    size_t w = concat_pos >> 6;
    if (w >= exceptions_.size()) return false;
    return (exceptions_[w] >> (concat_pos & 63)) & 1u;
  }

  /// Invokes fn(oid) for every included row, spans first (layout order,
  /// NOT oid order for permuted layouts), then extras.
  template <typename Fn>
  void ForEachOid(Fn&& fn) const {
    const Oid* map =
        oid_map_ ? oid_map_->TailData<Oid>() : nullptr;
    size_t concat = 0;
    for (const OidSpan& s : spans_) {
      for (size_t p = s.begin; p < s.end; ++p, ++concat) {
        if (IsException(concat)) continue;
        fn(map ? map[p] : identity_base_ + p);
      }
    }
    for (Oid oid : extras_) fn(oid);
  }

  /// Materializes the qualifying oids, ascending. The lazy boundary — call
  /// only when a consumer genuinely needs the list.
  std::vector<Oid> ToOids() const;

  /// Builds an identity-layout span set from a match bitmap over
  /// [base, base + n): runs of set bits become spans (no exceptions).
  static OidSpanSet FromMatchBitmap(const uint64_t* bm, size_t n, Oid base);

 private:
  std::shared_ptr<Bat> oid_map_;  ///< null => identity layout
  Oid identity_base_ = 0;
  std::vector<OidSpan> spans_;
  std::vector<uint64_t> exceptions_;  ///< bitmap over concatenated positions
  std::vector<Oid> extras_;
  uint64_t span_rows_ = 0;
  uint64_t exception_count_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_OID_SPAN_SET_H_
