// Copyright 2026 The CrackStore Authors
//
// Ω-cracking (paper §3.1): a GROUP BY over attribute set `grp` produces an
// n-way partition of the table into disjoint pieces, one per distinct value:
//   Ω(γ_grp R) = { P_i | i ∈ π_grp R, P_i = σ_{grp = i} R }.
// The cracker clusters the column physically so that "subsequent aggregation
// and filtering are simplified" (§3.3). Loss-less: the union of the pieces
// is the original table.

#ifndef CRACKSTORE_CORE_GROUP_CRACKER_H_
#define CRACKSTORE_CORE_GROUP_CRACKER_H_

#include <memory>
#include <vector>

#include "storage/bat.h"
#include "obs/query_stats.h"
#include "util/result.h"

namespace crackstore {

class SnapshotView;  // core/txn_manager.h

/// One group piece: the grouping value (as int64 view) and its contiguous
/// slot range in the clustered column.
struct GroupPiece {
  int64_t value = 0;
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Result of Ω-cracking one column.
struct GroupCrackResult {
  std::shared_ptr<Bat> values;    ///< clustered clone of the column
  std::shared_ptr<Bat> oids;      ///< parallel source-oid map
  std::vector<GroupPiece> groups; ///< pieces in ascending value order

  BatView piece(size_t i) const {
    const GroupPiece& g = groups[i];
    return BatView(values, g.begin, g.size());
  }
  BatView piece_oids(size_t i) const {
    const GroupPiece& g = groups[i];
    return BatView(oids, g.begin, g.size());
  }
};

/// Applies the Ω cracker to an integer column: clusters a clone by value and
/// reports the per-group pieces. Cost (n reads for the histogram, n reads +
/// n writes for the scatter) is charged to `stats`.
Result<GroupCrackResult> CrackGroup(const std::shared_ptr<Bat>& column,
                                    IoStats* stats = nullptr);

/// Aggregation kinds understood by AggregateGroups.
enum class AggKind { kCount, kSum, kMin, kMax };

/// One aggregate row: group value and the aggregate over an auxiliary
/// column aligned by source oid.
struct GroupAggregate {
  int64_t group = 0;
  int64_t value = 0;
};

/// Computes `kind` of `agg_column[oid]` per group of `cracked`, exploiting
/// the clustered layout (one sequential pass, no hash table).
///
/// Active snapshot views make the aggregate transactional: rows hidden at
/// `group_view` drop out, rows whose group key is overridden there (their
/// physical key is newer than the snapshot) migrate into the group of the
/// override value, and `agg_view` overrides substitute the aggregate input
/// per row. Groups with no visible member are not reported.
Result<std::vector<GroupAggregate>> AggregateGroups(
    const GroupCrackResult& cracked, const std::shared_ptr<Bat>& agg_column,
    AggKind kind, IoStats* stats = nullptr,
    const SnapshotView* group_view = nullptr,
    const SnapshotView* agg_view = nullptr);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_GROUP_CRACKER_H_
