// Copyright 2026 The CrackStore Authors
//
// ^-cracking (paper §3.1): a join R ⋈ S over two columns reorganizes *both*
// operands so that the tuples that find a match in the other relation form a
// contiguous area:
//   P1 = R ⋉ S (matching),  P2 = R ∖ (R ⋉ S) (non-matching),
//   P3 = S ⋉ R,             P4 = S ∖ (S ⋉ R).
// The matching areas act as a semijoin index: subsequent joins touch only
// P1 ⋈ P3, and P2/P4 are exactly the outer-join complements. Loss-less:
// P1 ∪ P2 = R, P3 ∪ P4 = S.

#ifndef CRACKSTORE_CORE_JOIN_CRACKER_H_
#define CRACKSTORE_CORE_JOIN_CRACKER_H_

#include <memory>
#include <vector>

#include "storage/bat.h"
#include "obs/query_stats.h"
#include "util/result.h"

namespace crackstore {

class SnapshotView;  // core/txn_manager.h

/// One cracked join operand: its shuffled values/oids plus the split point
/// between the matching prefix and the non-matching suffix.
struct JoinCrackSide {
  std::shared_ptr<Bat> values;  ///< shuffled clone of the operand tail
  std::shared_ptr<Bat> oids;    ///< parallel source-oid map
  size_t split = 0;             ///< first index of the non-matching area

  BatView matching() const { return BatView(values, 0, split); }
  BatView non_matching() const {
    return BatView(values, split, values->size() - split);
  }
  BatView matching_oids() const { return BatView(oids, 0, split); }
  BatView non_matching_oids() const {
    return BatView(oids, split, oids->size() - split);
  }
};

/// Result of ^-cracking two join columns.
struct JoinCrackResult {
  JoinCrackSide left;   ///< pieces P1 (matching) and P2 of R
  JoinCrackSide right;  ///< pieces P3 (matching) and P4 of S
};

/// A pair of matching oids produced by a join.
struct OidPair {
  Oid left;
  Oid right;
};

/// Applies the ^ cracker to two numeric columns of equal type. Cost: one
/// hash build + probe per side plus the in-place shuffles; all charged to
/// `stats`. Fails on type mismatch or string columns.
Result<JoinCrackResult> CrackJoin(const std::shared_ptr<Bat>& left,
                                  const std::shared_ptr<Bat>& right,
                                  IoStats* stats = nullptr);

/// Equi-joins the matching areas of a cracked pair, returning source oid
/// pairs. This is the "calculate the join without caring about non-matching
/// tuples" step (§3.3).
///
/// Active snapshot views filter the answer: rows hidden at a view drop out,
/// and rows whose key is overridden at the view (their physical value is
/// newer than the snapshot) are re-joined with the override value — an
/// override pass scans the full clone of the other side, so it only runs
/// when a view actually carries overrides.
std::vector<OidPair> JoinMatchingAreas(const JoinCrackResult& cracked,
                                       IoStats* stats = nullptr,
                                       const SnapshotView* left_view = nullptr,
                                       const SnapshotView* right_view = nullptr);

/// Reference equi-join over two whole columns (no cracking); baseline for
/// tests and benchmarks. Active views join effective (snapshot) values and
/// skip hidden rows.
Result<std::vector<OidPair>> HashJoinOids(
    const std::shared_ptr<Bat>& left, const std::shared_ptr<Bat>& right,
    IoStats* stats = nullptr, const SnapshotView* left_view = nullptr,
    const SnapshotView* right_view = nullptr);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_JOIN_CRACKER_H_
