// Copyright 2026 The CrackStore Authors

#include "core/adaptive_store.h"

#include <algorithm>
#include <iterator>
#include <limits>

#include "core/oid_set_ops.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

std::vector<Oid> QueryResult::CollectOids() const& {
  if (!has_selection) return scan_oids;
  std::vector<Oid> oids;
  oids.reserve(selection.count());
  for (size_t i = 0; i < selection.count(); ++i) {
    oids.push_back(selection.oids.Get<Oid>(i));
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

std::vector<Oid> QueryResult::CollectOids() && {
  if (!has_selection) return std::move(scan_oids);
  return static_cast<const QueryResult&>(*this).CollectOids();
}

AdaptiveStore::AdaptiveStore(AdaptiveStoreOptions options)
    : options_(options) {}

Status AdaptiveStore::AddTable(std::shared_ptr<Relation> relation) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (tables_.count(relation->name()) > 0) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  tables_.emplace(relation->name(), std::move(relation));
  return Status::OK();
}

Result<std::shared_ptr<Relation>> AdaptiveStore::table(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::string> AdaptiveStore::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(name);
  return out;
}

Result<std::shared_ptr<Bat>> AdaptiveStore::ResolveColumn(
    const std::string& table, const std::string& column) const {
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  return (*rel)->column(column);
}

Result<AdaptiveStore::ColumnAccel*> AdaptiveStore::Accel(
    const std::string& table, const std::string& column,
    const std::shared_ptr<Bat>& bat) {
  ColumnAccel& accel = accels_[table + "." + column];
  if (accel.path == nullptr) {
    CRACK_ASSIGN_OR_RETURN(
        accel.path, CreateColumnAccessPath(bat, options_.path_config()));
    // A path born after deletes must not resurrect them: replay the table's
    // tombstones (the lazy accelerator build reads the append-only base,
    // which still holds the dead rows physically).
    const std::unordered_set<Oid>* tomb = TombstonesFor(table);
    if (tomb != nullptr) {
      for (Oid oid : *tomb) {
        Status st = accel.path->Delete(oid);
        CRACK_DCHECK(st.ok());
        (void)st;
      }
    }
  }
  return &accel;
}

const std::unordered_set<Oid>* AdaptiveStore::TombstonesFor(
    const std::string& table) const {
  auto it = tombstones_.find(table);
  if (it == tombstones_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

Result<QueryResult> AdaptiveStore::SelectRange(const std::string& table,
                                               const std::string& column,
                                               const TypedRange& range,
                                               Delivery delivery) {
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;

  QueryResult result;
  WallTimer timer;

  CRACK_ASSIGN_OR_RETURN(ColumnAccel * accel, Accel(table, column, bat));
  bool is_crack = accel->path->strategy() == AccessStrategy::kCrack;
  if (is_crack && options_.track_lineage && accel->root == kInvalidPieceId) {
    accel->root = lineage_.AddRoot(table + "." + column, bat->size());
    accel->piece_nodes[{0, bat->size()}] = accel->root;
  }

  CRACK_ASSIGN_OR_RETURN(
      AccessSelection sel,
      accel->path->SelectTyped(
          range, /*want_oids=*/delivery != Delivery::kCount, &result.io));
  result.count = sel.count;
  if (sel.contiguous) {
    result.selection = sel.view;
    result.has_selection = true;
  } else {
    result.scan_oids = std::move(sel.oids);
  }

  if (is_crack && options_.track_lineage) {
    size_t merges_now = accel->path->merges_performed();
    if (sel.bounds_dropped > 0 || merges_now != accel->merges_seen) {
      // Fused pieces (or a delta merge's rebuilt cracker column) no longer
      // tile the registered nodes; apply the inverse operation to the
      // column's subtree (§3.2: "trimming the graph") and re-register the
      // surviving partitioning from the root.
      (void)lineage_.TrimDescendants(accel->root);
      accel->piece_nodes.clear();
      std::vector<PieceInfo> pieces = accel->path->Pieces();
      size_t span_end =
          pieces.empty() ? accel->path->size() : pieces.back().end;
      accel->piece_nodes[{0, span_end}] = accel->root;
      accel->merges_seen = merges_now;
    }
    UpdateLineage(table, column, accel);
  }

  if (delivery == Delivery::kMaterialize) {
    if (result.has_selection) {
      CRACK_ASSIGN_OR_RETURN(
          result.materialized,
          MaterializeSelection(table, result.selection,
                               table + "_" + column + "_result", &result.io));
    } else {
      // Non-contiguous answer: materialize from the gathered oid list.
      auto rel = this->table(table);
      auto out = Relation::Create(table + "_" + column + "_result",
                                  (*rel)->schema());
      if (!out.ok()) return out.status();
      for (Oid oid : result.scan_oids) {
        Status st = (*out)->AppendRow((*rel)->GetRow(static_cast<size_t>(oid)));
        if (!st.ok()) return st;
        result.io.tuples_read += (*rel)->num_columns();
        result.io.tuples_written += (*rel)->num_columns();
      }
      result.materialized = *out;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::SelectConjunction(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    Delivery delivery) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("conjunction needs at least one predicate");
  }
  if (delivery == Delivery::kMaterialize) {
    return Status::Unimplemented(
        "materialize a conjunction via kView + MaterializeSelection");
  }
  if (conjuncts.size() == 1) {
    return SelectRange(table, conjuncts[0].column, conjuncts[0].range,
                       delivery);
  }

  QueryResult result;
  WallTimer timer;

  // The stateless scan strategy has a cheaper shape for all-numeric
  // conjunctions: one fused pass over the referenced columns, no per-column
  // oid materialization. Stateful paths (crack/sort) go per-column anyway —
  // each conjunct is advice for its own column's accelerator — and
  // string-typed conjuncts route per-column too, where the dictionary
  // encoding lives.
  bool all_numeric = true;
  for (const ColumnRange& c : conjuncts) all_numeric &= !c.range.has_string();
  if (options_.strategy == AccessStrategy::kScan && all_numeric) {
    auto rel_result = this->table(table);
    if (!rel_result.ok()) return rel_result.status();
    std::shared_ptr<Relation> rel = *rel_result;
    struct TypedColumn {
      const int32_t* d32 = nullptr;
      const int64_t* d64 = nullptr;
      const double* f64 = nullptr;
      RangeBounds range;
    };
    std::vector<TypedColumn> cols;
    cols.reserve(conjuncts.size());
    bool fusable = true;
    for (const ColumnRange& c : conjuncts) {
      auto bat = rel->column(c.column);
      if (!bat.ok()) return bat.status();
      TypedColumn col;
      col.range = c.range.ToNumericBounds();
      switch ((*bat)->tail_type()) {
        case ValueType::kInt64:
          col.d64 = (*bat)->TailData<int64_t>();
          break;
        case ValueType::kInt32:
          col.d32 = (*bat)->TailData<int32_t>();
          break;
        case ValueType::kFloat64:
          col.f64 = (*bat)->TailData<double>();
          break;
        default:
          // A numeric bound on a string column: let the per-column path
          // report the TypeMismatch uniformly.
          fusable = false;
          break;
      }
      if (!fusable) break;
      cols.push_back(col);
    }
    if (fusable) {
      size_t n = rel->num_rows();
      Oid base =
          rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
      const std::unordered_set<Oid>* tomb = TombstonesFor(table);
      for (size_t i = 0; i < n; ++i) {
        if (tomb != nullptr && tomb->count(base + i) > 0) continue;
        bool all = true;
        for (size_t c = 0; c < cols.size() && all; ++c) {
          if (cols[c].f64 != nullptr) {
            // Doubles compare in their own domain (int64 bounds widen).
            const RangeBounds& r = cols[c].range;
            double v = cols[c].f64[i];
            double lo = static_cast<double>(r.lo);
            double hi = static_cast<double>(r.hi);
            all = !(r.lo_incl ? v < lo : v <= lo) &&
                  !(r.hi_incl ? v > hi : v >= hi);
          } else {
            int64_t v = cols[c].d32 != nullptr
                            ? static_cast<int64_t>(cols[c].d32[i])
                            : cols[c].d64[i];
            all = cols[c].range.Contains(v);
          }
        }
        if (all) {
          ++result.count;
          if (delivery == Delivery::kView) {
            result.scan_oids.push_back(base + i);
          }
        }
      }
      result.io.tuples_read += n * conjuncts.size();
      result.seconds = timer.ElapsedSeconds();
      total_io_ += result.io;
      return result;
    }
  }

  // Answer each conjunct through its column's access path, then intersect
  // the (already ascending) oid lists starting from the smallest. One code
  // path for every crack-policy × sort combination.
  std::vector<std::vector<Oid>> per_column;
  per_column.reserve(conjuncts.size());
  for (const ColumnRange& c : conjuncts) {
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr, SelectRange(table, c.column, c.range, Delivery::kView));
    result.io += qr.io;
    per_column.push_back(std::move(qr).CollectOids());
  }
  std::sort(per_column.begin(), per_column.end(),
            [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
              return a.size() < b.size();
            });
  std::vector<Oid> survivors = std::move(per_column.front());
  for (size_t c = 1; c < per_column.size() && !survivors.empty(); ++c) {
    // Galloping kicks in when the survivor set is already much smaller than
    // the next list (the common shape: one tight predicate prunes the
    // rest); it touches O(m log(n/m)) tuples instead of the merge's n + m.
    size_t small = std::min(survivors.size(), per_column[c].size());
    size_t large = std::max(survivors.size(), per_column[c].size());
    if (ShouldGallop(small, large)) {
      uint64_t log_ratio = 1;
      for (size_t r = large / small; r > 1; r >>= 1) ++log_ratio;
      result.io.tuples_read += small * log_ratio;
    } else {
      result.io.tuples_read += small + large;
    }
    survivors = IntersectSorted(survivors, per_column[c]);
  }
  result.count = survivors.size();
  if (delivery == Delivery::kView) {
    result.scan_oids = std::move(survivors);
  }

  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::Insert(const std::string& table,
                                          std::vector<Value> values) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  QueryResult result;
  WallTimer timer;
  CRACK_RETURN_NOT_OK(CoerceRow(rel->schema(), &values));
  CRACK_RETURN_NOT_OK(rel->AppendRow(values));
  result.io.tuples_written += rel->num_columns();
  Oid oid = (rel->num_columns() > 0 ? rel->column(size_t{0})->head_base()
                                    : 0) +
            rel->num_rows() - 1;

  // Every materialized accelerator absorbs the new row; columns never
  // queried stay lazy (their eventual build reads the appended base).
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    auto it = accels_.find(table + "." + rel->schema().column(c).name);
    if (it == accels_.end() || it->second.path == nullptr) continue;
    CRACK_RETURN_NOT_OK(
        it->second.path->Insert(values[c], oid, &result.io));
  }

  result.count = 1;
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<uint64_t> AdaptiveStore::DeleteOidsInternal(const std::string& table,
                                                   const std::vector<Oid>& oids,
                                                   IoStats* stats) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  Oid base = rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
  Oid end = base + rel->num_rows();

  std::string prefix = table + ".";
  std::unordered_set<Oid>& tomb = tombstones_[table];
  uint64_t removed = 0;
  for (Oid oid : oids) {
    if (oid < base || oid >= end) {
      return Status::InvalidArgument(
          StrFormat("oid %llu outside %s's row range",
                    static_cast<unsigned long long>(oid), table.c_str()));
    }
    if (!tomb.insert(oid).second) continue;  // already dead
    ++removed;
    for (auto it = accels_.lower_bound(prefix);
         it != accels_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      if (it->second.path == nullptr) continue;
      CRACK_RETURN_NOT_OK(it->second.path->Delete(oid, stats));
    }
    if (stats != nullptr) ++stats->tuples_written;
  }
  return removed;
}

Result<QueryResult> AdaptiveStore::DeleteOids(const std::string& table,
                                              const std::vector<Oid>& oids) {
  QueryResult result;
  WallTimer timer;
  CRACK_ASSIGN_OR_RETURN(result.count,
                         DeleteOidsInternal(table, oids, &result.io));
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::Delete(
    const std::string& table, const std::vector<ColumnRange>& conjuncts) {
  QueryResult result;
  WallTimer timer;
  std::vector<Oid> oids;
  if (conjuncts.empty()) {
    CRACK_ASSIGN_OR_RETURN(oids, LiveOids(table));
  } else {
    // The WHERE is a read like any other: it cracks the referenced columns
    // on its way to the victim set.
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr, SelectConjunction(table, conjuncts, Delivery::kView));
    result.io += qr.io;
    oids = std::move(qr).CollectOids();
  }
  CRACK_ASSIGN_OR_RETURN(result.count,
                         DeleteOidsInternal(table, oids, &result.io));
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::Update(
    const std::string& table, const std::vector<Assignment>& sets,
    const std::vector<ColumnRange>& conjuncts) {
  if (sets.empty()) {
    return Status::InvalidArgument("UPDATE needs at least one SET clause");
  }
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  QueryResult result;
  WallTimer timer;
  std::vector<Oid> oids;
  if (conjuncts.empty()) {
    CRACK_ASSIGN_OR_RETURN(oids, LiveOids(table));
  } else {
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr, SelectConjunction(table, conjuncts, Delivery::kView));
    result.io += qr.io;
    oids = std::move(qr).CollectOids();
  }

  // Validate every SET clause up front so a bad column name, a mistyped
  // value or an overflowing literal cannot leave the statement
  // half-applied.
  for (const Assignment& set : sets) {
    auto bat_result = rel->column(set.column);
    if (!bat_result.ok()) return bat_result.status();
    ValueType type = (*bat_result)->tail_type();
    bool integral_value = set.value.is_int32() || set.value.is_int64();
    switch (type) {
      case ValueType::kInt32: {
        // Doubles are rejected on integer columns (silent fraction
        // truncation; an out-of-range double->int64 cast is UB).
        if (!integral_value) break;
        int64_t wide = set.value.ToInt64();
        if (wide < std::numeric_limits<int32_t>::min() ||
            wide > std::numeric_limits<int32_t>::max()) {
          return Status::InvalidArgument(
              StrFormat("value %lld overflows int32 column %s",
                        static_cast<long long>(wide), set.column.c_str()));
        }
        continue;
      }
      case ValueType::kInt64:
        if (!integral_value) break;
        continue;
      case ValueType::kFloat64:
        if (!integral_value && !set.value.is_double()) break;
        continue;
      case ValueType::kString:
        if (!set.value.is_string()) break;
        continue;
      default:
        break;
    }
    return Status::TypeMismatch(
        StrFormat("cannot SET %s:%s to %s", set.column.c_str(),
                  ValueTypeName(type), set.value.ToString().c_str()));
  }

  for (const Assignment& set : sets) {
    std::shared_ptr<Bat> bat = *rel->column(set.column);
    Oid base = bat->head_base();
    auto it = accels_.find(table + "." + set.column);
    ColumnAccessPath* path =
        (it != accels_.end() && it->second.path != nullptr)
            ? it->second.path.get()
            : nullptr;
    for (Oid oid : oids) {
      // Base first (write-through), then the accelerator's delta.
      CRACK_RETURN_NOT_OK(
          bat->SetValue(static_cast<size_t>(oid - base), set.value));
      result.io.tuples_written += 1;
      if (path != nullptr) {
        CRACK_RETURN_NOT_OK(path->Update(oid, set.value, &result.io));
      }
    }
  }

  result.count = oids.size();
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<std::vector<Oid>> AdaptiveStore::LiveOids(
    const std::string& table) const {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  const std::unordered_set<Oid>* tomb = TombstonesFor(table);
  std::vector<Oid> oids;
  oids.reserve(rel->num_rows() - (tomb == nullptr ? 0 : tomb->size()));
  Oid base = rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    Oid oid = base + i;
    if (tomb != nullptr && tomb->count(oid) > 0) continue;
    oids.push_back(oid);
  }
  return oids;
}

Result<uint64_t> AdaptiveStore::LiveRowCount(const std::string& table) const {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  const std::unordered_set<Oid>* tomb = TombstonesFor(table);
  return (*rel_result)->num_rows() - (tomb == nullptr ? 0 : tomb->size());
}

Status AdaptiveStore::MarkDeleted(const std::string& table,
                                  const std::vector<Oid>& oids) {
  IoStats io;
  auto removed = DeleteOidsInternal(table, oids, &io);
  if (!removed.ok()) return removed.status();
  total_io_ += io;
  return Status::OK();
}

Result<std::vector<Oid>> AdaptiveStore::DeletedOids(
    const std::string& table) const {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::vector<Oid> out;
  const std::unordered_set<Oid>* tomb = TombstonesFor(table);
  if (tomb != nullptr) {
    out.assign(tomb->begin(), tomb->end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

Result<QueryResult> AdaptiveStore::JoinEquals(const std::string& left_table,
                                              const std::string& left_column,
                                              const std::string& right_table,
                                              const std::string& right_column,
                                              Delivery delivery) {
  QueryResult result;
  WallTimer timer;
  CRACK_ASSIGN_OR_RETURN(
      std::vector<OidPair> pairs,
      JoinOidsInternal(left_table, left_column, right_table, right_column,
                       &result.io));
  result.count = pairs.size();
  if (delivery == Delivery::kMaterialize) {
    // Materialize left ⨯ right columns of matching tuples as a 2-column view
    // of the join keys (a full wide-row join is the engine layer's job).
    (void)delivery;
  }
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOids(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column) {
  IoStats io;
  auto out = JoinOidsInternal(left_table, left_column, right_table,
                              right_column, &io);
  total_io_ += io;
  return out;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOidsInternal(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    IoStats* stats) {
  auto left = ResolveColumn(left_table, left_column);
  if (!left.ok()) return left.status();
  auto right = ResolveColumn(right_table, right_column);
  if (!right.ok()) return right.status();

  if (options_.strategy != AccessStrategy::kCrack) {
    return HashJoinOids(*left, *right, stats);
  }

  std::string key = left_table + "." + left_column + "|" + right_table + "." +
                    right_column;
  auto it = join_cracks_.find(key);
  if (it == join_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(JoinCrackResult cracked,
                           CrackJoin(*left, *right, stats));
    if (options_.track_lineage) {
      PieceId lroot = lineage_.AddRoot(left_table + "." + left_column,
                                       (*left)->size());
      PieceId rroot = lineage_.AddRoot(right_table + "." + right_column,
                                       (*right)->size());
      (void)lineage_.AddCrack(
          CrackOp::kWedge, {lroot, rroot},
          {{key + " P1 (L match)", cracked.left.split},
           {key + " P2 (L rest)", (*left)->size() - cracked.left.split},
           {key + " P3 (R match)", cracked.right.split},
           {key + " P4 (R rest)", (*right)->size() - cracked.right.split}});
    }
    it = join_cracks_.emplace(key, std::move(cracked)).first;
  }
  return JoinMatchingAreas(it->second, stats);
}

Result<std::vector<GroupAggregate>> AdaptiveStore::GroupBy(
    const std::string& table, const std::string& group_column,
    const std::string& agg_column, AggKind kind) {
  auto grp = ResolveColumn(table, group_column);
  if (!grp.ok()) return grp.status();
  auto agg = ResolveColumn(table, agg_column);
  if (!agg.ok()) return agg.status();

  IoStats io;
  std::string key = table + "." + group_column;
  auto it = group_cracks_.find(key);
  if (it == group_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(GroupCrackResult cracked, CrackGroup(*grp, &io));
    if (options_.track_lineage && cracked.groups.size() <= 1024) {
      PieceId root = lineage_.AddRoot(key + " (pre-Ω)", (*grp)->size());
      std::vector<std::pair<std::string, uint64_t>> outputs;
      outputs.reserve(cracked.groups.size());
      for (const GroupPiece& g : cracked.groups) {
        outputs.emplace_back(
            StrFormat("%s=%lld", key.c_str(), static_cast<long long>(g.value)),
            g.size());
      }
      (void)lineage_.AddCrack(CrackOp::kOmega, {root}, outputs);
    }
    it = group_cracks_.emplace(key, std::move(cracked)).first;
  }
  auto out = AggregateGroups(it->second, *agg, kind, &io);
  total_io_ += io;
  return out;
}

Result<ProjectionCrackResult> AdaptiveStore::Project(
    const std::string& table, const std::vector<std::string>& attrs) {
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  IoStats io;
  auto out = CrackProjection(*rel, attrs, &io);
  if (out.ok() && options_.track_lineage) {
    PieceId root = lineage_.AddRoot(table + " (pre-Ψ)", (*rel)->num_rows());
    (void)lineage_.AddCrack(
        CrackOp::kPsi, {root},
        {{out->projected->name(), out->projected->num_rows()},
         {out->remainder->name(), out->remainder->num_rows()}});
  }
  total_io_ += io;
  return out;
}

Result<std::shared_ptr<Relation>> AdaptiveStore::MaterializeSelection(
    const std::string& table, const CrackSelection& selection,
    const std::string& result_name, IoStats* stats) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  auto out_result = Relation::Create(result_name, rel->schema());
  if (!out_result.ok()) return out_result.status();
  std::shared_ptr<Relation> out = *out_result;

  size_t n = selection.oids.size();
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const std::shared_ptr<Bat>& src = rel->column(c);
    const std::shared_ptr<Bat>& dst = out->column(c);
    Oid base = src->head_base();
    for (size_t i = 0; i < n; ++i) {
      size_t row = static_cast<size_t>(selection.oids.Get<Oid>(i) - base);
      Status st = dst->AppendValue(src->GetValue(row));
      if (!st.ok()) return st;
    }
  }
  if (stats != nullptr) {
    stats->tuples_read += n * rel->num_columns();
    stats->tuples_written += n * rel->num_columns();
  }
  return out;
}

Result<ColumnAccessPath*> AdaptiveStore::AccessPathFor(
    const std::string& table, const std::string& column) const {
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() || it->second.path == nullptr) {
    return Status::NotFound("no access path yet for " + table + "." + column);
  }
  return it->second.path.get();
}

Result<size_t> AdaptiveStore::NumPieces(const std::string& table,
                                        const std::string& column) const {
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() || it->second.path == nullptr) return size_t{1};
  return it->second.path->NumPieces();
}

Result<std::string> AdaptiveStore::ExplainColumn(
    const std::string& table, const std::string& column) const {
  auto bat = ResolveColumn(table, column);
  if (!bat.ok()) return bat.status();
  std::string out = StrFormat("%s.%s: %s, %zu tuples, strategy=%s\n",
                              table.c_str(), column.c_str(),
                              ValueTypeName((*bat)->tail_type()),
                              (*bat)->size(),
                              AccessStrategyName(options_.strategy));
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() || it->second.path == nullptr) {
    return out + "no accelerator yet (never queried)\n";
  }
  return out + it->second.path->Explain();
}

void AdaptiveStore::UpdateLineage(const std::string& table,
                                  const std::string& column,
                                  ColumnAccel* accel) {
  std::vector<PieceInfo> pieces = accel->path->Pieces();
  std::string prefix = table + "." + column;
  // Every current piece lies inside exactly one registered node (cuts only
  // ever subdivide). Group new pieces by enclosing registered range and log
  // one Ξ application per split node.
  std::map<std::pair<size_t, size_t>, std::vector<PieceInfo>> by_parent;
  for (const PieceInfo& p : pieces) {
    std::pair<size_t, size_t> self{p.begin, p.end};
    if (accel->piece_nodes.count(self) > 0) continue;  // unchanged piece
    // Find the enclosing registered node.
    for (const auto& [range, node] : accel->piece_nodes) {
      if (range.first <= p.begin && p.end <= range.second) {
        by_parent[range].push_back(p);
        break;
      }
    }
  }
  for (const auto& [range, children] : by_parent) {
    PieceId parent = accel->piece_nodes[range];
    std::vector<std::pair<std::string, uint64_t>> outputs;
    outputs.reserve(children.size());
    for (const PieceInfo& p : children) {
      outputs.emplace_back(
          StrFormat("%s[%zu,%zu)", prefix.c_str(), p.begin, p.end),
          p.size());
    }
    auto ids = lineage_.AddCrack(CrackOp::kXi, {parent}, outputs);
    CRACK_DCHECK(ids.ok());
    accel->piece_nodes.erase(range);
    for (size_t i = 0; i < children.size(); ++i) {
      accel->piece_nodes[{children[i].begin, children[i].end}] = (*ids)[i];
    }
  }
}

}  // namespace crackstore
