// Copyright 2026 The CrackStore Authors

#include "core/adaptive_store.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <limits>
#include <numeric>

#include "core/oid_set_ops.h"
#include "core/task_pool.h"
#include "durability/checkpoint.h"
#include "obs/instruments.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

namespace {

/// Intersects per-conjunct oid lists smallest-first (galloping when the
/// sizes are skewed), charging the intersection reads to `result->io`.
/// Shared by the serial and concurrent conjunction paths.
void IntersectConjunctionLegs(std::vector<std::vector<Oid>> per_column,
                              Delivery delivery, QueryResult* result) {
  std::sort(per_column.begin(), per_column.end(),
            [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
              return a.size() < b.size();
            });
  std::vector<Oid> survivors = std::move(per_column.front());
  for (size_t c = 1; c < per_column.size() && !survivors.empty(); ++c) {
    // Galloping kicks in when the survivor set is already much smaller than
    // the next list (the common shape: one tight predicate prunes the
    // rest); it touches O(m log(n/m)) tuples instead of the merge's n + m.
    size_t small = std::min(survivors.size(), per_column[c].size());
    size_t large = std::max(survivors.size(), per_column[c].size());
    if (ShouldGallop(small, large)) {
      uint64_t log_ratio = 1;
      for (size_t r = large / small; r > 1; r >>= 1) ++log_ratio;
      result->io.tuples_read += small * log_ratio;
    } else {
      result->io.tuples_read += small + large;
    }
    survivors = IntersectSorted(survivors, per_column[c]);
  }
  result->count = survivors.size();
  if (delivery == Delivery::kView) {
    result->scan_oids = std::move(survivors);
  }
}

/// Validates every SET clause of an UPDATE up front so a bad column name, a
/// mistyped value or an overflowing literal cannot leave the statement
/// half-applied. Shared by the serial and concurrent write paths.
Status ValidateAssignments(const Relation& rel,
                           const std::vector<AdaptiveStore::Assignment>& sets) {
  for (const AdaptiveStore::Assignment& set : sets) {
    auto bat_result = rel.column(set.column);
    if (!bat_result.ok()) return bat_result.status();
    ValueType type = (*bat_result)->tail_type();
    bool integral_value = set.value.is_int32() || set.value.is_int64();
    switch (type) {
      case ValueType::kInt32: {
        // Doubles are rejected on integer columns (silent fraction
        // truncation; an out-of-range double->int64 cast is UB).
        if (!integral_value) break;
        int64_t wide = set.value.ToInt64();
        if (wide < std::numeric_limits<int32_t>::min() ||
            wide > std::numeric_limits<int32_t>::max()) {
          return Status::InvalidArgument(
              StrFormat("value %lld overflows int32 column %s",
                        static_cast<long long>(wide), set.column.c_str()));
        }
        continue;
      }
      case ValueType::kInt64:
        if (!integral_value) break;
        continue;
      case ValueType::kFloat64:
        if (!integral_value && !set.value.is_double()) break;
        continue;
      case ValueType::kString:
        if (!set.value.is_string()) break;
        continue;
      default:
        break;
    }
    return Status::TypeMismatch(
        StrFormat("cannot SET %s:%s to %s", set.column.c_str(),
                  ValueTypeName(type), set.value.ToString().c_str()));
  }
  return Status::OK();
}

/// First oid of `rel`'s dense head (0 for empty schemas).
Oid BaseOid(const Relation& rel) {
  return rel.num_columns() > 0 ? rel.column(size_t{0})->head_base() : 0;
}

}  // namespace

std::vector<Oid> QueryResult::CollectOids() const& {
  if (!has_selection) {
    if (scan_oids.empty() && has_span_set && count > 0) {
      // Span-only answer (e.g. a kCount-delivered leg that kept its span
      // set): this is the true materialization boundary.
      obs::RecordMaterializedOids(count);
      return span_set.ToOids();
    }
    return scan_oids;
  }
  std::vector<Oid> oids;
  oids.reserve(selection.count());
  for (size_t i = 0; i < selection.count(); ++i) {
    oids.push_back(selection.oids.Get<Oid>(i));
  }
  std::sort(oids.begin(), oids.end());
  obs::RecordMaterializedOids(oids.size());
  return oids;
}

std::vector<Oid> QueryResult::CollectOids() && {
  if (!has_selection && !scan_oids.empty()) return std::move(scan_oids);
  return static_cast<const QueryResult&>(*this).CollectOids();
}

AdaptiveStore::AdaptiveStore(AdaptiveStoreOptions options)
    : options_(options) {
  // Lineage bookkeeping diffs whole piece tables after every select, which
  // cannot be kept consistent while neighbors crack pieces concurrently;
  // concurrent mode trades the DAG away (README "Concurrency model").
  if (options_.concurrent) options_.track_lineage = false;
  // Mirror into the unified config so Configure/db_options() agree with the
  // running store even for legacy bare-constructed (in-memory) instances.
  db_options_.strategy = options_.strategy;
  db_options_.policy = options_.policy;
  db_options_.merge_budget = options_.merge_budget;
  db_options_.delta_merge = options_.delta_merge;
  db_options_.track_lineage = options_.track_lineage;
  db_options_.concurrent = options_.concurrent;
  db_options_.autovacuum_version_threshold = 0;  // legacy: explicit VACUUM
}

AdaptiveStore::~AdaptiveStore() {
  Status s = Close();
  (void)s;
}

Status AdaptiveStore::AddTable(std::shared_ptr<Relation> relation) {
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  if (tables_.count(relation->name()) > 0) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  std::string name = relation->name();
  Oid base = BaseOid(*relation);
  size_t rows = relation->num_rows();
  const Relation* rel = relation.get();
  tables_.emplace(name, std::move(relation));
  versions_.emplace(name, std::make_unique<VersionedTable>(base, rows));
  if (rl.owns_lock()) rl.unlock();
  if (wal_ != nullptr && !replaying_) {
    // A table created after the last checkpoint must survive a crash: log
    // its full image (schema + rows) through the checkpoint codec.
    durability::TableSnapshot snap;
    snap.rel = rel;
    snap.head_base = base;
    std::string image;
    durability::EncodeTableImage(snap, &image);
    CRACK_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTableImage(image));
    CRACK_RETURN_NOT_OK(wal_->CommitDurable(lsn));
  }
  return Status::OK();
}

Result<std::shared_ptr<Relation>> AdaptiveStore::table(
    const std::string& name) const {
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::string> AdaptiveStore::TableNames() const {
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(name);
  return out;
}

Result<std::shared_ptr<Bat>> AdaptiveStore::ResolveColumn(
    const std::string& table, const std::string& column) const {
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  return (*rel)->column(column);
}

AccessPathConfig AdaptiveStore::PathConfigFor(const std::string& key) const {
  AccessPathConfig config = options_.path_config();
  auto it = recovered_policies_.find(key);
  if (it != recovered_policies_.end()) {
    // Resume what the previous run's workload taught this column rather
    // than re-learning from the store-wide default.
    config.policy.policy = it->second.first;
    config.policy.progressive_budget = it->second.second;
  }
  return config;
}

Result<AdaptiveStore::ColumnAccel*> AdaptiveStore::Accel(
    const std::string& table, const std::string& column,
    const std::shared_ptr<Bat>& bat) {
  const std::string key = table + "." + column;
  ColumnAccel& accel = accels_[key];
  if (accel.path == nullptr) {
    CRACK_ASSIGN_OR_RETURN(accel.path,
                           CreateColumnAccessPath(bat, PathConfigFor(key)));
    // A path born after a vacuum must not resurrect purged rows: the lazy
    // accelerator build reads the append-only base, which still holds them
    // physically. (Versioned-but-unpurged deletes need no replay — the
    // SnapshotView filters them at read time.)
    VersionedTable* vt = VersionsIfAny(table);
    if (vt != nullptr) {
      for (Oid oid : vt->PurgedOids()) {
        Status st = accel.path->Delete(oid);
        CRACK_DCHECK(st.ok() || st.IsNotFound());
        (void)st;
      }
    }
  }
  return &accel;
}

// --- MVCC machinery ---------------------------------------------------------

VersionedTable* AdaptiveStore::VersionsFor(const std::string& table) const {
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    Oid base = 0;
    size_t rows = 0;
    auto t = tables_.find(table);
    if (t != tables_.end()) {
      base = BaseOid(*t->second);
      rows = t->second->num_rows();
    }
    it = versions_
             .emplace(table, std::make_unique<VersionedTable>(base, rows))
             .first;
  }
  return it->second.get();
}

VersionedTable* AdaptiveStore::VersionsIfAny(const std::string& table) const {
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  auto it = versions_.find(table);
  return it == versions_.end() ? nullptr : it->second.get();
}

Result<Snapshot> AdaptiveStore::ReadSnapshot(TxnId txn) const {
  if (txn == kNoTxn) {
    // Under commit_mu_: a snapshot must never observe a commit timestamp
    // whose version stamps have not landed yet (see commit_mu_).
    std::lock_guard<std::mutex> cl(commit_mu_);
    return txn_mgr_.LatestSnapshot();
  }
  return txn_mgr_.SnapshotOf(txn);
}

SnapshotView AdaptiveStore::ViewForColumn(const std::string& table,
                                          const std::string& column,
                                          const Snapshot& snap) const {
  VersionedTable* vt = VersionsIfAny(table);
  if (vt == nullptr) return SnapshotView();
  // Concurrent stores always get an active view: rows appended while the
  // statement runs must fall beyond the view's horizon even when no
  // version state existed at build time.
  return vt->ViewFor(snap, column, /*force_active=*/options_.concurrent);
}

Result<SnapshotView> AdaptiveStore::ReadView(const std::string& table,
                                             const std::string& column,
                                             TxnId txn) const {
  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  return ViewForColumn(table, column, snap);
}

Result<TxnId> AdaptiveStore::Begin() {
  TxnId txn;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> cl(commit_mu_);  // see commit_mu_
    txn = txn_mgr_.Begin();
    CRACK_ASSIGN_OR_RETURN(snap, txn_mgr_.SnapshotOf(txn));
  }
  std::lock_guard<std::mutex> tl(txn_states_mu_);
  TxnState state;
  state.snap = snap;
  txn_states_.emplace(txn, std::move(state));
  return txn;
}

bool AdaptiveStore::TxnActive(TxnId txn) const {
  return txn != kNoTxn && txn_mgr_.IsActive(txn);
}

Result<AdaptiveStore::WriteScope> AdaptiveStore::BeginWriteScope(TxnId txn) {
  WriteScope scope;
  if (txn == kNoTxn) {
    // Auto-commit: the statement is its own transaction — its writes
    // become visible atomically when FinishWriteScope commits, and a
    // failed statement leaves no visibility trace.
    {
      std::lock_guard<std::mutex> cl(commit_mu_);  // see commit_mu_
      scope.txn = txn_mgr_.Begin();
      CRACK_ASSIGN_OR_RETURN(scope.snap, txn_mgr_.SnapshotOf(scope.txn));
    }
    scope.implicit = true;
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    TxnState state;
    state.snap = scope.snap;
    state.implicit = true;
    txn_states_.emplace(scope.txn, std::move(state));
    return scope;
  }
  std::lock_guard<std::mutex> tl(txn_states_mu_);
  auto it = txn_states_.find(txn);
  if (it == txn_states_.end()) {
    return Status::NotFound(
        StrFormat("no active transaction %llu",
                  static_cast<unsigned long long>(txn)));
  }
  if (it->second.abort_only) {
    return Status::Aborted(
        "transaction hit a write-write conflict; roll it back");
  }
  scope.txn = txn;
  scope.snap = it->second.snap;
  scope.implicit = false;
  return scope;
}

Status AdaptiveStore::FinishWriteScope(const WriteScope& scope,
                                       Status op_status) {
  if (scope.implicit) {
    if (op_status.ok()) return Commit(scope.txn);
    Status rb = Rollback(scope.txn);
    CRACK_DCHECK(rb.ok());
    (void)rb;
    return op_status;
  }
  if (op_status.IsAborted()) {
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    auto it = txn_states_.find(scope.txn);
    if (it != txn_states_.end()) it->second.abort_only = true;
  }
  return op_status;
}

void AdaptiveStore::Touch(const WriteScope& scope, const std::string& table,
                          Oid oid) {
  std::lock_guard<std::mutex> tl(txn_states_mu_);
  auto it = txn_states_.find(scope.txn);
  if (it != txn_states_.end()) it->second.touched[table].push_back(oid);
}

void AdaptiveStore::PushUndo(const WriteScope& scope, UndoRecord record) {
  std::lock_guard<std::mutex> tl(txn_states_mu_);
  auto it = txn_states_.find(scope.txn);
  if (it != txn_states_.end()) it->second.undo.push_back(std::move(record));
}

void AdaptiveStore::PushRedo(const WriteScope& scope, durability::WalOp op) {
  if (wal_ == nullptr) return;
  std::lock_guard<std::mutex> tl(txn_states_mu_);
  auto it = txn_states_.find(scope.txn);
  if (it != txn_states_.end()) it->second.redo.push_back(std::move(op));
}

Status AdaptiveStore::Commit(TxnId txn) {
  if (txn == kNoTxn) {
    return Status::InvalidArgument("auto-commit has no transaction to commit");
  }
  bool abort_only = false;
  {
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    auto it = txn_states_.find(txn);
    if (it == txn_states_.end()) {
      return Status::NotFound(
          StrFormat("no active transaction %llu",
                    static_cast<unsigned long long>(txn)));
    }
    abort_only = it->second.abort_only;
  }
  if (abort_only) {
    CRACK_RETURN_NOT_OK(Rollback(txn));
    return Status::Aborted(
        "transaction hit a write-write conflict and was rolled back");
  }
  TxnState state;
  {
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    auto it = txn_states_.find(txn);
    state = std::move(it->second);
    txn_states_.erase(it);
  }
  // Formal first-committer-wins validation. Write admission already locks
  // rows eagerly, so this cannot fire today — it is the commit-time guard
  // the protocol is defined by.
  for (const auto& [table, oids] : state.touched) {
    Status st = VersionsFor(table)->ValidateWriteSet(state.snap, txn, oids);
    if (!st.ok()) {
      {
        std::lock_guard<std::mutex> tl(txn_states_mu_);
        txn_states_.emplace(txn, std::move(state));
      }
      CRACK_RETURN_NOT_OK(Rollback(txn));
      return st;
    }
  }
  uint64_t wal_lsn = 0;
  {
    // Atomic with respect to snapshot acquisition: no reader may pin a
    // read_ts covering `cts` before every marker is stamped.
    std::lock_guard<std::mutex> cl(commit_mu_);
    CRACK_ASSIGN_OR_RETURN(Ts cts, txn_mgr_.FinishCommit(txn));
    for (const auto& [table, oids] : state.touched) {
      VersionsFor(table)->CommitTxn(txn, cts, oids);
    }
    // Append the redo record while still inside commit_mu_, so the log
    // holds commit records in commit-stamp order (replay depends on it).
    // The fsync happens after release — appends are cheap, stalls are not.
    if (wal_ != nullptr && !state.redo.empty()) {
      durability::WalCommit record;
      record.commit_ts = cts;
      record.ops = std::move(state.redo);
      CRACK_ASSIGN_OR_RETURN(wal_lsn, wal_->AppendCommit(record));
    }
  }
  if (wal_lsn != 0) CRACK_RETURN_NOT_OK(wal_->CommitDurable(wal_lsn));
  MaybeRunMaintenance();
  return Status::OK();
}

Status AdaptiveStore::Rollback(TxnId txn) {
  if (txn == kNoTxn) {
    return Status::InvalidArgument(
        "auto-commit has no transaction to roll back");
  }
  TxnState state;
  {
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    auto it = txn_states_.find(txn);
    if (it == txn_states_.end()) {
      return Status::NotFound(
          StrFormat("no active transaction %llu",
                    static_cast<unsigned long long>(txn)));
    }
    state = std::move(it->second);
    txn_states_.erase(it);
  }
  // Physical value restores need the store quiesced in concurrent mode
  // (they bypass the per-column latch protocol).
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  return RollbackLocked(txn, &state);
}

Status AdaptiveStore::RollbackLocked(TxnId txn, TxnState* state) {
  Status result = Status::OK();
  // Undo physical update writes in reverse order, so multiple writes to
  // one slot unwind to the oldest value.
  for (auto it = state->undo.rbegin(); it != state->undo.rend(); ++it) {
    auto rel = this->table(it->table);
    if (!rel.ok()) {
      result = rel.status();
      continue;
    }
    auto bat = (*rel)->column(it->column);
    if (!bat.ok()) {
      result = bat.status();
      continue;
    }
    Oid base = (*bat)->head_base();
    Status st =
        (*bat)->SetValue(static_cast<size_t>(it->oid - base), it->old_value);
    if (!st.ok()) result = st;
    ColumnAccessPath* path = nullptr;
    {
      std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
      if (options_.concurrent) rl.lock();
      auto ait = accels_.find(it->table + "." + it->column);
      if (ait != accels_.end() &&
          (options_.concurrent
               ? ait->second.has_path.load(std::memory_order_acquire)
               : ait->second.path != nullptr)) {
        path = ait->second.path.get();
      }
    }
    if (path != nullptr) {
      st = path->Update(it->oid, it->old_value);
      if (!st.ok() && !st.IsNotFound()) result = st;
    }
  }
  for (const auto& [table, oids] : state->touched) {
    VersionsFor(table)->RollbackTxn(txn, oids);
  }
  Status fin = txn_mgr_.FinishRollback(txn);
  if (!fin.ok()) result = fin;
  return result;
}

Result<uint64_t> AdaptiveStore::StampDeletes(const std::string& table,
                                             const WriteScope& scope,
                                             const std::vector<Oid>& oids,
                                             IoStats* stats) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  VersionedTable* vt = VersionsFor(table);
  Oid base = BaseOid(**rel_result);
  Oid end = vt->horizon();
  uint64_t removed = 0;
  for (Oid oid : oids) {
    if (oid < base || oid >= end) {
      return Status::InvalidArgument(
          StrFormat("oid %llu outside %s's row range",
                    static_cast<unsigned long long>(oid), table.c_str()));
    }
    std::string why;
    VersionedTable::Admission adm =
        vt->AdmitWrite(oid, scope.snap, scope.txn, &why);
    if (adm == VersionedTable::Admission::kSkip) continue;  // already dead
    if (adm == VersionedTable::Admission::kConflict) {
      if (scope.implicit) continue;  // pre-MVCC race semantics: skip the row
      return Status::Aborted("DELETE " + why);
    }
    Touch(scope, table, oid);
    vt->StampDelete(oid, TxnStamp(scope.txn));
    if (wal_ != nullptr) {
      durability::WalOp op;
      op.kind = durability::WalOpKind::kDelete;
      op.table = table;
      op.oid = oid;
      PushRedo(scope, std::move(op));
    }
    ++removed;
    if (stats != nullptr) ++stats->tuples_written;
  }
  return removed;
}

// --- concurrent-mode machinery ---------------------------------------------

void AdaptiveStore::ConcurrentEntries(const std::string& table,
                                      const std::string& column,
                                      ColumnAccel** accel, TableState** ts) {
  std::lock_guard<std::mutex> rl(registry_mu_);
  *accel = &accels_[table + "." + column];
  *ts = &table_states_[table];
}

AdaptiveStore::TableState* AdaptiveStore::TableStateFor(
    const std::string& table) const {
  std::lock_guard<std::mutex> rl(registry_mu_);
  return &table_states_[table];
}

Status AdaptiveStore::CreatePathLocked(const std::string& table,
                                       const std::string& column,
                                       ColumnAccel* accel,
                                       const std::shared_ptr<Bat>& bat,
                                       TableState* ts) {
  if (accel->has_path.load(std::memory_order_acquire)) return Status::OK();
  (void)ts;
  CRACK_ASSIGN_OR_RETURN(
      accel->path,
      CreateColumnAccessPath(bat, PathConfigFor(table + "." + column)));
  // A path born after a vacuum must not resurrect purged rows: replay them
  // before publishing the path (versioned deletes are filtered by the
  // SnapshotView at read time and need no replay).
  VersionedTable* vt = VersionsIfAny(table);
  if (vt != nullptr) {
    for (Oid oid : vt->PurgedOids()) {
      Status st = accel->path->Delete(oid);
      CRACK_DCHECK(st.ok() || st.IsNotFound());
      (void)st;
    }
  }
  accel->has_path.store(true, std::memory_order_release);
  return Status::OK();
}

Status AdaptiveStore::MaintainColumn(ColumnAccel* accel, TableState* ts,
                                     IoStats* stats) {
  if (!accel->has_path.load(std::memory_order_acquire)) return Status::OK();
  if (!accel->path->WantsMaintenance()) return Status::OK();
  std::unique_lock<std::shared_mutex> col(accel->latch);
  std::shared_lock<std::shared_mutex> base(ts->base_latch);
  return accel->path->FlushDeltas(stats);
}

Status AdaptiveStore::FinishSelectConcurrent(const std::string& table,
                                             const std::string& column,
                                             AccessSelection sel,
                                             Delivery delivery,
                                             QueryResult* result) {
  result->count = sel.count;
  if (sel.contiguous) {
    // Never let a zero-copy view escape the latch scope: the data behind it
    // may be shuffled by a neighbor's crack the moment the latch drops.
    if (delivery != Delivery::kCount) {
      result->scan_oids.reserve(sel.view.oids.size());
      for (size_t i = 0; i < sel.view.oids.size(); ++i) {
        result->scan_oids.push_back(sel.view.oids.Get<Oid>(i));
      }
      std::sort(result->scan_oids.begin(), result->scan_oids.end());
      obs::RecordMaterializedOids(result->scan_oids.size());
    }
  } else {
    result->scan_oids = std::move(sel.oids);
    obs::RecordMaterializedOids(result->scan_oids.size());
  }
  // Span sets never escape here either: they pin the permuted oid map by
  // shared_ptr, but its contents reshuffle once the latch drops.
  if (delivery == Delivery::kMaterialize) {
    auto rel = this->table(table);
    if (!rel.ok()) return rel.status();
    auto out = Relation::Create(table + "_" + column + "_result",
                                (*rel)->schema());
    if (!out.ok()) return out.status();
    for (Oid oid : result->scan_oids) {
      CRACK_RETURN_NOT_OK(
          (*out)->AppendRow((*rel)->GetRow(static_cast<size_t>(oid))));
      result->io.tuples_read += (*rel)->num_columns();
      result->io.tuples_written += (*rel)->num_columns();
    }
    result->materialized = *out;
  }
  return Status::OK();
}

Result<QueryResult> AdaptiveStore::SelectRangeConcurrent(
    const std::string& table, const std::string& column,
    const TypedRange& range, Delivery delivery, const Snapshot& snap) {
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("select(shared)", table + "." + column,
                            &result.io);
  ColumnAccel* accel;
  TableState* ts;
  ConcurrentEntries(table, column, &accel, &ts);

  // The MVCC read filter, captured before any latch: its horizon hides
  // rows appended after this point, so the filter needs no base latch.
  SnapshotView view = ViewForColumn(table, column, snap);
  const SnapshotView* view_ptr = view.active() ? &view : nullptr;

  // Fold deltas the shared path must not (ripple / threshold / immediate
  // folds all run here, under the exclusive latch).
  CRACK_RETURN_NOT_OK(MaintainColumn(accel, ts, &result.io));

  bool want_oids = delivery != Delivery::kCount;
  bool shared_mode =
      accel->has_path.load(std::memory_order_acquire) &&
      accel->path->concurrency() == PathConcurrency::kSharedReads &&
      accel->path->SharedSelectReady();
  if (shared_mode) {
    std::shared_lock<std::shared_mutex> col(accel->latch);
    std::shared_lock<std::shared_mutex> base(ts->base_latch);
    CRACK_ASSIGN_OR_RETURN(
        AccessSelection sel,
        accel->path->SelectTyped(range, want_oids, &result.io, view_ptr));
    CRACK_RETURN_NOT_OK(FinishSelectConcurrent(table, column, std::move(sel),
                                               delivery, &result));
  } else {
    std::unique_lock<std::shared_mutex> col(accel->latch);
    std::shared_lock<std::shared_mutex> base(ts->base_latch);
    CRACK_RETURN_NOT_OK(CreatePathLocked(table, column, accel, bat, ts));
    CRACK_ASSIGN_OR_RETURN(
        AccessSelection sel,
        accel->path->SelectTyped(range, want_oids, &result.io, view_ptr));
    CRACK_RETURN_NOT_OK(FinishSelectConcurrent(table, column, std::move(sel),
                                               delivery, &result));
  }

  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<ColumnAggregates> AdaptiveStore::AggregateRangeConcurrent(
    const std::string& table, const std::string& column,
    const RangeBounds& bounds, const Snapshot& snap) {
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;

  IoStats io;
  obs::TraceSpan trace_span("aggregate(shared)", table + "." + column, &io);
  ColumnAccel* accel;
  TableState* ts;
  ConcurrentEntries(table, column, &accel, &ts);

  SnapshotView view = ViewForColumn(table, column, snap);
  const SnapshotView* view_ptr = view.active() ? &view : nullptr;

  CRACK_RETURN_NOT_OK(MaintainColumn(accel, ts, &io));

  bool shared_mode =
      accel->has_path.load(std::memory_order_acquire) &&
      accel->path->concurrency() == PathConcurrency::kSharedReads &&
      accel->path->SharedSelectReady();
  Result<ColumnAggregates> out = ColumnAggregates{};
  if (shared_mode) {
    std::shared_lock<std::shared_mutex> col(accel->latch);
    std::shared_lock<std::shared_mutex> base(ts->base_latch);
    out = accel->path->AggregateRange(bounds, &io, view_ptr);
  } else {
    std::unique_lock<std::shared_mutex> col(accel->latch);
    std::shared_lock<std::shared_mutex> base(ts->base_latch);
    CRACK_RETURN_NOT_OK(CreatePathLocked(table, column, accel, bat, ts));
    out = accel->path->AggregateRange(bounds, &io, view_ptr);
  }
  if (!out.ok()) return out.status();
  out->io = io;
  obs::RecordAggPushdown(out->pushdown_rows);
  AddIo(io);
  return out;
}

Result<QueryResult> AdaptiveStore::SelectConjunctionLocked(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    Delivery delivery, const Snapshot& snap) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("conjunction needs at least one predicate");
  }
  if (delivery == Delivery::kMaterialize) {
    return Status::Unimplemented(
        "materialize a conjunction via kView + MaterializeSelection");
  }
  if (conjuncts.size() == 1) {
    return SelectRangeConcurrent(table, conjuncts[0].column,
                                 conjuncts[0].range, delivery, snap);
  }

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("conjunction(shared)", table, &result.io);

  // Fan the conjunction legs across the task pool: each leg latches only
  // its own column, so legs over different columns crack concurrently.
  struct Leg {
    Status status;
    IoStats io;
    std::vector<Oid> oids;
  };
  std::vector<Leg> legs(conjuncts.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(conjuncts.size());
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    tasks.emplace_back([this, &table, &conjuncts, &legs, &snap, i] {
      auto qr = SelectRangeConcurrent(table, conjuncts[i].column,
                                      conjuncts[i].range, Delivery::kView,
                                      snap);
      if (!qr.ok()) {
        legs[i].status = qr.status();
        return;
      }
      legs[i].io = qr->io;
      legs[i].oids = std::move(*qr).CollectOids();
    });
  }
  TaskPool::Global()->RunBatch(std::move(tasks));

  std::vector<std::vector<Oid>> per_column;
  per_column.reserve(legs.size());
  for (Leg& leg : legs) {
    CRACK_RETURN_NOT_OK(leg.status);
    result.io += leg.io;
    per_column.push_back(std::move(leg.oids));
  }
  IntersectConjunctionLegs(std::move(per_column), delivery, &result);

  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<QueryResult> AdaptiveStore::InsertConcurrent(const std::string& table,
                                                    std::vector<Value> values,
                                                    const WriteScope& scope) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("insert(shared)", table, &result.io);
  CRACK_RETURN_NOT_OK(CoerceRow(rel->schema(), &values));

  size_t ncols = rel->num_columns();
  std::vector<ColumnAccel*> accels(ncols);
  TableState* ts;
  {
    std::lock_guard<std::mutex> rl(registry_mu_);
    for (size_t c = 0; c < ncols; ++c) {
      accels[c] = &accels_[table + "." + rel->schema().column(c).name];
    }
    ts = &table_states_[table];
  }
  VersionedTable* vt = VersionsFor(table);
  // Latch acquisition in key (= column-name) order; pathless columns take
  // the exclusive latch so no path can be created (and built from a
  // half-appended base) while the row lands.
  std::vector<size_t> order(ncols);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rel->schema().column(a).name < rel->schema().column(b).name;
  });

  Oid oid = 0;
  {
    std::vector<std::shared_lock<std::shared_mutex>> shared_locks;
    std::vector<std::unique_lock<std::shared_mutex>> unique_locks;
    for (size_t idx : order) {
      ColumnAccel* accel = accels[idx];
      bool shared = accel->has_path.load(std::memory_order_acquire) &&
                    accel->path->concurrency() ==
                        PathConcurrency::kSharedReads;
      if (shared) {
        shared_locks.emplace_back(accel->latch);
      } else {
        unique_locks.emplace_back(accel->latch);
      }
    }
    std::unique_lock<std::shared_mutex> base(ts->base_latch);

    // Stamp before the physical append: any reader that can observe the
    // row physically must find its (uncommitted) version stamp.
    oid = BaseOid(*rel) + rel->num_rows();
    vt->NoteInsert(oid, TxnStamp(scope.txn));
    Touch(scope, table, oid);  // with the stamp: rollback must revert it
    CRACK_RETURN_NOT_OK(rel->AppendRow(values));
    result.io.tuples_written += ncols;
    for (size_t c = 0; c < ncols; ++c) {
      // Re-read under the held latch: a path that appeared since the mode
      // snapshot sits behind our exclusive latch and gets notified; one
      // that never appeared will lazy-build from the appended base.
      if (!accels[c]->has_path.load(std::memory_order_acquire)) continue;
      CRACK_RETURN_NOT_OK(
          accels[c]->path->Insert(values[c], oid, &result.io));
    }
  }
  if (wal_ != nullptr) {
    durability::WalOp op;
    op.kind = durability::WalOpKind::kInsert;
    op.table = table;
    op.oid = oid;
    op.row = values;  // post-coercion: replay appends them verbatim
    PushRedo(scope, std::move(op));
  }
  // Post-statement folds (immediate / threshold) outside the DML latches.
  for (size_t c = 0; c < ncols; ++c) {
    CRACK_RETURN_NOT_OK(MaintainColumn(accels[c], ts, &result.io));
  }

  result.count = 1;
  result.inserted_oid = oid;
  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<QueryResult> AdaptiveStore::DeleteConcurrent(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    const WriteScope& scope) {
  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("delete(shared)", table, &result.io);
  std::vector<Oid> oids;
  if (conjuncts.empty()) {
    CRACK_ASSIGN_OR_RETURN(oids, LiveOidsLocked(table, scope.snap));
  } else {
    // The WHERE is a read like any other: it cracks the referenced columns
    // on its way to the victim set.
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr,
        SelectConjunctionLocked(table, conjuncts, Delivery::kView,
                                scope.snap));
    result.io += qr.io;
    oids = std::move(qr).CollectOids();
  }
  // Deletes are version stamps only — no access-path latches needed; the
  // rows stay physically in place until vacuum folds them out.
  CRACK_ASSIGN_OR_RETURN(result.count,
                         StampDeletes(table, scope, oids, &result.io));
  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<QueryResult> AdaptiveStore::UpdateConcurrent(
    const std::string& table, const std::vector<Assignment>& sets,
    const std::vector<ColumnRange>& conjuncts, const WriteScope& scope) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("update(shared)", table, &result.io);
  std::vector<Oid> oids;
  if (conjuncts.empty()) {
    CRACK_ASSIGN_OR_RETURN(oids, LiveOidsLocked(table, scope.snap));
  } else {
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr,
        SelectConjunctionLocked(table, conjuncts, Delivery::kView,
                                scope.snap));
    result.io += qr.io;
    oids = std::move(qr).CollectOids();
  }

  CRACK_RETURN_NOT_OK(ValidateAssignments(*rel, sets));

  std::vector<ColumnAccel*> accels(sets.size());
  // Distinct latch set, already in key order: duplicate SET clauses on one
  // column are legal (last one wins), but a shared_mutex must never be
  // acquired twice by one thread.
  std::map<std::string, ColumnAccel*> distinct;
  TableState* ts;
  {
    std::lock_guard<std::mutex> rl(registry_mu_);
    for (size_t s = 0; s < sets.size(); ++s) {
      accels[s] = &accels_[table + "." + sets[s].column];
      distinct[sets[s].column] = accels[s];
    }
    ts = &table_states_[table];
  }
  VersionedTable* vt = VersionsFor(table);

  uint64_t applied = 0;
  {
    std::vector<std::shared_lock<std::shared_mutex>> shared_locks;
    std::vector<std::unique_lock<std::shared_mutex>> unique_locks;
    for (const auto& [name, accel] : distinct) {
      bool shared = accel->has_path.load(std::memory_order_acquire) &&
                    accel->path->concurrency() ==
                        PathConcurrency::kSharedReads;
      if (shared) {
        shared_locks.emplace_back(accel->latch);
      } else {
        unique_locks.emplace_back(accel->latch);
      }
    }
    // Base exclusive: the slot overwrites must not race base readers.
    std::unique_lock<std::shared_mutex> base(ts->base_latch);

    std::vector<std::shared_ptr<Bat>> bats(sets.size());
    for (size_t s = 0; s < sets.size(); ++s) {
      bats[s] = *rel->column(sets[s].column);
    }
    for (Oid oid : oids) {
      // Write admission revalidates liveness (the row may have died
      // between the WHERE select and this write phase) and detects
      // write-write conflicts first-committer-wins.
      std::string why;
      VersionedTable::Admission adm =
          vt->AdmitWrite(oid, scope.snap, scope.txn, &why);
      if (adm == VersionedTable::Admission::kSkip) continue;
      if (adm == VersionedTable::Admission::kConflict) {
        if (scope.implicit) continue;  // pre-MVCC race semantics
        return Status::Aborted("UPDATE " + why);
      }
      Touch(scope, table, oid);
      bool row_applied = true;
      for (size_t s = 0; s < sets.size(); ++s) {
        Oid base_oid = bats[s]->head_base();
        size_t row = static_cast<size_t>(oid - base_oid);
        Value old_value = bats[s]->GetValue(row);
        vt->StampUpdate(oid, sets[s].column, old_value,
                        TxnStamp(scope.txn));
        PushUndo(scope, UndoRecord{table, sets[s].column, oid,
                                   std::move(old_value)});
        CRACK_RETURN_NOT_OK(bats[s]->SetValue(row, sets[s].value));
        if (wal_ != nullptr) {
          durability::WalOp op;
          op.kind = durability::WalOpKind::kUpdate;
          op.table = table;
          op.oid = oid;
          op.column = sets[s].column;
          op.value = sets[s].value;
          PushRedo(scope, std::move(op));
        }
        result.io.tuples_written += 1;
        if (!accels[s]->has_path.load(std::memory_order_acquire)) continue;
        Status st = accels[s]->path->Update(oid, sets[s].value, &result.io);
        if (st.IsNotFound()) {
          // The path believes the row is physically dead (vacuum-purged
          // under our feet); skip the row rather than aborting the
          // statement half-applied.
          row_applied = false;
          continue;
        }
        CRACK_RETURN_NOT_OK(st);
      }
      if (row_applied) ++applied;
    }
  }
  for (size_t s = 0; s < sets.size(); ++s) {
    CRACK_RETURN_NOT_OK(MaintainColumn(accels[s], ts, &result.io));
  }

  result.count = applied;
  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<std::vector<Oid>> AdaptiveStore::LiveOidsLocked(
    const std::string& table, const Snapshot& snap) const {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  TableState* ts = TableStateFor(table);
  VersionedTable* vt = VersionsIfAny(table);
  std::shared_lock<std::shared_mutex> base(ts->base_latch);
  std::vector<Oid> oids;
  oids.reserve(rel->num_rows());
  Oid base_oid = BaseOid(*rel);
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    Oid oid = base_oid + i;
    if (vt != nullptr && !vt->RowVisibleAt(oid, snap)) continue;
    oids.push_back(oid);
  }
  return oids;
}

void AdaptiveStore::AddIo(const IoStats& io) {
  if (options_.concurrent) {
    std::lock_guard<std::mutex> il(io_mu_);
    total_io_ += io;
  } else {
    total_io_ += io;
  }
  obs::MirrorIo(io);
}

Result<QueryResult> AdaptiveStore::SelectRange(const std::string& table,
                                               const std::string& column,
                                               const TypedRange& range,
                                               Delivery delivery, TxnId txn) {
  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  if (options_.concurrent) {
    std::shared_lock<std::shared_mutex> g(global_mu_);
    return SelectRangeConcurrent(table, column, range, delivery, snap);
  }
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("select", table + "." + column, &result.io);

  CRACK_ASSIGN_OR_RETURN(ColumnAccel * accel, Accel(table, column, bat));
  bool is_crack = accel->path->strategy() == AccessStrategy::kCrack;
  if (is_crack && options_.track_lineage && accel->root == kInvalidPieceId) {
    accel->root = lineage_.AddRoot(table + "." + column, bat->size());
    accel->piece_nodes[{0, bat->size()}] = accel->root;
  }

  SnapshotView view = ViewForColumn(table, column, snap);
  CRACK_ASSIGN_OR_RETURN(
      AccessSelection sel,
      accel->path->SelectTyped(
          range, /*want_oids=*/delivery != Delivery::kCount, &result.io,
          view.active() ? &view : nullptr));
  result.count = sel.count;
  if (sel.contiguous) {
    result.selection = sel.view;
    result.has_selection = true;
  } else {
    result.scan_oids = std::move(sel.oids);
    obs::RecordMaterializedOids(result.scan_oids.size());
  }
  if (sel.has_span_set) {
    // Zero-materialization shape rides along: consumers that can work on
    // spans (conjunction intersection, lazy CollectOids) never gather.
    result.has_span_set = true;
    result.span_set = std::move(sel.span_set);
    obs::RecordSpanAnswer(result.span_set.num_spans(), result.span_set.count());
  }

  if (is_crack && options_.track_lineage) {
    size_t merges_now = accel->path->merges_performed();
    if (sel.bounds_dropped > 0 || merges_now != accel->merges_seen) {
      // Fused pieces (or a delta merge's rebuilt cracker column) no longer
      // tile the registered nodes; apply the inverse operation to the
      // column's subtree (§3.2: "trimming the graph") and re-register the
      // surviving partitioning from the root.
      (void)lineage_.TrimDescendants(accel->root);
      accel->piece_nodes.clear();
      std::vector<PieceInfo> pieces = accel->path->Pieces();
      size_t span_end =
          pieces.empty() ? accel->path->size() : pieces.back().end;
      accel->piece_nodes[{0, span_end}] = accel->root;
      accel->merges_seen = merges_now;
    }
    UpdateLineage(table, column, accel);
  }

  if (delivery == Delivery::kMaterialize) {
    obs::TraceSpan mat_span("materialize", &result.io);
    if (result.has_selection) {
      CRACK_ASSIGN_OR_RETURN(
          result.materialized,
          MaterializeSelection(table, result.selection,
                               table + "_" + column + "_result", &result.io));
    } else {
      // Non-contiguous answer: materialize from the gathered oid list.
      auto rel = this->table(table);
      auto out = Relation::Create(table + "_" + column + "_result",
                                  (*rel)->schema());
      if (!out.ok()) return out.status();
      for (Oid oid : result.scan_oids) {
        Status st = (*out)->AppendRow((*rel)->GetRow(static_cast<size_t>(oid)));
        if (!st.ok()) return st;
        result.io.tuples_read += (*rel)->num_columns();
        result.io.tuples_written += (*rel)->num_columns();
      }
      result.materialized = *out;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<ColumnAggregates> AdaptiveStore::AggregateRange(
    const std::string& table, const std::string& column,
    const TypedRange& range, TxnId txn) {
  if (range.has_string()) {
    return Status::Unimplemented("aggregate pushdown: string predicate");
  }
  const RangeBounds bounds = range.ToNumericBounds();
  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  if (options_.concurrent) {
    std::shared_lock<std::shared_mutex> g(global_mu_);
    return AggregateRangeConcurrent(table, column, bounds, snap);
  }
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;

  CRACK_ASSIGN_OR_RETURN(ColumnAccel * accel, Accel(table, column, bat));
  bool is_crack = accel->path->strategy() == AccessStrategy::kCrack;
  if (is_crack && options_.track_lineage && !options_.merge_budget.unlimited()) {
    // A budgeted merge inside the aggregate can fuse pieces without
    // reporting bounds_dropped here, leaving the lineage DAG stale; let the
    // caller fall back to the select-based loop, which reports it.
    return Status::Unimplemented("aggregate pushdown: budgeted merge lineage");
  }
  if (is_crack && options_.track_lineage && accel->root == kInvalidPieceId) {
    accel->root = lineage_.AddRoot(table + "." + column, bat->size());
    accel->piece_nodes[{0, bat->size()}] = accel->root;
  }

  IoStats io;
  obs::TraceSpan trace_span("aggregate", table + "." + column, &io);
  SnapshotView view = ViewForColumn(table, column, snap);
  CRACK_ASSIGN_OR_RETURN(
      ColumnAggregates out,
      accel->path->AggregateRange(bounds, &io,
                                  view.active() ? &view : nullptr));

  if (is_crack && options_.track_lineage) {
    // The aggregate's cuts crack the column exactly like a select's; the
    // same piece-diff keeps the Ξ DAG current.
    size_t merges_now = accel->path->merges_performed();
    if (merges_now != accel->merges_seen) {
      (void)lineage_.TrimDescendants(accel->root);
      accel->piece_nodes.clear();
      std::vector<PieceInfo> pieces = accel->path->Pieces();
      size_t span_end =
          pieces.empty() ? accel->path->size() : pieces.back().end;
      accel->piece_nodes[{0, span_end}] = accel->root;
      accel->merges_seen = merges_now;
    }
    UpdateLineage(table, column, accel);
  }

  out.io = io;
  obs::RecordAggPushdown(out.pushdown_rows);
  AddIo(io);
  return out;
}

Result<QueryResult> AdaptiveStore::SelectConjunction(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    Delivery delivery, TxnId txn) {
  if (options_.concurrent) {
    // Note: the scan-strategy fused pass below reads base columns without
    // per-column coordination; the concurrent path always goes per-column.
    CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
    std::shared_lock<std::shared_mutex> g(global_mu_);
    return SelectConjunctionLocked(table, conjuncts, delivery, snap);
  }
  if (conjuncts.empty()) {
    return Status::InvalidArgument("conjunction needs at least one predicate");
  }
  if (delivery == Delivery::kMaterialize) {
    return Status::Unimplemented(
        "materialize a conjunction via kView + MaterializeSelection");
  }
  if (conjuncts.size() == 1) {
    return SelectRange(table, conjuncts[0].column, conjuncts[0].range,
                       delivery, txn);
  }

  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("conjunction", table, &result.io);

  // The stateless scan strategy has a cheaper shape for all-numeric
  // conjunctions: one fused pass over the referenced columns, no per-column
  // oid materialization. Stateful paths (crack/sort) go per-column anyway —
  // each conjunct is advice for its own column's accelerator — and
  // string-typed conjuncts route per-column too, where the dictionary
  // encoding lives.
  bool all_numeric = true;
  for (const ColumnRange& c : conjuncts) all_numeric &= !c.range.has_string();
  // The fused pass reads current base values with no visibility filter, so
  // it only runs while the table has no version state at all (no DML yet);
  // any stamp routes the conjunction per-column, where the SnapshotView
  // applies.
  VersionedTable* fused_vt = VersionsIfAny(table);
  bool version_free = fused_vt == nullptr || fused_vt->empty();
  if (options_.strategy == AccessStrategy::kScan && all_numeric &&
      version_free) {
    auto rel_result = this->table(table);
    if (!rel_result.ok()) return rel_result.status();
    std::shared_ptr<Relation> rel = *rel_result;
    struct TypedColumn {
      const int32_t* d32 = nullptr;
      const int64_t* d64 = nullptr;
      const double* f64 = nullptr;
      RangeBounds range;
    };
    std::vector<TypedColumn> cols;
    cols.reserve(conjuncts.size());
    bool fusable = true;
    for (const ColumnRange& c : conjuncts) {
      auto bat = rel->column(c.column);
      if (!bat.ok()) return bat.status();
      TypedColumn col;
      col.range = c.range.ToNumericBounds();
      switch ((*bat)->tail_type()) {
        case ValueType::kInt64:
          col.d64 = (*bat)->TailData<int64_t>();
          break;
        case ValueType::kInt32:
          col.d32 = (*bat)->TailData<int32_t>();
          break;
        case ValueType::kFloat64:
          col.f64 = (*bat)->TailData<double>();
          break;
        default:
          // A numeric bound on a string column: let the per-column path
          // report the TypeMismatch uniformly.
          fusable = false;
          break;
      }
      if (!fusable) break;
      cols.push_back(col);
    }
    if (fusable) {
      size_t n = rel->num_rows();
      Oid base = BaseOid(*rel);
      for (size_t i = 0; i < n; ++i) {
        bool all = true;
        for (size_t c = 0; c < cols.size() && all; ++c) {
          if (cols[c].f64 != nullptr) {
            // Doubles compare in their own domain (int64 bounds widen).
            const RangeBounds& r = cols[c].range;
            double v = cols[c].f64[i];
            double lo = static_cast<double>(r.lo);
            double hi = static_cast<double>(r.hi);
            all = !(r.lo_incl ? v < lo : v <= lo) &&
                  !(r.hi_incl ? v > hi : v >= hi);
          } else {
            int64_t v = cols[c].d32 != nullptr
                            ? static_cast<int64_t>(cols[c].d32[i])
                            : cols[c].d64[i];
            all = cols[c].range.Contains(v);
          }
        }
        if (all) {
          ++result.count;
          if (delivery == Delivery::kView) {
            result.scan_oids.push_back(base + i);
          }
        }
      }
      result.io.tuples_read += n * conjuncts.size();
      result.seconds = timer.ElapsedSeconds();
      AddIo(result.io);
      return result;
    }
  }

  // Answer each conjunct through its column's access path, then intersect.
  // Scan-strategy legs (versioned or string-typed conjunctions land here)
  // are asked for kCount only: their answers carry identity span sets, so
  // clean legs intersect as interval algebra — no per-leg oid gather, no
  // per-leg sort. Stateful legs (crack/sort answer over a permuted layout)
  // keep the materialized smallest-first intersection.
  std::vector<std::vector<Oid>> per_column;
  per_column.reserve(conjuncts.size());
  bool have_folded = false;
  OidSpanSet folded;
  for (const ColumnRange& c : conjuncts) {
    const Delivery leg_delivery = options_.strategy == AccessStrategy::kScan
                                      ? Delivery::kCount
                                      : Delivery::kView;
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr,
        SelectRange(table, c.column, c.range, leg_delivery, txn));
    result.io += qr.io;
    if (leg_delivery == Delivery::kCount) {
      if (qr.has_span_set && SpanSetIntersectable(qr.span_set) &&
          qr.span_set.exceptions() == 0 && qr.span_set.extras() == 0) {
        // Interval-algebra leg: only span boundaries are touched.
        result.io.tuples_read += qr.span_set.num_spans();
        if (!have_folded) {
          folded = std::move(qr.span_set);
          have_folded = true;
        } else {
          folded = IntersectIdentitySpanSets(folded, qr.span_set);
        }
        continue;
      }
      if (qr.has_span_set) {
        // Overlayed span answer (delta inserts / snapshot extras): this leg
        // materializes, the others still intersect as intervals.
        obs::RecordMaterializedOids(qr.count);
        per_column.push_back(qr.span_set.ToOids());
        continue;
      }
      // No span set came back (scans are stateless, so the re-ask answers
      // the identical question): fetch the oid list.
      CRACK_ASSIGN_OR_RETURN(
          qr, SelectRange(table, c.column, c.range, Delivery::kView, txn));
      result.io += qr.io;
    }
    per_column.push_back(std::move(qr).CollectOids());
  }
  if (per_column.empty()) {
    // Every leg stayed an interval set: the conjunction's answer is itself
    // a span set. kView enumerates the survivors once — the only oids this
    // statement ever wrote down.
    result.count = folded.count();
    result.has_span_set = true;
    if (delivery == Delivery::kView && result.count > 0) {
      obs::RecordMaterializedOids(result.count);
      result.scan_oids = folded.ToOids();
    }
    result.span_set = std::move(folded);
    obs::RecordSpanAnswer(result.span_set.num_spans(), result.count);
  } else {
    if (have_folded) {
      // Reduce the smallest materialized leg through the folded intervals
      // before the list×list passes.
      std::sort(per_column.begin(), per_column.end(),
                [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
                  return a.size() < b.size();
                });
      result.io.tuples_read += per_column.front().size();
      per_column.front() = IntersectWithIdentitySpans(per_column.front(), folded);
    }
    IntersectConjunctionLegs(std::move(per_column), delivery, &result);
  }

  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<QueryResult> AdaptiveStore::Insert(const std::string& table,
                                          std::vector<Value> values,
                                          TxnId txn) {
  return RunInWriteScope(txn, [&](const WriteScope& scope)
                                  -> Result<QueryResult> {
    if (options_.concurrent) {
      std::shared_lock<std::shared_mutex> g(global_mu_);
      return InsertConcurrent(table, std::move(values), scope);
    }
    auto rel_result = this->table(table);
    if (!rel_result.ok()) return rel_result.status();
    std::shared_ptr<Relation> rel = *rel_result;

    QueryResult result;
    WallTimer timer;
    obs::TraceSpan trace_span("insert", table, &result.io);
    CRACK_RETURN_NOT_OK(CoerceRow(rel->schema(), &values));
    // Stamp before the physical append (uniform with concurrent mode).
    Oid oid = BaseOid(*rel) + rel->num_rows();
    VersionsFor(table)->NoteInsert(oid, TxnStamp(scope.txn));
    Touch(scope, table, oid);
    CRACK_RETURN_NOT_OK(rel->AppendRow(values));
    result.io.tuples_written += rel->num_columns();

    // Every materialized accelerator absorbs the new row; columns never
    // queried stay lazy (their eventual build reads the appended base).
    for (size_t c = 0; c < rel->num_columns(); ++c) {
      auto it = accels_.find(table + "." + rel->schema().column(c).name);
      if (it == accels_.end() || it->second.path == nullptr) continue;
      CRACK_RETURN_NOT_OK(
          it->second.path->Insert(values[c], oid, &result.io));
    }
    if (wal_ != nullptr) {
      durability::WalOp op;
      op.kind = durability::WalOpKind::kInsert;
      op.table = table;
      op.oid = oid;
      op.row = values;  // post-coercion: replay appends them verbatim
      PushRedo(scope, std::move(op));
    }

    result.count = 1;
    result.inserted_oid = oid;  // the new row's identity
    result.seconds = timer.ElapsedSeconds();
    AddIo(result.io);
    return result;
  });
}

Result<QueryResult> AdaptiveStore::DeleteOids(const std::string& table,
                                              const std::vector<Oid>& oids,
                                              TxnId txn) {
  return RunInWriteScope(txn, [&](const WriteScope& scope)
                                  -> Result<QueryResult> {
    QueryResult result;
    WallTimer timer;
    obs::TraceSpan trace_span("delete-oids", table, &result.io);
    // Version stamps only — the shared store latch suffices.
    std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
    if (options_.concurrent) g.lock();
    CRACK_ASSIGN_OR_RETURN(result.count,
                           StampDeletes(table, scope, oids, &result.io));
    result.seconds = timer.ElapsedSeconds();
    AddIo(result.io);
    return result;
  });
}

Result<QueryResult> AdaptiveStore::Delete(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    TxnId txn) {
  return RunInWriteScope(txn, [&](const WriteScope& scope)
                                  -> Result<QueryResult> {
    if (options_.concurrent) {
      std::shared_lock<std::shared_mutex> g(global_mu_);
      return DeleteConcurrent(table, conjuncts, scope);
    }
    QueryResult result;
    WallTimer timer;
    obs::TraceSpan trace_span("delete", table, &result.io);
    std::vector<Oid> oids;
    if (conjuncts.empty()) {
      CRACK_ASSIGN_OR_RETURN(oids, LiveOids(table, scope.txn));
    } else {
      // The WHERE is a read like any other: it cracks the referenced
      // columns on its way to the victim set.
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          SelectConjunction(table, conjuncts, Delivery::kView, scope.txn));
      result.io += qr.io;
      oids = std::move(qr).CollectOids();
    }
    CRACK_ASSIGN_OR_RETURN(result.count,
                           StampDeletes(table, scope, oids, &result.io));
    result.seconds = timer.ElapsedSeconds();
    AddIo(result.io);
    return result;
  });
}

Result<QueryResult> AdaptiveStore::Update(
    const std::string& table, const std::vector<Assignment>& sets,
    const std::vector<ColumnRange>& conjuncts, TxnId txn) {
  if (sets.empty()) {
    return Status::InvalidArgument("UPDATE needs at least one SET clause");
  }
  return RunInWriteScope(txn, [&](const WriteScope& scope)
                                  -> Result<QueryResult> {
    if (options_.concurrent) {
      std::shared_lock<std::shared_mutex> g(global_mu_);
      return UpdateConcurrent(table, sets, conjuncts, scope);
    }
    auto rel_result = this->table(table);
    if (!rel_result.ok()) return rel_result.status();
    std::shared_ptr<Relation> rel = *rel_result;

    QueryResult result;
    WallTimer timer;
    obs::TraceSpan trace_span("update", table, &result.io);
    std::vector<Oid> oids;
    if (conjuncts.empty()) {
      CRACK_ASSIGN_OR_RETURN(oids, LiveOids(table, scope.txn));
    } else {
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          SelectConjunction(table, conjuncts, Delivery::kView, scope.txn));
      result.io += qr.io;
      oids = std::move(qr).CollectOids();
    }

    CRACK_RETURN_NOT_OK(ValidateAssignments(*rel, sets));
    VersionedTable* vt = VersionsFor(table);

    std::vector<std::shared_ptr<Bat>> bats(sets.size());
    std::vector<ColumnAccessPath*> paths(sets.size(), nullptr);
    for (size_t s = 0; s < sets.size(); ++s) {
      bats[s] = *rel->column(sets[s].column);
      auto it = accels_.find(table + "." + sets[s].column);
      if (it != accels_.end() && it->second.path != nullptr) {
        paths[s] = it->second.path.get();
      }
    }
    uint64_t applied = 0;
    for (Oid oid : oids) {
      std::string why;
      VersionedTable::Admission adm =
          vt->AdmitWrite(oid, scope.snap, scope.txn, &why);
      if (adm == VersionedTable::Admission::kSkip) continue;
      if (adm == VersionedTable::Admission::kConflict) {
        if (scope.implicit) continue;
        return Status::Aborted("UPDATE " + why);
      }
      Touch(scope, table, oid);
      for (size_t s = 0; s < sets.size(); ++s) {
        size_t row = static_cast<size_t>(oid - bats[s]->head_base());
        // Log the superseded value (older snapshots keep reading it), then
        // write through: base first, then the accelerator's delta.
        Value old_value = bats[s]->GetValue(row);
        vt->StampUpdate(oid, sets[s].column, old_value, TxnStamp(scope.txn));
        PushUndo(scope, UndoRecord{table, sets[s].column, oid,
                                   std::move(old_value)});
        CRACK_RETURN_NOT_OK(bats[s]->SetValue(row, sets[s].value));
        if (wal_ != nullptr) {
          durability::WalOp op;
          op.kind = durability::WalOpKind::kUpdate;
          op.table = table;
          op.oid = oid;
          op.column = sets[s].column;
          op.value = sets[s].value;
          PushRedo(scope, std::move(op));
        }
        result.io.tuples_written += 1;
        if (paths[s] != nullptr) {
          CRACK_RETURN_NOT_OK(
              paths[s]->Update(oid, sets[s].value, &result.io));
        }
      }
      ++applied;
    }

    result.count = applied;
    result.seconds = timer.ElapsedSeconds();
    AddIo(result.io);
    return result;
  });
}

Result<std::vector<Oid>> AdaptiveStore::LiveOids(const std::string& table,
                                                 TxnId txn) const {
  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  if (options_.concurrent) {
    std::shared_lock<std::shared_mutex> g(global_mu_);
    return LiveOidsLocked(table, snap);
  }
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  VersionedTable* vt = VersionsIfAny(table);
  std::vector<Oid> oids;
  oids.reserve(rel->num_rows());
  Oid base = BaseOid(*rel);
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    Oid oid = base + i;
    if (vt != nullptr && !vt->RowVisibleAt(oid, snap)) continue;
    oids.push_back(oid);
  }
  return oids;
}

Result<uint64_t> AdaptiveStore::LiveRowCount(const std::string& table,
                                             TxnId txn) const {
  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  std::shared_lock<std::shared_mutex> base_lock;
  if (options_.concurrent) {
    g.lock();
    base_lock =
        std::shared_lock<std::shared_mutex>(TableStateFor(table)->base_latch);
  }
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  VersionedTable* vt = VersionsIfAny(table);
  if (vt == nullptr || vt->empty()) return rel->num_rows();
  uint64_t live = 0;
  Oid base = BaseOid(*rel);
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    live += vt->RowVisibleAt(base + i, snap) ? 1 : 0;
  }
  return live;
}

Status AdaptiveStore::MarkDeleted(const std::string& table,
                                  const std::vector<Oid>& oids) {
  // Hand-over replay is an ordinary (auto-commit) delete by oid: the rows
  // get committed end stamps at a fresh timestamp; already-dead rows skip.
  auto removed = DeleteOids(table, oids);
  return removed.ok() ? Status::OK() : removed.status();
}

Result<std::vector<Oid>> AdaptiveStore::DeletedOids(
    const std::string& table) const {
  std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;
  VersionedTable* vt = VersionsIfAny(table);
  if (vt == nullptr) return std::vector<Oid>{};
  std::shared_lock<std::shared_mutex> base_lock;
  if (options_.concurrent) {
    base_lock =
        std::shared_lock<std::shared_mutex>(TableStateFor(table)->base_latch);
  }
  return vt->InvisibleOids(txn_mgr_.LatestSnapshot(), BaseOid(*rel),
                           rel->num_rows());
}

Result<AdaptiveStore::VacuumStats> AdaptiveStore::Vacuum() {
  // Quiesce the store: the physical purge calls into access paths and
  // flushes deltas outside the per-statement latch discipline.
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  VacuumStats stats;
  stats.low_water = txn_mgr_.low_water();
  IoStats io;
  obs::TraceSpan trace_span("vacuum", &io);
  for (const std::string& name : TableNames()) {
    VersionedTable* vt = VersionsIfAny(name);
    if (vt == nullptr) continue;
    VersionedTable::VacuumResult res = vt->Vacuum(stats.low_water);
    stats.rows_purged += res.purged.size();
    stats.versions_dropped += res.versions_dropped;
    stats.chain_entries_dropped += res.chain_entries_dropped;
    if (res.purged.empty()) continue;
    // Feed the purge to every materialized access path of the table, then
    // fold it through the ordinary Merge machinery.
    std::vector<ColumnAccessPath*> paths;
    {
      std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
      if (options_.concurrent) rl.lock();
      std::string prefix = name + ".";
      for (auto it = accels_.lower_bound(prefix);
           it != accels_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
           ++it) {
        bool has = options_.concurrent
                       ? it->second.has_path.load(std::memory_order_acquire)
                       : it->second.path != nullptr;
        if (has) paths.push_back(it->second.path.get());
      }
    }
    for (ColumnAccessPath* path : paths) {
      for (Oid oid : res.purged) {
        Status st = path->Delete(oid, &io);
        // NotFound: the row never physically landed (failed append);
        // AlreadyExists: an earlier purge already tombstoned it.
        if (!st.ok() && !st.IsNotFound() && !st.IsAlreadyExists()) return st;
      }
      CRACK_RETURN_NOT_OK(path->FlushDeltas(&io));
    }
  }
  AddIo(io);
  return stats;
}

Result<VersionedTable::Counts> AdaptiveStore::VersionCountsFor(
    const std::string& table) const {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  VersionedTable* vt = VersionsIfAny(table);
  if (vt == nullptr) return VersionedTable::Counts{};
  return vt->counts();
}

Result<QueryResult> AdaptiveStore::JoinEquals(const std::string& left_table,
                                              const std::string& left_column,
                                              const std::string& right_table,
                                              const std::string& right_column,
                                              Delivery delivery, TxnId txn) {
  // Joins crack base columns and fill store-wide caches without per-column
  // latches; concurrent mode gates them store-wide instead.
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  QueryResult result;
  WallTimer timer;
  obs::TraceSpan trace_span("join", left_table + "." + left_column + "=" +
                                        right_table + "." + right_column,
                            &result.io);
  CRACK_ASSIGN_OR_RETURN(
      std::vector<OidPair> pairs,
      JoinOidsInternal(left_table, left_column, right_table, right_column,
                       &result.io, txn));
  result.count = pairs.size();
  if (delivery == Delivery::kMaterialize) {
    // Materialize left ⨯ right columns of matching tuples as a 2-column view
    // of the join keys (a full wide-row join is the engine layer's job).
    (void)delivery;
  }
  result.seconds = timer.ElapsedSeconds();
  AddIo(result.io);
  return result;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOids(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    TxnId txn) {
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  IoStats io;
  auto out = JoinOidsInternal(left_table, left_column, right_table,
                              right_column, &io, txn);
  AddIo(io);
  return out;
}

AdaptiveStore::CrackCacheStamp AdaptiveStore::StampFor(
    const std::string& table) const {
  CrackCacheStamp s;
  auto rel = this->table(table);
  if (rel.ok()) s.rows = (*rel)->num_rows();
  VersionedTable* vt = VersionsIfAny(table);
  if (vt != nullptr) s.counts = vt->counts();
  return s;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOidsInternal(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    IoStats* stats, TxnId txn) {
  auto left = ResolveColumn(left_table, left_column);
  if (!left.ok()) return left.status();
  auto right = ResolveColumn(right_table, right_column);
  if (!right.ok()) return right.status();

  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  SnapshotView lview = ViewForColumn(left_table, left_column, snap);
  SnapshotView rview = ViewForColumn(right_table, right_column, snap);

  if (options_.strategy != AccessStrategy::kCrack) {
    return HashJoinOids(*left, *right, stats, &lview, &rview);
  }

  std::string key = left_table + "." + left_column + "|" + right_table + "." +
                    right_column;
  CrackCacheStamp lstamp = StampFor(left_table);
  CrackCacheStamp rstamp = StampFor(right_table);
  auto it = join_cracks_.find(key);
  if (it != join_cracks_.end() && (it->second.left_stamp != lstamp ||
                                   it->second.right_stamp != rstamp)) {
    // Version churn since the ^ crack was built: its clones snapshot base
    // data that has changed (append, in-place update, vacuum). Rebuild.
    join_cracks_.erase(it);
    it = join_cracks_.end();
  }
  if (it == join_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(JoinCrackResult cracked,
                           CrackJoin(*left, *right, stats));
    if (options_.track_lineage) {
      PieceId lroot = lineage_.AddRoot(left_table + "." + left_column,
                                       (*left)->size());
      PieceId rroot = lineage_.AddRoot(right_table + "." + right_column,
                                       (*right)->size());
      (void)lineage_.AddCrack(
          CrackOp::kWedge, {lroot, rroot},
          {{key + " P1 (L match)", cracked.left.split},
           {key + " P2 (L rest)", (*left)->size() - cracked.left.split},
           {key + " P3 (R match)", cracked.right.split},
           {key + " P4 (R rest)", (*right)->size() - cracked.right.split}});
    }
    JoinCrackEntry entry;
    entry.cracked = std::move(cracked);
    entry.left_stamp = lstamp;
    entry.right_stamp = rstamp;
    it = join_cracks_.emplace(key, std::move(entry)).first;
  }
  return JoinMatchingAreas(it->second.cracked, stats, &lview, &rview);
}

Result<std::vector<GroupAggregate>> AdaptiveStore::GroupBy(
    const std::string& table, const std::string& group_column,
    const std::string& agg_column, AggKind kind, TxnId txn) {
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  auto grp = ResolveColumn(table, group_column);
  if (!grp.ok()) return grp.status();
  auto agg = ResolveColumn(table, agg_column);
  if (!agg.ok()) return agg.status();

  CRACK_ASSIGN_OR_RETURN(Snapshot snap, ReadSnapshot(txn));
  SnapshotView group_view = ViewForColumn(table, group_column, snap);
  SnapshotView agg_view = ViewForColumn(table, agg_column, snap);

  IoStats io;
  obs::TraceSpan trace_span("group-by", table + "." + group_column, &io);
  std::string key = table + "." + group_column;
  CrackCacheStamp stamp = StampFor(table);
  auto it = group_cracks_.find(key);
  if (it != group_cracks_.end() && it->second.stamp != stamp) {
    // Version churn since the Ω crack was built (see JoinOidsInternal).
    group_cracks_.erase(it);
    it = group_cracks_.end();
  }
  if (it == group_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(GroupCrackResult cracked, CrackGroup(*grp, &io));
    if (options_.track_lineage && cracked.groups.size() <= 1024) {
      PieceId root = lineage_.AddRoot(key + " (pre-Ω)", (*grp)->size());
      std::vector<std::pair<std::string, uint64_t>> outputs;
      outputs.reserve(cracked.groups.size());
      for (const GroupPiece& g : cracked.groups) {
        outputs.emplace_back(
            StrFormat("%s=%lld", key.c_str(), static_cast<long long>(g.value)),
            g.size());
      }
      (void)lineage_.AddCrack(CrackOp::kOmega, {root}, outputs);
    }
    GroupCrackEntry entry;
    entry.cracked = std::move(cracked);
    entry.stamp = stamp;
    it = group_cracks_.emplace(key, std::move(entry)).first;
  }
  auto out =
      AggregateGroups(it->second.cracked, *agg, kind, &io, &group_view,
                      &agg_view);
  AddIo(io);
  return out;
}

Result<ProjectionCrackResult> AdaptiveStore::Project(
    const std::string& table, const std::vector<std::string>& attrs) {
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  IoStats io;
  auto out = CrackProjection(*rel, attrs, &io);
  if (out.ok() && options_.track_lineage) {
    PieceId root = lineage_.AddRoot(table + " (pre-Ψ)", (*rel)->num_rows());
    (void)lineage_.AddCrack(
        CrackOp::kPsi, {root},
        {{out->projected->name(), out->projected->num_rows()},
         {out->remainder->name(), out->remainder->num_rows()}});
  }
  AddIo(io);
  return out;
}

Result<std::shared_ptr<Relation>> AdaptiveStore::MaterializeSelection(
    const std::string& table, const CrackSelection& selection,
    const std::string& result_name, IoStats* stats) {
  // Concurrent mode: base reads under the table base latch. The caller
  // remains responsible for the view's validity (views over cracker columns
  // are only stable while the owning column is quiesced).
  std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  std::shared_lock<std::shared_mutex> base_lock;
  if (options_.concurrent) {
    g.lock();
    base_lock = std::shared_lock<std::shared_mutex>(
        TableStateFor(table)->base_latch);
  }
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  auto out_result = Relation::Create(result_name, rel->schema());
  if (!out_result.ok()) return out_result.status();
  std::shared_ptr<Relation> out = *out_result;

  size_t n = selection.oids.size();
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const std::shared_ptr<Bat>& src = rel->column(c);
    const std::shared_ptr<Bat>& dst = out->column(c);
    Oid base = src->head_base();
    for (size_t i = 0; i < n; ++i) {
      size_t row = static_cast<size_t>(selection.oids.Get<Oid>(i) - base);
      Status st = dst->AppendValue(src->GetValue(row));
      if (!st.ok()) return st;
    }
  }
  if (stats != nullptr) {
    stats->tuples_read += n * rel->num_columns();
    stats->tuples_written += n * rel->num_columns();
  }
  return out;
}

Result<ColumnAccessPath*> AdaptiveStore::AccessPathFor(
    const std::string& table, const std::string& column) const {
  // Concurrent mode: the borrowed pointer is safe to hand out (paths are
  // never destroyed while the store lives), but using it for introspection
  // is only meaningful on a quiesced store.
  std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
  if (options_.concurrent) rl.lock();
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() ||
      !(options_.concurrent
            ? it->second.has_path.load(std::memory_order_acquire)
            : it->second.path != nullptr)) {
    return Status::NotFound("no access path yet for " + table + "." + column);
  }
  return it->second.path.get();
}

Result<size_t> AdaptiveStore::NumPieces(const std::string& table,
                                        const std::string& column) const {
  if (options_.concurrent) {
    std::shared_lock<std::shared_mutex> g(global_mu_);
    const ColumnAccel* accel = nullptr;
    {
      std::lock_guard<std::mutex> rl(registry_mu_);
      auto it = accels_.find(table + "." + column);
      if (it != accels_.end()) accel = &it->second;
    }
    if (accel == nullptr ||
        !accel->has_path.load(std::memory_order_acquire)) {
      return size_t{1};
    }
    std::shared_lock<std::shared_mutex> col(accel->latch);
    return accel->path->NumPieces();
  }
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() || it->second.path == nullptr) return size_t{1};
  return it->second.path->NumPieces();
}

Result<std::string> AdaptiveStore::ExplainColumn(
    const std::string& table, const std::string& column) const {
  std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  auto bat = ResolveColumn(table, column);
  if (!bat.ok()) return bat.status();
  std::string out = StrFormat("%s.%s: %s, %zu tuples, strategy=%s\n",
                              table.c_str(), column.c_str(),
                              ValueTypeName((*bat)->tail_type()),
                              (*bat)->size(),
                              AccessStrategyName(options_.strategy));
  if (options_.concurrent) {
    const ColumnAccel* accel = nullptr;
    {
      std::lock_guard<std::mutex> rl(registry_mu_);
      auto it = accels_.find(table + "." + column);
      if (it != accels_.end()) accel = &it->second;
    }
    if (accel == nullptr ||
        !accel->has_path.load(std::memory_order_acquire)) {
      return out + "no accelerator yet (never queried)\n";
    }
    // Exclusive: Explain reads piece tables and delta sizes wholesale.
    std::unique_lock<std::shared_mutex> col(accel->latch);
    return out + accel->path->Explain();
  }
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end() || it->second.path == nullptr) {
    return out + "no accelerator yet (never queried)\n";
  }
  return out + it->second.path->Explain();
}

Status AdaptiveStore::SetPolicy(const CrackPolicyOptions& options) {
  // SET POLICY is a Configure with only the policy axis changed: the SQL
  // executor, the shell and startup options all flow through the same
  // validation and re-arm path.
  DbOptions next = db_options_;
  next.policy = options;
  return Configure(next);
}

Status AdaptiveStore::ApplyPolicy(const CrackPolicyOptions& options) {
  // Statement-level exclusion first, then per-column exclusive latches — the
  // same order every write takes, so no deadlock with running queries.
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  options_.policy = options;  // paths built later inherit the new policy
  std::vector<ColumnAccel*> accels;
  {
    std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
    if (options_.concurrent) rl.lock();
    for (auto& [key, accel] : accels_) {
      bool has = options_.concurrent
                     ? accel.has_path.load(std::memory_order_acquire)
                     : accel.path != nullptr;
      if (has) accels.push_back(&accel);
    }
  }
  for (ColumnAccel* accel : accels) {
    std::unique_lock<std::shared_mutex> col(accel->latch, std::defer_lock);
    if (options_.concurrent) col.lock();
    CRACK_RETURN_NOT_OK(accel->path->SetPolicyOptions(options));
  }
  return Status::OK();
}

std::vector<AdaptiveStore::ColumnPolicy> AdaptiveStore::PolicyReport() const {
  std::shared_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  std::vector<ColumnPolicy> report;
  std::vector<std::pair<std::string, const ColumnAccel*>> accels;
  {
    std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
    if (options_.concurrent) rl.lock();
    for (const auto& [key, accel] : accels_) {
      bool has = options_.concurrent
                     ? accel.has_path.load(std::memory_order_acquire)
                     : accel.path != nullptr;
      if (has) accels.emplace_back(key, &accel);
    }
  }
  for (const auto& [key, accel] : accels) {
    ColumnPolicy row;
    size_t dot = key.find('.');
    row.table = key.substr(0, dot);
    row.column = dot == std::string::npos ? "" : key.substr(dot + 1);
    std::shared_lock<std::shared_mutex> col(accel->latch, std::defer_lock);
    if (options_.concurrent) col.lock();
    row.status = accel->path->PolicyStatus();
    report.push_back(std::move(row));
  }
  return report;
}

void AdaptiveStore::UpdateLineage(const std::string& table,
                                  const std::string& column,
                                  ColumnAccel* accel) {
  std::vector<PieceInfo> pieces = accel->path->Pieces();
  std::string prefix = table + "." + column;
  // Every current piece lies inside exactly one registered node (cuts only
  // ever subdivide). Group new pieces by enclosing registered range and log
  // one Ξ application per split node.
  std::map<std::pair<size_t, size_t>, std::vector<PieceInfo>> by_parent;
  for (const PieceInfo& p : pieces) {
    std::pair<size_t, size_t> self{p.begin, p.end};
    if (accel->piece_nodes.count(self) > 0) continue;  // unchanged piece
    // Find the enclosing registered node.
    for (const auto& [range, node] : accel->piece_nodes) {
      if (range.first <= p.begin && p.end <= range.second) {
        by_parent[range].push_back(p);
        break;
      }
    }
  }
  for (const auto& [range, children] : by_parent) {
    PieceId parent = accel->piece_nodes[range];
    std::vector<std::pair<std::string, uint64_t>> outputs;
    outputs.reserve(children.size());
    for (const PieceInfo& p : children) {
      outputs.emplace_back(
          StrFormat("%s[%zu,%zu)", prefix.c_str(), p.begin, p.end),
          p.size());
    }
    auto ids = lineage_.AddCrack(CrackOp::kXi, {parent}, outputs);
    CRACK_DCHECK(ids.ok());
    accel->piece_nodes.erase(range);
    for (size_t i = 0; i < children.size(); ++i) {
      accel->piece_nodes[{children[i].begin, children[i].end}] = (*ids)[i];
    }
  }
}

}  // namespace crackstore
