// Copyright 2026 The CrackStore Authors

#include "core/adaptive_store.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

const char* AccessStrategyName(AccessStrategy strategy) {
  switch (strategy) {
    case AccessStrategy::kScan:
      return "scan";
    case AccessStrategy::kCrack:
      return "crack";
    case AccessStrategy::kSort:
      return "sort";
  }
  return "?";
}

AdaptiveStore::AdaptiveStore(AdaptiveStoreOptions options)
    : options_(options) {}

Status AdaptiveStore::AddTable(std::shared_ptr<Relation> relation) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (tables_.count(relation->name()) > 0) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  tables_.emplace(relation->name(), std::move(relation));
  return Status::OK();
}

Result<std::shared_ptr<Relation>> AdaptiveStore::table(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second;
}

std::vector<std::string> AdaptiveStore::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) out.push_back(name);
  return out;
}

Result<std::shared_ptr<Bat>> AdaptiveStore::ResolveColumn(
    const std::string& table, const std::string& column) const {
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  return (*rel)->column(column);
}

AdaptiveStore::ColumnAccel& AdaptiveStore::Accel(const std::string& table,
                                                 const std::string& column) {
  return accels_[table + "." + column];
}

namespace {

/// Clamps int64 range bounds into the typed domain of the column so that
/// sentinel bounds (INT64_MIN/MAX) work for narrower types.
template <typename T>
void ClampRange(const RangeBounds& range, T* lo, bool* lo_incl, T* hi,
                bool* hi_incl) {
  int64_t tmin = static_cast<int64_t>(std::numeric_limits<T>::min());
  int64_t tmax = static_cast<int64_t>(std::numeric_limits<T>::max());
  int64_t lo64 = std::clamp(range.lo, tmin, tmax);
  int64_t hi64 = std::clamp(range.hi, tmin, tmax);
  *lo = static_cast<T>(lo64);
  *hi = static_cast<T>(hi64);
  // A clamped bound widens to inclusive only when clamping moved it inward;
  // e.g. lo = INT64_MIN over int32 becomes lo = INT32_MIN inclusive.
  *lo_incl = (lo64 != range.lo) ? true : range.lo_incl;
  *hi_incl = (hi64 != range.hi) ? true : range.hi_incl;
}

template <typename T>
bool InRange(T v, T lo, bool lo_incl, T hi, bool hi_incl) {
  if (lo_incl ? v < lo : v <= lo) return false;
  if (hi_incl ? v > hi : v >= hi) return false;
  return true;
}

}  // namespace

template <typename T>
CrackSelection AdaptiveStore::CrackSelect(const std::string& table,
                                          const std::string& column,
                                          const std::shared_ptr<Bat>& bat,
                                          const RangeBounds& range,
                                          IoStats* stats) {
  ColumnAccel& accel = Accel(table, column);
  CrackerIndex<T>* index = nullptr;
  if constexpr (std::is_same_v<T, int32_t>) {
    if (accel.crack32 == nullptr) {
      accel.crack32 = std::make_unique<CrackerIndex<int32_t>>(bat, stats);
    }
    index = accel.crack32.get();
  } else {
    if (accel.crack64 == nullptr) {
      accel.crack64 = std::make_unique<CrackerIndex<int64_t>>(bat, stats);
    }
    index = accel.crack64.get();
  }
  if (options_.track_lineage && accel.root == kInvalidPieceId) {
    accel.root = lineage_.AddRoot(table + "." + column, bat->size());
    accel.piece_nodes[{0, bat->size()}] = accel.root;
  }

  T lo, hi;
  bool lo_incl, hi_incl;
  ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
  CrackSelection sel = index->Select(lo, lo_incl, hi, hi_incl, stats);

  if (!options_.merge_budget.unlimited()) {
    size_t dropped = EnforceMergeBudget(index, options_.merge_budget, stats);
    if (dropped > 0 && options_.track_lineage) {
      // Fused pieces no longer tile the registered nodes; apply the inverse
      // operation to the column's subtree (§3.2: "trimming the graph") and
      // re-register the surviving partitioning from the root.
      (void)lineage_.TrimDescendants(accel.root);
      accel.piece_nodes.clear();
      accel.piece_nodes[{0, index->size()}] = accel.root;
    }
  }
  if (options_.track_lineage) {
    UpdateLineage(table, column, &accel, *index);
  }
  return sel;
}

template <typename T>
CrackSelection AdaptiveStore::SortSelect(const std::string& table,
                                         const std::string& column,
                                         const std::shared_ptr<Bat>& bat,
                                         const RangeBounds& range,
                                         IoStats* stats) {
  ColumnAccel& accel = Accel(table, column);
  const SortedColumn<T>* sorted = nullptr;
  if constexpr (std::is_same_v<T, int32_t>) {
    if (accel.sort32 == nullptr) {
      accel.sort32 = std::make_unique<SortedColumn<int32_t>>(bat, stats);
    }
    sorted = accel.sort32.get();
  } else {
    if (accel.sort64 == nullptr) {
      accel.sort64 = std::make_unique<SortedColumn<int64_t>>(bat, stats);
    }
    sorted = accel.sort64.get();
  }
  T lo, hi;
  bool lo_incl, hi_incl;
  ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
  return sorted->Select(lo, lo_incl, hi, hi_incl, stats);
}

template <typename T>
void AdaptiveStore::ScanSelect(const std::shared_ptr<Bat>& bat,
                               const RangeBounds& range, Delivery delivery,
                               QueryResult* result) {
  T lo, hi;
  bool lo_incl, hi_incl;
  ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
  const T* data = bat->TailData<T>();
  size_t n = bat->size();
  Oid base = bat->head_base();
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (InRange(data[i], lo, lo_incl, hi, hi_incl)) {
      ++count;
      if (delivery != Delivery::kCount) {
        result->scan_oids.push_back(base + i);
      }
    }
  }
  result->count = count;
  result->io.tuples_read += n;
  if (delivery != Delivery::kCount) {
    result->io.tuples_written += count;
  }
}

Result<QueryResult> AdaptiveStore::SelectRange(const std::string& table,
                                               const std::string& column,
                                               const RangeBounds& range,
                                               Delivery delivery) {
  auto bat_result = ResolveColumn(table, column);
  if (!bat_result.ok()) return bat_result.status();
  std::shared_ptr<Bat> bat = *bat_result;
  if (bat->tail_type() != ValueType::kInt32 &&
      bat->tail_type() != ValueType::kInt64) {
    return Status::Unimplemented(
        StrFormat("SelectRange needs an integer column; %s.%s is %s",
                  table.c_str(), column.c_str(),
                  ValueTypeName(bat->tail_type())));
  }
  bool is32 = bat->tail_type() == ValueType::kInt32;

  QueryResult result;
  WallTimer timer;
  switch (options_.strategy) {
    case AccessStrategy::kScan:
      if (is32) {
        ScanSelect<int32_t>(bat, range, delivery, &result);
      } else {
        ScanSelect<int64_t>(bat, range, delivery, &result);
      }
      break;
    case AccessStrategy::kCrack: {
      CrackSelection sel =
          is32 ? CrackSelect<int32_t>(table, column, bat, range, &result.io)
               : CrackSelect<int64_t>(table, column, bat, range, &result.io);
      result.count = sel.count();
      result.selection = sel;
      result.has_selection = true;
      break;
    }
    case AccessStrategy::kSort: {
      CrackSelection sel =
          is32 ? SortSelect<int32_t>(table, column, bat, range, &result.io)
               : SortSelect<int64_t>(table, column, bat, range, &result.io);
      result.count = sel.count();
      result.selection = sel;
      result.has_selection = true;
      break;
    }
  }

  if (delivery == Delivery::kMaterialize) {
    if (result.has_selection) {
      CRACK_ASSIGN_OR_RETURN(
          result.materialized,
          MaterializeSelection(table, result.selection,
                               table + "_" + column + "_result", &result.io));
    } else {
      // Scan strategy: materialize from the gathered oid list.
      auto rel = this->table(table);
      auto out = Relation::Create(table + "_" + column + "_result",
                                  (*rel)->schema());
      if (!out.ok()) return out.status();
      for (Oid oid : result.scan_oids) {
        Status st = (*out)->AppendRow((*rel)->GetRow(static_cast<size_t>(oid)));
        if (!st.ok()) return st;
        result.io.tuples_read += (*rel)->num_columns();
        result.io.tuples_written += (*rel)->num_columns();
      }
      result.materialized = *out;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::SelectConjunction(
    const std::string& table, const std::vector<ColumnRange>& conjuncts,
    Delivery delivery) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("conjunction needs at least one predicate");
  }
  if (delivery == Delivery::kMaterialize) {
    return Status::Unimplemented(
        "materialize a conjunction via kView + MaterializeSelection");
  }
  if (conjuncts.size() == 1) {
    return SelectRange(table, conjuncts[0].column, conjuncts[0].range,
                       delivery);
  }

  QueryResult result;
  WallTimer timer;

  if (options_.strategy == AccessStrategy::kScan) {
    // Single fused pass over all referenced columns.
    auto rel_result = this->table(table);
    if (!rel_result.ok()) return rel_result.status();
    std::shared_ptr<Relation> rel = *rel_result;
    std::vector<const int64_t*> cols64;
    std::vector<const int32_t*> cols32;
    std::vector<bool> is32;
    for (const ColumnRange& c : conjuncts) {
      auto bat = rel->column(c.column);
      if (!bat.ok()) return bat.status();
      switch ((*bat)->tail_type()) {
        case ValueType::kInt64:
          cols64.push_back((*bat)->TailData<int64_t>());
          cols32.push_back(nullptr);
          is32.push_back(false);
          break;
        case ValueType::kInt32:
          cols64.push_back(nullptr);
          cols32.push_back((*bat)->TailData<int32_t>());
          is32.push_back(true);
          break;
        default:
          return Status::Unimplemented("conjunction needs integer columns");
      }
    }
    size_t n = rel->num_rows();
    Oid base = rel->num_columns() > 0 ? rel->column(size_t{0})->head_base() : 0;
    for (size_t i = 0; i < n; ++i) {
      bool all = true;
      for (size_t c = 0; c < conjuncts.size() && all; ++c) {
        int64_t v = is32[c] ? cols32[c][i] : cols64[c][i];
        all = conjuncts[c].range.Contains(v);
      }
      if (all) {
        ++result.count;
        if (delivery == Delivery::kView) result.scan_oids.push_back(base + i);
      }
    }
    result.io.tuples_read += n * conjuncts.size();
  } else {
    // Crack (or binary-search) each column independently, then intersect
    // the oid sets starting from the smallest.
    std::vector<QueryResult> per_column;
    per_column.reserve(conjuncts.size());
    for (const ColumnRange& c : conjuncts) {
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          SelectRange(table, c.column, c.range, Delivery::kView));
      result.io += qr.io;
      per_column.push_back(std::move(qr));
    }
    std::sort(per_column.begin(), per_column.end(),
              [](const QueryResult& a, const QueryResult& b) {
                return a.count < b.count;
              });
    std::unordered_set<Oid> survivors;
    survivors.reserve(per_column.front().count * 2);
    const CrackSelection& seed = per_column.front().selection;
    for (size_t i = 0; i < seed.oids.size(); ++i) {
      survivors.insert(seed.oids.Get<Oid>(i));
    }
    for (size_t c = 1; c < per_column.size() && !survivors.empty(); ++c) {
      std::unordered_set<Oid> next;
      next.reserve(survivors.size() * 2);
      const CrackSelection& sel = per_column[c].selection;
      for (size_t i = 0; i < sel.oids.size(); ++i) {
        Oid oid = sel.oids.Get<Oid>(i);
        if (survivors.count(oid) > 0) next.insert(oid);
      }
      survivors = std::move(next);
      result.io.tuples_read += sel.oids.size();
    }
    result.count = survivors.size();
    if (delivery == Delivery::kView) {
      result.scan_oids.assign(survivors.begin(), survivors.end());
      std::sort(result.scan_oids.begin(), result.scan_oids.end());
    }
  }

  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<QueryResult> AdaptiveStore::JoinEquals(const std::string& left_table,
                                              const std::string& left_column,
                                              const std::string& right_table,
                                              const std::string& right_column,
                                              Delivery delivery) {
  QueryResult result;
  WallTimer timer;
  CRACK_ASSIGN_OR_RETURN(
      std::vector<OidPair> pairs,
      JoinOidsInternal(left_table, left_column, right_table, right_column,
                       &result.io));
  result.count = pairs.size();
  if (delivery == Delivery::kMaterialize) {
    // Materialize left ⨯ right columns of matching tuples as a 2-column view
    // of the join keys (a full wide-row join is the engine layer's job).
    (void)delivery;
  }
  result.seconds = timer.ElapsedSeconds();
  total_io_ += result.io;
  return result;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOids(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column) {
  IoStats io;
  auto out = JoinOidsInternal(left_table, left_column, right_table,
                              right_column, &io);
  total_io_ += io;
  return out;
}

Result<std::vector<OidPair>> AdaptiveStore::JoinOidsInternal(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    IoStats* stats) {
  auto left = ResolveColumn(left_table, left_column);
  if (!left.ok()) return left.status();
  auto right = ResolveColumn(right_table, right_column);
  if (!right.ok()) return right.status();

  if (options_.strategy != AccessStrategy::kCrack) {
    return HashJoinOids(*left, *right, stats);
  }

  std::string key = left_table + "." + left_column + "|" + right_table + "." +
                    right_column;
  auto it = join_cracks_.find(key);
  if (it == join_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(JoinCrackResult cracked,
                           CrackJoin(*left, *right, stats));
    if (options_.track_lineage) {
      PieceId lroot = lineage_.AddRoot(left_table + "." + left_column,
                                       (*left)->size());
      PieceId rroot = lineage_.AddRoot(right_table + "." + right_column,
                                       (*right)->size());
      (void)lineage_.AddCrack(
          CrackOp::kWedge, {lroot, rroot},
          {{key + " P1 (L match)", cracked.left.split},
           {key + " P2 (L rest)", (*left)->size() - cracked.left.split},
           {key + " P3 (R match)", cracked.right.split},
           {key + " P4 (R rest)", (*right)->size() - cracked.right.split}});
    }
    it = join_cracks_.emplace(key, std::move(cracked)).first;
  }
  return JoinMatchingAreas(it->second, stats);
}

Result<std::vector<GroupAggregate>> AdaptiveStore::GroupBy(
    const std::string& table, const std::string& group_column,
    const std::string& agg_column, AggKind kind) {
  auto grp = ResolveColumn(table, group_column);
  if (!grp.ok()) return grp.status();
  auto agg = ResolveColumn(table, agg_column);
  if (!agg.ok()) return agg.status();

  IoStats io;
  std::string key = table + "." + group_column;
  auto it = group_cracks_.find(key);
  if (it == group_cracks_.end()) {
    CRACK_ASSIGN_OR_RETURN(GroupCrackResult cracked, CrackGroup(*grp, &io));
    if (options_.track_lineage && cracked.groups.size() <= 1024) {
      PieceId root = lineage_.AddRoot(key + " (pre-Ω)", (*grp)->size());
      std::vector<std::pair<std::string, uint64_t>> outputs;
      outputs.reserve(cracked.groups.size());
      for (const GroupPiece& g : cracked.groups) {
        outputs.emplace_back(
            StrFormat("%s=%lld", key.c_str(), static_cast<long long>(g.value)),
            g.size());
      }
      (void)lineage_.AddCrack(CrackOp::kOmega, {root}, outputs);
    }
    it = group_cracks_.emplace(key, std::move(cracked)).first;
  }
  auto out = AggregateGroups(it->second, *agg, kind, &io);
  total_io_ += io;
  return out;
}

Result<ProjectionCrackResult> AdaptiveStore::Project(
    const std::string& table, const std::vector<std::string>& attrs) {
  auto rel = this->table(table);
  if (!rel.ok()) return rel.status();
  IoStats io;
  auto out = CrackProjection(*rel, attrs, &io);
  if (out.ok() && options_.track_lineage) {
    PieceId root = lineage_.AddRoot(table + " (pre-Ψ)", (*rel)->num_rows());
    (void)lineage_.AddCrack(
        CrackOp::kPsi, {root},
        {{out->projected->name(), out->projected->num_rows()},
         {out->remainder->name(), out->remainder->num_rows()}});
  }
  total_io_ += io;
  return out;
}

Result<std::shared_ptr<Relation>> AdaptiveStore::MaterializeSelection(
    const std::string& table, const CrackSelection& selection,
    const std::string& result_name, IoStats* stats) {
  auto rel_result = this->table(table);
  if (!rel_result.ok()) return rel_result.status();
  std::shared_ptr<Relation> rel = *rel_result;

  auto out_result = Relation::Create(result_name, rel->schema());
  if (!out_result.ok()) return out_result.status();
  std::shared_ptr<Relation> out = *out_result;

  size_t n = selection.oids.size();
  for (size_t c = 0; c < rel->num_columns(); ++c) {
    const std::shared_ptr<Bat>& src = rel->column(c);
    const std::shared_ptr<Bat>& dst = out->column(c);
    Oid base = src->head_base();
    for (size_t i = 0; i < n; ++i) {
      size_t row = static_cast<size_t>(selection.oids.Get<Oid>(i) - base);
      Status st = dst->AppendValue(src->GetValue(row));
      if (!st.ok()) return st;
    }
  }
  if (stats != nullptr) {
    stats->tuples_read += n * rel->num_columns();
    stats->tuples_written += n * rel->num_columns();
  }
  return out;
}

Result<size_t> AdaptiveStore::NumPieces(const std::string& table,
                                        const std::string& column) const {
  auto it = accels_.find(table + "." + column);
  if (it == accels_.end()) return size_t{1};
  if (it->second.crack32 != nullptr) return it->second.crack32->num_pieces();
  if (it->second.crack64 != nullptr) return it->second.crack64->num_pieces();
  return size_t{1};
}

namespace {

template <typename T>
std::string ExplainIndex(const CrackerIndex<T>& index) {
  std::string out =
      StrFormat("cracker index: %zu tuples, %zu pieces, %zu boundaries\n",
                index.size(), index.num_pieces(), index.num_bounds());
  size_t shown = 0;
  for (const CrackPiece<T>& p : index.Pieces()) {
    if (++shown > 64) {
      out += StrFormat("  ... (%zu pieces)\n", index.num_pieces());
      break;
    }
    std::string lo = p.has_lo ? StrFormat("%s%lld", p.lo_strict ? ">" : ">=",
                                          static_cast<long long>(p.lo))
                              : "-inf";
    std::string hi = p.has_hi ? StrFormat("%s%lld", p.hi_strict ? "<" : "<=",
                                          static_cast<long long>(p.hi))
                              : "+inf";
    out += StrFormat("  piece [%zu, %zu) size=%zu  values %s .. %s\n",
                     p.begin, p.end, p.size(), lo.c_str(), hi.c_str());
  }
  return out;
}

}  // namespace

Result<std::string> AdaptiveStore::ExplainColumn(
    const std::string& table, const std::string& column) const {
  auto bat = ResolveColumn(table, column);
  if (!bat.ok()) return bat.status();
  std::string out = StrFormat("%s.%s: %s, %zu tuples, strategy=%s\n",
                              table.c_str(), column.c_str(),
                              ValueTypeName((*bat)->tail_type()),
                              (*bat)->size(),
                              AccessStrategyName(options_.strategy));
  auto it = accels_.find(table + "." + column);
  bool has_accel = false;
  if (it != accels_.end()) {
    const ColumnAccel& accel = it->second;
    if (accel.crack32 != nullptr) {
      out += ExplainIndex(*accel.crack32);
      has_accel = true;
    }
    if (accel.crack64 != nullptr) {
      out += ExplainIndex(*accel.crack64);
      has_accel = true;
    }
    if (accel.sort32 != nullptr || accel.sort64 != nullptr) {
      out += "sorted copy present (binary-search access)\n";
      has_accel = true;
    }
  }
  if (!has_accel) out += "no accelerator yet (never queried)\n";
  return out;
}

template <typename T>
void AdaptiveStore::UpdateLineage(const std::string& table,
                                  const std::string& column,
                                  ColumnAccel* accel,
                                  const CrackerIndex<T>& index) {
  std::vector<CrackPiece<T>> pieces = index.Pieces();
  std::string prefix = table + "." + column;
  // Every current piece lies inside exactly one registered node (cuts only
  // ever subdivide). Group new pieces by enclosing registered range and log
  // one Ξ application per split node.
  std::map<std::pair<size_t, size_t>, std::vector<CrackPiece<T>>> by_parent;
  for (const CrackPiece<T>& p : pieces) {
    std::pair<size_t, size_t> self{p.begin, p.end};
    if (accel->piece_nodes.count(self) > 0) continue;  // unchanged piece
    // Find the enclosing registered node.
    for (const auto& [range, node] : accel->piece_nodes) {
      if (range.first <= p.begin && p.end <= range.second) {
        by_parent[range].push_back(p);
        break;
      }
    }
  }
  for (const auto& [range, children] : by_parent) {
    PieceId parent = accel->piece_nodes[range];
    std::vector<std::pair<std::string, uint64_t>> outputs;
    outputs.reserve(children.size());
    for (const CrackPiece<T>& p : children) {
      outputs.emplace_back(
          StrFormat("%s[%zu,%zu)", prefix.c_str(), p.begin, p.end),
          p.size());
    }
    auto ids = lineage_.AddCrack(CrackOp::kXi, {parent}, outputs);
    CRACK_DCHECK(ids.ok());
    accel->piece_nodes.erase(range);
    for (size_t i = 0; i < children.size(); ++i) {
      accel->piece_nodes[{children[i].begin, children[i].end}] = (*ids)[i];
    }
  }
}

template void AdaptiveStore::UpdateLineage<int32_t>(
    const std::string&, const std::string&, ColumnAccel*,
    const CrackerIndex<int32_t>&);
template void AdaptiveStore::UpdateLineage<int64_t>(
    const std::string&, const std::string&, ColumnAccel*,
    const CrackerIndex<int64_t>&);

}  // namespace crackstore
