// Copyright 2026 The CrackStore Authors

#include "core/oid_span_set.h"

#include <algorithm>

namespace crackstore {

void OidSpanSet::AddSpan(size_t begin, size_t end) {
  if (end <= begin) return;
  span_rows_ += end - begin;
  if (!spans_.empty() && spans_.back().end == begin) {
    spans_.back().end = end;
    return;
  }
  spans_.push_back(OidSpan{begin, end});
}

void OidSpanSet::MarkException(size_t concat_pos) {
  size_t w = concat_pos >> 6;
  if (w >= exceptions_.size()) exceptions_.resize(w + 1, 0);
  uint64_t bit = 1ull << (concat_pos & 63);
  if (exceptions_[w] & bit) return;
  exceptions_[w] |= bit;
  ++exception_count_;
}

void OidSpanSet::AddExtra(Oid oid) { extras_.push_back(oid); }

std::vector<Oid> OidSpanSet::ToOids() const {
  std::vector<Oid> out;
  out.reserve(count());
  ForEachOid([&out](Oid oid) { out.push_back(oid); });
  // Identity spans without extras are already ascending; everything else
  // (permuted maps, merged extras) sorts here, once, at the boundary.
  if (oid_map_ != nullptr || !extras_.empty()) {
    std::sort(out.begin(), out.end());
  }
  return out;
}

OidSpanSet OidSpanSet::FromMatchBitmap(const uint64_t* bm, size_t n,
                                       Oid base) {
  OidSpanSet set;
  set.BindIdentity(base);
  size_t run_start = 0;
  bool in_run = false;
  for (size_t i = 0; i < n; ++i) {
    bool hit = (bm[i >> 6] >> (i & 63)) & 1u;
    if (hit && !in_run) {
      run_start = i;
      in_run = true;
    } else if (!hit && in_run) {
      set.AddSpan(run_start, i);
      in_run = false;
    }
  }
  if (in_run) set.AddSpan(run_start, n);
  return set;
}

}  // namespace crackstore
