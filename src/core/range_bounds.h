// Copyright 2026 The CrackStore Authors
//
// RangeBounds: inclusive/exclusive range predicates over the int64-widened
// value domain — the `attr ∈ [low, high]` / `attr θ cst` selection shapes of
// paper §3.1. Shared by the cracking facade and both query engines.

#ifndef CRACKSTORE_CORE_RANGE_BOUNDS_H_
#define CRACKSTORE_CORE_RANGE_BOUNDS_H_

#include <cstdint>

namespace crackstore {

/// Range predicate with explicit bound inclusivity. One-sided predicates use
/// INT64_MIN/INT64_MAX sentinels.
struct RangeBounds {
  int64_t lo = INT64_MIN;
  bool lo_incl = true;
  int64_t hi = INT64_MAX;
  bool hi_incl = true;

  static RangeBounds All() { return RangeBounds{}; }
  static RangeBounds Closed(int64_t lo, int64_t hi) {
    return RangeBounds{lo, true, hi, true};
  }
  static RangeBounds HalfOpen(int64_t lo, int64_t hi) {
    return RangeBounds{lo, true, hi, false};
  }
  static RangeBounds Open(int64_t lo, int64_t hi) {
    return RangeBounds{lo, false, hi, false};
  }
  static RangeBounds LessThan(int64_t v) {
    return RangeBounds{INT64_MIN, true, v, false};
  }
  static RangeBounds AtMost(int64_t v) {
    return RangeBounds{INT64_MIN, true, v, true};
  }
  static RangeBounds GreaterThan(int64_t v) {
    return RangeBounds{v, false, INT64_MAX, true};
  }
  static RangeBounds AtLeast(int64_t v) {
    return RangeBounds{v, true, INT64_MAX, true};
  }
  static RangeBounds Equal(int64_t v) { return RangeBounds{v, true, v, true}; }

  /// True iff `v` satisfies the predicate.
  bool Contains(int64_t v) const {
    if (lo_incl ? v < lo : v <= lo) return false;
    if (hi_incl ? v > hi : v >= hi) return false;
    return true;
  }

  /// True iff no value can satisfy the predicate.
  bool IsEmpty() const {
    if (lo > hi) return true;
    return lo == hi && !(lo_incl && hi_incl);
  }
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_RANGE_BOUNDS_H_
