// Copyright 2026 The CrackStore Authors

#include "core/merge_policy.h"

namespace crackstore {

const char* MergePolicyKindName(MergePolicyKind kind) {
  switch (kind) {
    case MergePolicyKind::kNone:
      return "none";
    case MergePolicyKind::kLeastRecentlyUsed:
      return "lru";
    case MergePolicyKind::kOldestFirst:
      return "fifo";
    case MergePolicyKind::kSmallestPieces:
      return "smallest";
  }
  return "?";
}

MergePolicyKind MergePolicyKindFromString(const std::string& s) {
  if (s == "lru") return MergePolicyKind::kLeastRecentlyUsed;
  if (s == "fifo") return MergePolicyKind::kOldestFirst;
  if (s == "smallest") return MergePolicyKind::kSmallestPieces;
  return MergePolicyKind::kNone;
}

}  // namespace crackstore
