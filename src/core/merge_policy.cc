// Copyright 2026 The CrackStore Authors

#include "core/merge_policy.h"

namespace crackstore {

const char* MergePolicyKindName(MergePolicyKind kind) {
  switch (kind) {
    case MergePolicyKind::kNone:
      return "none";
    case MergePolicyKind::kLeastRecentlyUsed:
      return "lru";
    case MergePolicyKind::kOldestFirst:
      return "fifo";
    case MergePolicyKind::kSmallestPieces:
      return "smallest";
  }
  return "?";
}

MergePolicyKind MergePolicyKindFromString(const std::string& s) {
  if (s == "lru") return MergePolicyKind::kLeastRecentlyUsed;
  if (s == "fifo") return MergePolicyKind::kOldestFirst;
  if (s == "smallest") return MergePolicyKind::kSmallestPieces;
  return MergePolicyKind::kNone;
}

const char* DeltaMergePolicyName(DeltaMergePolicy policy) {
  switch (policy) {
    case DeltaMergePolicy::kImmediate:
      return "immediate";
    case DeltaMergePolicy::kThreshold:
      return "threshold";
    case DeltaMergePolicy::kRippleOnSelect:
      return "ripple";
  }
  return "?";
}

bool ParseDeltaMergePolicy(const std::string& s, DeltaMergePolicy* out) {
  if (s == "immediate") {
    *out = DeltaMergePolicy::kImmediate;
  } else if (s == "threshold") {
    *out = DeltaMergePolicy::kThreshold;
  } else if (s == "ripple" || s == "ripple-on-select") {
    *out = DeltaMergePolicy::kRippleOnSelect;
  } else {
    return false;
  }
  return true;
}

}  // namespace crackstore
