// Copyright 2026 The CrackStore Authors

#include "core/lineage.h"

#include "util/string_util.h"

namespace crackstore {

const char* CrackOpName(CrackOp op) {
  switch (op) {
    case CrackOp::kXi:
      return "Xi";
    case CrackOp::kPsi:
      return "Psi";
    case CrackOp::kWedge:
      return "Wedge";
    case CrackOp::kOmega:
      return "Omega";
  }
  return "?";
}

PieceId LineageGraph::AddRoot(std::string label, uint64_t size) {
  LineagePiece p;
  p.id = static_cast<PieceId>(pieces_.size());
  p.label = std::move(label);
  p.size = size;
  p.is_root = true;
  pieces_.push_back(std::move(p));
  return pieces_.back().id;
}

Result<std::vector<PieceId>> LineageGraph::AddCrack(
    CrackOp op, const std::vector<PieceId>& inputs,
    const std::vector<std::pair<std::string, uint64_t>>& outputs) {
  if (inputs.empty()) return Status::InvalidArgument("crack needs inputs");
  if (outputs.empty()) return Status::InvalidArgument("crack needs outputs");
  for (PieceId in : inputs) {
    if (in >= pieces_.size()) {
      return Status::NotFound(StrFormat("unknown input piece %u", in));
    }
  }
  std::vector<PieceId> ids;
  ids.reserve(outputs.size());
  for (const auto& [label, size] : outputs) {
    LineagePiece p;
    p.id = static_cast<PieceId>(pieces_.size());
    p.label = label;
    p.size = size;
    p.produced_by = op;
    p.parents = inputs;
    pieces_.push_back(std::move(p));
    ids.push_back(pieces_.back().id);
  }
  for (PieceId in : inputs) {
    for (PieceId out : ids) pieces_[in].children.push_back(out);
  }
  return ids;
}

const LineagePiece& LineageGraph::piece(PieceId id) const {
  CRACK_CHECK(id < pieces_.size());
  return pieces_[id];
}

std::vector<PieceId> LineageGraph::Leaves(PieceId root) const {
  std::vector<PieceId> out;
  std::vector<PieceId> stack{root};
  std::vector<bool> seen(pieces_.size(), false);
  while (!stack.empty()) {
    PieceId id = stack.back();
    stack.pop_back();
    if (id >= pieces_.size() || seen[id]) continue;
    seen[id] = true;
    const LineagePiece& p = pieces_[id];
    if (p.trimmed) continue;
    if (p.children.empty()) {
      out.push_back(id);
    } else {
      for (PieceId c : p.children) stack.push_back(c);
    }
  }
  return out;
}

Status LineageGraph::TrimDescendants(PieceId id) {
  if (id >= pieces_.size()) return Status::NotFound("unknown piece");
  std::vector<PieceId> stack(pieces_[id].children.begin(),
                             pieces_[id].children.end());
  std::vector<bool> seen(pieces_.size(), false);
  while (!stack.empty()) {
    PieceId cur = stack.back();
    stack.pop_back();
    if (cur >= pieces_.size() || seen[cur]) continue;
    seen[cur] = true;
    LineagePiece& p = pieces_[cur];
    p.trimmed = true;
    for (PieceId c : p.children) stack.push_back(c);
    p.children.clear();
  }
  pieces_[id].children.clear();
  return Status::OK();
}

Status LineageGraph::CheckLossless(PieceId root) const {
  if (root >= pieces_.size()) return Status::NotFound("unknown root");
  // Walk down; every horizontally cracked piece must have children sizes
  // summing to its own size. Ψ children are excluded (vertical split keeps
  // full cardinality in each fragment).
  for (size_t id = 0; id < pieces_.size(); ++id) {
    const LineagePiece& p = pieces_[id];
    if (p.trimmed || p.children.empty()) continue;
    // Group children by the op that produced them; Ψ and ^ involve multiple
    // parents, so only check children whose sole parent is p.
    uint64_t sum = 0;
    bool checkable = true;
    for (PieceId c : p.children) {
      const LineagePiece& child = pieces_[c];
      if (child.produced_by == CrackOp::kPsi ||
          child.parents.size() != 1) {
        checkable = false;
        break;
      }
      sum += child.size;
    }
    if (checkable && sum != p.size) {
      return Status::Internal(
          StrFormat("piece %s: children sum %llu != size %llu",
                    p.label.c_str(), static_cast<unsigned long long>(sum),
                    static_cast<unsigned long long>(p.size)));
    }
  }
  (void)root;
  return Status::OK();
}

std::string LineageGraph::ToDot() const {
  std::string out = "digraph lineage {\n  rankdir=TB;\n";
  for (const LineagePiece& p : pieces_) {
    if (p.trimmed) continue;  // fused pieces are no longer part of the plan
    out += StrFormat("  p%u [label=\"%s\\n%llu tuples\"%s];\n", p.id,
                     p.label.c_str(),
                     static_cast<unsigned long long>(p.size),
                     p.is_root ? ", shape=box" : "");
  }
  for (const LineagePiece& p : pieces_) {
    for (PieceId c : p.children) {
      out += StrFormat("  p%u -> p%u [label=\"%s\"];\n", p.id, c,
                       CrackOpName(pieces_[c].produced_by));
    }
  }
  out += "}\n";
  return out;
}

}  // namespace crackstore
