// Copyright 2026 The CrackStore Authors

#include "core/updatable_cracker_index.h"

#include <algorithm>

#include "obs/instruments.h"
#include "util/string_util.h"

namespace crackstore {

template <typename T>
UpdatableCrackerIndex<T>::UpdatableCrackerIndex(
    const std::shared_ptr<Bat>& source, IoStats* stats,
    UpdatableCrackerIndexOptions options)
    : options_(options),
      index_(std::make_unique<CrackerIndex<T>>(source, stats,
                                               options.index_options)),
      merged_size_(source->size()),
      next_fresh_oid_(source->head_base() + source->size()) {}

template <typename T>
Status UpdatableCrackerIndex<T>::Insert(T value, Oid oid) {
  if (oid < next_fresh_oid_) {
    return Status::InvalidArgument(
        StrFormat("oid %llu already in use (next fresh: %llu)",
                  static_cast<unsigned long long>(oid),
                  static_cast<unsigned long long>(next_fresh_oid_)));
  }
  pending_.emplace_back(value, oid);
  next_fresh_oid_ = oid + 1;
  return Status::OK();
}

template <typename T>
Status UpdatableCrackerIndex<T>::Delete(Oid oid) {
  if (oid >= next_fresh_oid_) {
    return Status::NotFound(
        StrFormat("oid %llu was never inserted",
                  static_cast<unsigned long long>(oid)));
  }
  // A pending insert is cancelled directly. The oid joins the physically-
  // gone set so that a later Update()/Delete() on it reports the row dead
  // instead of re-entering it as a "merged tuple" rebirth.
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [oid](const auto& p) { return p.second == oid; });
  if (it != pending_.end()) {
    pending_.erase(it);
    purged_.insert(oid);
    return Status::OK();
  }
  if (purged_.count(oid) > 0 || deleted_.count(oid) > 0) {
    return Status::AlreadyExists(
        StrFormat("oid %llu already deleted",
                  static_cast<unsigned long long>(oid)));
  }
  deleted_.insert(oid);
  return Status::OK();
}

template <typename T>
Status UpdatableCrackerIndex<T>::Update(T value, Oid oid) {
  // Concurrency audit (PR 4): this routine runs strictly under the owning
  // path's delta latch, so the classification below (pending? purged?
  // deleted? else merged) cannot go stale between the checks and the
  // delta mutation. The *piece map* is deliberately never consulted here —
  // the tombstone + re-pend pair keys on oids, which survive any concurrent
  // crack's shuffle, unlike positions. The window that remains is between a
  // caller's WHERE scan and this call; the facade closes it by revalidating
  // liveness per oid inside its write-latch scope and treating the NotFound
  // below as "row died, skip" rather than a statement abort. Merge()
  // re-checks the whole tombstone set against the fold
  // ("tombstone set references missing oids"), so a stale entry can never
  // silently drop rows.
  if (oid >= next_fresh_oid_) {
    return Status::NotFound(
        StrFormat("oid %llu was never inserted",
                  static_cast<unsigned long long>(oid)));
  }
  // A pending insert is rewritten in place.
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [oid](const auto& p) { return p.second == oid; });
  if (it != pending_.end()) {
    it->first = value;
    return Status::OK();
  }
  if (purged_.count(oid) > 0 || deleted_.count(oid) > 0) {
    return Status::NotFound(
        StrFormat("oid %llu is deleted",
                  static_cast<unsigned long long>(oid)));
  }
  // Merged tuple: tombstone the old value, re-enter the new one under the
  // same oid. Merge() folds both sides, leaving one live copy.
  deleted_.insert(oid);
  pending_.emplace_back(value, oid);
  return Status::OK();
}

template <typename T>
UpdatableSelection<T> UpdatableCrackerIndex<T>::Select(T lo, bool lo_incl,
                                                       T hi, bool hi_incl,
                                                       IoStats* stats) {
  if (ShouldAutoMerge()) {
    Status st = Merge(stats);
    CRACK_DCHECK(st.ok());
  }

  UpdatableSelection<T> out;
  out.base = index_->Select(lo, lo_incl, hi, hi_incl, stats);

  if (!deleted_.empty()) {
    const Oid* oids =
        index_->oids()->template TailData<Oid>() + out.base.oids.offset();
    for (size_t i = 0; i < out.base.oids.size(); ++i) {
      out.deleted_in_base += deleted_.count(oids[i]);
    }
    if (stats != nullptr) stats->tuples_read += out.base.oids.size();
  }
  auto in_range = [&](T v) {
    if (lo_incl ? v < lo : v <= lo) return false;
    if (hi_incl ? v > hi : v >= hi) return false;
    return true;
  };
  for (const auto& [value, oid] : pending_) {
    if (in_range(value)) out.delta.emplace_back(value, oid);
  }
  if (stats != nullptr) stats->tuples_read += pending_.size();
  return out;
}

template <typename T>
void UpdatableCrackerIndex<T>::ForEach(
    const UpdatableSelection<T>& selection,
    const std::function<void(T, Oid)>& fn) const {
  for (size_t i = 0; i < selection.base.count(); ++i) {
    Oid oid = selection.base.oids.template Get<Oid>(i);
    if (!deleted_.empty() && deleted_.count(oid) > 0) continue;
    fn(selection.base.values.template Get<T>(i), oid);
  }
  for (const auto& [value, oid] : selection.delta) fn(value, oid);
}

template <typename T>
Status UpdatableCrackerIndex<T>::Merge(IoStats* stats) {
  if (pending_.empty() && deleted_.empty()) return Status::OK();

  // Snapshot the learned boundaries before rebuilding.
  std::vector<CrackBound<T>> bounds = index_->Bounds();

  // New cracker column: the current (clustered!) survivors followed by the
  // pending inserts.
  size_t old_n = index_->size();
  auto values = Bat::Create(TypeTraits<T>::kType, "merged#crack");
  auto oids = Bat::Create(ValueType::kOid, "merged#crackmap");
  values->Reserve(old_n + pending_.size());
  oids->Reserve(old_n + pending_.size());
  T* vd = values->template MutableTailData<T>();
  Oid* od = oids->template MutableTailData<Oid>();
  const T* src_v = index_->values()->template TailData<T>();
  const Oid* src_o = index_->oids()->template TailData<Oid>();
  size_t w = 0;
  for (size_t i = 0; i < old_n; ++i) {
    if (!deleted_.empty() && deleted_.count(src_o[i]) > 0) continue;
    vd[w] = src_v[i];
    od[w] = src_o[i];
    ++w;
  }
  size_t survivors = w;
  if (survivors + deleted_.size() != old_n) {
    return Status::Internal("tombstone set references missing oids");
  }
  for (const auto& [value, oid] : pending_) {
    vd[w] = value;
    od[w] = oid;
    ++w;
  }
  values->SetCountUnsafe(w);
  oids->SetCountUnsafe(w);
  if (stats != nullptr) {
    stats->tuples_read += old_n + pending_.size();
    stats->tuples_written += w;
  }

  auto rebuilt = std::make_unique<CrackerIndex<T>>(
      std::move(values), std::move(oids), options_.index_options);

  // Re-apply the learned boundaries. Replaying in binary-split order (the
  // median bound first, then recursively each half) keeps every re-crack
  // confined to half its parent's region: O(n log B) total instead of the
  // O(B n) a value-ordered replay would cost.
  std::function<void(size_t, size_t)> replay = [&](size_t lo, size_t hi) {
    if (lo >= hi) return;
    size_t mid = lo + (hi - lo) / 2;
    const CrackBound<T>& b = bounds[mid];
    if (b.has_excl) {
      (void)rebuilt->SelectLessThan(b.value, /*inclusive=*/false, stats);
    }
    if (b.has_incl) {
      (void)rebuilt->SelectLessThan(b.value, /*inclusive=*/true, stats);
    }
    replay(lo, mid);
    replay(mid + 1, hi);
  };
  replay(0, bounds.size());

  index_ = std::move(rebuilt);
  merged_size_ = w;
  // An Update() leaves its oid both tombstoned (old value) and pending (new
  // value): the fold keeps that row alive, so only tombstones without a
  // pending rebirth are physically gone.
  std::unordered_set<Oid> reborn;
  reborn.reserve(pending_.size());
  for (const auto& [value, oid] : pending_) reborn.insert(oid);
  for (Oid oid : deleted_) {
    if (reborn.count(oid) == 0) purged_.insert(oid);
  }
  deleted_.clear();
  pending_.clear();
  ++merges_performed_;
  obs::RecordMerge(w);
  return Status::OK();
}

template <typename T>
Status UpdatableCrackerIndex<T>::Validate() const {
  CRACK_RETURN_NOT_OK(index_->Validate());
  if (index_->size() != merged_size_) {
    return Status::Internal("merged size drifted from index size");
  }
  // Tombstones must reference oids that exist in the cracker column.
  if (!deleted_.empty()) {
    std::unordered_set<Oid> live;
    const Oid* oids = index_->oids()->template TailData<Oid>();
    for (size_t i = 0; i < index_->size(); ++i) live.insert(oids[i]);
    for (Oid oid : deleted_) {
      if (live.count(oid) == 0) {
        return Status::Internal("tombstone references unknown oid");
      }
    }
  }
  // Pending oids must be fresh and unique.
  std::unordered_set<Oid> seen;
  for (const auto& [value, oid] : pending_) {
    if (oid >= next_fresh_oid_) {
      return Status::Internal("pending oid beyond fresh watermark");
    }
    if (!seen.insert(oid).second) {
      return Status::Internal("duplicate pending oid");
    }
  }
  return Status::OK();
}

template class UpdatableCrackerIndex<int32_t>;
template class UpdatableCrackerIndex<int64_t>;
template class UpdatableCrackerIndex<double>;

}  // namespace crackstore
