// Copyright 2026 The CrackStore Authors
//
// SortedColumn: the classical alternative to cracking (paper §2.2): "An
// alternative strategy (and optimal in read-only settings) would be to
// completely sort or index the table upfront, which would require N log N
// writes. This investment would be recovered after log N queries." Fig. 11
// compares this baseline against cracking and scanning.

#ifndef CRACKSTORE_CORE_SORTED_COLUMN_H_
#define CRACKSTORE_CORE_SORTED_COLUMN_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "core/cracker_index.h"
#include "storage/bat.h"
#include "obs/query_stats.h"
#include "util/macros.h"

namespace crackstore {

/// A fully sorted copy of a column with its oid map, answering range
/// selections by binary search.
template <typename T>
class SortedColumn {
 public:
  /// Sorts a clone of `source`. The build charges n reads and (paper's cost
  /// model) n·ceil(log2 n) writes to `stats`, plus the real wall-clock cost
  /// of the sort.
  explicit SortedColumn(const std::shared_ptr<Bat>& source,
                        IoStats* stats = nullptr) {
    CRACK_CHECK(source != nullptr);
    CRACK_CHECK(source->tail_type() == TypeTraits<T>::kType);
    n_ = source->size();
    const T* src = source->TailData<T>();

    // argsort, then scatter values and oids.
    std::vector<size_t> perm(n_);
    std::iota(perm.begin(), perm.end(), size_t{0});
    std::sort(perm.begin(), perm.end(),
              [src](size_t a, size_t b) { return src[a] < src[b]; });

    values_ = Bat::Create(source->tail_type(), source->name() + "#sorted");
    oids_ = Bat::Create(ValueType::kOid, source->name() + "#sortedmap");
    values_->Reserve(n_);
    oids_->Reserve(n_);
    T* dst = values_->MutableTailData<T>();
    Oid* om = oids_->MutableTailData<Oid>();
    Oid base = source->head_base();
    for (size_t i = 0; i < n_; ++i) {
      dst[i] = src[perm[i]];
      om[i] = base + perm[i];
    }
    values_->SetCountUnsafe(n_);
    oids_->SetCountUnsafe(n_);

    if (stats != nullptr) {
      stats->tuples_read += n_;
      uint64_t log2n =
          n_ < 2 ? 1 : static_cast<uint64_t>(std::ceil(std::log2(n_)));
      stats->tuples_written += n_ * log2n;
    }
  }

  /// Adopts pre-sorted parallel (values, oids) columns without re-sorting.
  /// Used by delta maintenance that rebuilds the sorted copy by merging
  /// sorted runs. `values` must be typed T and ascending, `oids` typed kOid,
  /// equal length.
  SortedColumn(std::shared_ptr<Bat> values, std::shared_ptr<Bat> oids)
      : values_(std::move(values)), oids_(std::move(oids)) {
    CRACK_CHECK(values_ != nullptr && oids_ != nullptr);
    CRACK_CHECK(values_->tail_type() == TypeTraits<T>::kType);
    CRACK_CHECK(oids_->tail_type() == ValueType::kOid);
    CRACK_CHECK(values_->size() == oids_->size());
    n_ = values_->size();
  }

  CRACK_DISALLOW_COPY_AND_ASSIGN(SortedColumn);

  /// Binary-search range selection; O(log n) reads charged to `stats`.
  CrackSelection Select(T lo, bool lo_incl, T hi, bool hi_incl,
                        IoStats* stats = nullptr) const {
    const T* d = values_->TailData<T>();
    const T* begin = d;
    const T* end = d + n_;
    const T* from =
        lo_incl ? std::lower_bound(begin, end, lo)
                : std::upper_bound(begin, end, lo);
    const T* to = hi_incl ? std::upper_bound(begin, end, hi)
                          : std::lower_bound(begin, end, hi);
    if (to < from) to = from;
    size_t off = static_cast<size_t>(from - d);
    size_t len = static_cast<size_t>(to - from);
    if (stats != nullptr) {
      uint64_t log2n =
          n_ < 2 ? 1 : static_cast<uint64_t>(std::ceil(std::log2(n_)));
      stats->tuples_read += 2 * log2n;
    }
    return CrackSelection{BatView(values_, off, len),
                          BatView(oids_, off, len)};
  }

  size_t size() const { return n_; }
  const std::shared_ptr<Bat>& values() const { return values_; }
  const std::shared_ptr<Bat>& oids() const { return oids_; }

 private:
  std::shared_ptr<Bat> values_;
  std::shared_ptr<Bat> oids_;
  size_t n_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_SORTED_COLUMN_H_
