// Copyright 2026 The CrackStore Authors
//
// CrackerIndex: the auxiliary structure of paper §3.2. For one column it
// maintains
//   * a *cracker column*: a clone of the source tail that crack kernels
//     shuffle in place, plus a parallel oid array (the cracker map) linking
//     every slot back to its source tuple;
//   * a decorated search tree over *piece boundaries*: value v -> position p
//     such that everything left of p is < v (exclusive bound) or <= v
//     (inclusive bound). Pieces are the maximal runs between boundaries; the
//     tree stores their (min,max) knowledge, sizes and usage clocks.
//
// Each range selection first navigates the tree, cracks at most the two
// pieces at the predicate boundaries (crack-in-three when both ends fall in
// one piece), registers the new boundaries, and answers with a zero-copy
// contiguous view — "the incremental buildup of a search accelerator, driven
// by actual queries" (paper §2.2).

#ifndef CRACKSTORE_CORE_CRACKER_INDEX_H_
#define CRACKSTORE_CORE_CRACKER_INDEX_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/crack_kernels.h"
#include "core/latch.h"
#include "storage/bat.h"
#include "obs/query_stats.h"
#include "util/macros.h"
#include "util/status.h"

namespace crackstore {

/// A contiguous answer of a cracked selection: parallel views over the
/// cracker column's values and oids.
struct CrackSelection {
  BatView values;  ///< the qualifying tail values (contiguous)
  BatView oids;    ///< their source oids, position-aligned with `values`
  size_t count() const { return values.size(); }
};

/// Descriptive snapshot of one piece (test & optimizer support).
template <typename T>
struct CrackPiece {
  size_t begin = 0;  ///< first position in the cracker column
  size_t end = 0;    ///< one past the last position
  bool has_lo = false;
  T lo{};            ///< if has_lo: every value v in the piece satisfies
  bool lo_strict = false;  ///< lo_strict ? v > lo : v >= lo
  bool has_hi = false;
  T hi{};            ///< if has_hi: every value v satisfies
  bool hi_strict = false;  ///< hi_strict ? v < hi : v <= hi
  size_t size() const { return end - begin; }
};

/// Snapshot of one registered boundary (merge-policy support).
template <typename T>
struct CrackBound {
  T value{};
  bool has_excl = false;
  size_t pos_excl = 0;  ///< first index holding values >= value
  bool has_incl = false;
  size_t pos_incl = 0;  ///< first index holding values > value
  uint64_t last_used = 0;
  uint64_t created = 0;
};

/// Result of a budgeted (progressive) cut attempt. When `exact`, the cut is
/// registered and lo == hi == its position. Otherwise [lo, hi) is the still
/// unpartitioned frontier of the touched piece: every slot left of `lo`
/// definitely satisfies the cut predicate, every slot at or right of `hi`
/// definitely does not, and the caller must answer conservatively (treat
/// [lo, hi) as "maybe" and filter).
struct ProgressiveCut {
  size_t lo = 0;
  size_t hi = 0;
  bool exact = false;
  size_t deferred = 0;  ///< rows left unpartitioned in the touched piece
};

/// Tuning knobs of a cracker index.
struct CrackerIndexOptions {
  /// §3.1 proposes a *three-piece* Ξ for double-sided ranges so the
  /// consecutive-ranges property is regained in one pass. When false, a
  /// pristine range is handled as two successive crack-in-two passes
  /// instead (the ablation the bench suite measures).
  bool use_crack_in_three = true;
};

/// The cracker index over one numeric column. T in {int32_t, int64_t,
/// double}.
template <typename T>
class CrackerIndex {
 public:
  /// Builds the index over `source`, cloning its tail into the cracker
  /// column and materializing the oid map. The copy cost (n reads, n writes)
  /// is charged to `stats` — this is the investment Figures 2-3 analyze.
  explicit CrackerIndex(const std::shared_ptr<Bat>& source,
                        IoStats* stats = nullptr,
                        CrackerIndexOptions options = {});

  /// Adopts pre-built parallel (values, oids) columns without copying.
  /// Used by maintenance operations (delta merging) that rebuild the
  /// cracker column while preserving an arbitrary source-oid mapping.
  /// `values` must be typed T, `oids` typed kOid, equal length.
  CrackerIndex(std::shared_ptr<Bat> values, std::shared_ptr<Bat> oids,
               CrackerIndexOptions options = {});

  CRACK_DISALLOW_COPY_AND_ASSIGN(CrackerIndex);

  /// Range selection with explicit bound inclusivity. The result holds
  /// values v with (lo_incl ? v >= lo : v > lo) && (hi_incl ? v <= hi :
  /// v < hi). Cracks at most two pieces. An inverted range yields an empty
  /// selection.
  CrackSelection Select(T lo, bool lo_incl, T hi, bool hi_incl,
                        IoStats* stats = nullptr);

  /// One-sided selections (attr θ cst for θ in {<, <=, >, >=}).
  CrackSelection SelectLessThan(T v, bool inclusive,
                                IoStats* stats = nullptr);
  CrackSelection SelectGreaterThan(T v, bool inclusive,
                                   IoStats* stats = nullptr);

  /// Point selection (attr == v), a degenerate double-sided range (§3.1).
  CrackSelection SelectEquals(T v, IoStats* stats = nullptr);

  /// The whole cracker column as one selection (no cracking).
  CrackSelection SelectAll() const;

  // --- policy hooks (core/crack_policy.h) ---------------------------------
  // Cracking policies steer *where* pivots land beyond the query bounds;
  // these primitives let them inspect and cut the piece table directly.

  /// True (and `*pos` set) iff the cut for value `v` with the requested
  /// inclusivity is already registered. Never cracks, never touches clocks.
  bool FindCut(T v, bool want_incl, size_t* pos) const;

  /// Refreshes the usage clock of the boundary at `v` (no-op when absent).
  /// Callers answering from a FindCut hit use this to keep LRU-based merge
  /// budgets honest about which boundaries the workload still needs.
  void TouchBound(T v);

  /// Registers the cut for `v` (cracking the enclosing piece if needed) and
  /// returns its position — the crack-at-pivot primitive:
  ///   want_incl == false -> first index holding values >= v
  ///   want_incl == true  -> first index holding values >  v
  size_t ForceCut(T v, bool want_incl, IoStats* stats = nullptr) {
    return Cut(v, want_incl, stats);
  }

  // --- progressive cracking (CrackPolicy::kProgressive) --------------------
  // A budgeted cut performs at most `max_writes` tuple writes (plus one
  // swap of overshoot) and carries the partition frontier per piece, so the
  // cut completes incrementally across queries. One job lives per piece; a
  // query hitting a piece owned by a different pivot first spends its
  // budget finishing that job (the piece then subdivides and navigation
  // retries), so every piece converges and per-query work stays bounded.

  /// Budgeted ForceCut (serial contract, like Cut). See ProgressiveCut for
  /// the answer semantics.
  ProgressiveCut CutProgressive(T v, bool want_incl, size_t max_writes,
                                IoStats* stats = nullptr);

  /// Thread-safe CutProgressive: frontier advances run under the exclusive
  /// range lock of the enclosing piece, frontier state under map_mu_.
  /// Non-exact frontiers stay conservative under concurrency: a partial
  /// pass only moves rows inside the open frontier, and completed cuts only
  /// subdivide, so a span read from a stale frontier is still a superset of
  /// the qualifying rows (callers filter under LockRangeShared).
  ProgressiveCut CutProgressiveConcurrent(T v, bool want_incl,
                                          size_t max_writes,
                                          IoStats* stats = nullptr);

  /// Rows still awaiting partitioning across all carried frontiers (0 once
  /// the column has converged). Thread-safe.
  size_t progressive_pending() const;

  // --- concurrent cracking (core/latch.h) ----------------------------------
  // Pieces are disjoint slot ranges, so crack kernels on different pieces
  // can shuffle concurrently. CutConcurrent navigates the boundary map under
  // a short internal mutex, then takes an *exclusive* range lock on the
  // enclosing piece for the shuffle itself; registered cut positions never
  // move afterwards (cracks only ever subdivide pieces), so readers may rely
  // on returned positions without further coordination. Callers reading tail
  // data inside a span must hold LockRangeShared over it for the duration of
  // the read, which excludes in-flight shuffles of enclosed pieces.
  //
  // Contract: concurrent callers use ONLY CutConcurrent + LockRangeShared +
  // PieceSpanForConcurrent + ValueAtConcurrent + the const accessors below;
  // the serial primitives (Select/ForceCut/...) require external exclusive
  // ownership of the whole index. The two modes must not be mixed without
  // that exclusion.

  /// Thread-safe ForceCut: same postcondition, callable from many threads
  /// at once. Returns the (stable) cut position.
  size_t CutConcurrent(T v, bool want_incl, IoStats* stats = nullptr);

  /// Thread-safe FindCut + usage-clock touch: true (and *pos set) iff the
  /// cut is already registered. CutConcurrent's fast path, exposed so
  /// callers can skip fan-out scheduling when no shuffle is pending.
  bool FindCutConcurrent(T v, bool want_incl, size_t* pos);

  /// Blocks until no concurrent cut is shuffling inside [begin, end); the
  /// returned guard keeps those pieces still while the caller reads them.
  RangeLockGuard LockRangeShared(size_t begin, size_t end) {
    return RangeLockGuard(&range_locks_, begin, end, /*exclusive=*/false);
  }

  /// Thread-safe PieceSpanFor: the undivided slot range around `v`, read
  /// under the boundary-map mutex. A racing cut may subdivide the span the
  /// moment the mutex drops; steered policies tolerate that (a narrower
  /// live span only means the auxiliary work was already done by someone
  /// else).
  std::pair<size_t, size_t> PieceSpanForConcurrent(T v) const;

  /// Thread-safe read of the tail value at `slot`: holds a shared range
  /// lock over [slot, slot+1) so no in-flight shuffle is mid-swap there.
  /// Any value observed is a valid pivot — shuffles only permute tuples
  /// within a piece, so whatever sits at `slot` is some element of the
  /// piece that covered it.
  T ValueAtConcurrent(size_t slot);

  /// The slot range [begin, end) of the piece(s) still undivided around
  /// value `v`: every tuple with tail value v lies inside. Derived from
  /// registered boundaries strictly below/above v, so an existing boundary
  /// at v itself does not narrow the span.
  std::pair<size_t, size_t> PieceSpanFor(T v) const {
    return {LowerLimitFor(v), UpperLimitFor(v)};
  }

  size_t size() const { return n_; }

  /// Number of pieces currently delimited (distinct cut positions + 1).
  size_t num_pieces() const;

  /// Number of registered boundary values.
  size_t num_bounds() const { return bounds_.size(); }

  /// Piece table in physical order, with value-bound decoration.
  std::vector<CrackPiece<T>> Pieces() const;

  /// Boundary table in value order.
  std::vector<CrackBound<T>> Bounds() const;

  /// Fuses the pieces around `value` by dropping its boundary — no data
  /// movement, only loss of navigation knowledge (paper §3.2: "Fusion of
  /// pieces becomes a necessity"). Fails if no such boundary exists.
  Status RemoveBound(T value);

  /// The cracker column (values, shuffled in place by cracking).
  const std::shared_ptr<Bat>& values() const { return values_; }

  /// The parallel oid map; oids()->Get<Oid>(i) is the source oid of
  /// values()->Get<T>(i).
  const std::shared_ptr<Bat>& oids() const { return oids_; }

  /// Exhaustively re-checks every boundary's semantics against the data
  /// (O(bounds * n); test support).
  Status Validate() const;

 private:
  struct Bound {
    bool has_excl = false;
    size_t pos_excl = 0;
    bool has_incl = false;
    size_t pos_incl = 0;
    uint64_t last_used = 0;
    uint64_t created = 0;
  };

  T* data() { return values_->MutableTailData<T>(); }
  const T* data() const { return values_->TailData<T>(); }
  Oid* oid_data() { return oids_->MutableTailData<Oid>(); }

  /// Largest known position that is <= any cut for value v; scans bounds
  /// strictly below v.
  size_t LowerLimitFor(T v) const;

  /// Smallest known position that is >= any cut for value v; scans bounds
  /// strictly above v.
  size_t UpperLimitFor(T v) const;

  /// Returns the cut position for value `v`:
  ///   want_incl == false -> first index holding values >= v
  ///   want_incl == true  -> first index holding values >  v
  /// Cracks the enclosing piece if the cut is not yet known.
  size_t Cut(T v, bool want_incl, IoStats* stats);

  /// The slot region a cut for `v`/`want_incl` would have to shuffle. Only
  /// valid when the cut is not yet registered.
  void CrackRegionFor(T v, bool want_incl, size_t* begin, size_t* end) const;

  /// Records the cut position `pos` for `v`/`want_incl` and touches the
  /// boundary's usage clock.
  void RegisterCut(T v, bool want_incl, size_t pos);

  /// FindCut that refreshes the usage clock on a hit (CutConcurrent's
  /// fast path; callers hold map_mu_).
  bool FindCutAndTouch(T v, bool want_incl, size_t* pos);

  void Touch(Bound* b) { b->last_used = clock_++; }

  /// A carried partition frontier: the piece [begin, end) is being
  /// partitioned around `pivot`, with [begin, lo) already satisfying the
  /// predicate, [hi, end) already not, and [lo, hi) open.
  struct ProgressiveJob {
    T pivot{};
    bool want_incl = false;
    size_t begin = 0;
    size_t end = 0;
    size_t lo = 0;
    size_t hi = 0;
  };

  /// Runs one budgeted partition pass on `job` against the cracker column,
  /// charges stats/metrics, sets *done when the frontier closed. Returns
  /// the writes performed. Caller owns the piece (serial contract or the
  /// exclusive range lock).
  size_t AdvanceProgressive(ProgressiveJob* job, size_t max_writes,
                            bool* done, IoStats* stats);

  /// Drops any frontier carried for the piece starting at `begin` — called
  /// wherever a full (non-progressive) kernel is about to repartition that
  /// piece, which invalidates the frontier's invariant.
  void InvalidateProgressive(size_t begin) { progressive_.erase(begin); }

  std::map<T, Bound> bounds_;
  /// Progressive frontiers, keyed by their piece's begin slot (one job per
  /// piece). Guarded by map_mu_ on the concurrent path.
  std::map<size_t, ProgressiveJob> progressive_;
  std::shared_ptr<Bat> values_;
  std::shared_ptr<Bat> oids_;
  /// Raw tail pointers, cached so concurrent kernels skip the Bat accessor
  /// (whose stats invalidation is a write). The cracker column never grows,
  /// so the pointers are stable for the index's lifetime.
  T* raw_values_ = nullptr;
  Oid* raw_oids_ = nullptr;
  size_t n_ = 0;
  uint64_t clock_ = 1;
  CrackerIndexOptions options_;
  /// Guards bounds_/clock_ among CutConcurrent callers (and makes the const
  /// piece/bound snapshots safe against in-flight concurrent cuts). The
  /// serial primitives bypass it; see the concurrency contract above.
  mutable std::mutex map_mu_;
  RangeLockTable range_locks_;  ///< piece-granular data locks
};

extern template class CrackerIndex<int32_t>;
extern template class CrackerIndex<int64_t>;
extern template class CrackerIndex<double>;

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_CRACKER_INDEX_H_
