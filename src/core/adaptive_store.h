// Copyright 2026 The CrackStore Authors
//
// AdaptiveStore: the public facade of CrackStore. It owns a set of column
// tables and, per the paper's architecture (§3), sits "between the semantic
// analyzer and the query optimizer": every incoming selection, join or
// group-by is interpreted both as a request for a subset and as advice to
// crack the store. Physical access per column is delegated to the
// type-erased ColumnAccessPath layer (core/access_path.h), so the facade is
// independent of both element widths and the strategy/policy axes: strategy
// knobs allow running the same query stream as plain scans (the paper's
// "nocrack" lines) or against an upfront sorted copy (the "sort" line of
// Fig. 11), and the crack strategy composes with any CrackPolicy
// (standard / stochastic / coarse, core/crack_policy.h).

#ifndef CRACKSTORE_CORE_ADAPTIVE_STORE_H_
#define CRACKSTORE_CORE_ADAPTIVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/access_path.h"
#include "core/crack_policy.h"
#include "core/group_cracker.h"
#include "core/join_cracker.h"
#include "core/lineage.h"
#include "core/merge_policy.h"
#include "core/projection_cracker.h"
#include "core/range_bounds.h"
#include "core/txn_manager.h"
#include "durability/checkpoint.h"
#include "durability/manifest.h"
#include "durability/wal.h"
#include "obs/query_stats.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// What a query delivers (paper §2.1, Fig. 1): counting is cheapest,
/// view/stream delivery is middle, materializing a new table is dearest.
enum class Delivery : uint8_t {
  kCount = 0,        ///< only the qualifying-tuple count
  kView = 1,         ///< oids of qualifying tuples (zero-copy when cracked)
  kMaterialize = 2,  ///< a fresh Relation holding the qualifying rows
};

/// Store-wide options.
struct AdaptiveStoreOptions {
  AccessStrategy strategy = AccessStrategy::kCrack;
  CrackPolicyOptions policy;  ///< pivot discipline (crack strategy only)
  MergeBudget merge_budget;   ///< piece-fusion budget (crack strategy only)
  DeltaMergeOptions delta_merge;  ///< when DML deltas fold back per column
  bool track_lineage = true;  ///< record the Ξ/Ψ/^/Ω DAG (Figs. 5-6)

  /// Concurrent mode: every public operation may be called from any thread.
  /// The store coordinates via a per-column reader/writer latch (DML and
  /// shared-capable selections take it shared; builds and delta merges take
  /// it exclusive), a per-table base latch (row appends / in-place updates
  /// exclusive, base readers shared) and piece-granular range locks inside
  /// the cracker indexes, so selections hitting different pieces of one
  /// column crack in parallel. Costs: results are always materialized oid
  /// lists (never zero-copy views), joins/group-bys/projections serialize
  /// store-wide, and lineage tracking is forced off. Statements are atomic
  /// per column, not across columns (see README, "Concurrency model").
  bool concurrent = false;

  /// The per-column slice of these options.
  AccessPathConfig path_config() const {
    AccessPathConfig config{strategy, policy, merge_budget, delta_merge};
    config.concurrent = concurrent;
    return config;
  }
};

/// Whether a database survives the process (DbOptions::durability).
enum class DurabilityMode : uint8_t {
  kNone = 0,  ///< in-memory only; nothing written to disk
  kWal = 1,   ///< commit log + checkpoints under DbOptions::path
};

/// The unified configuration surface of a database: every knob that used to
/// travel through side channels (shell `policy`/`threads` flags, SQL
/// `SET POLICY`, bare-constructor options) plus the durability axes. Passed
/// to AdaptiveStore::Open at startup and to AdaptiveStore::Configure for
/// runtime re-arms, so both share one validation path.
struct DbOptions {
  // --- store behaviour (the former AdaptiveStoreOptions surface) ---------
  AccessStrategy strategy = AccessStrategy::kCrack;
  CrackPolicyOptions policy;
  MergeBudget merge_budget;
  DeltaMergeOptions delta_merge;
  bool track_lineage = true;
  bool concurrent = false;

  // --- durability --------------------------------------------------------
  /// Database directory. Required (and created if absent) when durability
  /// is kWal; ignored for kNone.
  std::string path;
  DurabilityMode durability = DurabilityMode::kNone;
  /// When the commit log reaches stable storage (kWal only).
  durability::FsyncPolicy fsync_policy = durability::FsyncPolicy::kCommit;
  /// Max staleness under FsyncPolicy::kInterval.
  double fsync_interval_seconds = 0.05;
  /// Auto-checkpoint when the WAL grows past this many bytes (0 = manual
  /// checkpoints only). Checked after commits; skipped while transactions
  /// are open.
  uint64_t checkpoint_interval_bytes = 64ull << 20;

  // --- maintenance -------------------------------------------------------
  /// Autovacuum when the total version-log footprint (row versions + chain
  /// entries + purged markers) exceeds this many entries (0 = never).
  uint64_t autovacuum_version_threshold = 65536;

  /// The slice the cracking engine consumes.
  AdaptiveStoreOptions store_options() const {
    AdaptiveStoreOptions opts;
    opts.strategy = strategy;
    opts.policy = policy;
    opts.merge_budget = merge_budget;
    opts.delta_merge = delta_merge;
    opts.track_lineage = track_lineage;
    opts.concurrent = concurrent;
    return opts;
  }
};

/// Result of one query against the store.
struct QueryResult {
  uint64_t count = 0;  ///< qualifying tuples
  /// Contiguous (values, oids) views; valid for access paths that answer
  /// with zero-copy pieces (crack/sort) with Delivery::kView or
  /// kMaterialize.
  bool has_selection = false;
  CrackSelection selection;
  /// Qualifying oids (ascending) for non-contiguous answers (scan strategy,
  /// coarse-policy edge pieces) with Delivery::kView.
  std::vector<Oid> scan_oids;
  /// Zero-materialization answer shape: the qualifying rows as contiguous
  /// spans over the access path's layout (plus exception/extra overlays for
  /// snapshot-hidden and delta rows). Carried alongside the view when the
  /// path produced one; CollectOids() prefers it and only then pays the
  /// oid gather.
  bool has_span_set = false;
  OidSpanSet span_set;
  /// The oid assigned to the row of an Insert (concurrent writers learn
  /// their row's identity from it); kInvalidOid for every other statement.
  Oid inserted_oid = kInvalidOid;
  /// The new table for Delivery::kMaterialize.
  std::shared_ptr<Relation> materialized;
  double seconds = 0.0;  ///< wall-clock of this query
  IoStats io;            ///< deterministic cost of this query

  /// The qualifying oids regardless of answer shape (copied out of the
  /// contiguous view or the scan list). Sorted ascending. The rvalue
  /// overload moves the scan list out instead of copying.
  std::vector<Oid> CollectOids() const&;
  std::vector<Oid> CollectOids() &&;
};

/// See file comment.
class AdaptiveStore {
 public:
  /// Opens a database: THE construction path. Validates `options`, builds
  /// the store, and — when options.durability is kWal — recovers the
  /// on-disk state under options.path (checkpoint load + commit-log replay,
  /// truncating a torn tail) before arming the commit log for new writes.
  /// Accelerators are never recovered: they rebuild lazily from the first
  /// queries, which is the paper's disposability claim at work.
  static Result<std::unique_ptr<AdaptiveStore>> Open(const DbOptions& options);

  /// Legacy constructor: an in-memory store with no durability. Prefer
  /// Open() — it is the only way to get a durable database and the only
  /// path with option validation.
  explicit AdaptiveStore(AdaptiveStoreOptions options = {});
  ~AdaptiveStore();
  CRACK_DISALLOW_COPY_AND_ASSIGN(AdaptiveStore);

  /// Validation shared by Open and Configure.
  static Status ValidateOptions(const DbOptions& options);

  /// Re-arms the runtime-adjustable configuration from `options`: crack
  /// policy (every materialized path restarts its policy engine in place),
  /// delta-merge defaults, checkpoint interval, autovacuum threshold.
  /// Construction-frozen axes — strategy, concurrent, track_lineage, path,
  /// durability, fsync policy — must match the open database or the call
  /// fails with InvalidArgument. This is the single code path behind the
  /// shell `policy` command and SQL SET POLICY.
  Status Configure(const DbOptions& options);

  /// Takes a checkpoint: snapshots every table's base state to a fresh
  /// generation, swaps in an empty commit log, and deletes the old
  /// generation. Requires no active transactions (Aborted otherwise) and a
  /// durable store (InvalidArgument otherwise).
  Status Checkpoint();

  /// Rolls back any transactions still open, takes a final checkpoint, and
  /// seals the commit log. Idempotent; a no-op for in-memory stores. The
  /// destructor calls it as a backstop, but calling it explicitly is the
  /// only way to observe a close-time error.
  Status Close();

  /// True when this store persists commits (opened with kWal).
  bool durable() const { return wal_ != nullptr; }
  const DbOptions& db_options() const { return db_options_; }

  /// What Open() found and replayed from disk.
  struct RecoveryInfo {
    bool recovered = false;  ///< an existing database was found under path
    uint64_t checkpoint_tables = 0;  ///< tables loaded from the checkpoint
    uint64_t replayed_commits = 0;   ///< commit records applied from the log
    uint64_t replayed_records = 0;   ///< all log records applied
    bool torn_tail = false;  ///< the log ended mid-record and was truncated
    double replay_seconds = 0.0;
  };
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  /// Maintenance counters (tests / shell introspection).
  uint64_t autovacuum_runs() const { return autovacuum_runs_.load(); }
  uint64_t checkpoints_taken() const { return checkpoints_.load(); }

  /// Registers a table; its columns become crackable.
  Status AddTable(std::shared_ptr<Relation> relation);

  Result<std::shared_ptr<Relation>> table(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- transactions ---------------------------------------------------------
  // Snapshot isolation over the versioned delta layer (core/txn_manager.h).
  // Every read and DML method takes an optional trailing TxnId; kNoTxn (the
  // default) preserves auto-commit semantics for existing callers — the
  // statement runs as its own transaction, committed on success, rolled
  // back on failure. Inside an explicit transaction, reads see the state as
  // of Begin() plus the transaction's own writes; writes take row-level
  // write locks and conflict first-committer-wins: a row committed by a
  // competitor after this transaction's snapshot aborts the statement with
  // Status::Aborted, after which only Rollback (or Commit, which then
  // performs the rollback and reports Aborted) is meaningful. A transaction
  // is single-threaded; different transactions may run on different
  // threads of a concurrent store.

  /// Opens a transaction pinned at the current committed snapshot.
  Result<TxnId> Begin();

  /// Publishes the transaction's writes at a fresh commit timestamp.
  /// Aborted statements force a rollback instead (returned as Aborted).
  Status Commit(TxnId txn);

  /// Undoes the transaction's writes (base values restored, version stamps
  /// reverted; aborted insert rows become vacuum garbage).
  Status Rollback(TxnId txn);

  bool TxnActive(TxnId txn) const;

  /// What a vacuum pass reclaimed.
  struct VacuumStats {
    uint64_t rows_purged = 0;        ///< dead versions physically purged
    uint64_t versions_dropped = 0;   ///< fully-visible stamps folded away
    uint64_t chain_entries_dropped = 0;  ///< superseded values reclaimed
    Ts low_water = 0;                ///< the snapshot floor vacuum honored
  };

  /// Folds every version below the low-water snapshot into the physical
  /// delta machinery: dead rows become access-path tombstones and the
  /// affected columns FlushDeltas (the existing Merge maintenance hook), so
  /// storage shrinks without disturbing any open snapshot. Concurrent mode:
  /// quiesces the store for the pass.
  Result<VacuumStats> Vacuum();

  /// Version-log sizes of `table` (tests / shell introspection).
  Result<VersionedTable::Counts> VersionCountsFor(
      const std::string& table) const;

  const TxnManager& txn_manager() const { return txn_mgr_; }

  /// The MVCC read filter of (table, column) at `txn`'s snapshot (latest
  /// committed when kNoTxn) — executor support for materializing
  /// snapshot-correct values.
  Result<SnapshotView> ReadView(const std::string& table,
                                const std::string& column,
                                TxnId txn = kNoTxn) const;

  /// σ/Ξ: range selection over a column, cracking per the strategy. The
  /// predicate is typed: numeric RangeBounds convert implicitly, string
  /// endpoints (TypedRange over Value) reach dictionary-encoded string
  /// columns and crack their code domain exactly like integers.
  Result<QueryResult> SelectRange(const std::string& table,
                                  const std::string& column,
                                  const TypedRange& range,
                                  Delivery delivery = Delivery::kCount,
                                  TxnId txn = kNoTxn);

  /// Aggregate pushdown: SUM/MIN/MAX/COUNT of `column` over the rows
  /// matching `range`, reduced by horizontal SIMD kernels directly over the
  /// cracked pieces — no oid list, no value gather. Snapshot divergence is
  /// folded in as O(overrides + pending) corrections. Integer columns only;
  /// paths that cannot push down (progressive budgeted cracks, concurrent
  /// coarse pieces, string columns) return Unimplemented and the caller
  /// falls back to materialize-then-loop.
  Result<ColumnAggregates> AggregateRange(const std::string& table,
                                          const std::string& column,
                                          const TypedRange& range,
                                          TxnId txn = kNoTxn);

  /// One conjunct of a multi-attribute selection (typed; numeric
  /// RangeBounds convert implicitly).
  struct ColumnRange {
    std::string column;
    TypedRange range;
  };

  /// σ over a conjunction of range predicates (WHERE a IN r1 AND b IN r2
  /// ...). Every referenced column is answered by its own access path —
  /// under kCrack "each and every query initiates breaking the database
  /// further into pieces" (§2.2) — and the per-column oid sets are
  /// intersected (galloping when the list sizes are skewed). Returns the
  /// qualifying count and (for kView) the oids.
  Result<QueryResult> SelectConjunction(
      const std::string& table, const std::vector<ColumnRange>& conjuncts,
      Delivery delivery = Delivery::kCount, TxnId txn = kNoTxn);

  // --- DML ------------------------------------------------------------------
  // Writes route through the same type-erased access paths as reads: the
  // base column is mutated first (append / in-place overwrite), then every
  // materialized accelerator absorbs the change into its delta structures
  // and folds it back per options().delta_merge. WHERE predicates of
  // Delete/Update are themselves advice to crack — a mixed workload keeps
  // teaching the store.

  /// Appends one row. Numeric values are coerced to the column types
  /// (range-checked). `count` of the result is 1 and `inserted_oid` carries
  /// the oid assigned to the new row (concurrent writers learn their row's
  /// identity from it).
  Result<QueryResult> Insert(const std::string& table,
                             std::vector<Value> values, TxnId txn = kNoTxn);

  /// Deletes the rows matching the conjunction (all live rows when
  /// `conjuncts` is empty). `count` reports the rows removed. Deletes are
  /// version stamps: the rows stay physically present (and visible to
  /// older snapshots) until Vacuum folds them out.
  Result<QueryResult> Delete(const std::string& table,
                             const std::vector<ColumnRange>& conjuncts,
                             TxnId txn = kNoTxn);

  /// One SET clause of an UPDATE. The value is typed: int64 literals for
  /// integer columns, doubles for float columns (fraction preserved),
  /// strings for dictionary-encoded string columns.
  struct Assignment {
    std::string column;
    Value value;
  };

  /// Sets `sets` on the rows matching the conjunction (all live rows when
  /// `conjuncts` is empty). Row oids survive updates; only the written
  /// columns' accelerators are touched. `count` reports the rows changed.
  Result<QueryResult> Update(const std::string& table,
                             const std::vector<Assignment>& sets,
                             const std::vector<ColumnRange>& conjuncts,
                             TxnId txn = kNoTxn);

  /// Deletes specific rows by oid (streaming-expiry support; the WHERE-less
  /// primitive underneath Delete).
  Result<QueryResult> DeleteOids(const std::string& table,
                                 const std::vector<Oid>& oids,
                                 TxnId txn = kNoTxn);

  /// The oids of the rows live at `txn`'s snapshot (latest committed when
  /// kNoTxn), ascending.
  Result<std::vector<Oid>> LiveOids(const std::string& table,
                                    TxnId txn = kNoTxn) const;

  /// Rows visible at the snapshot — what COUNT(*) without a WHERE reports.
  Result<uint64_t> LiveRowCount(const std::string& table,
                                TxnId txn = kNoTxn) const;

  /// Re-registers deletions on a fresh store (session hand-over support:
  /// the base relations are append-only, so dead rows must be re-marked
  /// when tables move to a new store). Stamped as committed deletes at a
  /// fresh timestamp.
  Status MarkDeleted(const std::string& table, const std::vector<Oid>& oids);

  /// The oids invisible at the latest committed snapshot (committed
  /// deletes, aborted inserts, vacuum-purged rows), ascending — the
  /// hand-over counterpart of MarkDeleted.
  Result<std::vector<Oid>> DeletedOids(const std::string& table) const;

  /// ⋈/^: equi-join of two integer columns. The first call ^-cracks both
  /// operands (cached); subsequent calls join only the matching areas.
  /// `txn` pins the snapshot the join evaluates against (latest committed
  /// when kNoTxn): hidden rows drop out and overridden keys re-join with
  /// their snapshot values. The ^ cache is stamped with the operands' base
  /// sizes and version counts and is rebuilt when either churns (appends,
  /// in-place updates, vacuum all change what a fresh crack would see).
  Result<QueryResult> JoinEquals(const std::string& left_table,
                                 const std::string& left_column,
                                 const std::string& right_table,
                                 const std::string& right_column,
                                 Delivery delivery = Delivery::kCount,
                                 TxnId txn = kNoTxn);

  /// The oid pairs of the most natural join evaluation (cached ^ areas under
  /// kCrack, full hash join otherwise), at `txn`'s snapshot.
  Result<std::vector<OidPair>> JoinOids(const std::string& left_table,
                                        const std::string& left_column,
                                        const std::string& right_table,
                                        const std::string& right_column,
                                        TxnId txn = kNoTxn);

  /// γ/Ω: grouped aggregate over integer columns. The first call Ω-cracks
  /// the grouping column (cached); later aggregates reuse the clustering.
  /// `txn` pins the snapshot (see JoinEquals); the Ω cache carries the same
  /// churn stamp as the ^ cache.
  Result<std::vector<GroupAggregate>> GroupBy(const std::string& table,
                                              const std::string& group_column,
                                              const std::string& agg_column,
                                              AggKind kind, TxnId txn = kNoTxn);

  /// π/Ψ: vertical crack of `table` on `attrs` (fragments share physical
  /// columns; both registered in the lineage).
  Result<ProjectionCrackResult> Project(const std::string& table,
                                        const std::vector<std::string>& attrs);

  /// Copies the rows named by `selection` out of `table` into a fresh
  /// Relation (the result-construction step of §5.1).
  Result<std::shared_ptr<Relation>> MaterializeSelection(
      const std::string& table, const CrackSelection& selection,
      const std::string& result_name, IoStats* stats = nullptr);

  /// The access path currently accelerating (table, column), or NotFound
  /// when the column was never queried. Borrowed pointer, owned by the
  /// store.
  Result<ColumnAccessPath*> AccessPathFor(const std::string& table,
                                          const std::string& column) const;

  /// Pieces currently delimiting (table, column); 1 when never cracked.
  Result<size_t> NumPieces(const std::string& table,
                           const std::string& column) const;

  /// Human-readable report of a column's physical state: access-path kind,
  /// active crack policy, piece table with value bounds and sizes. The
  /// EXPLAIN of an adaptive store — what a DBA would ask "what did the
  /// workload teach you about this column?".
  Result<std::string> ExplainColumn(const std::string& table,
                                    const std::string& column) const;

  /// One row of PolicyReport(): the live policy state of a materialized
  /// column accelerator.
  struct ColumnPolicy {
    std::string table;
    std::string column;
    PathPolicyStatus status;
  };

  /// Re-arms every materialized access path (and the default for paths yet
  /// to be built) with `options` at runtime — SET POLICY. Cracker state is
  /// kept; only the policy engine restarts, so no stop-the-world rebuild.
  Status SetPolicy(const CrackPolicyOptions& options);

  /// Live policy state of every materialized column accelerator, sorted by
  /// "table.column" key (SHOW POLICY / shell `policy` support).
  std::vector<ColumnPolicy> PolicyReport() const;

  const LineageGraph& lineage() const { return lineage_; }
  const AdaptiveStoreOptions& options() const { return options_; }

  /// Cumulative cost of every query answered so far.
  const IoStats& total_io() const { return total_io_; }
  void ResetTotalIo() { total_io_.Reset(); }

 private:
  struct ColumnAccel {
    std::unique_ptr<ColumnAccessPath> path;
    /// Concurrent mode: `path` is written once, under `latch` held
    /// exclusively; has_path (release-stored after the write) is the
    /// latch-free existence hint. The flag is monotonic — paths are never
    /// destroyed while the store lives.
    std::atomic<bool> has_path{false};
    /// The per-column reader/writer latch (concurrent mode only).
    mutable std::shared_mutex latch;
    PieceId root = kInvalidPieceId;
    /// Lineage piece nodes keyed by their [begin, end) slot range.
    std::map<std::pair<size_t, size_t>, PieceId> piece_nodes;
    /// Delta merges folded when the lineage was last synced; a change means
    /// the accelerator was rebuilt and the piece subtree must re-root.
    size_t merges_seen = 0;
  };

  /// Per-table concurrency state (concurrent mode only).
  struct TableState {
    /// Base-storage latch: row appends and in-place slot overwrites take it
    /// exclusive; anything reading base columns (scans, lazy accelerator
    /// builds, oid validation) takes it shared. Ordered after the column
    /// latches, before the leaf mutexes.
    mutable std::shared_mutex base_latch;
  };

  /// One in-flight transaction: its snapshot, the rows it stamped (per
  /// table), and the undo log for rolling physical update writes back.
  struct UndoRecord {
    std::string table;
    std::string column;
    Oid oid = 0;
    Value old_value;
  };
  struct TxnState {
    Snapshot snap;
    bool implicit = false;    ///< an auto-commit statement's mini-txn
    bool abort_only = false;  ///< a statement hit a write-write conflict
    std::map<std::string, std::vector<Oid>> touched;  ///< stamped rows
    std::vector<UndoRecord> undo;  ///< update undo, in write order
    /// Redo log for the WAL (durable stores only), in statement order;
    /// serialized as one commit record at Commit.
    std::vector<durability::WalOp> redo;
  };

  /// The per-statement transactional context: an explicit transaction's
  /// state, or a fresh implicit mini-transaction that FinishWrite commits
  /// (visibility flips atomically at the end of the statement) or rolls
  /// back on failure.
  struct WriteScope {
    TxnId txn = kNoTxn;
    Snapshot snap;
    bool implicit = false;
  };

  Result<std::shared_ptr<Bat>> ResolveColumn(const std::string& table,
                                             const std::string& column) const;

  Result<std::vector<OidPair>> JoinOidsInternal(const std::string& left_table,
                                                const std::string& left_column,
                                                const std::string& right_table,
                                                const std::string& right_column,
                                                IoStats* stats, TxnId txn);

  /// The accelerator slot of (table, column), with the access path built on
  /// first use (the build itself stays lazy inside the path).
  Result<ColumnAccel*> Accel(const std::string& table,
                             const std::string& column,
                             const std::shared_ptr<Bat>& bat);

  /// Records Ξ piece splits into the lineage after a crack (diffs the piece
  /// table against the registered nodes).
  void UpdateLineage(const std::string& table, const std::string& column,
                     ColumnAccel* accel);

  // --- MVCC machinery -------------------------------------------------------

  /// The version log of `table`, created on demand. Stable pointer.
  VersionedTable* VersionsFor(const std::string& table) const;
  /// ... or nullptr when the table has no version state yet (const probe).
  VersionedTable* VersionsIfAny(const std::string& table) const;

  /// The snapshot a read at `txn` evaluates against (latest committed for
  /// kNoTxn). Errors on an unknown transaction.
  Result<Snapshot> ReadSnapshot(TxnId txn) const;

  /// The read filter of (table, column) at `snap`; inactive when the table
  /// has no version state (serial fast path — concurrent stores always get
  /// an active view, the horizon must hide mid-statement appends).
  SnapshotView ViewForColumn(const std::string& table,
                             const std::string& column,
                             const Snapshot& snap) const;

  /// Opens the transactional context of a statement (see WriteScope).
  Result<WriteScope> BeginWriteScope(TxnId txn);
  /// Commits an implicit mini-transaction on OK / rolls it back on error;
  /// marks an explicit transaction abort-only on Aborted. Returns the
  /// statement's status (op_status, unless finishing itself fails).
  Status FinishWriteScope(const WriteScope& scope, Status op_status);

  /// The write-statement frame every DML entry point shares: open the
  /// scope, run `body(scope)` (which must release any store latches before
  /// returning — FinishWriteScope may take the store exclusively to roll
  /// back), finish the scope per the body's status.
  template <typename Fn>
  Result<QueryResult> RunInWriteScope(TxnId txn, Fn&& body) {
    CRACK_ASSIGN_OR_RETURN(WriteScope scope, BeginWriteScope(txn));
    Result<QueryResult> out = body(scope);
    Status fin =
        FinishWriteScope(scope, out.ok() ? Status::OK() : out.status());
    if (!fin.ok()) return fin;
    return out;
  }

  /// Row-level write admission + version stamping shared by every delete
  /// flow. Appends stamped rows to the scope's touched set; returns the
  /// rows newly deleted. Conflicts abort explicit transactions and are
  /// skipped by implicit ones (the pre-MVCC race semantics).
  Result<uint64_t> StampDeletes(const std::string& table,
                                const WriteScope& scope,
                                const std::vector<Oid>& oids, IoStats* stats);

  /// Rollback body shared by Rollback() and failed implicit statements.
  /// Caller must have quiesced the store in concurrent mode.
  Status RollbackLocked(TxnId txn, TxnState* state);

  /// Records `oid` as touched by `scope`'s transaction.
  void Touch(const WriteScope& scope, const std::string& table, Oid oid);
  /// Records an update's undo information.
  void PushUndo(const WriteScope& scope, UndoRecord record);
  /// Records a redo operation for the WAL (no-op on in-memory stores).
  void PushRedo(const WriteScope& scope, durability::WalOp op);

  // --- durability machinery (core/store_durability.cc) ----------------------

  /// Recovers / creates the on-disk state under db_options_.path and arms
  /// the commit log. Called once by Open, before the store is shared.
  Status OpenDurable();
  /// Registers one recovered table (checkpoint or WAL table image) and
  /// re-marks its dead rows.
  Status InstallRecoveredTable(durability::LoadedTable table);
  /// Applies one committed transaction's redo ops during replay.
  Status ApplyWalCommit(const durability::WalCommit& commit);
  /// Checkpoint body; caller has quiesced the store (no active txns, and
  /// the global lock exclusively in concurrent mode).
  Status CheckpointLocked();
  /// Post-commit maintenance: autovacuum on version-log growth and
  /// auto-checkpoint on WAL growth. Cheap when neither trigger is armed.
  void MaybeRunMaintenance();
  /// Re-arms every materialized access path with `options` (the policy
  /// engine restarts in place; cracker state is kept). Configure's policy
  /// leg — SetPolicy is a Configure wrapper on top of it.
  Status ApplyPolicy(const CrackPolicyOptions& options);

  // --- concurrent-mode machinery (see AdaptiveStoreOptions::concurrent) ---
  // Lock order, outer to inner: global_mu_ -> column latches (ascending
  // key) -> table base latch -> {tombstone_mu | path-internal latches |
  // registry_mu_ | io_mu_}. The *Locked variants assume global_mu_ is held
  // (shared) by the caller; public entry points acquire it.

  /// The accel slot and table state of (table, column), created (empty) on
  /// demand. Pointers are stable: the maps only grow.
  void ConcurrentEntries(const std::string& table, const std::string& column,
                         ColumnAccel** accel, TableState** ts);
  TableState* TableStateFor(const std::string& table) const;

  /// Creates accel->path (caller holds accel->latch exclusive + the base
  /// latch shared) and replays the table's vacuum-purged rows into it.
  Status CreatePathLocked(const std::string& table, const std::string& column,
                          ColumnAccel* accel, const std::shared_ptr<Bat>& bat,
                          TableState* ts);

  /// The per-column AccessPathConfig: the store-wide defaults, overlaid
  /// with the column's checkpoint-recovered (policy, progressive budget)
  /// when the database was reopened from a v2 checkpoint.
  AccessPathConfig PathConfigFor(const std::string& key) const;

  /// If the path's delta policy says a fold is due, takes the exclusive
  /// column latch and flushes. Safe to call with no latches held.
  Status MaintainColumn(ColumnAccel* accel, TableState* ts, IoStats* stats);

  Result<QueryResult> SelectRangeConcurrent(const std::string& table,
                                            const std::string& column,
                                            const TypedRange& range,
                                            Delivery delivery,
                                            const Snapshot& snap);
  /// Concurrent-mode aggregate pushdown (mirrors SelectRangeConcurrent's
  /// latch discipline: shared column+base latches when the path serves
  /// shared reads, exclusive column latch otherwise).
  Result<ColumnAggregates> AggregateRangeConcurrent(const std::string& table,
                                                    const std::string& column,
                                                    const RangeBounds& bounds,
                                                    const Snapshot& snap);
  /// Converts a selection into latch-independent result shape (oid lists,
  /// never views) and materializes if asked. Caller holds the column latch
  /// plus the base latch shared.
  Status FinishSelectConcurrent(const std::string& table,
                                const std::string& column,
                                AccessSelection sel, Delivery delivery,
                                QueryResult* result);
  Result<QueryResult> SelectConjunctionLocked(
      const std::string& table, const std::vector<ColumnRange>& conjuncts,
      Delivery delivery, const Snapshot& snap);
  Result<QueryResult> InsertConcurrent(const std::string& table,
                                       std::vector<Value> values,
                                       const WriteScope& scope);
  Result<QueryResult> DeleteConcurrent(const std::string& table,
                                       const std::vector<ColumnRange>& conjuncts,
                                       const WriteScope& scope);
  Result<QueryResult> UpdateConcurrent(
      const std::string& table, const std::vector<Assignment>& sets,
      const std::vector<ColumnRange>& conjuncts, const WriteScope& scope);
  Result<std::vector<Oid>> LiveOidsLocked(const std::string& table,
                                          const Snapshot& snap) const;

  void AddIo(const IoStats& io);

  AdaptiveStoreOptions options_;
  std::map<std::string, std::shared_ptr<Relation>> tables_;
  std::map<std::string, ColumnAccel> accels_;  // key: table + "." + column
  /// Checkpoint-recovered per-column (policy, progressive budget), keyed by
  /// "table.column". Filled once by OpenDurable before the store is shared;
  /// read-only afterwards (consulted when a column's path is first built).
  std::map<std::string, std::pair<CrackPolicy, double>> recovered_policies_;
  mutable std::map<std::string, TableState> table_states_;
  /// Per-table version logs (MVCC). unique_ptr: pointers stay stable while
  /// the registry map grows. Guarded by registry_mu_ in concurrent mode;
  /// the VersionedTable itself is internally latched.
  mutable std::map<std::string, std::unique_ptr<VersionedTable>> versions_;
  TxnManager txn_mgr_;
  /// In-flight transaction state; txn_states_mu_ guards the map structure
  /// (each transaction is single-threaded by contract).
  mutable std::mutex txn_states_mu_;
  std::map<TxnId, TxnState> txn_states_;
  /// Makes (allocate commit ts, stamp markers) atomic with respect to
  /// snapshot acquisition: without it a reader could pin read_ts >= cts
  /// while the markers are still unstamped, and watch visibility at its
  /// fixed snapshot flip when they land. Ordered before every other lock
  /// it meets (txn-manager mutex, version latches); never held across
  /// physical work.
  mutable std::mutex commit_mu_;
  /// Version-churn stamp of a ^/Ω cache entry: what the operand columns
  /// looked like when the crack was built. Any mismatch (append, in-place
  /// update adding a chain entry, vacuum purging rows) invalidates the
  /// entry — the cached clone snapshots base data that has since changed.
  struct CrackCacheStamp {
    size_t rows = 0;
    VersionedTable::Counts counts;
    bool operator==(const CrackCacheStamp& o) const {
      return rows == o.rows && counts.row_versions == o.counts.row_versions &&
             counts.chain_entries == o.counts.chain_entries &&
             counts.purged == o.counts.purged;
    }
    bool operator!=(const CrackCacheStamp& o) const { return !(*this == o); }
  };
  CrackCacheStamp StampFor(const std::string& table) const;

  struct JoinCrackEntry {
    JoinCrackResult cracked;
    CrackCacheStamp left_stamp;
    CrackCacheStamp right_stamp;
  };
  struct GroupCrackEntry {
    GroupCrackResult cracked;
    CrackCacheStamp stamp;
  };
  std::map<std::string, JoinCrackEntry> join_cracks_;
  std::map<std::string, GroupCrackEntry> group_cracks_;
  LineageGraph lineage_;
  IoStats total_io_;
  /// Concurrent mode only. global_mu_: selections and DML run shared;
  /// joins, group-bys, projections and AddTable run exclusive (they touch
  /// base columns and caches without per-column latches). registry_mu_:
  /// guards the map *structure* of tables_/accels_/table_states_ (leaf).
  /// io_mu_: guards total_io_ (leaf).
  mutable std::shared_mutex global_mu_;
  mutable std::mutex registry_mu_;
  mutable std::mutex io_mu_;

  // --- durability state (core/store_durability.cc) --------------------------
  DbOptions db_options_;  ///< full config; mirrors options_ for the overlap
  std::string db_dir_;
  durability::Manifest manifest_;
  std::unique_ptr<durability::WalWriter> wal_;  ///< null on in-memory stores
  bool replaying_ = false;  ///< recovery replay in flight: don't re-log
  bool closed_ = false;
  RecoveryInfo recovery_info_;
  std::atomic<uint64_t> commits_since_maintenance_{0};
  std::atomic<bool> maintenance_running_{false};
  std::atomic<uint64_t> autovacuum_runs_{0};
  std::atomic<uint64_t> checkpoints_{0};
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_ADAPTIVE_STORE_H_
