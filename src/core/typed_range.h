// Copyright 2026 The CrackStore Authors
//
// TypedRange: a range predicate whose endpoints are dynamically-typed
// Values, the typed generalization of the int64-widened RangeBounds. PR 2
// let DML values cross the access-path boundary dynamically typed as a
// special case; this header makes the same move for predicates, so string
// bounds (and, through the same door, any future encoded domain) reach the
// encoding-aware access paths intact. Numeric predicates lower back to
// RangeBounds at the boundary — the hot kernels never see a Value.

#ifndef CRACKSTORE_CORE_TYPED_RANGE_H_
#define CRACKSTORE_CORE_TYPED_RANGE_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "core/range_bounds.h"
#include "storage/types.h"
#include "util/macros.h"

namespace crackstore {

/// Range predicate with Value endpoints; a null Value means unbounded on
/// that side. Both endpoints must be of the same family (numeric or
/// string) — access paths reject mixed or mistyped ranges with a Status.
struct TypedRange {
  Value lo;  ///< null = unbounded below
  bool lo_incl = true;
  Value hi;  ///< null = unbounded above
  bool hi_incl = true;

  TypedRange() = default;

  /// Implicit: every numeric RangeBounds is a TypedRange (the INT64_MIN/MAX
  /// inclusive sentinels become unbounded sides), so existing numeric call
  /// sites keep compiling against typed interfaces.
  TypedRange(const RangeBounds& r) {  // NOLINT(runtime/explicit)
    if (!(r.lo == INT64_MIN && r.lo_incl)) {
      lo = Value(r.lo);
      lo_incl = r.lo_incl;
    }
    if (!(r.hi == INT64_MAX && r.hi_incl)) {
      hi = Value(r.hi);
      hi_incl = r.hi_incl;
    }
  }

  static TypedRange All() { return TypedRange{}; }
  static TypedRange Closed(Value lo, Value hi) {
    return TypedRange{std::move(lo), true, std::move(hi), true};
  }
  static TypedRange Open(Value lo, Value hi) {
    return TypedRange{std::move(lo), false, std::move(hi), false};
  }
  static TypedRange Equal(Value v) {
    TypedRange r;
    r.lo = v;
    r.hi = std::move(v);
    return r;
  }
  static TypedRange LessThan(Value v) {
    return TypedRange{Value(), true, std::move(v), false};
  }
  static TypedRange AtMost(Value v) {
    return TypedRange{Value(), true, std::move(v), true};
  }
  static TypedRange GreaterThan(Value v) {
    return TypedRange{std::move(v), false, Value(), true};
  }
  static TypedRange AtLeast(Value v) {
    return TypedRange{std::move(v), true, Value(), true};
  }

  TypedRange(Value lo_v, bool lo_i, Value hi_v, bool hi_i)
      : lo(std::move(lo_v)),
        lo_incl(lo_i),
        hi(std::move(hi_v)),
        hi_incl(hi_i) {}

  bool unbounded_lo() const { return lo.is_null(); }
  bool unbounded_hi() const { return hi.is_null(); }

  /// True when either endpoint is a string (the predicate needs an
  /// encoding-aware path).
  bool has_string() const { return lo.is_string() || hi.is_string(); }

  /// Numeric membership (false whenever an endpoint is a string).
  bool Contains(int64_t v) const {
    return !has_string() && ToNumericBounds().Contains(v);
  }

  /// String membership under bytewise order (false whenever an endpoint is
  /// numeric) — the oracle-side mirror of the dictionary translation.
  bool Contains(std::string_view s) const {
    if ((!lo.is_null() && !lo.is_string()) ||
        (!hi.is_null() && !hi.is_string())) {
      return false;
    }
    if (!lo.is_null()) {
      std::string_view b = lo.AsString();
      if (lo_incl ? s < b : s <= b) return false;
    }
    if (!hi.is_null()) {
      std::string_view b = hi.AsString();
      if (hi_incl ? s > b : s >= b) return false;
    }
    return true;
  }

  /// Numeric lowering: the int64-widened RangeBounds this predicate means
  /// over a numeric domain. Callers must have ruled out string endpoints.
  RangeBounds ToNumericBounds() const {
    CRACK_DCHECK(!has_string());
    RangeBounds out;
    if (!lo.is_null()) {
      out.lo = lo.ToInt64();
      out.lo_incl = lo_incl;
    }
    if (!hi.is_null()) {
      out.hi = hi.ToInt64();
      out.hi_incl = hi_incl;
    }
    return out;
  }
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_TYPED_RANGE_H_
