// Copyright 2026 The CrackStore Authors
//
// The durability half of AdaptiveStore: the Open/Configure/Checkpoint/Close
// lifecycle, recovery (checkpoint load + commit-log replay), and the
// post-commit maintenance hook (autovacuum, auto-checkpoint). The cracking
// engine itself lives in adaptive_store.cc; nothing here touches
// accelerators — they are disposable by construction and rebuild lazily
// from the first queries after recovery.

#include <utility>

#include "core/adaptive_store.h"
#include "durability/checkpoint.h"
#include "durability/fs.h"
#include "obs/instruments.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {

namespace {

/// The type-default row used to fill oid gaps during replay: a gap is a row
/// whose insert never committed (its record is not in the log), so the
/// filler only reserves the slot — it is stamped aborted, visible to
/// nobody, and reclaimed by vacuum.
std::vector<Value> FillerRow(const Schema& schema) {
  std::vector<Value> row;
  row.reserve(schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    switch (col.type) {
      case ValueType::kInt32:
        row.emplace_back(int32_t{0});
        break;
      case ValueType::kInt64:
        row.emplace_back(int64_t{0});
        break;
      case ValueType::kOid:
        row.push_back(Value::FromOid(0));
        break;
      case ValueType::kFloat64:
        row.emplace_back(0.0);
        break;
      case ValueType::kString:
        row.emplace_back(std::string());
        break;
    }
  }
  return row;
}

Oid HeadBase(const Relation& rel) {
  return rel.num_columns() > 0 ? rel.column(size_t{0})->head_base() : 0;
}

}  // namespace

Status AdaptiveStore::ValidateOptions(const DbOptions& options) {
  if (options.durability == DurabilityMode::kWal && options.path.empty()) {
    return Status::InvalidArgument(
        "DbOptions: durability=kWal requires a database path");
  }
  if (options.fsync_policy == durability::FsyncPolicy::kInterval &&
      options.fsync_interval_seconds <= 0.0) {
    return Status::InvalidArgument(
        "DbOptions: fsync_interval_seconds must be positive under "
        "FsyncPolicy::kInterval");
  }
  if (options.policy.min_piece_size == 0) {
    return Status::InvalidArgument(
        "DbOptions: policy.min_piece_size must be at least 1");
  }
  if (options.policy.progressive_budget <= 0.0 ||
      options.policy.progressive_budget > 1.0) {
    return Status::InvalidArgument(
        "DbOptions: policy.progressive_budget must be in (0, 1]");
  }
  if (options.delta_merge.threshold_fraction < 0.0) {
    return Status::InvalidArgument(
        "DbOptions: delta_merge.threshold_fraction must be non-negative");
  }
  return Status::OK();
}

Result<std::unique_ptr<AdaptiveStore>> AdaptiveStore::Open(
    const DbOptions& options) {
  CRACK_RETURN_NOT_OK(ValidateOptions(options));
  auto store = std::make_unique<AdaptiveStore>(options.store_options());
  store->db_options_ = options;
  // The constructor may have forced track_lineage off (concurrent mode);
  // keep the mirror honest.
  store->db_options_.track_lineage = store->options_.track_lineage;
  if (options.durability == DurabilityMode::kWal) {
    CRACK_RETURN_NOT_OK(store->OpenDurable());
  }
  return store;
}

Status AdaptiveStore::Configure(const DbOptions& options) {
  CRACK_RETURN_NOT_OK(ValidateOptions(options));
  // Construction-frozen axes: the store was built around them.
  if (options.strategy != options_.strategy) {
    return Status::InvalidArgument(
        "Configure: strategy is fixed at Open (reopen to change it)");
  }
  if (options.concurrent != options_.concurrent) {
    return Status::InvalidArgument(
        "Configure: concurrent is fixed at Open (reopen to change it)");
  }
  if (options.track_lineage != options_.track_lineage) {
    return Status::InvalidArgument(
        "Configure: track_lineage is fixed at Open (reopen to change it)");
  }
  if (options.durability != db_options_.durability ||
      options.path != db_options_.path) {
    return Status::InvalidArgument(
        "Configure: durability/path are fixed at Open (reopen to change "
        "them)");
  }
  if (wal_ != nullptr &&
      (options.fsync_policy != db_options_.fsync_policy ||
       options.fsync_interval_seconds !=
           db_options_.fsync_interval_seconds)) {
    return Status::InvalidArgument(
        "Configure: the fsync policy is fixed at Open (reopen to change "
        "it)");
  }
  CRACK_RETURN_NOT_OK(ApplyPolicy(options.policy));
  // Defaults for paths built from here on; existing paths keep their built
  // configuration for these axes (policy above re-arms in place).
  options_.merge_budget = options.merge_budget;
  options_.delta_merge = options.delta_merge;
  db_options_.policy = options.policy;
  db_options_.merge_budget = options.merge_budget;
  db_options_.delta_merge = options.delta_merge;
  db_options_.checkpoint_interval_bytes = options.checkpoint_interval_bytes;
  db_options_.autovacuum_version_threshold =
      options.autovacuum_version_threshold;
  return Status::OK();
}

Status AdaptiveStore::OpenDurable() {
  WallTimer timer;
  db_dir_ = db_options_.path;
  CRACK_RETURN_NOT_OK(durability::EnsureDir(db_dir_));
  auto manifest = durability::ReadManifest(db_dir_);
  if (!manifest.ok() && !manifest.status().IsNotFound()) {
    return manifest.status();
  }
  uint64_t next_lsn = 1;
  uint64_t append_offset = 0;
  if (manifest.ok()) {
    manifest_ = *manifest;
    recovery_info_.recovered = true;
    if (!manifest_.checkpoint_file.empty()) {
      CRACK_ASSIGN_OR_RETURN(
          durability::CheckpointData ckpt,
          durability::ReadCheckpoint(
              durability::JoinPath(db_dir_, manifest_.checkpoint_file)));
      txn_mgr_.AdvanceTo(ckpt.last_commit_ts);
      next_lsn = ckpt.next_lsn;
      recovery_info_.checkpoint_tables = ckpt.tables.size();
      for (const durability::ColumnPolicyState& p : ckpt.policies) {
        if (p.policy > static_cast<uint8_t>(CrackPolicy::kProgressive)) {
          continue;  // a future policy this build does not know; skip it
        }
        recovered_policies_[p.column_key] = {
            static_cast<CrackPolicy>(p.policy), p.progressive_budget};
      }
      replaying_ = true;
      for (durability::LoadedTable& table : ckpt.tables) {
        Status st = InstallRecoveredTable(std::move(table));
        if (!st.ok()) {
          replaying_ = false;
          return st;
        }
      }
      replaying_ = false;
    }
    replaying_ = true;
    auto replay = durability::ReplayWalFile(
        durability::JoinPath(db_dir_, manifest_.wal_file),
        [&](const durability::WalCommit& commit) {
          return ApplyWalCommit(commit);
        },
        [&](std::string_view image) {
          CRACK_ASSIGN_OR_RETURN(durability::LoadedTable table,
                                 durability::DecodeTableImage(image));
          return InstallRecoveredTable(std::move(table));
        });
    replaying_ = false;
    CRACK_RETURN_NOT_OK(replay.status());
    txn_mgr_.AdvanceTo(replay->max_commit_ts);
    recovery_info_.replayed_commits = replay->commits;
    recovery_info_.replayed_records = replay->records;
    recovery_info_.torn_tail = replay->torn_tail;
    if (replay->last_lsn >= next_lsn) next_lsn = replay->last_lsn + 1;
    append_offset = replay->valid_bytes;
  } else {
    manifest_.generation = 1;
    manifest_.checkpoint_file.clear();
    manifest_.wal_file = manifest_.WalName();
    CRACK_RETURN_NOT_OK(durability::WriteManifest(db_dir_, manifest_));
  }
  CRACK_ASSIGN_OR_RETURN(
      wal_, durability::WalWriter::Open(
                durability::JoinPath(db_dir_, manifest_.wal_file),
                db_options_.fsync_policy, db_options_.fsync_interval_seconds,
                next_lsn, append_offset));
  recovery_info_.replay_seconds = timer.ElapsedSeconds();
  obs::RecordWalReplay(
      recovery_info_.replayed_records,
      static_cast<uint64_t>(recovery_info_.replay_seconds * 1e9));
  return Status::OK();
}

Status AdaptiveStore::InstallRecoveredTable(durability::LoadedTable table) {
  std::vector<Oid> dead = std::move(table.dead_oids);
  std::string name = table.rel->name();
  CRACK_RETURN_NOT_OK(AddTable(std::move(table.rel)));
  // Re-mark the rows dead at snapshot time: an end stamp of 0 ("deleted
  // before time began") hides them from every present and future snapshot;
  // vacuum reclaims them like any other dead row.
  VersionedTable* vt = VersionsFor(name);
  for (Oid oid : dead) vt->StampDelete(oid, /*stamp=*/0);
  return Status::OK();
}

Status AdaptiveStore::ApplyWalCommit(const durability::WalCommit& commit) {
  for (const durability::WalOp& op : commit.ops) {
    auto rel_result = this->table(op.table);
    if (!rel_result.ok()) {
      return Status::IoError("wal replay: commit " +
                             std::to_string(commit.commit_ts) +
                             " references unknown table '" + op.table + "'");
    }
    Relation& rel = **rel_result;
    VersionedTable* vt = VersionsFor(op.table);
    switch (op.kind) {
      case durability::WalOpKind::kInsert: {
        Oid base = HeadBase(rel);
        if (op.oid < base) {
          return Status::IoError("wal replay: insert oid below table base");
        }
        // Commit order is not oid order: a row whose insert committed later
        // may carry a smaller oid than one already replayed. Fill the gap
        // with aborted placeholders; a record landing inside the existing
        // head overwrites the placeholder it reserved.
        Oid next = base + rel.num_rows();
        while (next < op.oid) {
          vt->NoteInsert(next, kTsAborted);
          CRACK_RETURN_NOT_OK(rel.AppendRow(FillerRow(rel.schema())));
          ++next;
        }
        if (op.row.size() != rel.num_columns()) {
          return Status::IoError("wal replay: insert row width mismatch");
        }
        if (op.oid < next) {
          size_t row = static_cast<size_t>(op.oid - base);
          for (size_t c = 0; c < rel.num_columns(); ++c) {
            CRACK_RETURN_NOT_OK(
                rel.column(c)->SetValue(row, op.row[c]));
          }
        } else {
          CRACK_RETURN_NOT_OK(rel.AppendRow(op.row));
        }
        vt->NoteInsert(op.oid, commit.commit_ts);
        break;
      }
      case durability::WalOpKind::kDelete:
        vt->StampDelete(op.oid, commit.commit_ts);
        break;
      case durability::WalOpKind::kUpdate: {
        auto bat_result = rel.column(op.column);
        if (!bat_result.ok()) return bat_result.status();
        Bat& bat = **bat_result;
        if (op.oid < bat.head_base() ||
            op.oid - bat.head_base() >= bat.size()) {
          return Status::IoError("wal replay: update oid out of range");
        }
        // Write through to the base slot only. No version chain entry: the
        // superseded value served pre-crash snapshots, and none survive.
        CRACK_RETURN_NOT_OK(bat.SetValue(
            static_cast<size_t>(op.oid - bat.head_base()), op.value));
        break;
      }
    }
  }
  return Status::OK();
}

Status AdaptiveStore::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "not a durable store (open with DurabilityMode::kWal)");
  }
  // Quiesce: base columns must not move while their images stream out. With
  // the global lock held exclusively no statement can run, and with no
  // transaction open none can commit mid-copy.
  std::unique_lock<std::shared_mutex> g(global_mu_, std::defer_lock);
  if (options_.concurrent) g.lock();
  if (txn_mgr_.active_count() > 0) {
    return Status::Aborted("checkpoint requires no active transactions");
  }
  return CheckpointLocked();
}

Status AdaptiveStore::CheckpointLocked() {
  Snapshot snap = txn_mgr_.LatestSnapshot();
  std::vector<std::shared_ptr<Relation>> pinned;
  std::vector<durability::TableSnapshot> snapshots;
  for (const std::string& name : TableNames()) {
    CRACK_ASSIGN_OR_RETURN(std::shared_ptr<Relation> rel, this->table(name));
    durability::TableSnapshot ts;
    ts.rel = rel.get();
    ts.head_base = HeadBase(*rel);
    if (VersionedTable* vt = VersionsIfAny(name)) {
      ts.dead_oids =
          vt->InvisibleOids(snap, ts.head_base, rel->num_rows());
    }
    pinned.push_back(std::move(rel));
    snapshots.push_back(std::move(ts));
  }

  // Persist each materialized column's tuned policy (v2 section): the
  // effective policy — for kAuto, what the detector converged on — plus
  // the progressive budget, so the reopened store resumes it. Gathered
  // inline (not via PolicyReport) because the caller already holds the
  // global lock exclusively in concurrent mode; the quiesce also makes
  // column latches unnecessary.
  std::vector<durability::ColumnPolicyState> policies;
  {
    std::unique_lock<std::mutex> rl(registry_mu_, std::defer_lock);
    if (options_.concurrent) rl.lock();
    for (const auto& [key, accel] : accels_) {
      bool has = options_.concurrent
                     ? accel.has_path.load(std::memory_order_acquire)
                     : accel.path != nullptr;
      if (!has) continue;
      PathPolicyStatus status = accel.path->PolicyStatus();
      if (!status.crack) continue;
      durability::ColumnPolicyState p;
      p.column_key = key;
      p.policy = static_cast<uint8_t>(status.effective);
      p.progressive_budget = status.progressive_budget;
      policies.push_back(std::move(p));
    }
  }

  durability::Manifest next = manifest_;
  next.generation += 1;
  next.checkpoint_file = next.CheckpointName();
  next.wal_file = next.WalName();
  uint64_t bytes = 0;
  CRACK_RETURN_NOT_OK(durability::WriteCheckpoint(
      db_dir_, next.checkpoint_file, snap.read_ts, /*next_lsn=*/1, snapshots,
      policies, &bytes));
  // Seal the old segment before publishing: a crash from here on recovers
  // either the old generation (complete) or the new one (empty log).
  CRACK_RETURN_NOT_OK(wal_->Close());
  std::string old_wal = durability::JoinPath(db_dir_, manifest_.wal_file);
  std::string old_ckpt = manifest_.checkpoint_file;
  CRACK_ASSIGN_OR_RETURN(
      std::unique_ptr<durability::WalWriter> next_wal,
      durability::WalWriter::Open(
          durability::JoinPath(db_dir_, next.wal_file),
          db_options_.fsync_policy, db_options_.fsync_interval_seconds,
          /*next_lsn=*/1, /*append_offset=*/0));
  CRACK_RETURN_NOT_OK(durability::WriteManifest(db_dir_, next));
  wal_ = std::move(next_wal);
  manifest_ = next;
  // The old generation is unreachable now; its log is truncated away whole
  // (every commit it held is inside the checkpoint).
  Status rm = durability::RemoveFile(old_wal);
  if (rm.ok() && !old_ckpt.empty()) {
    rm = durability::RemoveFile(durability::JoinPath(db_dir_, old_ckpt));
  }
  (void)rm;  // leaked garbage files are harmless; the manifest moved on
  checkpoints_.fetch_add(1);
  obs::RecordCheckpoint(bytes);
  return Status::OK();
}

Status AdaptiveStore::Close() {
  if (closed_ || wal_ == nullptr) {
    closed_ = true;
    return Status::OK();
  }
  // Transactions still open lose their work — that is what un-durable
  // means. Roll them back so the final checkpoint sees committed state
  // only.
  std::vector<TxnId> open;
  {
    std::lock_guard<std::mutex> tl(txn_states_mu_);
    for (const auto& [txn, state] : txn_states_) open.push_back(txn);
  }
  for (TxnId txn : open) {
    Status rb = Rollback(txn);
    (void)rb;
  }
  Status ckpt = Checkpoint();
  Status sealed = wal_->Close();
  closed_ = true;
  // A failed final checkpoint is not data loss — the sealed log still
  // replays — but the caller should hear about it.
  if (!ckpt.ok()) return ckpt;
  return sealed;
}

void AdaptiveStore::MaybeRunMaintenance() {
  const uint64_t vacuum_threshold = db_options_.autovacuum_version_threshold;
  const uint64_t ckpt_bytes = db_options_.checkpoint_interval_bytes;
  const bool checkpointing = wal_ != nullptr && ckpt_bytes > 0;
  if (vacuum_threshold == 0 && !checkpointing) return;
  // Amortize: the triggers read registry-wide counters, so probe them every
  // few commits rather than on each one.
  constexpr uint64_t kCommitsPerProbe = 16;
  if (commits_since_maintenance_.fetch_add(1, std::memory_order_relaxed) +
          1 <
      kCommitsPerProbe) {
    return;
  }
  if (maintenance_running_.exchange(true)) return;  // someone else is on it
  commits_since_maintenance_.store(0, std::memory_order_relaxed);
  if (vacuum_threshold > 0 && txn_mgr_.active_count() == 0) {
    uint64_t footprint = 0;
    for (const std::string& name : TableNames()) {
      if (VersionedTable* vt = VersionsIfAny(name)) {
        VersionedTable::Counts c = vt->counts();
        footprint += c.row_versions + c.chain_entries + c.purged;
      }
    }
    if (footprint >= vacuum_threshold) {
      auto stats = Vacuum();
      if (stats.ok()) {
        autovacuum_runs_.fetch_add(1);
        obs::RecordAutovacuum();
      }
    }
  }
  if (checkpointing && wal_->file_bytes() >= ckpt_bytes &&
      txn_mgr_.active_count() == 0) {
    Status st = Checkpoint();  // best effort; Aborted just means "later"
    (void)st;
  }
  maintenance_running_.store(false);
}

}  // namespace crackstore
