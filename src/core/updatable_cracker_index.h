// Copyright 2026 The CrackStore Authors
//
// UpdatableCrackerIndex: the paper's open question — "What are the effects
// of updates on the scheme proposed?" (§2.2/§7) — answered with the
// differential scheme the follow-on literature settled on: updates are
// collected in small delta structures next to the cracked column and merged
// back lazily.
//
//   * inserts  -> a pending list, consulted by every selection;
//   * deletes  -> a tombstone set filtered out of every answer;
//   * Merge()  -> folds both into a fresh cracker column, *re-applying the
//     learned piece boundaries* so the index survives its own maintenance.
//
// Selections therefore return a CrackSelection over the contiguous cracked
// area plus a (small) delta vector; count() and ForEach() present the union
// view.

#ifndef CRACKSTORE_CORE_UPDATABLE_CRACKER_INDEX_H_
#define CRACKSTORE_CORE_UPDATABLE_CRACKER_INDEX_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/cracker_index.h"
#include "obs/query_stats.h"
#include "util/result.h"

namespace crackstore {

/// A selection over an updatable cracked column: the cracked contiguous
/// area plus pending inserts, minus tombstones.
template <typename T>
struct UpdatableSelection {
  CrackSelection base;                        ///< from the cracker column
  std::vector<std::pair<T, Oid>> delta;       ///< qualifying pending inserts
  uint64_t deleted_in_base = 0;               ///< tombstoned rows inside base

  /// Number of qualifying live tuples.
  uint64_t count() const {
    return base.count() - deleted_in_base + delta.size();
  }
};

/// Tuning knobs.
struct UpdatableCrackerIndexOptions {
  /// Merge() is triggered automatically by Select when the delta grows past
  /// this fraction of the column (0 disables auto-merge).
  double auto_merge_fraction = 0.1;
  CrackerIndexOptions index_options;
};

/// See file comment. T in {int32_t, int64_t, double}.
template <typename T>
class UpdatableCrackerIndex {
 public:
  explicit UpdatableCrackerIndex(const std::shared_ptr<Bat>& source,
                                 IoStats* stats = nullptr,
                                 UpdatableCrackerIndexOptions options = {});

  CRACK_DISALLOW_COPY_AND_ASSIGN(UpdatableCrackerIndex);

  /// Registers a new tuple. Oids must be fresh (beyond the source range and
  /// previous inserts); the caller owns the oid space.
  Status Insert(T value, Oid oid);

  /// Tombstones a tuple by oid (source or previously inserted). Deleting a
  /// pending insert cancels it directly.
  Status Delete(Oid oid);

  /// Changes the value of an existing tuple *without* retiring its oid: a
  /// pending insert is rewritten in place; a merged tuple is tombstoned and
  /// re-entered as a pending insert carrying the same oid, so the oid keeps
  /// naming the same logical row across every column of a table.
  Status Update(T value, Oid oid);

  /// Range selection over the live tuples (see UpdatableSelection). May
  /// trigger an automatic Merge() first.
  UpdatableSelection<T> Select(T lo, bool lo_incl, T hi, bool hi_incl,
                               IoStats* stats = nullptr);

  /// Calls `fn(value, oid)` for every qualifying live tuple of `selection`.
  void ForEach(const UpdatableSelection<T>& selection,
               const std::function<void(T, Oid)>& fn) const;

  /// Folds pending inserts and tombstones into a fresh cracker column and
  /// re-applies every learned boundary (O(pieces · n) cracks), preserving
  /// the index's navigation knowledge.
  Status Merge(IoStats* stats = nullptr);

  /// Live tuple count (source − deleted + inserted).
  size_t size() const {
    return merged_size_ - deleted_.size() + pending_.size();
  }

  size_t pending_inserts() const { return pending_.size(); }
  size_t pending_deletes() const { return deleted_.size(); }
  size_t num_pieces() const { return index_->num_pieces(); }

  /// Number of Merge() folds performed (manual + automatic).
  size_t merges_performed() const { return merges_performed_; }

  const CrackerIndex<T>& index() const { return *index_; }

  /// Mutable access to the inner cracker index, for callers that steer
  /// cracking beyond plain selections (pivot policies, merge budgets). The
  /// delta structures stay consistent: they reference oids, not positions.
  /// NOTE: Merge() replaces the index wholesale — never cache this pointer
  /// across a call that may merge (in concurrent mode, across a release of
  /// the exclusive column latch).
  CrackerIndex<T>* mutable_index() { return index_.get(); }

  /// The pending inserts, in arrival order. Concurrent mode: the owning
  /// access path guards every reader/writer of this list (and of
  /// IsDeleted) with its delta latch.
  const std::vector<std::pair<T, Oid>>& pending() const { return pending_; }

  /// True iff `oid` is tombstoned against the merged area.
  bool IsDeleted(Oid oid) const { return deleted_.count(oid) > 0; }

  /// True when the delta has outgrown options().auto_merge_fraction.
  bool ShouldAutoMerge() const {
    if (options_.auto_merge_fraction <= 0) return false;
    size_t delta = pending_.size() + deleted_.size();
    return delta > static_cast<size_t>(options_.auto_merge_fraction *
                                       static_cast<double>(merged_size_));
  }

  /// Exhaustive consistency check (test support).
  Status Validate() const;

 private:
  UpdatableCrackerIndexOptions options_;
  std::unique_ptr<CrackerIndex<T>> index_;
  size_t merged_size_ = 0;   ///< tuples inside the cracker column
  Oid next_fresh_oid_ = 0;   ///< lowest oid never seen (insert validation)
  std::vector<std::pair<T, Oid>> pending_;
  std::unordered_set<Oid> deleted_;  ///< tombstones against merged tuples
  std::unordered_set<Oid> purged_;   ///< oids physically removed by merges
  size_t merges_performed_ = 0;
};

extern template class UpdatableCrackerIndex<int32_t>;
extern template class UpdatableCrackerIndex<int64_t>;
extern template class UpdatableCrackerIndex<double>;

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_UPDATABLE_CRACKER_INDEX_H_
