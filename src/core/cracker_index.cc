// Copyright 2026 The CrackStore Authors

#include "core/cracker_index.h"

#include <algorithm>
#include <cstring>

#include "obs/instruments.h"
#include "util/string_util.h"

namespace crackstore {

template <typename T>
CrackerIndex<T>::CrackerIndex(const std::shared_ptr<Bat>& source,
                              IoStats* stats, CrackerIndexOptions options)
    : options_(options) {
  CRACK_CHECK(source != nullptr);
  CRACK_CHECK(source->tail_type() == TypeTraits<T>::kType);
  n_ = source->size();
  values_ = source->Clone(source->name() + "#crack");
  oids_ = Bat::Create(ValueType::kOid, source->name() + "#crackmap");
  oids_->Reserve(n_);
  Oid* om = oids_->MutableTailData<Oid>();
  Oid base = source->head_base();
  for (size_t i = 0; i < n_; ++i) om[i] = base + i;
  oids_->SetCountUnsafe(n_);
  raw_values_ = values_->MutableTailData<T>();
  raw_oids_ = oids_->MutableTailData<Oid>();
  if (stats != nullptr) {
    stats->tuples_read += n_;
    stats->tuples_written += n_;
  }
}

template <typename T>
CrackerIndex<T>::CrackerIndex(std::shared_ptr<Bat> values,
                              std::shared_ptr<Bat> oids,
                              CrackerIndexOptions options)
    : options_(options) {
  CRACK_CHECK(values != nullptr && oids != nullptr);
  CRACK_CHECK(values->tail_type() == TypeTraits<T>::kType);
  CRACK_CHECK(oids->tail_type() == ValueType::kOid);
  CRACK_CHECK(values->size() == oids->size());
  n_ = values->size();
  values_ = std::move(values);
  oids_ = std::move(oids);
  raw_values_ = values_->MutableTailData<T>();
  raw_oids_ = oids_->MutableTailData<Oid>();
}

template <typename T>
size_t CrackerIndex<T>::LowerLimitFor(T v) const {
  auto it = bounds_.lower_bound(v);  // first entry >= v
  if (it == bounds_.begin()) return 0;
  --it;  // last entry < v
  const Bound& b = it->second;
  return b.has_incl ? b.pos_incl : b.pos_excl;
}

template <typename T>
size_t CrackerIndex<T>::UpperLimitFor(T v) const {
  auto it = bounds_.upper_bound(v);  // first entry > v
  if (it == bounds_.end()) return n_;
  const Bound& b = it->second;
  return b.has_excl ? b.pos_excl : b.pos_incl;
}

template <typename T>
void CrackerIndex<T>::CrackRegionFor(T v, bool want_incl, size_t* begin,
                                     size_t* end) const {
  auto it = bounds_.find(v);
  if (it != bounds_.end()) {
    // A boundary at v exists but with the other inclusivity; the slice of
    // duplicates of v bounds the crack region on one side.
    const Bound& b = it->second;
    if (want_incl) {
      // pos_incl lies in [pos_excl, successor); everything left of pos_excl
      // is already < v.
      CRACK_DCHECK(b.has_excl);
      *begin = b.pos_excl;
      *end = UpperLimitFor(v);
    } else {
      // pos_excl lies in [predecessor, pos_incl); everything right of
      // pos_incl is already > v.
      CRACK_DCHECK(b.has_incl);
      *begin = LowerLimitFor(v);
      *end = b.pos_incl;
    }
  } else {
    *begin = LowerLimitFor(v);
    *end = UpperLimitFor(v);
  }
  CRACK_DCHECK(*begin <= *end);
}

template <typename T>
void CrackerIndex<T>::RegisterCut(T v, bool want_incl, size_t pos) {
  Bound& b = bounds_[v];
  if (b.created == 0) b.created = clock_;
  if (want_incl) {
    b.has_incl = true;
    b.pos_incl = pos;
  } else {
    b.has_excl = true;
    b.pos_excl = pos;
  }
  Touch(&b);
}

template <typename T>
bool CrackerIndex<T>::FindCutAndTouch(T v, bool want_incl, size_t* pos) {
  auto it = bounds_.find(v);
  if (it == bounds_.end()) return false;
  Bound& b = it->second;
  if (want_incl && b.has_incl) {
    Touch(&b);
    *pos = b.pos_incl;
    return true;
  }
  if (!want_incl && b.has_excl) {
    Touch(&b);
    *pos = b.pos_excl;
    return true;
  }
  return false;
}

template <typename T>
size_t CrackerIndex<T>::Cut(T v, bool want_incl, IoStats* stats) {
  size_t pos;
  if (FindCutAndTouch(v, want_incl, &pos)) return pos;

  // The cut is unknown: locate the piece [begin, end) that must be cracked.
  size_t begin, end;
  CrackRegionFor(v, want_incl, &begin, &end);
  InvalidateProgressive(begin);

  CrackSplit split = want_incl
                         ? CrackInTwoLe(data() + begin, oid_data() + begin,
                                        end - begin, v)
                         : CrackInTwoLt(data() + begin, oid_data() + begin,
                                        end - begin, v);
  pos = begin + split.split;
  if (stats != nullptr) {
    stats->tuples_read += end - begin;
    stats->tuples_written += split.writes;
    ++stats->cracks;
    ++stats->pieces_touched;
    stats->kernel_writes += split.writes;
  }
  obs::RecordCrack(end - begin, split.writes,
                   (pos > begin && pos < end) ? 1 : 0, /*pieces_touched=*/1);
  if (pos > begin) obs::RecordPieceSize(pos - begin);
  if (end > pos) obs::RecordPieceSize(end - pos);
  RegisterCut(v, want_incl, pos);
  return pos;
}

template <typename T>
bool CrackerIndex<T>::FindCutConcurrent(T v, bool want_incl, size_t* pos) {
  std::lock_guard<std::mutex> lk(map_mu_);
  return FindCutAndTouch(v, want_incl, pos);
}

template <typename T>
std::pair<size_t, size_t> CrackerIndex<T>::PieceSpanForConcurrent(T v) const {
  std::lock_guard<std::mutex> lk(map_mu_);
  return {LowerLimitFor(v), UpperLimitFor(v)};
}

template <typename T>
T CrackerIndex<T>::ValueAtConcurrent(size_t slot) {
  CRACK_DCHECK(slot < n_);
  RangeLockGuard cell(&range_locks_, slot, slot + 1, /*exclusive=*/false);
  return raw_values_[slot];
}

template <typename T>
size_t CrackerIndex<T>::CutConcurrent(T v, bool want_incl, IoStats* stats) {
  size_t begin, end;
  {
    std::lock_guard<std::mutex> lk(map_mu_);
    size_t pos;
    if (FindCutAndTouch(v, want_incl, &pos)) return pos;
    CrackRegionFor(v, want_incl, &begin, &end);
  }
  for (;;) {
    // Shuffles only happen under an exclusive lock on the enclosing piece.
    // Between the map snapshot and the lock grant another thread may have
    // subdivided (or fully cut) the region, so revalidate under the map
    // mutex once the lock is held: the live region is always a subrange of
    // the one we locked, because cracks only ever subdivide pieces.
    RangeLockGuard region(&range_locks_, begin, end, /*exclusive=*/true);
    size_t b2, e2;
    {
      std::lock_guard<std::mutex> lk(map_mu_);
      size_t pos;
      if (FindCutAndTouch(v, want_incl, &pos)) return pos;
      CrackRegionFor(v, want_incl, &b2, &e2);
    }
    if (b2 < begin || e2 > end) {
      // Defensive: the region can only shrink; if it ever widened, retry
      // with the wider lock rather than shuffling outside the held range.
      begin = b2;
      end = e2;
      continue;
    }
    begin = b2;
    end = e2;
    {
      // The full kernel below is about to repartition [begin, end); any
      // carried frontier for the piece becomes meaningless. We hold the
      // exclusive range lock, so no progressive pass races this erase.
      std::lock_guard<std::mutex> lk(map_mu_);
      InvalidateProgressive(begin);
    }
    // The kernel runs outside map_mu_: no other thread can register a cut
    // inside [begin, end) meanwhile (doing so would need this range lock),
    // and cuts elsewhere don't move data in here.
    CrackSplit split =
        want_incl ? CrackInTwoLe(raw_values_ + begin, raw_oids_ + begin,
                                 end - begin, v)
                  : CrackInTwoLt(raw_values_ + begin, raw_oids_ + begin,
                                 end - begin, v);
    size_t pos = begin + split.split;
    if (stats != nullptr) {
      stats->tuples_read += end - begin;
      stats->tuples_written += split.writes;
      ++stats->cracks;
      ++stats->pieces_touched;
      stats->kernel_writes += split.writes;
      // A strictly-interior split is a brand-new cut position (registered
      // cuts bound the crack region, so its interior held none): exactly
      // one new piece. Edge splits create nothing, matching the serial
      // path's num_pieces() diff accounting.
      if (pos > begin && pos < end) ++stats->pieces_created;
    }
    obs::RecordCrack(end - begin, split.writes,
                     (pos > begin && pos < end) ? 1 : 0, /*pieces_touched=*/1);
    if (pos > begin) obs::RecordPieceSize(pos - begin);
    if (end > pos) obs::RecordPieceSize(end - pos);
    {
      std::lock_guard<std::mutex> lk(map_mu_);
      RegisterCut(v, want_incl, pos);
    }
    return pos;
  }
}

template <typename T>
size_t CrackerIndex<T>::AdvanceProgressive(ProgressiveJob* job,
                                           size_t max_writes, bool* done,
                                           IoStats* stats) {
  const T pivot = job->pivot;
  const size_t old_lo = job->lo;
  const size_t old_hi = job->hi;
  size_t lo = old_lo;
  size_t hi = old_hi;
  size_t writes;
  if (job->want_incl) {
    writes = internal::PartialPartition2(
        raw_values_, raw_oids_, &lo, &hi,
        [pivot](T v) { return v <= pivot; }, max_writes);
  } else {
    writes = internal::PartialPartition2(
        raw_values_, raw_oids_, &lo, &hi,
        [pivot](T v) { return v < pivot; }, max_writes);
  }
  job->lo = lo;
  job->hi = hi;
  *done = lo >= hi;
  const size_t processed = (lo - old_lo) + (old_hi - hi);
  const bool interior = *done && lo > job->begin && lo < job->end;
  if (stats != nullptr) {
    stats->tuples_read += processed;
    stats->tuples_written += writes;
    ++stats->cracks;
    ++stats->pieces_touched;
    stats->kernel_writes += writes;
    if (interior) ++stats->pieces_created;
  }
  obs::RecordCrack(processed, writes, interior ? 1 : 0, /*pieces_touched=*/1);
  if (*done) {
    if (lo > job->begin) obs::RecordPieceSize(lo - job->begin);
    if (job->end > lo) obs::RecordPieceSize(job->end - lo);
  }
  return writes;
}

template <typename T>
ProgressiveCut CrackerIndex<T>::CutProgressive(T v, bool want_incl,
                                               size_t max_writes,
                                               IoStats* stats) {
  ProgressiveCut out;
  size_t pos;
  if (FindCutAndTouch(v, want_incl, &pos)) {
    out.lo = out.hi = pos;
    out.exact = true;
    return out;
  }
  size_t budget = max_writes;
  for (;;) {
    size_t begin, end;
    CrackRegionFor(v, want_incl, &begin, &end);
    auto it = progressive_.find(begin);
    if (it != progressive_.end() && it->second.end != end) {
      // Stale frontier from an earlier piece geometry: drop it.
      progressive_.erase(it);
      it = progressive_.end();
    }
    if (it != progressive_.end() && (it->second.pivot != v ||
                                     it->second.want_incl != want_incl)) {
      // A different pivot owns this piece: finish-then-start. Our budget
      // first completes the carried job; the piece then subdivides and
      // navigation retries for our own pivot.
      ProgressiveJob& job = it->second;
      bool job_done = false;
      const size_t w = AdvanceProgressive(&job, budget, &job_done, stats);
      budget -= std::min(budget, w);
      if (!job_done) {
        out.lo = begin;
        out.hi = end;
        out.deferred = job.hi - job.lo;
        obs::RecordProgressiveDeferred(out.deferred);
        return out;
      }
      RegisterCut(job.pivot, job.want_incl, job.lo);
      progressive_.erase(it);
      continue;
    }
    if (it == progressive_.end()) {
      ProgressiveJob fresh;
      fresh.pivot = v;
      fresh.want_incl = want_incl;
      fresh.begin = begin;
      fresh.end = end;
      fresh.lo = begin;
      fresh.hi = end;
      it = progressive_.emplace(begin, fresh).first;
    }
    ProgressiveJob& job = it->second;
    bool job_done = false;
    const size_t w = AdvanceProgressive(&job, budget, &job_done, stats);
    budget -= std::min(budget, w);
    if (job_done) {
      const size_t cut = job.lo;
      progressive_.erase(it);
      RegisterCut(v, want_incl, cut);
      out.lo = out.hi = cut;
      out.exact = true;
      return out;
    }
    out.lo = job.lo;
    out.hi = job.hi;
    out.deferred = job.hi - job.lo;
    obs::RecordProgressiveDeferred(out.deferred);
    return out;
  }
}

template <typename T>
ProgressiveCut CrackerIndex<T>::CutProgressiveConcurrent(T v, bool want_incl,
                                                         size_t max_writes,
                                                         IoStats* stats) {
  ProgressiveCut out;
  size_t begin, end;
  {
    std::lock_guard<std::mutex> lk(map_mu_);
    size_t pos;
    if (FindCutAndTouch(v, want_incl, &pos)) {
      out.lo = out.hi = pos;
      out.exact = true;
      return out;
    }
    CrackRegionFor(v, want_incl, &begin, &end);
  }
  size_t budget = max_writes;
  for (;;) {
    // Same lock order as CutConcurrent: exclusive range lock on the piece
    // first, then map_mu_ to revalidate and read/write frontier state.
    RangeLockGuard region(&range_locks_, begin, end, /*exclusive=*/true);
    ProgressiveJob job;
    bool ours;
    {
      std::lock_guard<std::mutex> lk(map_mu_);
      size_t pos;
      if (FindCutAndTouch(v, want_incl, &pos)) {
        out.lo = out.hi = pos;
        out.exact = true;
        return out;
      }
      size_t b2, e2;
      CrackRegionFor(v, want_incl, &b2, &e2);
      if (b2 < begin || e2 > end) {
        // Defensive, mirroring CutConcurrent: retry with the wider lock.
        begin = b2;
        end = e2;
        continue;
      }
      begin = b2;
      end = e2;
      auto it = progressive_.find(begin);
      if (it != progressive_.end() && it->second.end != end) {
        progressive_.erase(it);
        it = progressive_.end();
      }
      if (it == progressive_.end()) {
        job.pivot = v;
        job.want_incl = want_incl;
        job.begin = begin;
        job.end = end;
        job.lo = begin;
        job.hi = end;
        progressive_.emplace(begin, job);
        ours = true;
      } else {
        job = it->second;
        ours = job.pivot == v && job.want_incl == want_incl;
      }
    }
    // The pass runs outside map_mu_ but under the exclusive range lock:
    // nobody else can shuffle or advance this piece meanwhile.
    bool job_done = false;
    const size_t w = AdvanceProgressive(&job, budget, &job_done, stats);
    budget -= std::min(budget, w);
    {
      std::lock_guard<std::mutex> lk(map_mu_);
      if (job_done) {
        RegisterCut(job.pivot, job.want_incl, job.lo);
        progressive_.erase(begin);
        if (ours) {
          out.lo = out.hi = job.lo;
          out.exact = true;
          return out;
        }
        // A foreign job completed: the piece subdivided; fall through to
        // re-navigate for our own pivot with the remaining budget.
      } else {
        auto it = progressive_.find(begin);
        if (it != progressive_.end()) it->second = job;
        out.deferred = job.hi - job.lo;
        if (ours) {
          out.lo = job.lo;
          out.hi = job.hi;
        } else {
          // Budget ran dry finishing a foreign job: nothing is known about
          // our pivot inside this piece.
          out.lo = begin;
          out.hi = end;
        }
        obs::RecordProgressiveDeferred(out.deferred);
        return out;
      }
    }
    {
      std::lock_guard<std::mutex> lk(map_mu_);
      size_t pos;
      if (FindCutAndTouch(v, want_incl, &pos)) {
        out.lo = out.hi = pos;
        out.exact = true;
        return out;
      }
      CrackRegionFor(v, want_incl, &begin, &end);
    }
  }
}

template <typename T>
size_t CrackerIndex<T>::progressive_pending() const {
  std::lock_guard<std::mutex> lk(map_mu_);
  size_t total = 0;
  for (const auto& [begin, job] : progressive_) total += job.hi - job.lo;
  return total;
}

template <typename T>
CrackSelection CrackerIndex<T>::Select(T lo, bool lo_incl, T hi, bool hi_incl,
                                       IoStats* stats) {
  size_t pieces_before = num_pieces();

  // Degenerate/inverted ranges answer empty without cracking.
  if (lo > hi || (lo == hi && !(lo_incl && hi_incl))) {
    return CrackSelection{BatView(values_, 0, 0), BatView(oids_, 0, 0)};
  }

  size_t cut_lo;
  size_t cut_hi;

  // When no registered boundary falls inside [lo, hi], both cuts land in one
  // piece: crack it in three with a single pass (§3.1's three-piece Ξ).
  auto lb = bounds_.lower_bound(lo);
  auto ub = bounds_.upper_bound(hi);
  if (lb == ub && options_.use_crack_in_three) {
    size_t begin = LowerLimitFor(lo);
    size_t end = UpperLimitFor(hi);
    CRACK_DCHECK(begin <= end);
    InvalidateProgressive(begin);
    Crack3Split split = CrackInThree(data() + begin, oid_data() + begin,
                                     end - begin, lo, lo_incl, hi, hi_incl);
    cut_lo = begin + split.first;
    cut_hi = begin + split.second;
    if (stats != nullptr) {
      stats->tuples_read += end - begin;
      stats->tuples_written += split.writes;
      ++stats->cracks;
      ++stats->pieces_touched;
      stats->kernel_writes += split.writes;
    }
    {
      uint64_t created = 0;
      if (cut_lo > begin && cut_lo < end) ++created;
      if (cut_hi != cut_lo && cut_hi > begin && cut_hi < end) ++created;
      obs::RecordCrack(end - begin, split.writes, created,
                       /*pieces_touched=*/1);
      if (cut_lo > begin) obs::RecordPieceSize(cut_lo - begin);
      if (cut_hi > cut_lo) obs::RecordPieceSize(cut_hi - cut_lo);
      if (end > cut_hi) obs::RecordPieceSize(end - cut_hi);
    }
    uint64_t created_clock = clock_;
    if (lo == hi) {
      // Point query: both cuts decorate the same boundary value.
      Bound& b = bounds_[lo];
      if (b.created == 0) b.created = created_clock;
      b.has_excl = true;
      b.pos_excl = cut_lo;
      b.has_incl = true;
      b.pos_incl = cut_hi;
      Touch(&b);
    } else {
      Bound& bl = bounds_[lo];
      if (bl.created == 0) bl.created = created_clock;
      if (lo_incl) {
        bl.has_excl = true;
        bl.pos_excl = cut_lo;
      } else {
        bl.has_incl = true;
        bl.pos_incl = cut_lo;
      }
      Touch(&bl);
      Bound& bh = bounds_[hi];
      if (bh.created == 0) bh.created = created_clock;
      if (hi_incl) {
        bh.has_incl = true;
        bh.pos_incl = cut_hi;
      } else {
        bh.has_excl = true;
        bh.pos_excl = cut_hi;
      }
      Touch(&bh);
    }
  } else {
    // Boundaries inside the range: crack (at most) the two edge pieces.
    cut_lo = Cut(lo, /*want_incl=*/!lo_incl, stats);
    cut_hi = Cut(hi, /*want_incl=*/hi_incl, stats);
  }

  if (stats != nullptr) {
    size_t pieces_after = num_pieces();
    stats->pieces_created += pieces_after - pieces_before;
  }

  if (cut_hi < cut_lo) cut_hi = cut_lo;  // empty result
  return CrackSelection{BatView(values_, cut_lo, cut_hi - cut_lo),
                        BatView(oids_, cut_lo, cut_hi - cut_lo)};
}

template <typename T>
CrackSelection CrackerIndex<T>::SelectLessThan(T v, bool inclusive,
                                               IoStats* stats) {
  size_t pieces_before = num_pieces();
  size_t cut = Cut(v, /*want_incl=*/inclusive, stats);
  if (stats != nullptr) stats->pieces_created += num_pieces() - pieces_before;
  return CrackSelection{BatView(values_, 0, cut), BatView(oids_, 0, cut)};
}

template <typename T>
CrackSelection CrackerIndex<T>::SelectGreaterThan(T v, bool inclusive,
                                                  IoStats* stats) {
  size_t pieces_before = num_pieces();
  size_t cut = Cut(v, /*want_incl=*/!inclusive, stats);
  if (stats != nullptr) stats->pieces_created += num_pieces() - pieces_before;
  return CrackSelection{BatView(values_, cut, n_ - cut),
                        BatView(oids_, cut, n_ - cut)};
}

template <typename T>
CrackSelection CrackerIndex<T>::SelectEquals(T v, IoStats* stats) {
  return Select(v, /*lo_incl=*/true, v, /*hi_incl=*/true, stats);
}

template <typename T>
bool CrackerIndex<T>::FindCut(T v, bool want_incl, size_t* pos) const {
  auto it = bounds_.find(v);
  if (it == bounds_.end()) return false;
  const Bound& b = it->second;
  if (want_incl && b.has_incl) {
    *pos = b.pos_incl;
    return true;
  }
  if (!want_incl && b.has_excl) {
    *pos = b.pos_excl;
    return true;
  }
  return false;
}

template <typename T>
void CrackerIndex<T>::TouchBound(T v) {
  auto it = bounds_.find(v);
  if (it != bounds_.end()) Touch(&it->second);
}

template <typename T>
CrackSelection CrackerIndex<T>::SelectAll() const {
  return CrackSelection{BatView(values_, 0, n_), BatView(oids_, 0, n_)};
}

template <typename T>
size_t CrackerIndex<T>::num_pieces() const {
  std::lock_guard<std::mutex> lk(map_mu_);
  std::set<size_t> cuts;
  for (const auto& [value, b] : bounds_) {
    if (b.has_excl && b.pos_excl > 0 && b.pos_excl < n_) cuts.insert(b.pos_excl);
    if (b.has_incl && b.pos_incl > 0 && b.pos_incl < n_) cuts.insert(b.pos_incl);
  }
  return cuts.size() + 1;
}

template <typename T>
std::vector<CrackPiece<T>> CrackerIndex<T>::Pieces() const {
  // Event list: (position, value, is_incl). A pos_excl event at value v says
  // the right-hand side holds v >= value; a pos_incl event says v > value.
  struct Event {
    size_t pos;
    T value;
    bool incl;  // true when this is a pos_incl cut
  };
  std::lock_guard<std::mutex> lk(map_mu_);
  std::vector<Event> events;
  events.reserve(bounds_.size() * 2);
  for (const auto& [value, b] : bounds_) {
    if (b.has_excl) events.push_back({b.pos_excl, value, false});
    if (b.has_incl) events.push_back({b.pos_incl, value, true});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    if (a.value != b.value) return a.value < b.value;
    return a.incl < b.incl;
  });

  std::vector<CrackPiece<T>> pieces;
  CrackPiece<T> cur;
  cur.begin = 0;
  for (const Event& e : events) {
    if (e.pos > cur.begin) {
      cur.end = e.pos;
      // Upper decoration from this event: left side is < v (excl) or <= v
      // (incl).
      cur.has_hi = true;
      cur.hi = e.value;
      cur.hi_strict = !e.incl;
      pieces.push_back(cur);
      cur = CrackPiece<T>{};
      cur.begin = e.pos;
    }
    // Lower decoration for the piece starting at e.pos: right side is
    // >= v (excl cut) or > v (incl cut). Tightest wins: later events at the
    // same position have larger values, so keep overwriting.
    cur.has_lo = true;
    cur.lo = e.value;
    cur.lo_strict = e.incl;
  }
  cur.end = n_;
  if (cur.end > cur.begin || pieces.empty()) pieces.push_back(cur);
  return pieces;
}

template <typename T>
std::vector<CrackBound<T>> CrackerIndex<T>::Bounds() const {
  std::lock_guard<std::mutex> lk(map_mu_);
  std::vector<CrackBound<T>> out;
  out.reserve(bounds_.size());
  for (const auto& [value, b] : bounds_) {
    CrackBound<T> cb;
    cb.value = value;
    cb.has_excl = b.has_excl;
    cb.pos_excl = b.pos_excl;
    cb.has_incl = b.has_incl;
    cb.pos_incl = b.pos_incl;
    cb.last_used = b.last_used;
    cb.created = b.created;
    out.push_back(cb);
  }
  return out;
}

template <typename T>
Status CrackerIndex<T>::RemoveBound(T value) {
  auto it = bounds_.find(value);
  if (it == bounds_.end()) {
    return Status::NotFound("no boundary at requested value");
  }
  bounds_.erase(it);
  // Fusing pieces invalidates the piece geometry every carried frontier
  // was keyed against; drop them all (their partial partitions stay
  // harmless — a redo merely re-shuffles).
  progressive_.clear();
  return Status::OK();
}

template <typename T>
Status CrackerIndex<T>::Validate() const {
  const T* d = data();
  for (const auto& [value, b] : bounds_) {
    if (b.has_excl) {
      for (size_t i = 0; i < b.pos_excl; ++i) {
        if (!(d[i] < value)) {
          return Status::Internal(StrFormat(
              "excl bound violated at index %zu (pos_excl=%zu)", i,
              b.pos_excl));
        }
      }
      for (size_t i = b.pos_excl; i < n_; ++i) {
        if (d[i] < value) {
          return Status::Internal(StrFormat(
              "excl bound violated at index %zu (pos_excl=%zu)", i,
              b.pos_excl));
        }
      }
    }
    if (b.has_incl) {
      for (size_t i = 0; i < b.pos_incl; ++i) {
        if (d[i] > value) {
          return Status::Internal(StrFormat(
              "incl bound violated at index %zu (pos_incl=%zu)", i,
              b.pos_incl));
        }
      }
      for (size_t i = b.pos_incl; i < n_; ++i) {
        if (!(d[i] > value)) {
          return Status::Internal(StrFormat(
              "incl bound violated at index %zu (pos_incl=%zu)", i,
              b.pos_incl));
        }
      }
    }
    if (b.has_excl && b.has_incl && b.pos_excl > b.pos_incl) {
      return Status::Internal("pos_excl > pos_incl");
    }
  }
  return Status::OK();
}

template class CrackerIndex<int32_t>;
template class CrackerIndex<int64_t>;
template class CrackerIndex<double>;

}  // namespace crackstore
