// Copyright 2026 The CrackStore Authors
//
// Crack kernels: the in-place partition primitives at the bottom of the
// Ξ (selection) cracker. They implement the "shuffle-exchange sort over all
// tuples to cluster them according to their tail value" of paper §3.4.2,
// restricted to one pivot (crack-in-two) or a pivot pair (crack-in-three).
//
// All kernels optionally permute a parallel oid array (the cracker map) in
// lockstep, and report the number of tuple writes they performed so the
// experiments can account cost in deterministic units.
//
// This header holds the scalar reference kernels plus the public dispatch
// wrappers (CrackInTwoLt / CrackInTwoLe / CrackInThree): for int32/int64/
// double the wrappers route through the runtime-selected SIMD tier in
// simd_dispatch.h, every other type falls back to the scalar reference.
// The vector tiers of crack-in-two are bit-identical to the scalar kernel
// (same split, same layout, same writes) — see simd_dispatch.h.

#ifndef CRACKSTORE_CORE_CRACK_KERNELS_H_
#define CRACKSTORE_CORE_CRACK_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/simd_dispatch.h"
#include "obs/instruments.h"
#include "storage/types.h"
#include "util/macros.h"

namespace crackstore {

namespace internal {

template <typename T>
inline void SwapWithPayload(T* data, Oid* oids, size_t i, size_t j) {
  std::swap(data[i], data[j]);
  if (oids != nullptr) std::swap(oids[i], oids[j]);
}

/// Hoare-style partition: elements satisfying `goes_left` end up in
/// [0, split), the rest in [split, n).
template <typename T, typename GoesLeft>
CrackSplit Partition2(T* data, Oid* oids, size_t n, GoesLeft goes_left) {
  CrackSplit out;
  if (n == 0) return out;
  size_t lo = 0;
  size_t hi = n;
  while (true) {
    while (lo < hi && goes_left(data[lo])) ++lo;
    while (lo < hi && !goes_left(data[hi - 1])) --hi;
    if (lo >= hi) break;
    SwapWithPayload(data, oids, lo, hi - 1);
    out.writes += 2;
    ++lo;
    --hi;
  }
  out.split = lo;
  return out;
}

/// Budgeted Hoare partition pass over the open frontier [*lo_io, *hi_io):
/// the progressive-cracking primitive. Elements left of *lo_io already
/// satisfy `goes_left`, elements at or right of *hi_io already don't; this
/// pass advances both frontiers inward, stopping once `max_writes` tuple
/// writes have been spent (the check precedes each swap, so the overshoot
/// is at most one swap = 2 writes). Scanning is not budgeted — only data
/// movement is, matching how the policy layer accounts reorganization
/// cost. The partition is complete when *lo_io == *hi_io on return.
/// Returns the writes performed.
template <typename T, typename GoesLeft>
size_t PartialPartition2(T* data, Oid* oids, size_t* lo_io, size_t* hi_io,
                         GoesLeft goes_left, size_t max_writes) {
  size_t lo = *lo_io;
  size_t hi = *hi_io;
  size_t writes = 0;
  while (true) {
    while (lo < hi && goes_left(data[lo])) ++lo;
    while (lo < hi && !goes_left(data[hi - 1])) --hi;
    if (lo >= hi) break;
    if (writes >= max_writes) break;
    SwapWithPayload(data, oids, lo, hi - 1);
    writes += 2;
    ++lo;
    --hi;
  }
  *lo_io = lo;
  *hi_io = hi;
  return writes;
}

/// True for the element types that have vectorized kernel tiers.
template <typename T>
inline constexpr bool kHasSimdKernels = std::is_same_v<T, int32_t> ||
                                        std::is_same_v<T, int64_t> ||
                                        std::is_same_v<T, double>;

}  // namespace internal

/// Scalar reference: partitions so that values `< pivot` come first.
template <typename T>
CrackSplit CrackInTwoLtScalar(T* data, Oid* oids, size_t n, T pivot) {
  return internal::Partition2(data, oids, n,
                              [pivot](T v) { return v < pivot; });
}

/// Scalar reference: partitions so that values `<= pivot` come first.
template <typename T>
CrackSplit CrackInTwoLeScalar(T* data, Oid* oids, size_t n, T pivot) {
  return internal::Partition2(data, oids, n,
                              [pivot](T v) { return v <= pivot; });
}

/// Scalar reference: three-way partition (Dutch-national-flag) into
///   [ below | middle | above ]
/// where `middle` holds values v with
///   (lo_incl ? v >= lo : v > lo)  &&  (hi_incl ? v <= hi : v < hi).
/// Degenerate pivot pairs (empty middle) are allowed.
template <typename T>
Crack3Split CrackInThreeScalar(T* data, Oid* oids, size_t n, T lo,
                               bool lo_incl, T hi, bool hi_incl) {
  Crack3Split out;
  auto below = [lo, lo_incl](T v) { return lo_incl ? v < lo : v <= lo; };
  auto above = [hi, hi_incl](T v) { return hi_incl ? v > hi : v >= hi; };
  size_t lt = 0;   // next write position for `below`
  size_t gt = n;   // one past next write position for `above`
  size_t i = 0;
  while (i < gt) {
    if (below(data[i])) {
      if (i != lt) {
        internal::SwapWithPayload(data, oids, i, lt);
        out.writes += 2;
      }
      ++lt;
      ++i;
    } else if (above(data[i])) {
      --gt;
      internal::SwapWithPayload(data, oids, i, gt);
      out.writes += 2;
    } else {
      ++i;
    }
  }
  out.first = lt;
  out.second = gt;
  return out;
}

/// Partitions so that values `< pivot` come first. Returns the index of the
/// first element `>= pivot`. Dispatches to the active SIMD tier.
template <typename T>
CrackSplit CrackInTwoLt(T* data, Oid* oids, size_t n, T pivot) {
  if constexpr (internal::kHasSimdKernels<T>) {
    const SimdTier tier = ActiveSimdTier();
    obs::RecordSimdCall(static_cast<int>(tier));
    return CrackInTwoLtTier(data, oids, n, pivot, tier);
  } else {
    obs::RecordSimdCall(static_cast<int>(SimdTier::kScalar));
    return CrackInTwoLtScalar(data, oids, n, pivot);
  }
}

/// Partitions so that values `<= pivot` come first. Returns the index of the
/// first element `> pivot`. Dispatches to the active SIMD tier.
template <typename T>
CrackSplit CrackInTwoLe(T* data, Oid* oids, size_t n, T pivot) {
  if constexpr (internal::kHasSimdKernels<T>) {
    const SimdTier tier = ActiveSimdTier();
    obs::RecordSimdCall(static_cast<int>(tier));
    return CrackInTwoLeTier(data, oids, n, pivot, tier);
  } else {
    obs::RecordSimdCall(static_cast<int>(SimdTier::kScalar));
    return CrackInTwoLeScalar(data, oids, n, pivot);
  }
}

/// Three-way partition into [ below | middle | above ]; see
/// CrackInThreeScalar for the predicate semantics. Dispatches to the active
/// SIMD tier.
template <typename T>
Crack3Split CrackInThree(T* data, Oid* oids, size_t n, T lo, bool lo_incl,
                         T hi, bool hi_incl) {
  if constexpr (internal::kHasSimdKernels<T>) {
    const SimdTier tier = ActiveSimdTier();
    obs::RecordSimdCall(static_cast<int>(tier));
    return CrackInThreeTier(data, oids, n, lo, lo_incl, hi, hi_incl, tier);
  } else {
    obs::RecordSimdCall(static_cast<int>(SimdTier::kScalar));
    return CrackInThreeScalar(data, oids, n, lo, lo_incl, hi, hi_incl);
  }
}

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_CRACK_KERNELS_H_
