// Copyright 2026 The CrackStore Authors
//
// Crack kernels: the in-place partition primitives at the bottom of the
// Ξ (selection) cracker. They implement the "shuffle-exchange sort over all
// tuples to cluster them according to their tail value" of paper §3.4.2,
// restricted to one pivot (crack-in-two) or a pivot pair (crack-in-three).
//
// All kernels optionally permute a parallel oid array (the cracker map) in
// lockstep, and report the number of tuple writes they performed so the
// experiments can account cost in deterministic units.

#ifndef CRACKSTORE_CORE_CRACK_KERNELS_H_
#define CRACKSTORE_CORE_CRACK_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "storage/types.h"
#include "util/macros.h"

namespace crackstore {

/// Outcome of a two-way crack.
struct CrackSplit {
  size_t split = 0;      ///< first index of the right-hand partition
  uint64_t writes = 0;   ///< tuple writes performed (2 per swap)
};

/// Outcome of a three-way crack.
struct Crack3Split {
  size_t first = 0;      ///< first index of the middle partition
  size_t second = 0;     ///< first index of the upper partition
  uint64_t writes = 0;   ///< tuple writes performed
};

namespace internal {

template <typename T>
inline void SwapWithPayload(T* data, Oid* oids, size_t i, size_t j) {
  std::swap(data[i], data[j]);
  if (oids != nullptr) std::swap(oids[i], oids[j]);
}

/// Hoare-style partition: elements satisfying `goes_left` end up in
/// [0, split), the rest in [split, n).
template <typename T, typename GoesLeft>
CrackSplit Partition2(T* data, Oid* oids, size_t n, GoesLeft goes_left) {
  CrackSplit out;
  if (n == 0) return out;
  size_t lo = 0;
  size_t hi = n;
  while (true) {
    while (lo < hi && goes_left(data[lo])) ++lo;
    while (lo < hi && !goes_left(data[hi - 1])) --hi;
    if (lo >= hi) break;
    SwapWithPayload(data, oids, lo, hi - 1);
    out.writes += 2;
    ++lo;
    --hi;
  }
  out.split = lo;
  return out;
}

}  // namespace internal

/// Partitions so that values `< pivot` come first. Returns the index of the
/// first element `>= pivot`.
template <typename T>
CrackSplit CrackInTwoLt(T* data, Oid* oids, size_t n, T pivot) {
  return internal::Partition2(data, oids, n,
                              [pivot](T v) { return v < pivot; });
}

/// Partitions so that values `<= pivot` come first. Returns the index of the
/// first element `> pivot`.
template <typename T>
CrackSplit CrackInTwoLe(T* data, Oid* oids, size_t n, T pivot) {
  return internal::Partition2(data, oids, n,
                              [pivot](T v) { return v <= pivot; });
}

/// Three-way partition (Dutch-national-flag) into
///   [ below | middle | above ]
/// where `middle` holds values v with
///   (lo_incl ? v >= lo : v > lo)  &&  (hi_incl ? v <= hi : v < hi).
/// Degenerate pivot pairs (empty middle) are allowed.
template <typename T>
Crack3Split CrackInThree(T* data, Oid* oids, size_t n, T lo, bool lo_incl,
                         T hi, bool hi_incl) {
  Crack3Split out;
  auto below = [lo, lo_incl](T v) { return lo_incl ? v < lo : v <= lo; };
  auto above = [hi, hi_incl](T v) { return hi_incl ? v > hi : v >= hi; };
  size_t lt = 0;   // next write position for `below`
  size_t gt = n;   // one past next write position for `above`
  size_t i = 0;
  while (i < gt) {
    if (below(data[i])) {
      if (i != lt) {
        internal::SwapWithPayload(data, oids, i, lt);
        out.writes += 2;
      }
      ++lt;
      ++i;
    } else if (above(data[i])) {
      --gt;
      internal::SwapWithPayload(data, oids, i, gt);
      out.writes += 2;
    } else {
      ++i;
    }
  }
  out.first = lt;
  out.second = gt;
  return out;
}

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_CRACK_KERNELS_H_
