// Copyright 2026 The CrackStore Authors

#include "core/access_path.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <mutex>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/instruments.h"

#include "core/latch.h"
#include "core/sorted_column.h"
#include "core/task_pool.h"
#include "core/updatable_cracker_index.h"
#include "storage/dictionary.h"
#include "util/string_util.h"

namespace crackstore {

const char* AccessStrategyName(AccessStrategy strategy) {
  switch (strategy) {
    case AccessStrategy::kScan:
      return "scan";
    case AccessStrategy::kCrack:
      return "crack";
    case AccessStrategy::kSort:
      return "sort";
  }
  return "?";
}

Result<AccessSelection> ColumnAccessPath::SelectTyped(const TypedRange& range,
                                                      bool want_oids,
                                                      IoStats* stats,
                                                      const SnapshotView* view) {
  if (range.has_string()) {
    return Status::TypeMismatch(
        "string predicate on a numeric access path (string bounds need a "
        "string column)");
  }
  return Select(range.ToNumericBounds(), want_oids, stats, view);
}

namespace {

/// Clamps int64 range bounds into the typed domain of the column so that
/// sentinel bounds (INT64_MIN/MAX) work for narrower types. Floating-point
/// columns take the bounds verbatim (every int64 is representable, modulo
/// rounding at the extremes).
template <typename T>
void ClampRange(const RangeBounds& range, T* lo, bool* lo_incl, T* hi,
                bool* hi_incl) {
  if constexpr (std::is_floating_point_v<T>) {
    *lo = static_cast<T>(range.lo);
    *hi = static_cast<T>(range.hi);
    *lo_incl = range.lo_incl;
    *hi_incl = range.hi_incl;
  } else {
    int64_t tmin = static_cast<int64_t>(std::numeric_limits<T>::min());
    int64_t tmax = static_cast<int64_t>(std::numeric_limits<T>::max());
    int64_t lo64 = std::clamp(range.lo, tmin, tmax);
    int64_t hi64 = std::clamp(range.hi, tmin, tmax);
    *lo = static_cast<T>(lo64);
    *hi = static_cast<T>(hi64);
    // A bound clamped from *outside* the domain keeps its meaning via the
    // inclusivity: lo = INT64_MIN over int32 becomes lo = INT32_MIN inclusive
    // (everything passes that side), while lo > INT32_MAX becomes
    // lo = INT32_MAX exclusive (nothing can satisfy v >= lo). Mirrored for hi.
    *lo_incl = (lo64 != range.lo) ? (range.lo < tmin) : range.lo_incl;
    *hi_incl = (hi64 != range.hi) ? (range.hi > tmax) : range.hi_incl;
  }
}

/// Narrows a dynamically-typed DML value into the column's domain. Owners
/// coerce rows to the column types before the base mutation (CoerceRow), so
/// this is a defensive cast, not a validation point.
template <typename T>
T CastValue(const Value& v) {
  if constexpr (std::is_floating_point_v<T>) {
    return v.is_double() ? static_cast<T>(v.AsDouble())
                         : static_cast<T>(v.ToInt64());
  } else {
    int64_t wide = v.is_double() ? static_cast<int64_t>(v.AsDouble())
                                 : v.ToInt64();
    return static_cast<T>(
        std::clamp(wide, static_cast<int64_t>(std::numeric_limits<T>::min()),
                   static_cast<int64_t>(std::numeric_limits<T>::max())));
  }
}

template <typename T>
bool InRange(T v, T lo, bool lo_incl, T hi, bool hi_incl) {
  if (lo_incl ? v < lo : v <= lo) return false;
  if (hi_incl ? v > hi : v >= hi) return false;
  return true;
}

std::string ExplainPieces(const std::vector<PieceInfo>& pieces) {
  std::string out;
  size_t shown = 0;
  for (const PieceInfo& p : pieces) {
    if (++shown > 64) {
      out += StrFormat("  ... (%zu pieces)\n", pieces.size());
      break;
    }
    std::string lo = p.has_lo ? StrFormat("%s%lld", p.lo_strict ? ">" : ">=",
                                          static_cast<long long>(p.lo))
                              : "-inf";
    std::string hi = p.has_hi ? StrFormat("%s%lld", p.hi_strict ? "<" : "<=",
                                          static_cast<long long>(p.hi))
                              : "+inf";
    out += StrFormat("  piece [%zu, %zu) size=%zu  values %s .. %s\n",
                     p.begin, p.end, p.size(), lo.c_str(), hi.c_str());
  }
  return out;
}

/// Shared Delete() validation: inserts append to the base before notifying
/// the path, so the base size bounds every oid ever issued — one check for
/// all strategies, independent of build timing.
Status CheckDeletableOid(const Bat& column, Oid oid) {
  if (oid >= column.head_base() + column.size()) {
    return Status::NotFound(
        StrFormat("oid %llu was never inserted",
                  static_cast<unsigned long long>(oid)));
  }
  return Status::OK();
}

Status AlreadyDeletedError(Oid oid) {
  return Status::AlreadyExists(
      StrFormat("oid %llu already deleted",
                static_cast<unsigned long long>(oid)));
}

/// Owner-maintenance poll shared by the delta-carrying paths: do `dirty`
/// pending deltas against an accelerator of `accel_size` tuples warrant a
/// fold under `options`?
bool MaintenanceDue(const DeltaMergeOptions& options, size_t dirty,
                    size_t accel_size) {
  if (dirty == 0) return false;
  switch (options.policy) {
    case DeltaMergePolicy::kImmediate:
    case DeltaMergePolicy::kRippleOnSelect:
      return true;
    case DeltaMergePolicy::kThreshold:
      return dirty > static_cast<size_t>(options.threshold_fraction *
                                         static_cast<double>(accel_size));
  }
  return false;
}

/// The whole column as one undecorated piece.
std::vector<PieceInfo> WholeColumnPiece(size_t n) {
  PieceInfo piece;
  piece.begin = 0;
  piece.end = n;
  return {piece};
}

/// True when `view` can change an answer (hide rows or override values).
inline bool ViewActive(const SnapshotView* view) {
  return view != nullptr && view->active();
}

/// Re-admits a view's value overrides into an (already non-contiguous)
/// answer: rows whose value at the snapshot differs from the physical one
/// were excluded by the visibility filter; the ones whose snapshot value
/// qualifies join back here (vacuum-purged rows stay out via RowVisible).
/// Caller sorts the oid list afterwards.
template <typename T>
void ReadmitOverrides(const SnapshotView* view, T lo, bool lo_incl, T hi,
                      bool hi_incl, bool want_oids, AccessSelection* out) {
  if (!ViewActive(view)) return;
  for (const auto& [oid, value] : view->overrides()) {
    if (!view->RowVisible(oid)) continue;
    if (!InRange(CastValue<T>(value), lo, lo_incl, hi, hi_incl)) continue;
    ++out->count;
    if (want_oids) out->oids.push_back(oid);
    if (out->has_span_set) out->span_set.AddExtra(oid);
  }
}

/// Applies a path's pending write deltas — and the caller's MVCC read
/// filter — to a base answer: physically tombstoned and snapshot-invisible
/// rows drop out, qualifying pending inserts join in, and overridden rows
/// re-enter per their value at the snapshot. When the answer is touched at
/// all it degrades from a contiguous view to an (ascending) oid list — the
/// price of reading through an unmerged delta or an unvacuumed version.
template <typename T, typename IsDeletedFn>
void OverlayDeltaAnswer(const std::vector<std::pair<T, Oid>>& pending,
                        size_t num_tombstones, IsDeletedFn&& is_deleted, T lo,
                        bool lo_incl, T hi, bool hi_incl, bool want_oids,
                        const SnapshotView* view, IoStats* stats,
                        AccessSelection* out) {
  bool versioned = ViewActive(view);
  size_t delta_hits = 0;
  for (const auto& [value, oid] : pending) {
    delta_hits += InRange(value, lo, lo_incl, hi, hi_incl) ? 1 : 0;
  }
  if (stats != nullptr && !pending.empty()) {
    stats->tuples_read += pending.size();
  }
  if (num_tombstones == 0 && delta_hits == 0 && !versioned) {
    return;  // clean answer
  }

  auto hidden = [&](Oid oid) {
    if (num_tombstones > 0 && is_deleted(oid)) return true;
    return versioned && view->Hides(oid);
  };

  if (!out->contiguous && num_tombstones == 0 && !versioned) {
    // Oid-list base answer with nothing to subtract: the base count stands
    // even when the caller skipped the oid gather (count-only coarse
    // selects); just add the qualifying pending inserts.
    out->count += delta_hits;
    if (want_oids) {
      for (const auto& [value, oid] : pending) {
        if (InRange(value, lo, lo_incl, hi, hi_incl)) out->oids.push_back(oid);
      }
      std::sort(out->oids.begin(), out->oids.end());
    }
    return;
  }

  uint64_t count = 0;
  std::vector<Oid> oids;
  if (want_oids) oids.reserve(static_cast<size_t>(out->count) + delta_hits);
  if (out->contiguous) {
    // Contiguous crack answers filter through a batch visibility bitmap:
    // one version-log latch acquisition for the whole span instead of a
    // per-row Hides() probe.
    size_t span = out->view.oids.size();
    const Oid* oid_ptr = out->view.oids.template data<Oid>();
    std::vector<uint64_t> vis;
    if (versioned) {
      vis.resize(BitmapWords(span));
      view->VisibleMask(oid_ptr, span, vis.data());
    }
    for (size_t i = 0; i < span; ++i) {
      Oid oid = oid_ptr[i];
      bool drop = (num_tombstones > 0 && is_deleted(oid)) ||
                  (versioned && !BitmapTest(vis.data(), i));
      if (drop) {
        // The span survives the delta: a dropped row becomes an exception
        // bit instead of forcing the whole answer into an oid list.
        if (out->has_span_set) out->span_set.MarkException(i);
        continue;
      }
      ++count;
      if (want_oids) oids.push_back(oid);
    }
    if (stats != nullptr) stats->tuples_read += span;
  } else {
    for (Oid oid : out->oids) {
      if (hidden(oid)) continue;
      ++count;
      if (want_oids) oids.push_back(oid);
    }
  }
  for (const auto& [value, oid] : pending) {
    if (!InRange(value, lo, lo_incl, hi, hi_incl)) continue;
    // Only the snapshot filter applies here: an updated row is tombstoned
    // at its old position AND pending at its new value — the tombstone
    // must not cancel the pending re-entry.
    if (versioned && view->Hides(oid)) continue;
    ++count;
    if (want_oids) oids.push_back(oid);
    if (out->has_span_set) out->span_set.AddExtra(oid);
  }
  out->contiguous = false;
  out->view = CrackSelection{};
  out->count = count;
  out->oids = std::move(oids);
  ReadmitOverrides<T>(view, lo, lo_incl, hi, hi_incl, want_oids, out);
  if (want_oids) std::sort(out->oids.begin(), out->oids.end());
}

/// Reduces the value span [vals, vals + n) with the optional visibility /
/// tombstone filters: the unmasked kernel runs when nothing can hide a row,
/// otherwise one batch visibility mask (a single version-log latch for the
/// whole span) with tombstones cleared bit-wise feeds the masked kernel.
template <typename T, typename IsDeletedFn>
SpanAggregates ReduceSpan(const T* vals, const Oid* oid_data, size_t n,
                          size_t num_tombstones, IsDeletedFn&& is_deleted,
                          const SnapshotView* view) {
  bool versioned = ViewActive(view);
  if (!versioned && num_tombstones == 0) return AggregateSpan(vals, n);
  std::vector<uint64_t> bm(BitmapWords(n));
  if (versioned) {
    view->VisibleMask(oid_data, n, bm.data());
  } else {
    BitmapFill(bm.data(), n);
  }
  if (num_tombstones > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (BitmapTest(bm.data(), i) && is_deleted(oid_data[i])) {
        BitmapClearBit(bm.data(), i);
      }
    }
  }
  return AggregateSpanMasked(vals, n, bm.data());
}

/// Folds a span-kernel result plus the scalar corrections — qualifying
/// pending inserts and snapshot override re-admissions — into the
/// int64-widened aggregate answer. The corrections are purely additive:
/// VisibleMask already excluded every overridden and hidden row from the
/// span reduction, which is what makes MIN/MAX pushable at all.
template <typename T>
void FoldAggregates(const SpanAggregates& agg, size_t span_n,
                    const std::vector<std::pair<T, Oid>>& pending, T lo,
                    bool lo_incl, T hi, bool hi_incl, const SnapshotView* view,
                    IoStats* stats, ColumnAggregates* out) {
  bool versioned = ViewActive(view);
  out->pushdown_rows = span_n;
  out->rows = agg.count;
  // Wrapping uint64 matches both the kernel contract and the executor's
  // scalar int64 accumulator (two's complement).
  uint64_t sum = static_cast<uint64_t>(agg.sum_i);
  bool have = agg.count > 0;
  int64_t mn = have ? agg.min_i : 0;
  int64_t mx = have ? agg.max_i : 0;
  auto fold = [&](int64_t v) {
    sum += static_cast<uint64_t>(v);
    ++out->rows;
    if (!have || v < mn) mn = v;
    if (!have || v > mx) mx = v;
    have = true;
  };
  for (const auto& [value, oid] : pending) {
    if (!InRange(value, lo, lo_incl, hi, hi_incl)) continue;
    // Snapshot filter only: an updated row is tombstoned at its old
    // position AND pending at its new value.
    if (versioned && view->Hides(oid)) continue;
    fold(static_cast<int64_t>(value));
  }
  if (versioned) {
    for (const auto& [oid, value] : view->overrides()) {
      if (!view->RowVisible(oid)) continue;
      T tv = CastValue<T>(value);
      if (!InRange(tv, lo, lo_incl, hi, hi_incl)) continue;
      fold(static_cast<int64_t>(tv));
    }
  }
  out->sum = static_cast<int64_t>(sum);
  out->has_minmax = have;
  out->min = mn;
  out->max = mx;
  if (stats != nullptr) stats->tuples_read += span_n + pending.size();
}

/// Shared empty-range probe for the aggregate entry points.
template <typename T>
bool EmptyRange(T lo, bool lo_incl, T hi, bool hi_incl) {
  return lo > hi || (lo == hi && !(lo_incl && hi_incl));
}

// --- crack ----------------------------------------------------------------

template <typename T>
class CrackAccessPath : public ColumnAccessPath {
 public:
  CrackAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config), engine_(config.policy) {}

  AccessStrategy strategy() const override { return AccessStrategy::kCrack; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  PathConcurrency concurrency() const override {
    // Cracking parallelizes across pieces: every shuffle is covered by a
    // range lock, and all three policies can steer under the shared latch —
    // standard cuts at the query bounds, stochastic draws auxiliary pivots
    // through the concurrent primitives (PieceSpanForConcurrent + a cell
    // lock on the drawn slot), and coarse filters fuzzy edges under the
    // shared span lock. Only merge budgets still need the exclusive latch:
    // they rewrite the boundary map on every select.
    return config_.merge_budget.unlimited() ? PathConcurrency::kSharedReads
                                            : PathConcurrency::kExclusiveOnly;
  }

  bool SharedSelectReady() const override {
    return built_.load(std::memory_order_acquire);
  }

  bool WantsMaintenance() const override {
    if (!config_.concurrent || !built_.load(std::memory_order_acquire)) {
      return false;
    }
    return MaintenanceDue(config_.delta_merge,
                          dirty_count_.load(std::memory_order_relaxed),
                          accel_size_.load(std::memory_order_relaxed));
  }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats,
                         const SnapshotView* view = nullptr) override {
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);

    AccessSelection out;
    // Provably-empty range: answer before paying the O(n) index build
    // (nothing — not even an override — can satisfy an empty range).
    if (lo > hi || (lo == hi && !(lo_incl && hi_incl))) return out;

    // kAuto: one detector sample per query — the clamped range midpoint
    // (averaged in halves so extreme integer bounds cannot overflow).
    if (engine_.policy() == CrackPolicy::kAuto) {
      const double mid =
          0.5 * static_cast<double>(lo) + 0.5 * static_cast<double>(hi);
      if (config_.concurrent) {
        std::lock_guard<std::mutex> lk(engine_mu_);
        engine_.Observe(mid);
      } else {
        engine_.Observe(mid);
      }
    }

    if (config_.concurrent &&
        concurrency() == PathConcurrency::kSharedReads &&
        built_.load(std::memory_order_acquire)) {
      return SelectShared(lo, lo_incl, hi, hi_incl, want_oids, stats, view);
    }

    EnsureBuilt(stats);
    // Concurrent mode defers delta folds to the owner's maintenance hook
    // (exclusive latch); a raced-in delta is overlaid below instead.
    if (!config_.concurrent) MaybeMergeOnSelect(stats);
    CrackerIndex<T>* inner = updatable_->mutable_index();
    // Tombstones (and snapshot filters) force the coarse path to gather
    // oids: an answer spanning uncracked edges cannot subtract hidden rows
    // without naming them.
    bool gather = want_oids || updatable_->pending_deletes() > 0 ||
                  ViewActive(view);
    out.contiguous = true;
    switch (engine_.effective()) {
      case CrackPolicy::kStandard:
      case CrackPolicy::kAuto:  // effective() never reports kAuto; defensive
        out.view = inner->Select(lo, lo_incl, hi, hi_incl, stats);
        out.count = out.view.count();
        break;
      case CrackPolicy::kStochastic:
        // DDC: shrink the pieces the bounds land in with random pivots
        // first, so progress is made even when the bounds themselves follow
        // a pathological (e.g. sequential) pattern.
        StochasticShrink(lo, /*want_incl=*/!lo_incl, stats);
        StochasticShrink(hi, /*want_incl=*/hi_incl, stats);
        out.view = inner->Select(lo, lo_incl, hi, hi_incl, stats);
        out.count = out.view.count();
        break;
      case CrackPolicy::kCoarse:
        CoarseSelect(lo, lo_incl, hi, hi_incl, gather, stats, &out);
        break;
      case CrackPolicy::kProgressive:
        ProgressiveSelect(lo, lo_incl, hi, hi_incl, gather, stats, &out);
        break;
    }
    // Zero-materialization answer: a contiguous piece of the cracked column
    // is one span over its permuted oid map. The overlay below keeps the
    // span and degrades deltas into exception bits / extras instead of
    // forcing an oid-list materialization. Serial statements only — shared
    // readers go through SelectShared, whose spans would not survive the
    // range locks dropping.
    if (out.contiguous && out.view.oids.bat() != nullptr) {
      out.span_set.BindOidMap(out.view.oids.bat());
      out.span_set.AddSpan(out.view.oids.offset(),
                           out.view.oids.offset() + out.view.oids.size());
      out.has_span_set = true;
    }
    OverlayDeltaAnswer<T>(
        updatable_->pending(), updatable_->pending_deletes(),
        [this](Oid oid) { return updatable_->IsDeleted(oid); }, lo, lo_incl,
        hi, hi_incl, want_oids, view, stats, &out);

    if (!config_.merge_budget.unlimited()) {
      out.bounds_dropped =
          EnforceMergeBudget(inner, config_.merge_budget, stats);
    }
    return out;
  }

  Result<ColumnAggregates> AggregateRange(
      const RangeBounds& range, IoStats* stats,
      const SnapshotView* view = nullptr) override {
    if constexpr (std::is_floating_point_v<T>) {
      (void)range;
      (void)stats;
      (void)view;
      return Status::Unimplemented(
          "aggregate pushdown: non-integer column domain");
    } else {
      T lo, hi;
      bool lo_incl, hi_incl;
      ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
      ColumnAggregates out;
      if (EmptyRange(lo, lo_incl, hi, hi_incl)) return out;
      // The aggregate is still a query, so it still advises the detector.
      if (engine_.policy() == CrackPolicy::kAuto) {
        const double mid =
            0.5 * static_cast<double>(lo) + 0.5 * static_cast<double>(hi);
        if (config_.concurrent) {
          std::lock_guard<std::mutex> lk(engine_mu_);
          engine_.Observe(mid);
        } else {
          engine_.Observe(mid);
        }
      }
      if (config_.concurrent &&
          concurrency() == PathConcurrency::kSharedReads &&
          built_.load(std::memory_order_acquire)) {
        return AggregateShared(lo, lo_incl, hi, hi_incl, stats, view);
      }
      if (engine_.effective() == CrackPolicy::kProgressive) {
        // A budgeted crack may leave open frontiers; cutting exactly here
        // would blow the write budget the policy promises to honor.
        return Status::Unimplemented(
            "aggregate pushdown: progressive cracks stay budgeted");
      }
      EnsureBuilt(stats);
      if (!config_.concurrent) MaybeMergeOnSelect(stats);
      CrackerIndex<T>* inner = updatable_->mutable_index();
      if (engine_.effective() == CrackPolicy::kStochastic) {
        StochasticShrink(lo, /*want_incl=*/!lo_incl, stats);
        StochasticShrink(hi, /*want_incl=*/hi_incl, stats);
      }
      // Every remaining policy cuts exactly at the bounds: a pushed-down
      // reduction needs value-exact spans and has no per-row loop left to
      // trim fuzzy edges in. kCoarse therefore cracks finer here than its
      // select threshold would — a documented deviation.
      CrackSelection sel = inner->Select(lo, lo_incl, hi, hi_incl, stats);
      AccumulateSpan(inner, sel.values.offset(), sel.values.size(), lo,
                     lo_incl, hi, hi_incl, view, stats, &out);
      if (!config_.merge_budget.unlimited()) {
        (void)EnforceMergeBudget(inner, config_.merge_budget, stats);
      }
      return out;
    }
  }

  Status Insert(const Value& value, Oid oid, IoStats* stats) override {
    if (updatable_ == nullptr) return Status::OK();  // lazy build reads base
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      CRACK_RETURN_NOT_OK(updatable_->Insert(CastValue<T>(value), oid));
      SyncDirty();
    }
    if (stats != nullptr) ++stats->tuples_written;
    return MaybeMergeOnWrite(stats);
  }

  Status Delete(Oid oid, IoStats* stats) override {
    if (updatable_ == nullptr) {
      // Mirror the built path's validation so the answer does not depend on
      // build timing (and so EnsureBuilt's replay cannot fail).
      CRACK_RETURN_NOT_OK(CheckDeletableOid(*column_, oid));
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      if (!pre_build_deletes_.insert(oid).second) {
        return AlreadyDeletedError(oid);
      }
      return Status::OK();
    }
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      CRACK_RETURN_NOT_OK(updatable_->Delete(oid));
      SyncDirty();
    }
    return MaybeMergeOnWrite(stats);
  }

  Status Update(Oid oid, const Value& value, IoStats* stats) override {
    if (updatable_ == nullptr) return Status::OK();  // base slot overwritten
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      CRACK_RETURN_NOT_OK(updatable_->Update(CastValue<T>(value), oid));
      SyncDirty();
    }
    if (stats != nullptr) ++stats->tuples_written;
    return MaybeMergeOnWrite(stats);
  }

  Status FlushDeltas(IoStats* stats) override {
    if (updatable_ == nullptr && pre_build_deletes_.empty()) {
      return Status::OK();
    }
    EnsureBuilt(stats);
    Status st = updatable_->Merge(stats);
    SyncDirty();
    return st;
  }

  size_t pending_inserts() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return updatable_ == nullptr ? 0 : updatable_->pending_inserts();
  }
  size_t pending_deletes() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return updatable_ == nullptr ? pre_build_deletes_.size()
                                 : updatable_->pending_deletes();
  }
  size_t merges_performed() const override {
    return updatable_ == nullptr ? 0 : updatable_->merges_performed();
  }

  size_t accel_tuples() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return updatable_ == nullptr ? 0 : updatable_->index().size();
  }

  std::vector<PieceInfo> Pieces() const override {
    if (updatable_ == nullptr) return WholeColumnPiece(column_->size());
    std::vector<PieceInfo> out;
    for (const CrackPiece<T>& p : updatable_->index().Pieces()) {
      PieceInfo info;
      info.begin = p.begin;
      info.end = p.end;
      info.has_lo = p.has_lo;
      info.lo = static_cast<int64_t>(p.lo);
      info.lo_strict = p.lo_strict;
      info.has_hi = p.has_hi;
      info.hi = static_cast<int64_t>(p.hi);
      info.hi_strict = p.hi_strict;
      out.push_back(info);
    }
    return out;
  }

  size_t NumPieces() const override {
    return updatable_ == nullptr ? 1 : updatable_->num_pieces();
  }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    EnsureBuilt(stats);
    T pivot;
    if constexpr (std::is_floating_point_v<T>) {
      pivot = static_cast<T>(choice.value);
    } else {
      pivot = static_cast<T>(std::clamp(
          choice.value,
          static_cast<int64_t>(std::numeric_limits<T>::min()),
          static_cast<int64_t>(std::numeric_limits<T>::max())));
    }
    updatable_->mutable_index()->ForceCut(
        pivot, /*want_incl=*/choice.after_duplicates, stats);
    return Status::OK();
  }

  std::string Explain() const override {
    std::string out = StrFormat(
        "access path: crack, policy=%s, delta-merge=%s\n",
        CrackPolicyName(engine_.policy()),
        DeltaMergePolicyName(config_.delta_merge.policy));
    if (engine_.policy() == CrackPolicy::kAuto) {
      out += StrFormat(
          "auto: effective=%s, pattern=%s, switches=%llu, samples=%llu\n",
          CrackPolicyName(engine_.effective()),
          WorkloadPatternName(engine_.pattern()),
          static_cast<unsigned long long>(engine_.switches()),
          static_cast<unsigned long long>(engine_.observed_samples()));
    }
    if (engine_.effective() == CrackPolicy::kProgressive) {
      out += StrFormat("progressive: budget=%.3f, pending rows=%zu\n",
                       engine_.options().progressive_budget,
                       PolicyStatus().progressive_pending);
    }
    if (updatable_ == nullptr) {
      if (!pre_build_deletes_.empty()) {
        out += StrFormat("deltas: %zu tombstones buffered pre-build\n",
                         pre_build_deletes_.size());
      }
      return out + "no accelerator yet (never queried)\n";
    }
    const CrackerIndex<T>& inner = updatable_->index();
    out += StrFormat("cracker index: %zu tuples, %zu pieces, %zu boundaries\n",
                     inner.size(), inner.num_pieces(), inner.num_bounds());
    out += StrFormat("deltas: %zu pending inserts, %zu tombstones, "
                     "%zu merges\n",
                     updatable_->pending_inserts(),
                     updatable_->pending_deletes(),
                     updatable_->merges_performed());
    return out + ExplainPieces(Pieces());
  }

  PathPolicyStatus PolicyStatus() const override {
    PathPolicyStatus status;
    status.configured = engine_.policy();
    status.effective = engine_.effective();
    status.pattern = engine_.pattern();
    status.switches = engine_.switches();
    status.samples = engine_.observed_samples();
    status.progressive_budget = engine_.options().progressive_budget;
    status.crack = true;
    const bool ready = config_.concurrent
                           ? built_.load(std::memory_order_acquire)
                           : updatable_ != nullptr;
    if (ready) {
      status.progressive_pending = updatable_->index().progressive_pending();
    }
    return status;
  }

  Status SetPolicyOptions(const CrackPolicyOptions& options) override {
    // Concurrent mode: the owner holds the exclusive column latch, so no
    // select is mid-flight through the engine while it re-arms.
    config_.policy = options;
    engine_.Reset(options);
    return Status::OK();
  }

 private:
  void EnsureBuilt(IoStats* stats) {
    if (updatable_ != nullptr) return;
    UpdatableCrackerIndexOptions opts;
    // The path drives merges per its DeltaMergePolicy; the index's own
    // select-time auto-merge only backs the threshold discipline.
    opts.auto_merge_fraction =
        config_.delta_merge.policy == DeltaMergePolicy::kThreshold
            ? config_.delta_merge.threshold_fraction
            : 0.0;
    updatable_ =
        std::make_unique<UpdatableCrackerIndex<T>>(column_, stats, opts);
    for (Oid oid : pre_build_deletes_) {
      Status st = updatable_->Delete(oid);
      CRACK_DCHECK(st.ok());
      (void)st;
    }
    pre_build_deletes_.clear();
    if (config_.delta_merge.policy == DeltaMergePolicy::kImmediate &&
        updatable_->pending_deletes() > 0) {
      (void)updatable_->Merge(stats);
    }
    SyncDirty();
    // Publish readiness last: shared-mode readers may dereference
    // updatable_ as soon as they observe built_.
    built_.store(true, std::memory_order_release);
  }

  /// Mirrors the delta/accelerator sizes into the latch-free counters the
  /// owner's maintenance poll reads. Callers hold the delta latch or the
  /// exclusive column latch; a no-op in serial mode.
  void SyncDirty() {
    if (!config_.concurrent || updatable_ == nullptr) return;
    dirty_count_.store(
        updatable_->pending_inserts() + updatable_->pending_deletes(),
        std::memory_order_relaxed);
    accel_size_.store(updatable_->index().size(), std::memory_order_relaxed);
  }

  /// Shared-latch selection for the standard policy: concurrent cuts under
  /// piece-granular range locks, answer materialized (never a view — the
  /// data behind a view may be shuffled by a neighbor the moment the span
  /// lock drops).
  AccessSelection SelectShared(T lo, bool lo_incl, T hi, bool hi_incl,
                               bool want_oids, IoStats* stats,
                               const SnapshotView* view) {
    AccessSelection out;
    out.contiguous = false;
    bool versioned = ViewActive(view);
    // Pin the policy once: under kAuto a detector switch may land
    // mid-select, and the two bounds must run the same discipline.
    const CrackPolicy eff = engine_.effective();
    // Stable under the shared latch: swapping the index needs the
    // exclusive latch (Merge/FlushDeltas).
    CrackerIndex<T>* inner = updatable_->mutable_index();
    if (eff == CrackPolicy::kStochastic) {
      // DDC under the shared latch: shrink the enclosing pieces with random
      // pivots before cutting at the bounds, same as the serial path.
      StochasticShrinkConcurrent(lo, /*want_incl=*/!lo_incl, stats);
      StochasticShrinkConcurrent(hi, /*want_incl=*/hi_incl, stats);
    }
    size_t cut_lo = 0;
    size_t cut_hi = 0;
    // Probe first: in steady state both cuts are registered and the select
    // must not pay batch scheduling for two map lookups.
    bool lo_exact = inner->FindCutConcurrent(lo, !lo_incl, &cut_lo);
    bool hi_exact = inner->FindCutConcurrent(hi, hi_incl, &cut_hi);
    bool crack_lo = !lo_exact;
    bool crack_hi = !hi_exact;
    if (eff == CrackPolicy::kProgressive && (crack_lo || crack_hi)) {
      // Budgeted cuts under the shared latch: each bound advances its
      // piece's carried frontier by at most the shared per-query pool. A
      // non-exact frontier stands in as a conservative span edge and the
      // value filter below trims it (the !exact path), exactly like a
      // coarse fuzzy edge.
      std::pair<size_t, size_t> span_lo =
          crack_lo ? inner->PieceSpanForConcurrent(lo)
                   : std::make_pair<size_t, size_t>(0, 0);
      std::pair<size_t, size_t> span_hi =
          crack_hi ? inner->PieceSpanForConcurrent(hi)
                   : std::make_pair<size_t, size_t>(0, 0);
      size_t pool = ProgressivePool(span_lo.second - span_lo.first,
                                    span_hi.second - span_hi.first);
      if (crack_lo) {
        IoStats local;
        ProgressiveCut cut =
            inner->CutProgressiveConcurrent(lo, !lo_incl, pool, &local);
        pool -= std::min(pool, static_cast<size_t>(local.kernel_writes));
        if (stats != nullptr) *stats += local;
        cut_lo = cut.lo;  // conservative: include the open frontier
        lo_exact = cut.exact;
      }
      if (crack_hi) {
        IoStats local;
        ProgressiveCut cut =
            inner->CutProgressiveConcurrent(hi, hi_incl, pool, &local);
        if (stats != nullptr) *stats += local;
        cut_hi = cut.exact ? cut.lo : cut.hi;
        hi_exact = cut.exact;
      }
      crack_lo = crack_hi = false;
    }
    if (eff == CrackPolicy::kCoarse) {
      // DD1C: bounds inside pieces at or below the threshold stay uncracked;
      // the conservative piece edge stands in and the span is filtered by
      // value below. The edge is a registered cut (or 0/n), so it never
      // moves even if a neighbor subdivides the piece meanwhile.
      if (crack_lo) {
        std::pair<size_t, size_t> span = inner->PieceSpanForConcurrent(lo);
        if (!engine_.ShouldCrack(span.second - span.first)) {
          cut_lo = span.first;
          crack_lo = false;
        }
      }
      if (crack_hi) {
        std::pair<size_t, size_t> span = inner->PieceSpanForConcurrent(hi);
        if (!engine_.ShouldCrack(span.second - span.first)) {
          cut_hi = span.second;
          crack_hi = false;
        }
      }
    }
    TaskPool* pool = TaskPool::Global();
    if (crack_lo && crack_hi && pool->num_threads() > 1) {
      // Fan the two crack kernels out across pieces: once the column holds
      // more than one piece the bounds usually land in different pieces,
      // whose shuffles the range locks let proceed concurrently.
      IoStats lo_stats, hi_stats;
      std::vector<std::function<void()>> cuts;
      cuts.emplace_back(
          [&] { cut_lo = inner->CutConcurrent(lo, !lo_incl, &lo_stats); });
      cuts.emplace_back(
          [&] { cut_hi = inner->CutConcurrent(hi, hi_incl, &hi_stats); });
      pool->RunBatch(std::move(cuts));
      if (stats != nullptr) {
        *stats += lo_stats;
        *stats += hi_stats;
      }
      lo_exact = hi_exact = true;
    } else {
      if (crack_lo) {
        cut_lo = inner->CutConcurrent(lo, /*want_incl=*/!lo_incl, stats);
        lo_exact = true;
      }
      if (crack_hi) {
        cut_hi = inner->CutConcurrent(hi, /*want_incl=*/hi_incl, stats);
        hi_exact = true;
      }
    }
    if (cut_hi < cut_lo) cut_hi = cut_lo;
    // Coarse fuzzy edges widen the span past the answer by at most two
    // small pieces; a value filter under the span lock trims them.
    bool exact = lo_exact && hi_exact;

    // Hold the answer span still (no concurrent shuffle inside it) and the
    // delta latch (stable pending list / tombstones) while forming the
    // answer. Cut positions themselves never move once registered.
    RangeLockGuard span = inner->LockRangeShared(cut_lo, cut_hi);
    std::lock_guard<std::mutex> dl(delta_mu_);
    size_t tombstones = updatable_->pending_deletes();
    if (exact && tombstones == 0 && !versioned && !want_oids) {
      out.count = cut_hi - cut_lo;  // positions alone answer the count
    } else {
      const Oid* oid_data = inner->oids()->template TailData<Oid>();
      size_t span_n = cut_hi - cut_lo;
      // Batch the predicate on fuzzy (coarse) edges and the snapshot
      // filter: one RangeMatchMask pass / one version-log latch for the
      // span instead of per-row probes.
      std::vector<uint64_t> match;
      if (!exact) {
        const T* val_data = inner->values()->template TailData<T>();
        match.resize(BitmapWords(span_n));
        RangeMatchMask<T>(val_data + cut_lo, span_n, /*has_lo=*/true, lo,
                          lo_incl, /*has_hi=*/true, hi, hi_incl,
                          match.data());
      }
      std::vector<uint64_t> vis;
      if (versioned) {
        vis.resize(BitmapWords(span_n));
        view->VisibleMask(oid_data + cut_lo, span_n, vis.data());
      }
      if (want_oids) out.oids.reserve(span_n);
      for (size_t i = 0; i < span_n; ++i) {
        Oid oid = oid_data[cut_lo + i];
        if (!exact && !BitmapTest(match.data(), i)) continue;
        if (tombstones > 0 && updatable_->IsDeleted(oid)) continue;
        if (versioned && !BitmapTest(vis.data(), i)) continue;
        ++out.count;
        if (want_oids) out.oids.push_back(oid);
      }
      if (stats != nullptr) stats->tuples_read += span_n;
    }
    for (const auto& [value, oid] : updatable_->pending()) {
      if (!InRange(value, lo, lo_incl, hi, hi_incl)) continue;
      // Snapshot filter only: an updated row is tombstoned at its old
      // position and pending at its new value.
      if (versioned && view->Hides(oid)) continue;
      ++out.count;
      if (want_oids) out.oids.push_back(oid);
    }
    if (stats != nullptr && !updatable_->pending().empty()) {
      stats->tuples_read += updatable_->pending().size();
    }
    ReadmitOverrides<T>(view, lo, lo_incl, hi, hi_incl, want_oids, &out);
    if (want_oids) std::sort(out.oids.begin(), out.oids.end());
    return out;
  }

  /// Reduces the value-exact cracked span [pos, pos + n) plus the delta and
  /// override corrections into `out`. Shared-latch callers hold the range
  /// lock over the span and the delta latch; serial callers need neither.
  void AccumulateSpan(CrackerIndex<T>* inner, size_t pos, size_t n, T lo,
                      bool lo_incl, T hi, bool hi_incl,
                      const SnapshotView* view, IoStats* stats,
                      ColumnAggregates* out) {
    const T* vals = inner->values()->template TailData<T>() + pos;
    const Oid* oid_data = inner->oids()->template TailData<Oid>() + pos;
    SpanAggregates agg = ReduceSpan<T>(
        vals, oid_data, n, updatable_->pending_deletes(),
        [this](Oid oid) { return updatable_->IsDeleted(oid); }, view);
    FoldAggregates<T>(agg, n, updatable_->pending(), lo, lo_incl, hi,
                      hi_incl, view, stats, out);
  }

  /// Shared-latch aggregate pushdown: concurrent value-exact cuts, then the
  /// span reduction under the range lock (span held still) and the delta
  /// latch (stable pending list / tombstones).
  Result<ColumnAggregates> AggregateShared(T lo, bool lo_incl, T hi,
                                           bool hi_incl, IoStats* stats,
                                           const SnapshotView* view) {
    const CrackPolicy eff = engine_.effective();
    if (eff == CrackPolicy::kCoarse || eff == CrackPolicy::kProgressive) {
      // Both answer with fuzzy spans under the shared latch; forcing exact
      // cuts here would crack below the coarse threshold or blow the
      // progressive budget. Callers fall back to the materialized loop.
      return Status::Unimplemented(
          "aggregate pushdown: concurrent coarse/progressive pieces");
    }
    CrackerIndex<T>* inner = updatable_->mutable_index();
    if (eff == CrackPolicy::kStochastic) {
      StochasticShrinkConcurrent(lo, /*want_incl=*/!lo_incl, stats);
      StochasticShrinkConcurrent(hi, /*want_incl=*/hi_incl, stats);
    }
    size_t cut_lo = 0;
    size_t cut_hi = 0;
    if (!inner->FindCutConcurrent(lo, !lo_incl, &cut_lo)) {
      cut_lo = inner->CutConcurrent(lo, /*want_incl=*/!lo_incl, stats);
    }
    if (!inner->FindCutConcurrent(hi, hi_incl, &cut_hi)) {
      cut_hi = inner->CutConcurrent(hi, /*want_incl=*/hi_incl, stats);
    }
    if (cut_hi < cut_lo) cut_hi = cut_lo;
    ColumnAggregates out;
    RangeLockGuard span = inner->LockRangeShared(cut_lo, cut_hi);
    std::lock_guard<std::mutex> dl(delta_mu_);
    AccumulateSpan(inner, cut_lo, cut_hi - cut_lo, lo, lo_incl, hi, hi_incl,
                   view, stats, &out);
    return out;
  }

  Status MaybeMergeOnWrite(IoStats* stats) {
    // Concurrent mode: merges swap the accelerator, which needs the
    // exclusive latch; DML runs under the shared one. The owner polls
    // WantsMaintenance() and flushes under the exclusive latch instead.
    if (config_.concurrent) return Status::OK();
    switch (config_.delta_merge.policy) {
      case DeltaMergePolicy::kImmediate:
        return updatable_->Merge(stats);
      case DeltaMergePolicy::kThreshold:
        if (updatable_->ShouldAutoMerge()) return updatable_->Merge(stats);
        return Status::OK();
      case DeltaMergePolicy::kRippleOnSelect:
        return Status::OK();  // the next selection folds the delta
    }
    return Status::OK();
  }

  void MaybeMergeOnSelect(IoStats* stats) {
    bool dirty =
        updatable_->pending_inserts() + updatable_->pending_deletes() > 0;
    switch (config_.delta_merge.policy) {
      case DeltaMergePolicy::kImmediate:
        break;  // writes already merged
      case DeltaMergePolicy::kThreshold:
        if (updatable_->ShouldAutoMerge()) {
          (void)updatable_->Merge(stats);
        }
        break;
      case DeltaMergePolicy::kRippleOnSelect:
        if (dirty) (void)updatable_->Merge(stats);
        break;
    }
  }

  /// Cracks the piece enclosing `v` at randomly drawn elements until it is
  /// at or below the policy threshold (or no pivot makes progress, e.g. all
  /// duplicates). Skipped when the cut for `v` is already registered.
  void StochasticShrink(T v, bool want_incl, IoStats* stats) {
    CrackerIndex<T>* inner = updatable_->mutable_index();
    size_t pos;
    if (inner->FindCut(v, want_incl, &pos)) return;
    std::pair<size_t, size_t> span = inner->PieceSpanFor(v);
    while (engine_.WantsAuxiliaryPivot(span.second - span.first)) {
      T pivot = inner->values()->template TailData<T>()[engine_.DrawSlot(
          span.first, span.second)];
      inner->ForceCut(pivot, /*want_incl=*/false, stats);
      std::pair<size_t, size_t> next = inner->PieceSpanFor(v);
      if (next == span) break;  // pivot was the piece minimum: no progress
      span = next;
    }
  }

  /// StochasticShrink through the concurrent primitives only (shared-latch
  /// mode). Races are benign: any element read under the cell lock is a
  /// valid pivot (shuffles only permute tuples within a piece), and a
  /// neighbor subdividing the same piece just leaves less auxiliary work
  /// for this thread — the span re-probe observes their cuts too.
  void StochasticShrinkConcurrent(T v, bool want_incl, IoStats* stats) {
    CrackerIndex<T>* inner = updatable_->mutable_index();
    size_t pos;
    if (inner->FindCutConcurrent(v, want_incl, &pos)) return;
    std::pair<size_t, size_t> span = inner->PieceSpanForConcurrent(v);
    while (engine_.WantsAuxiliaryPivot(span.second - span.first)) {
      size_t slot;
      {
        // The policy engine's pivot stream (Pcg32) is not thread-safe.
        std::lock_guard<std::mutex> lk(engine_mu_);
        slot = engine_.DrawSlot(span.first, span.second);
      }
      T pivot = inner->ValueAtConcurrent(slot);
      inner->CutConcurrent(pivot, /*want_incl=*/false, stats);
      std::pair<size_t, size_t> next = inner->PieceSpanForConcurrent(v);
      if (next == span) break;  // pivot was the piece minimum: no progress
      span = next;
    }
  }

  /// DD1C selection: bounds landing in pieces above the threshold crack as
  /// usual; bounds inside small pieces stay uncracked and the enclosing
  /// span is filtered instead.
  void CoarseSelect(T lo, bool lo_incl, T hi, bool hi_incl, bool want_oids,
                    IoStats* stats, AccessSelection* out) {
    CrackerIndex<T>* inner = updatable_->mutable_index();
    size_t cut_lo = 0;
    bool lo_exact = inner->FindCut(lo, /*want_incl=*/!lo_incl, &cut_lo);
    if (lo_exact) {
      inner->TouchBound(lo);  // keep LRU merge budgets honest
    } else {
      std::pair<size_t, size_t> span = inner->PieceSpanFor(lo);
      if (engine_.ShouldCrack(span.second - span.first)) {
        cut_lo = inner->ForceCut(lo, /*want_incl=*/!lo_incl, stats);
        lo_exact = true;
      } else {
        cut_lo = span.first;  // conservative: keep the whole piece
      }
    }
    size_t cut_hi = 0;
    bool hi_exact = inner->FindCut(hi, /*want_incl=*/hi_incl, &cut_hi);
    if (hi_exact) {
      inner->TouchBound(hi);
    } else {
      std::pair<size_t, size_t> span = inner->PieceSpanFor(hi);
      if (engine_.ShouldCrack(span.second - span.first)) {
        cut_hi = inner->ForceCut(hi, /*want_incl=*/hi_incl, stats);
        hi_exact = true;
      } else {
        cut_hi = span.second;  // conservative: keep the whole piece
      }
    }
    if (cut_hi < cut_lo) cut_hi = cut_lo;  // empty result

    if (lo_exact && hi_exact) {
      out->view = CrackSelection{BatView(inner->values(), cut_lo,
                                         cut_hi - cut_lo),
                                 BatView(inner->oids(), cut_lo,
                                         cut_hi - cut_lo)};
      out->count = out->view.count();
      return;
    }

    // At least one fuzzy edge: filter the conservative span. Interior
    // tuples are known-qualifying, but one predicate pass over the span is
    // simpler and the span exceeds the answer by at most two small pieces.
    out->contiguous = false;
    const T* data = inner->values()->template TailData<T>();
    const Oid* oids = inner->oids()->template TailData<Oid>();
    for (size_t i = cut_lo; i < cut_hi; ++i) {
      if (InRange(data[i], lo, lo_incl, hi, hi_incl)) {
        ++out->count;
        if (want_oids) out->oids.push_back(oids[i]);
      }
    }
    if (want_oids) std::sort(out->oids.begin(), out->oids.end());
    if (stats != nullptr) {
      stats->tuples_read += cut_hi - cut_lo;
      if (want_oids) stats->tuples_written += out->count;
    }
  }

  /// The per-query progressive write pool: a budgeted fraction of the
  /// larger touched piece, floored so tiny pieces converge in one pass
  /// instead of crawling (the bench gate measures against budget × piece
  /// size on large columns, where the floor is immaterial).
  static constexpr size_t kMinProgressiveWrites = 256;
  size_t ProgressivePool(size_t span_lo, size_t span_hi) const {
    const double budget = engine_.options().progressive_budget;
    const size_t span = std::max(span_lo, span_hi);
    const size_t pool =
        static_cast<size_t>(budget * static_cast<double>(span));
    return std::max(pool, kMinProgressiveWrites);
  }

  /// Progressive selection (serial): both bounds advance their pieces'
  /// carried frontiers within one shared write pool; open frontiers answer
  /// conservatively via a value filter, mirroring the coarse fuzzy-edge
  /// shape.
  void ProgressiveSelect(T lo, bool lo_incl, T hi, bool hi_incl,
                         bool want_oids, IoStats* stats,
                         AccessSelection* out) {
    CrackerIndex<T>* inner = updatable_->mutable_index();
    std::pair<size_t, size_t> span_lo = inner->PieceSpanFor(lo);
    std::pair<size_t, size_t> span_hi = inner->PieceSpanFor(hi);
    size_t pool = ProgressivePool(span_lo.second - span_lo.first,
                                  span_hi.second - span_hi.first);
    IoStats local;
    ProgressiveCut plo =
        inner->CutProgressive(lo, /*want_incl=*/!lo_incl, pool, &local);
    pool -= std::min(pool, static_cast<size_t>(local.kernel_writes));
    ProgressiveCut phi =
        inner->CutProgressive(hi, /*want_incl=*/hi_incl, pool, &local);
    if (stats != nullptr) *stats += local;

    size_t cut_lo = plo.lo;  // conservative: open frontiers stay included
    size_t cut_hi = phi.exact ? phi.lo : phi.hi;
    if (cut_hi < cut_lo) cut_hi = cut_lo;

    if (plo.exact && phi.exact) {
      out->view = CrackSelection{
          BatView(inner->values(), cut_lo, cut_hi - cut_lo),
          BatView(inner->oids(), cut_lo, cut_hi - cut_lo)};
      out->count = out->view.count();
      return;
    }

    // At least one open frontier: filter the conservative span by value.
    out->contiguous = false;
    const T* data = inner->values()->template TailData<T>();
    const Oid* oids = inner->oids()->template TailData<Oid>();
    for (size_t i = cut_lo; i < cut_hi; ++i) {
      if (InRange(data[i], lo, lo_incl, hi, hi_incl)) {
        ++out->count;
        if (want_oids) out->oids.push_back(oids[i]);
      }
    }
    if (want_oids) std::sort(out->oids.begin(), out->oids.end());
    if (stats != nullptr) {
      stats->tuples_read += cut_hi - cut_lo;
      if (want_oids) stats->tuples_written += out->count;
    }
  }

  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
  CrackPolicyEngine engine_;
  /// Serializes the policy engine's pivot stream among shared-latch
  /// selects (Pcg32 is not thread-safe). Serial callers bypass it.
  std::mutex engine_mu_;
  std::unique_ptr<UpdatableCrackerIndex<T>> updatable_;
  std::unordered_set<Oid> pre_build_deletes_;  ///< tombstones before build
  // Concurrent-mode state (inert in serial mode).
  std::atomic<bool> built_{false};     ///< updatable_ is safe to dereference
  mutable std::mutex delta_mu_;        ///< guards the delta structures
  std::atomic<size_t> dirty_count_{0};  ///< pending inserts + tombstones
  std::atomic<size_t> accel_size_{0};   ///< tuples in the cracker column
};

// --- sort -----------------------------------------------------------------

template <typename T>
class SortAccessPath : public ColumnAccessPath {
 public:
  SortAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config) {}

  AccessStrategy strategy() const override { return AccessStrategy::kSort; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  PathConcurrency concurrency() const override {
    return PathConcurrency::kSharedReads;
  }

  bool SharedSelectReady() const override {
    return built_.load(std::memory_order_acquire);
  }

  bool WantsMaintenance() const override {
    if (!config_.concurrent || !built_.load(std::memory_order_acquire)) {
      return false;
    }
    return MaintenanceDue(config_.delta_merge,
                          dirty_count_.load(std::memory_order_relaxed),
                          accel_size_.load(std::memory_order_relaxed));
  }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats,
                         const SnapshotView* view = nullptr) override {
    bool shared_mode =
        config_.concurrent && built_.load(std::memory_order_acquire);
    if (sorted_ == nullptr) {
      sorted_ = std::make_unique<SortedColumn<T>>(column_, stats);
      accel_size_.store(sorted_->size(), std::memory_order_relaxed);
      built_.store(true, std::memory_order_release);
    }
    if (!config_.concurrent) MaybeMergeOnSelect(stats);
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
    AccessSelection out;
    out.contiguous = true;
    // Binary search over the sorted copy: read-only, so safe under the
    // shared latch (the copy is only replaced under the exclusive one).
    out.view = sorted_->Select(lo, lo_incl, hi, hi_incl, stats);
    out.count = out.view.count();
    // One span over the sorted copy's oid map. The sorted copy never
    // shuffles under shared readers (replacing it takes the exclusive
    // latch), so the span set is valid for as long as the selection is —
    // consumers drain it before the column latch drops.
    if (out.view.oids.bat() != nullptr) {
      out.span_set.BindOidMap(out.view.oids.bat());
      out.span_set.AddSpan(out.view.oids.offset(),
                           out.view.oids.offset() + out.view.oids.size());
      out.has_span_set = true;
    }
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (shared_mode) dl.lock();
      OverlayDeltaAnswer<T>(
          pending_, deleted_.size(),
          [this](Oid oid) { return deleted_.count(oid) > 0; }, lo, lo_incl,
          hi, hi_incl, want_oids, view, stats, &out);
    }
    // A clean answer stays a contiguous view: unlike a cracker column, the
    // sorted copy never shuffles under shared readers, so the view is
    // stable for as long as the caller holds the (shared) column latch.
    return out;
  }

  Result<ColumnAggregates> AggregateRange(
      const RangeBounds& range, IoStats* stats,
      const SnapshotView* view = nullptr) override {
    if constexpr (std::is_floating_point_v<T>) {
      (void)range;
      (void)stats;
      (void)view;
      return Status::Unimplemented(
          "aggregate pushdown: non-integer column domain");
    } else {
      T lo, hi;
      bool lo_incl, hi_incl;
      ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
      ColumnAggregates out;
      if (EmptyRange(lo, lo_incl, hi, hi_incl)) return out;
      bool shared_mode =
          config_.concurrent && built_.load(std::memory_order_acquire);
      if (sorted_ == nullptr) {
        sorted_ = std::make_unique<SortedColumn<T>>(column_, stats);
        accel_size_.store(sorted_->size(), std::memory_order_relaxed);
        built_.store(true, std::memory_order_release);
      }
      if (!config_.concurrent) MaybeMergeOnSelect(stats);
      // Binary search bounds the answer span; the reduction reads the
      // sorted copy, which only the exclusive latch replaces.
      CrackSelection sel = sorted_->Select(lo, lo_incl, hi, hi_incl, stats);
      const T* vals = sel.values.template data<T>();
      const Oid* oid_data = sel.oids.template data<Oid>();
      size_t n = sel.values.size();
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (shared_mode) dl.lock();
      SpanAggregates agg = ReduceSpan<T>(
          vals, oid_data, n, deleted_.size(),
          [this](Oid oid) { return deleted_.count(oid) > 0; }, view);
      FoldAggregates<T>(agg, n, pending_, lo, lo_incl, hi, hi_incl, view,
                        stats, &out);
      return out;
    }
  }

  Status Insert(const Value& value, Oid oid, IoStats* stats) override {
    if (sorted_ == nullptr) return Status::OK();  // lazy build reads base
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      pending_.emplace_back(CastValue<T>(value), oid);
      SyncDirty();
    }
    if (stats != nullptr) ++stats->tuples_written;
    return MaybeMergeOnWrite(stats);
  }

  Status Delete(Oid oid, IoStats* stats) override {
    CRACK_RETURN_NOT_OK(CheckDeletableOid(*column_, oid));
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    if (purged_.count(oid) > 0) return AlreadyDeletedError(oid);
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [oid](const auto& p) { return p.second == oid; });
    if (it != pending_.end()) {
      // Cancel the pending insert; the oid joins the physically-gone set so
      // a later Update()/Delete() sees a dead row, not a merged tuple.
      pending_.erase(it);
      purged_.insert(oid);
      SyncDirty();
      return Status::OK();
    }
    if (!deleted_.insert(oid).second) return AlreadyDeletedError(oid);
    SyncDirty();
    if (sorted_ == nullptr) return Status::OK();  // filtered until a merge
    if (dl.owns_lock()) dl.unlock();
    return MaybeMergeOnWrite(stats);
  }

  Status Update(Oid oid, const Value& value, IoStats* stats) override {
    if (sorted_ == nullptr) return Status::OK();  // base slot overwritten
    {
      std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
      if (config_.concurrent) dl.lock();
      auto it = std::find_if(pending_.begin(), pending_.end(),
                             [oid](const auto& p) { return p.second == oid; });
      if (it != pending_.end()) {
        it->first = CastValue<T>(value);
        return Status::OK();
      }
      if (purged_.count(oid) > 0 || deleted_.count(oid) > 0) {
        return Status::NotFound(
            StrFormat("oid %llu is deleted",
                      static_cast<unsigned long long>(oid)));
      }
      deleted_.insert(oid);
      pending_.emplace_back(CastValue<T>(value), oid);
      SyncDirty();
    }
    if (stats != nullptr) ++stats->tuples_written;
    return MaybeMergeOnWrite(stats);
  }

  Status FlushDeltas(IoStats* stats) override {
    if (sorted_ == nullptr && pending_.empty() && deleted_.empty()) {
      return Status::OK();
    }
    if (sorted_ == nullptr) {
      sorted_ = std::make_unique<SortedColumn<T>>(column_, stats);
      accel_size_.store(sorted_->size(), std::memory_order_relaxed);
      built_.store(true, std::memory_order_release);
    }
    return MergeDeltas(stats);
  }

  size_t pending_inserts() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return pending_.size();
  }
  size_t pending_deletes() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return deleted_.size();
  }
  size_t merges_performed() const override { return merges_; }

  size_t accel_tuples() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return sorted_ == nullptr ? 0 : sorted_->size();
  }

  std::vector<PieceInfo> Pieces() const override {
    return WholeColumnPiece(column_->size());
  }
  size_t NumPieces() const override { return 1; }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    (void)choice;
    (void)stats;
    return Status::Unimplemented(
        "sort access path has no piece table to crack");
  }

  std::string Explain() const override {
    std::string out = StrFormat("access path: sort, delta-merge=%s\n",
                                DeltaMergePolicyName(
                                    config_.delta_merge.policy));
    if (sorted_ == nullptr) {
      return out + "no accelerator yet (never queried)\n";
    }
    out += "sorted copy present (binary-search access)\n";
    out += StrFormat("deltas: %zu pending inserts, %zu tombstones, "
                     "%zu merges\n",
                     pending_.size(), deleted_.size(), merges_);
    return out;
  }

 private:
  /// See CrackAccessPath::SyncDirty. Callers hold the delta latch or the
  /// exclusive column latch; a no-op in serial mode.
  void SyncDirty() {
    if (!config_.concurrent) return;
    dirty_count_.store(pending_.size() + deleted_.size(),
                       std::memory_order_relaxed);
  }

  Status MaybeMergeOnWrite(IoStats* stats) {
    // Concurrent mode: merging swaps the sorted copy (exclusive latch);
    // the owner's maintenance hook does it via FlushDeltas.
    if (config_.concurrent) return Status::OK();
    if (config_.delta_merge.policy == DeltaMergePolicy::kImmediate ||
        (config_.delta_merge.policy == DeltaMergePolicy::kThreshold &&
         OverThreshold())) {
      return MergeDeltas(stats);
    }
    return Status::OK();
  }

  void MaybeMergeOnSelect(IoStats* stats) {
    bool dirty = !pending_.empty() || !deleted_.empty();
    if (!dirty) return;
    // kImmediate also folds here: tombstones buffered before the lazy build
    // could not merge at write time (there was nothing to merge into).
    if (config_.delta_merge.policy == DeltaMergePolicy::kRippleOnSelect ||
        config_.delta_merge.policy == DeltaMergePolicy::kImmediate ||
        (config_.delta_merge.policy == DeltaMergePolicy::kThreshold &&
         OverThreshold())) {
      (void)MergeDeltas(stats);
    }
  }

  bool OverThreshold() const {
    double fraction = config_.delta_merge.threshold_fraction;
    if (fraction <= 0 || sorted_ == nullptr) return false;
    return pending_.size() + deleted_.size() >
           static_cast<size_t>(fraction *
                               static_cast<double>(sorted_->size()));
  }

  /// Folds deltas back by merging two sorted runs: the surviving sorted
  /// copy (minus tombstones) and the value-sorted pending inserts. The
  /// result adopts fresh (values, oids) columns — O(n + d log d), no resort
  /// of the bulk.
  Status MergeDeltas(IoStats* stats) {
    if (pending_.empty() && deleted_.empty()) return Status::OK();
    std::sort(pending_.begin(), pending_.end());
    size_t old_n = sorted_->size();
    auto values = Bat::Create(TypeTraits<T>::kType,
                              column_->name() + "#sorted");
    auto oids = Bat::Create(ValueType::kOid, column_->name() + "#sortedmap");
    values->Reserve(old_n + pending_.size());
    oids->Reserve(old_n + pending_.size());
    T* vd = values->template MutableTailData<T>();
    Oid* od = oids->template MutableTailData<Oid>();
    const T* src_v = sorted_->values()->template TailData<T>();
    const Oid* src_o = sorted_->oids()->template TailData<Oid>();
    size_t w = 0;
    size_t p = 0;
    for (size_t i = 0; i < old_n; ++i) {
      if (!deleted_.empty() && deleted_.count(src_o[i]) > 0) continue;
      while (p < pending_.size() && pending_[p].first < src_v[i]) {
        vd[w] = pending_[p].first;
        od[w] = pending_[p].second;
        ++w;
        ++p;
      }
      vd[w] = src_v[i];
      od[w] = src_o[i];
      ++w;
    }
    for (; p < pending_.size(); ++p) {
      vd[w] = pending_[p].first;
      od[w] = pending_[p].second;
      ++w;
    }
    values->SetCountUnsafe(w);
    oids->SetCountUnsafe(w);
    if (stats != nullptr) {
      stats->tuples_read += old_n + pending_.size();
      stats->tuples_written += w;
    }
    sorted_ = std::make_unique<SortedColumn<T>>(std::move(values),
                                                std::move(oids));
    // Only tombstones without a pending rebirth (an Update leaves both) are
    // physically gone; remember them so later writes report the row dead.
    std::unordered_set<Oid> reborn;
    reborn.reserve(pending_.size());
    for (const auto& [value, oid] : pending_) reborn.insert(oid);
    for (Oid oid : deleted_) {
      if (reborn.count(oid) == 0) purged_.insert(oid);
    }
    pending_.clear();
    deleted_.clear();
    ++merges_;
    obs::RecordMerge(w);
    SyncDirty();
    accel_size_.store(sorted_->size(), std::memory_order_relaxed);
    return Status::OK();
  }

  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
  std::unique_ptr<SortedColumn<T>> sorted_;
  std::vector<std::pair<T, Oid>> pending_;  ///< inserts since the last merge
  std::unordered_set<Oid> deleted_;         ///< tombstones since the last merge
  std::unordered_set<Oid> purged_;  ///< oids physically gone (merged away)
  size_t merges_ = 0;
  // Concurrent-mode state (inert in serial mode).
  std::atomic<bool> built_{false};      ///< sorted_ is safe to dereference
  mutable std::mutex delta_mu_;         ///< guards the delta structures
  std::atomic<size_t> dirty_count_{0};  ///< pending inserts + tombstones
  std::atomic<size_t> accel_size_{0};   ///< tuples in the sorted copy
};

// --- scan -----------------------------------------------------------------

template <typename T>
class ScanAccessPath : public ColumnAccessPath {
 public:
  ScanAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config) {}

  AccessStrategy strategy() const override { return AccessStrategy::kScan; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  PathConcurrency concurrency() const override {
    return PathConcurrency::kSharedReads;
  }

  // Stateless from birth: shared selections need no accelerator.
  bool SharedSelectReady() const override { return true; }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats,
                         const SnapshotView* view = nullptr) override {
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
    AccessSelection out;
    bool versioned = ViewActive(view);
    // Concurrent mode: snapshot the tombstone set under the delta latch,
    // then scan latch-free — holding the latch across the O(n) loop would
    // serialize every concurrent scan on this column (the base data itself
    // is covered by the owner's table base latch).
    std::unordered_set<Oid> snapshot;
    const std::unordered_set<Oid>* tombs = &deleted_;
    if (config_.concurrent) {
      std::lock_guard<std::mutex> dl(delta_mu_);
      snapshot = deleted_;
      tombs = &snapshot;
    }
    const T* data = column_->TailData<T>();
    size_t n = column_->size();
    Oid base = column_->head_base();
    // Branchless scan: one vectorized range bitmap, AND-ed with one batch
    // visibility bitmap (a single version-log latch acquisition instead of
    // one per row), tombstones cleared bit-wise — then popcount for the
    // count and bit-iterate for the oid gather.
    std::vector<uint64_t> match(BitmapWords(n));
    RangeMatchMask<T>(data, n, /*has_lo=*/true, lo, lo_incl, /*has_hi=*/true,
                      hi, hi_incl, match.data());
    if (versioned) {
      std::vector<uint64_t> vis(BitmapWords(n));
      view->VisibleRangeMask(base, n, vis.data());
      for (size_t w = 0; w < match.size(); ++w) match[w] &= vis[w];
    }
    if (!tombs->empty()) {
      for (Oid oid : *tombs) {
        if (oid >= base && oid - base < n) {
          BitmapClearBit(match.data(), size_t(oid - base));
        }
      }
    }
    out.count = BitmapCount(match.data(), n);
    // Runs of matching rows become identity spans (oid = base + position):
    // clustered data scans to a handful of spans, and downstream consumers
    // (counts, intersections) never need the oid list below.
    out.span_set = OidSpanSet::FromMatchBitmap(match.data(), n, base);
    out.has_span_set = true;
    if (want_oids) {
      out.oids.reserve(out.count);
      for (size_t w = 0; w < match.size(); ++w) {
        uint64_t m = match[w];
        while (m != 0) {
          size_t i = (w << 6) + size_t(__builtin_ctzll(m));
          out.oids.push_back(base + i);
          m &= m - 1;
        }
      }
    }
    ReadmitOverrides<T>(view, lo, lo_incl, hi, hi_incl, want_oids, &out);
    if (versioned && want_oids) std::sort(out.oids.begin(), out.oids.end());
    if (stats != nullptr) {
      stats->tuples_read += n;
      if (want_oids) stats->tuples_written += out.count;
    }
    return out;
  }

  Result<ColumnAggregates> AggregateRange(
      const RangeBounds& range, IoStats* stats,
      const SnapshotView* view = nullptr) override {
    if constexpr (std::is_floating_point_v<T>) {
      (void)range;
      (void)stats;
      (void)view;
      return Status::Unimplemented(
          "aggregate pushdown: non-integer column domain");
    } else {
      T lo, hi;
      bool lo_incl, hi_incl;
      ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
      ColumnAggregates out;
      if (EmptyRange(lo, lo_incl, hi, hi_incl)) return out;
      std::unordered_set<Oid> snapshot;
      const std::unordered_set<Oid>* tombs = &deleted_;
      if (config_.concurrent) {
        std::lock_guard<std::mutex> dl(delta_mu_);
        snapshot = deleted_;
        tombs = &snapshot;
      }
      const T* data = column_->TailData<T>();
      size_t n = column_->size();
      Oid base = column_->head_base();
      bool versioned = ViewActive(view);
      // Same branchless mask pipeline as Select, but the finished bitmap
      // feeds the masked reduction kernel instead of a bit-iterate oid
      // gather — the whole column is the pushdown span.
      std::vector<uint64_t> match(BitmapWords(n));
      RangeMatchMask<T>(data, n, /*has_lo=*/true, lo, lo_incl,
                        /*has_hi=*/true, hi, hi_incl, match.data());
      if (versioned) {
        std::vector<uint64_t> vis(BitmapWords(n));
        view->VisibleRangeMask(base, n, vis.data());
        for (size_t w = 0; w < match.size(); ++w) match[w] &= vis[w];
      }
      for (Oid oid : *tombs) {
        if (oid >= base && oid - base < n) {
          BitmapClearBit(match.data(), size_t(oid - base));
        }
      }
      SpanAggregates agg = AggregateSpanMasked(data, n, match.data());
      FoldAggregates<T>(agg, n, {}, lo, lo_incl, hi, hi_incl, view, stats,
                        &out);
      return out;
    }
  }

  // The base column carries inserts (appended) and updates (overwritten in
  // place); the only delta a scan must remember is the tombstone set.
  Status Insert(const Value& value, Oid oid, IoStats* stats) override {
    (void)value;
    (void)oid;
    (void)stats;
    return Status::OK();
  }

  Status Delete(Oid oid, IoStats* stats) override {
    (void)stats;
    CRACK_RETURN_NOT_OK(CheckDeletableOid(*column_, oid));
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    if (!deleted_.insert(oid).second) return AlreadyDeletedError(oid);
    return Status::OK();
  }

  Status Update(Oid oid, const Value& value, IoStats* stats) override {
    (void)oid;
    (void)value;
    (void)stats;
    return Status::OK();
  }

  Status FlushDeltas(IoStats* stats) override {
    (void)stats;
    return Status::OK();  // tombstones are the scan's terminal state
  }

  size_t pending_inserts() const override { return 0; }
  size_t pending_deletes() const override {
    std::unique_lock<std::mutex> dl(delta_mu_, std::defer_lock);
    if (config_.concurrent) dl.lock();
    return deleted_.size();
  }
  size_t merges_performed() const override { return 0; }

  std::vector<PieceInfo> Pieces() const override {
    return WholeColumnPiece(column_->size());
  }
  size_t NumPieces() const override { return 1; }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    (void)choice;
    (void)stats;
    return Status::Unimplemented(
        "scan access path has no piece table to crack");
  }

  std::string Explain() const override {
    std::string out =
        "access path: scan\nno auxiliary structure (full scan per query)\n";
    if (!deleted_.empty()) {
      out += StrFormat("deltas: %zu tombstones filtered per scan\n",
                       deleted_.size());
    }
    return out;
  }

 private:
  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
  std::unordered_set<Oid> deleted_;
  mutable std::mutex delta_mu_;  ///< guards deleted_ (concurrent mode only)
};

template <typename T>
std::unique_ptr<ColumnAccessPath> MakePath(std::shared_ptr<Bat> column,
                                           const AccessPathConfig& config) {
  switch (config.strategy) {
    case AccessStrategy::kScan:
      return std::make_unique<ScanAccessPath<T>>(std::move(column), config);
    case AccessStrategy::kCrack:
      return std::make_unique<CrackAccessPath<T>>(std::move(column), config);
    case AccessStrategy::kSort:
      return std::make_unique<SortAccessPath<T>>(std::move(column), config);
  }
  return nullptr;
}

// --- dict-string ----------------------------------------------------------

/// Encoding decorator for kString columns: an order-preserving dictionary
/// presents the column as an int64 code domain, a shadow code column
/// mirrors the base row-for-row, and an inner numeric path (any strategy x
/// policy) cracks/sorts/scans the codes. String predicates arrive through
/// SelectTyped and translate to code ranges; DML interns unseen strings,
/// and when an out-of-order insert exhausts its code gap the dictionary's
/// remap hook folds the inner deltas through the existing Merge machinery,
/// rewrites the code column monotonically, and re-arms a fresh lazy
/// accelerator.
class DictStringAccessPath : public ColumnAccessPath {
 public:
  DictStringAccessPath(std::shared_ptr<Bat> column,
                       const AccessPathConfig& config)
      : column_(std::move(column)), config_(config), inner_config_(config) {
    // The wrapper is exclusive-only under concurrency (the dictionary has
    // no internal locking and a gap-exhaustion remap swaps the whole inner
    // path), so the inner numeric path keeps serial semantics — its inline
    // merges are safe under the wrapper's exclusive column latch.
    inner_config_.concurrent = false;
  }

  AccessStrategy strategy() const override { return config_.strategy; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  // Inherited concurrency defaults are exactly right for this wrapper:
  // kExclusiveOnly, never shared-ready, no owner-driven maintenance.

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats,
                         const SnapshotView* view = nullptr) override {
    // Native-domain selection: the bounds are dictionary codes.
    EnsureEncoded(stats);
    SnapshotView code_view;
    return inner_->Select(range, want_oids, stats,
                          TranslateView(view, stats, &code_view));
  }

  Result<AccessSelection> SelectTyped(const TypedRange& range, bool want_oids,
                                      IoStats* stats,
                                      const SnapshotView* view = nullptr)
      override {
    if ((!range.lo.is_null() && !range.lo.is_string()) ||
        (!range.hi.is_null() && !range.hi.is_string())) {
      return Status::TypeMismatch(
          StrFormat("numeric predicate on string column %s",
                    column_->name().c_str()));
    }
    EnsureEncoded(stats);
    // Translate the view before the bounds: interning an unseen override
    // value may remap the whole code domain, which would stale previously
    // computed code bounds.
    SnapshotView code_view;
    const SnapshotView* inner_view = TranslateView(view, stats, &code_view);
    RangeBounds codes;  // defaults: unbounded both sides
    if (!range.lo.is_null()) {
      int64_t code;
      if (dict_->CodeFor(range.lo.AsString(), &code)) {
        codes.lo = code;
        codes.lo_incl = range.lo_incl;
      } else if (dict_->CeilCode(range.lo.AsString(), &code)) {
        // Absent bound: >s and >=s agree on the interned domain.
        codes.lo = code;
        codes.lo_incl = true;
      } else {
        return AccessSelection{};  // sorts after every string: empty
      }
    }
    if (!range.hi.is_null()) {
      int64_t code;
      if (dict_->CodeFor(range.hi.AsString(), &code)) {
        codes.hi = code;
        codes.hi_incl = range.hi_incl;
      } else if (dict_->FloorCode(range.hi.AsString(), &code)) {
        codes.hi = code;
        codes.hi_incl = true;
      } else {
        return AccessSelection{};  // sorts before every string: empty
      }
    }
    return inner_->Select(codes, want_oids, stats, inner_view);
  }

  Status Insert(const Value& value, Oid oid, IoStats* stats) override {
    if (!value.is_string()) {
      return Status::TypeMismatch(
          StrFormat("cannot insert %s into string column %s",
                    value.ToString().c_str(), column_->name().c_str()));
    }
    if (inner_ == nullptr) return Status::OK();  // lazy encode reads base
    int64_t code = Intern(value.AsString(), stats);
    codes_->Append<int64_t>(code);
    return inner_->Insert(Value(code), oid, stats);
  }

  Status Delete(Oid oid, IoStats* stats) override {
    CRACK_RETURN_NOT_OK(CheckDeletableOid(*column_, oid));
    // The all-time tombstone set is the wrapper's own: the shadow code
    // column is append-only, so a rebuilt inner path must re-learn every
    // historical delete.
    if (!deleted_.insert(oid).second) return AlreadyDeletedError(oid);
    if (inner_ == nullptr) return Status::OK();
    Status st = inner_->Delete(oid, stats);
    if (!st.ok()) deleted_.erase(oid);  // keep the replay set replayable
    return st;
  }

  Status Update(Oid oid, const Value& value, IoStats* stats) override {
    if (!value.is_string()) {
      return Status::TypeMismatch(
          StrFormat("cannot update string column %s with %s",
                    column_->name().c_str(), value.ToString().c_str()));
    }
    if (inner_ == nullptr) return Status::OK();  // base slot overwritten
    int64_t code = Intern(value.AsString(), stats);
    CRACK_RETURN_NOT_OK(codes_->SetNumeric(
        static_cast<size_t>(oid - codes_->head_base()), code));
    return inner_->Update(oid, Value(code), stats);
  }

  Status FlushDeltas(IoStats* stats) override {
    if (inner_ == nullptr && deleted_.empty()) return Status::OK();
    EnsureEncoded(stats);
    return inner_->FlushDeltas(stats);
  }

  size_t pending_inserts() const override {
    return inner_ == nullptr ? 0 : inner_->pending_inserts();
  }
  size_t pending_deletes() const override {
    return inner_ == nullptr ? deleted_.size() : inner_->pending_deletes();
  }
  size_t merges_performed() const override {
    return merges_carry_ +
           (inner_ == nullptr ? 0 : inner_->merges_performed());
  }

  size_t accel_tuples() const override {
    return inner_ == nullptr ? 0 : inner_->accel_tuples();
  }

  std::vector<PieceInfo> Pieces() const override {
    if (inner_ == nullptr) return WholeColumnPiece(column_->size());
    return inner_->Pieces();  // code-domain value decorations
  }
  size_t NumPieces() const override {
    return inner_ == nullptr ? 1 : inner_->NumPieces();
  }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    EnsureEncoded(stats);
    return inner_->ApplyPolicy(choice, stats);  // pivot in the code domain
  }

  std::string Explain() const override {
    std::string out = StrFormat(
        "encoding: order-preserving dictionary over %s\n",
        column_->name().c_str());
    if (inner_ == nullptr) {
      if (!deleted_.empty()) {
        out += StrFormat("deltas: %zu tombstones buffered pre-encode\n",
                         deleted_.size());
      }
      return out + "no code column yet (never queried)\n";
    }
    out += StrFormat("dictionary: %zu distinct strings, gap=%lld, "
                     "%zu rebuild(s)\n",
                     dict_->size(), static_cast<long long>(dict_->gap()),
                     dict_->rebuilds());
    return out + inner_->Explain();
  }

  PathPolicyStatus PolicyStatus() const override {
    if (inner_ != nullptr) return inner_->PolicyStatus();
    PathPolicyStatus s;
    s.configured = config_.policy.policy;
    s.effective = config_.policy.policy;
    s.progressive_budget = config_.policy.progressive_budget;
    s.crack = config_.strategy == AccessStrategy::kCrack;
    return s;
  }

  Status SetPolicyOptions(const CrackPolicyOptions& options) override {
    config_.policy = options;
    inner_config_.policy = options;
    if (inner_ != nullptr) return inner_->SetPolicyOptions(options);
    return Status::OK();
  }

 private:
  /// Translates the facade's string-valued overrides into the inner path's
  /// code domain (order-preserving, so range membership is preserved).
  /// Returns nullptr when the view is inactive; otherwise fills *storage
  /// and returns it. Unseen old values (an accelerator reset can outlive
  /// the version log) intern on demand — EnsureEncoded has already run, so
  /// a gap-exhaustion remap stays safely before the inner selection.
  const SnapshotView* TranslateView(const SnapshotView* view, IoStats* stats,
                                    SnapshotView* storage) {
    if (view == nullptr || !view->active()) return nullptr;
    if (view->overrides().empty()) return view;
    // Interning an unseen value can exhaust a code gap and remap the whole
    // code domain, which would stale codes translated earlier in this very
    // loop — restart the translation whenever a rebuild fires.
    std::vector<std::pair<Oid, Value>> code_overrides;
    bool remapped = true;
    while (remapped) {
      remapped = false;
      code_overrides.clear();
      code_overrides.reserve(view->overrides().size());
      size_t rebuilds = dict_->rebuilds();
      for (const auto& [oid, value] : view->overrides()) {
        if (!value.is_string()) {
          code_overrides.emplace_back(oid, value);  // already numeric
          continue;
        }
        int64_t code;
        if (!dict_->CodeFor(value.AsString(), &code)) {
          code = Intern(value.AsString(), stats);
          if (dict_->rebuilds() != rebuilds) {
            remapped = true;  // earlier translations are stale
            break;
          }
        }
        code_overrides.emplace_back(oid, Value(code));
      }
    }
    *storage = view->WithOverrides(std::move(code_overrides));
    return storage;
  }

  /// Lazily builds the dictionary, the shadow code column and the inner
  /// path — the whole encoding investment is charged to the first query.
  void EnsureEncoded(IoStats* stats) {
    if (inner_ != nullptr) return;
    auto dict = StringDictionary::FromColumn(*column_);
    CRACK_DCHECK(dict.ok());
    dict_ = std::make_unique<StringDictionary>(std::move(*dict));
    codes_ = Bat::Create(ValueType::kInt64, column_->name() + "#codes");
    codes_->set_head_base(column_->head_base());
    size_t n = column_->size();
    codes_->Reserve(n);
    int64_t* d = codes_->MutableTailData<int64_t>();
    const std::shared_ptr<VarHeap>& heap = column_->heap();
    const uint64_t* offsets = column_->TailData<uint64_t>();
    for (size_t i = 0; i < n; ++i) {
      int64_t code = 0;
      bool known = dict_->CodeFor(heap->Read(offsets[i]), &code);
      CRACK_DCHECK(known);
      (void)known;
      d[i] = code;
    }
    codes_->SetCountUnsafe(n);
    if (stats != nullptr) {
      stats->tuples_read += n;
      stats->tuples_written += n;
    }
    RebuildInner(stats);
  }

  /// Interns `s`, wiring the dictionary's rebuild path into this column's
  /// remap procedure.
  int64_t Intern(std::string_view s, IoStats* stats) {
    return dict_->InternOrdered(
        s, [this, stats](const StringDictionary::RemapMap& remap) {
          RemapCodes(remap, stats);
        });
  }

  /// A code-gap exhausted: every code was reassigned (monotonically).
  /// Rewrite the shadow column through the mapping and re-arm a fresh lazy
  /// inner path over the new codes. No flush is needed before the swap:
  /// pending inserts/updates are already physically in codes_ (the wrapper
  /// mutates codes_ before notifying the inner path) and tombstones replay
  /// from the wrapper's all-time deleted_ set, so the rebuilt path folds
  /// them through the ordinary Merge machinery on its next merge.
  void RemapCodes(const StringDictionary::RemapMap& remap, IoStats* stats) {
    // +1 marks the accelerator hand-over (even when nothing was pending),
    // so facade-level lineage re-roots the piece subtree.
    merges_carry_ += inner_->merges_performed() + 1;
    int64_t* d = codes_->MutableTailData<int64_t>();
    for (size_t i = 0; i < codes_->size(); ++i) {
      auto it = remap.find(d[i]);
      CRACK_DCHECK(it != remap.end());
      d[i] = it->second;
    }
    if (stats != nullptr) stats->tuples_written += codes_->size();
    RebuildInner(stats);
  }

  /// (Re)creates the inner numeric path over the code column and replays
  /// the all-time tombstones into it.
  void RebuildInner(IoStats* stats) {
    (void)stats;
    inner_ = MakePath<int64_t>(codes_, inner_config_);
    for (Oid oid : deleted_) {
      Status st = inner_->Delete(oid);
      CRACK_DCHECK(st.ok());
      (void)st;
    }
  }

  std::shared_ptr<Bat> column_;  ///< the kString base (append-only)
  AccessPathConfig config_;
  AccessPathConfig inner_config_;  ///< config_ with concurrent forced off
  std::unique_ptr<StringDictionary> dict_;
  std::shared_ptr<Bat> codes_;  ///< int64 shadow, row-parallel to the base
  std::unique_ptr<ColumnAccessPath> inner_;
  std::unordered_set<Oid> deleted_;  ///< all-time tombstones (replayable)
  size_t merges_carry_ = 0;  ///< merges of discarded inner paths (+rebuilds)
};

}  // namespace

Result<std::unique_ptr<ColumnAccessPath>> CreateColumnAccessPath(
    std::shared_ptr<Bat> column, const AccessPathConfig& config) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  switch (column->tail_type()) {
    case ValueType::kInt32:
      return MakePath<int32_t>(std::move(column), config);
    case ValueType::kInt64:
      return MakePath<int64_t>(std::move(column), config);
    case ValueType::kFloat64:
      return MakePath<double>(std::move(column), config);
    case ValueType::kString:
      return std::unique_ptr<ColumnAccessPath>(
          std::make_unique<DictStringAccessPath>(std::move(column), config));
    default:
      return Status::Unimplemented(
          StrFormat("no access path for %s columns",
                    ValueTypeName(column->tail_type())));
  }
}

}  // namespace crackstore
