// Copyright 2026 The CrackStore Authors

#include "core/access_path.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/sorted_column.h"
#include "util/string_util.h"

namespace crackstore {

const char* AccessStrategyName(AccessStrategy strategy) {
  switch (strategy) {
    case AccessStrategy::kScan:
      return "scan";
    case AccessStrategy::kCrack:
      return "crack";
    case AccessStrategy::kSort:
      return "sort";
  }
  return "?";
}

namespace {

/// Clamps int64 range bounds into the typed domain of the column so that
/// sentinel bounds (INT64_MIN/MAX) work for narrower types.
template <typename T>
void ClampRange(const RangeBounds& range, T* lo, bool* lo_incl, T* hi,
                bool* hi_incl) {
  int64_t tmin = static_cast<int64_t>(std::numeric_limits<T>::min());
  int64_t tmax = static_cast<int64_t>(std::numeric_limits<T>::max());
  int64_t lo64 = std::clamp(range.lo, tmin, tmax);
  int64_t hi64 = std::clamp(range.hi, tmin, tmax);
  *lo = static_cast<T>(lo64);
  *hi = static_cast<T>(hi64);
  // A bound clamped from *outside* the domain keeps its meaning via the
  // inclusivity: lo = INT64_MIN over int32 becomes lo = INT32_MIN inclusive
  // (everything passes that side), while lo > INT32_MAX becomes
  // lo = INT32_MAX exclusive (nothing can satisfy v >= lo). Mirrored for hi.
  *lo_incl = (lo64 != range.lo) ? (range.lo < tmin) : range.lo_incl;
  *hi_incl = (hi64 != range.hi) ? (range.hi > tmax) : range.hi_incl;
}

template <typename T>
bool InRange(T v, T lo, bool lo_incl, T hi, bool hi_incl) {
  if (lo_incl ? v < lo : v <= lo) return false;
  if (hi_incl ? v > hi : v >= hi) return false;
  return true;
}

std::string ExplainPieces(const std::vector<PieceInfo>& pieces) {
  std::string out;
  size_t shown = 0;
  for (const PieceInfo& p : pieces) {
    if (++shown > 64) {
      out += StrFormat("  ... (%zu pieces)\n", pieces.size());
      break;
    }
    std::string lo = p.has_lo ? StrFormat("%s%lld", p.lo_strict ? ">" : ">=",
                                          static_cast<long long>(p.lo))
                              : "-inf";
    std::string hi = p.has_hi ? StrFormat("%s%lld", p.hi_strict ? "<" : "<=",
                                          static_cast<long long>(p.hi))
                              : "+inf";
    out += StrFormat("  piece [%zu, %zu) size=%zu  values %s .. %s\n",
                     p.begin, p.end, p.size(), lo.c_str(), hi.c_str());
  }
  return out;
}

/// The whole column as one undecorated piece.
std::vector<PieceInfo> WholeColumnPiece(size_t n) {
  PieceInfo piece;
  piece.begin = 0;
  piece.end = n;
  return {piece};
}

// --- crack ----------------------------------------------------------------

template <typename T>
class CrackAccessPath : public ColumnAccessPath {
 public:
  CrackAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config), engine_(config.policy) {}

  AccessStrategy strategy() const override { return AccessStrategy::kCrack; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats) override {
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);

    AccessSelection out;
    // Provably-empty range: answer before paying the O(n) index build.
    if (lo > hi || (lo == hi && !(lo_incl && hi_incl))) return out;

    EnsureBuilt(stats);
    out.contiguous = true;
    switch (engine_.policy()) {
      case CrackPolicy::kStandard:
        out.view = index_->Select(lo, lo_incl, hi, hi_incl, stats);
        out.count = out.view.count();
        break;
      case CrackPolicy::kStochastic:
        // DDC: shrink the pieces the bounds land in with random pivots
        // first, so progress is made even when the bounds themselves follow
        // a pathological (e.g. sequential) pattern.
        StochasticShrink(lo, /*want_incl=*/!lo_incl, stats);
        StochasticShrink(hi, /*want_incl=*/hi_incl, stats);
        out.view = index_->Select(lo, lo_incl, hi, hi_incl, stats);
        out.count = out.view.count();
        break;
      case CrackPolicy::kCoarse:
        CoarseSelect(lo, lo_incl, hi, hi_incl, want_oids, stats, &out);
        break;
    }

    if (!config_.merge_budget.unlimited()) {
      out.bounds_dropped =
          EnforceMergeBudget(index_.get(), config_.merge_budget, stats);
    }
    return out;
  }

  std::vector<PieceInfo> Pieces() const override {
    if (index_ == nullptr) return WholeColumnPiece(column_->size());
    std::vector<PieceInfo> out;
    for (const CrackPiece<T>& p : index_->Pieces()) {
      PieceInfo info;
      info.begin = p.begin;
      info.end = p.end;
      info.has_lo = p.has_lo;
      info.lo = static_cast<int64_t>(p.lo);
      info.lo_strict = p.lo_strict;
      info.has_hi = p.has_hi;
      info.hi = static_cast<int64_t>(p.hi);
      info.hi_strict = p.hi_strict;
      out.push_back(info);
    }
    return out;
  }

  size_t NumPieces() const override {
    return index_ == nullptr ? 1 : index_->num_pieces();
  }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    EnsureBuilt(stats);
    T pivot = static_cast<T>(std::clamp(
        choice.value,
        static_cast<int64_t>(std::numeric_limits<T>::min()),
        static_cast<int64_t>(std::numeric_limits<T>::max())));
    index_->ForceCut(pivot, /*want_incl=*/choice.after_duplicates, stats);
    return Status::OK();
  }

  std::string Explain() const override {
    std::string out = StrFormat("access path: crack, policy=%s\n",
                                CrackPolicyName(engine_.policy()));
    if (index_ == nullptr) {
      return out + "no accelerator yet (never queried)\n";
    }
    out += StrFormat("cracker index: %zu tuples, %zu pieces, %zu boundaries\n",
                     index_->size(), index_->num_pieces(),
                     index_->num_bounds());
    return out + ExplainPieces(Pieces());
  }

 private:
  void EnsureBuilt(IoStats* stats) {
    if (index_ == nullptr) {
      index_ = std::make_unique<CrackerIndex<T>>(column_, stats);
    }
  }

  /// Cracks the piece enclosing `v` at randomly drawn elements until it is
  /// at or below the policy threshold (or no pivot makes progress, e.g. all
  /// duplicates). Skipped when the cut for `v` is already registered.
  void StochasticShrink(T v, bool want_incl, IoStats* stats) {
    size_t pos;
    if (index_->FindCut(v, want_incl, &pos)) return;
    std::pair<size_t, size_t> span = index_->PieceSpanFor(v);
    while (engine_.WantsAuxiliaryPivot(span.second - span.first)) {
      T pivot = index_->values()->template TailData<T>()[engine_.DrawSlot(
          span.first, span.second)];
      index_->ForceCut(pivot, /*want_incl=*/false, stats);
      std::pair<size_t, size_t> next = index_->PieceSpanFor(v);
      if (next == span) break;  // pivot was the piece minimum: no progress
      span = next;
    }
  }

  /// DD1C selection: bounds landing in pieces above the threshold crack as
  /// usual; bounds inside small pieces stay uncracked and the enclosing
  /// span is filtered instead.
  void CoarseSelect(T lo, bool lo_incl, T hi, bool hi_incl, bool want_oids,
                    IoStats* stats, AccessSelection* out) {
    size_t cut_lo = 0;
    bool lo_exact = index_->FindCut(lo, /*want_incl=*/!lo_incl, &cut_lo);
    if (lo_exact) {
      index_->TouchBound(lo);  // keep LRU merge budgets honest
    } else {
      std::pair<size_t, size_t> span = index_->PieceSpanFor(lo);
      if (engine_.ShouldCrack(span.second - span.first)) {
        cut_lo = index_->ForceCut(lo, /*want_incl=*/!lo_incl, stats);
        lo_exact = true;
      } else {
        cut_lo = span.first;  // conservative: keep the whole piece
      }
    }
    size_t cut_hi = 0;
    bool hi_exact = index_->FindCut(hi, /*want_incl=*/hi_incl, &cut_hi);
    if (hi_exact) {
      index_->TouchBound(hi);
    } else {
      std::pair<size_t, size_t> span = index_->PieceSpanFor(hi);
      if (engine_.ShouldCrack(span.second - span.first)) {
        cut_hi = index_->ForceCut(hi, /*want_incl=*/hi_incl, stats);
        hi_exact = true;
      } else {
        cut_hi = span.second;  // conservative: keep the whole piece
      }
    }
    if (cut_hi < cut_lo) cut_hi = cut_lo;  // empty result

    if (lo_exact && hi_exact) {
      out->view = CrackSelection{BatView(index_->values(), cut_lo,
                                         cut_hi - cut_lo),
                                 BatView(index_->oids(), cut_lo,
                                         cut_hi - cut_lo)};
      out->count = out->view.count();
      return;
    }

    // At least one fuzzy edge: filter the conservative span. Interior
    // tuples are known-qualifying, but one predicate pass over the span is
    // simpler and the span exceeds the answer by at most two small pieces.
    out->contiguous = false;
    const T* data = index_->values()->template TailData<T>();
    const Oid* oids = index_->oids()->template TailData<Oid>();
    for (size_t i = cut_lo; i < cut_hi; ++i) {
      if (InRange(data[i], lo, lo_incl, hi, hi_incl)) {
        ++out->count;
        if (want_oids) out->oids.push_back(oids[i]);
      }
    }
    if (want_oids) std::sort(out->oids.begin(), out->oids.end());
    if (stats != nullptr) {
      stats->tuples_read += cut_hi - cut_lo;
      if (want_oids) stats->tuples_written += out->count;
    }
  }

  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
  CrackPolicyEngine engine_;
  std::unique_ptr<CrackerIndex<T>> index_;
};

// --- sort -----------------------------------------------------------------

template <typename T>
class SortAccessPath : public ColumnAccessPath {
 public:
  SortAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config) {}

  AccessStrategy strategy() const override { return AccessStrategy::kSort; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats) override {
    (void)want_oids;  // contiguous answers carry their oid view
    if (sorted_ == nullptr) {
      sorted_ = std::make_unique<SortedColumn<T>>(column_, stats);
    }
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
    AccessSelection out;
    out.contiguous = true;
    out.view = sorted_->Select(lo, lo_incl, hi, hi_incl, stats);
    out.count = out.view.count();
    return out;
  }

  std::vector<PieceInfo> Pieces() const override {
    return WholeColumnPiece(column_->size());
  }
  size_t NumPieces() const override { return 1; }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    (void)choice;
    (void)stats;
    return Status::Unimplemented(
        "sort access path has no piece table to crack");
  }

  std::string Explain() const override {
    std::string out = "access path: sort\n";
    if (sorted_ == nullptr) {
      return out + "no accelerator yet (never queried)\n";
    }
    return out + "sorted copy present (binary-search access)\n";
  }

 private:
  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
  std::unique_ptr<SortedColumn<T>> sorted_;
};

// --- scan -----------------------------------------------------------------

template <typename T>
class ScanAccessPath : public ColumnAccessPath {
 public:
  ScanAccessPath(std::shared_ptr<Bat> column, const AccessPathConfig& config)
      : column_(std::move(column)), config_(config) {}

  AccessStrategy strategy() const override { return AccessStrategy::kScan; }
  const AccessPathConfig& config() const override { return config_; }
  size_t size() const override { return column_->size(); }

  AccessSelection Select(const RangeBounds& range, bool want_oids,
                         IoStats* stats) override {
    T lo, hi;
    bool lo_incl, hi_incl;
    ClampRange<T>(range, &lo, &lo_incl, &hi, &hi_incl);
    AccessSelection out;
    const T* data = column_->TailData<T>();
    size_t n = column_->size();
    Oid base = column_->head_base();
    for (size_t i = 0; i < n; ++i) {
      if (InRange(data[i], lo, lo_incl, hi, hi_incl)) {
        ++out.count;
        if (want_oids) out.oids.push_back(base + i);
      }
    }
    if (stats != nullptr) {
      stats->tuples_read += n;
      if (want_oids) stats->tuples_written += out.count;
    }
    return out;
  }

  std::vector<PieceInfo> Pieces() const override {
    return WholeColumnPiece(column_->size());
  }
  size_t NumPieces() const override { return 1; }

  Status ApplyPolicy(const PivotChoice& choice, IoStats* stats) override {
    (void)choice;
    (void)stats;
    return Status::Unimplemented(
        "scan access path has no piece table to crack");
  }

  std::string Explain() const override {
    return "access path: scan\nno auxiliary structure (full scan per "
           "query)\n";
  }

 private:
  std::shared_ptr<Bat> column_;
  AccessPathConfig config_;
};

template <typename T>
std::unique_ptr<ColumnAccessPath> MakePath(std::shared_ptr<Bat> column,
                                           const AccessPathConfig& config) {
  switch (config.strategy) {
    case AccessStrategy::kScan:
      return std::make_unique<ScanAccessPath<T>>(std::move(column), config);
    case AccessStrategy::kCrack:
      return std::make_unique<CrackAccessPath<T>>(std::move(column), config);
    case AccessStrategy::kSort:
      return std::make_unique<SortAccessPath<T>>(std::move(column), config);
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<ColumnAccessPath>> CreateColumnAccessPath(
    std::shared_ptr<Bat> column, const AccessPathConfig& config) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  switch (column->tail_type()) {
    case ValueType::kInt32:
      return MakePath<int32_t>(std::move(column), config);
    case ValueType::kInt64:
      return MakePath<int64_t>(std::move(column), config);
    default:
      return Status::Unimplemented(
          StrFormat("no access path for %s columns",
                    ValueTypeName(column->tail_type())));
  }
}

}  // namespace crackstore
