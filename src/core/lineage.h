// Copyright 2026 The CrackStore Authors
//
// Lineage administration (paper §3.2, Figs. 5-6): cracking must "administer
// the lineage of each piece, i.e. its source and the Ξ, Ψ, ^ or Ω operators
// applied", both to reconstruct original tables and to let an optimizer
// reason about alternative cracker orders. This module records that DAG.

#ifndef CRACKSTORE_CORE_LINEAGE_H_
#define CRACKSTORE_CORE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace crackstore {

/// Identifier of a piece node in the lineage graph.
using PieceId = uint32_t;
inline constexpr PieceId kInvalidPieceId = ~0u;

/// The four cracker operators of §3.1.
enum class CrackOp : uint8_t {
  kXi = 0,     ///< Ξ — selection cracking
  kPsi = 1,    ///< Ψ — projection (vertical) cracking
  kWedge = 2,  ///< ^ — join cracking
  kOmega = 3,  ///< Ω — group cracking
};

const char* CrackOpName(CrackOp op);

/// One piece (or base table) in the lineage DAG.
struct LineagePiece {
  PieceId id = kInvalidPieceId;
  std::string label;           ///< e.g. "R[4]"
  uint64_t size = 0;           ///< tuples in the piece
  CrackOp produced_by{};       ///< op that created it (roots: unset)
  bool is_root = false;
  bool trimmed = false;        ///< fused away (inverse op applied, §3.2)
  std::vector<PieceId> parents;   ///< op inputs (empty for roots)
  std::vector<PieceId> children;  ///< pieces cracked off this one
};

/// Append-only lineage DAG.
class LineageGraph {
 public:
  /// Registers a base table.
  PieceId AddRoot(std::string label, uint64_t size);

  /// Records one cracker application: `op` consumed `inputs` and produced
  /// pieces with the given (label, size) pairs. Returns the new piece ids in
  /// order. Fails when an input id is unknown.
  Result<std::vector<PieceId>> AddCrack(
      CrackOp op, const std::vector<PieceId>& inputs,
      const std::vector<std::pair<std::string, uint64_t>>& outputs);

  const LineagePiece& piece(PieceId id) const;
  size_t num_pieces() const { return pieces_.size(); }

  /// Current partitioning of `root`: all descendant pieces without children.
  std::vector<PieceId> Leaves(PieceId root) const;

  /// Checks the loss-less invariant for horizontal crackers: the leaf sizes
  /// under `root` sum to the root size. (Ψ duplicates rows across fragments
  /// and is excluded — pass `allow_vertical` to skip Ψ subtrees.)
  Status CheckLossless(PieceId root) const;

  /// Applies the inverse operation below `id` (§3.2: "trimming the graph"):
  /// every descendant is marked trimmed and `id` becomes a leaf again.
  /// Models piece fusion — the data of the descendants has been reabsorbed.
  Status TrimDescendants(PieceId id);

  /// Graphviz rendering of the DAG (Figs. 5-6 style).
  std::string ToDot() const;

 private:
  std::vector<LineagePiece> pieces_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_LINEAGE_H_
