// Copyright 2026 The CrackStore Authors
//
// TaskPool: a fixed thread pool with batch-granular work queues, the fan-out
// engine behind per-piece parallel cracking (ROADMAP) and parallel
// conjunction legs. The unit of scheduling is a *batch* — a vector of
// independent closures submitted together (the crack kernels of one query's
// two bounds, the per-column legs of one conjunction). The submitting thread
// participates in draining its own batch, so nested submissions from inside
// pool workers can never deadlock on an exhausted pool: every batch makes
// progress on at least the thread that submitted it.
//
// A process-wide instance (Global()) backs the shell's `threads N` command
// and the concurrency benchmarks; with 0 threads every batch runs inline on
// the caller, which keeps single-threaded deployments allocation- and
// lock-free on this layer.

#ifndef CRACKSTORE_CORE_TASK_POOL_H_
#define CRACKSTORE_CORE_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace crackstore {

namespace obs {
class QueryTrace;
}  // namespace obs

/// See file comment.
class TaskPool {
 public:
  /// Spawns `num_threads` workers (0 = inline execution).
  explicit TaskPool(size_t num_threads);
  ~TaskPool();
  CRACK_DISALLOW_COPY_AND_ASSIGN(TaskPool);

  size_t num_threads() const { return workers_.size(); }

  /// Runs every task of `tasks` and returns when all have completed. Tasks
  /// must be independent and must not throw. The caller claims tasks
  /// alongside the workers (see file comment), so this is safe to call from
  /// inside a pool task.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// The process-wide pool (born with 0 threads). Never null.
  static TaskPool* Global();

  /// Replaces the global pool with one of `num_threads` workers. Joins the
  /// previous workers first; must not race in-flight RunBatch calls (resize
  /// between workloads, not during one).
  static void SetGlobalThreads(size_t num_threads);

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    /// The submitter's ambient QueryTrace; workers bind it around each task
    /// so fan-out work reports into the submitting statement's trace.
    obs::QueryTrace* trace = nullptr;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a batch arrived
  std::condition_variable done_cv_;  ///< submitters: a batch completed
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_TASK_POOL_H_
