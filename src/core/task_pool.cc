// Copyright 2026 The CrackStore Authors

#include "core/task_pool.h"

#include "obs/instruments.h"
#include "obs/trace.h"

namespace crackstore {

TaskPool::TaskPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  obs::RecordTaskBatch(tasks.size());
  if (workers_.empty() || tasks.size() == 1) {
    for (auto& task : tasks) {
      task();
      obs::RecordTaskRun(/*submitter=*/true);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->trace = obs::CurrentTrace();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(batch);
    obs::AddQueueDepth(1);
  }
  work_cv_.notify_all();

  // The submitter drains its own batch alongside the workers; when it runs
  // out of unclaimed tasks it waits only for tasks already in flight on
  // other threads — progress is guaranteed even on a saturated pool.
  const size_t n = batch->tasks.size();
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    batch->tasks[i]();
    obs::RecordTaskRun(/*submitter=*/true);
    batch->done.fetch_add(1, std::memory_order_release);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return batch->done.load(std::memory_order_acquire) >= n;
  });
}

void TaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    std::shared_ptr<Batch> batch = queue_.front();
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->tasks.size()) {
      // Batch fully claimed: retire it from the queue (it may already be
      // gone if another worker retired it first).
      if (!queue_.empty() && queue_.front() == batch) {
        queue_.pop_front();
        obs::AddQueueDepth(-1);
      }
      continue;
    }
    lk.unlock();
    {
      obs::TraceBinding bind_trace(batch->trace);
      batch->tasks[i]();
      obs::RecordTaskRun(/*submitter=*/false);
    }
    if (batch->done.fetch_add(1, std::memory_order_release) + 1 ==
        batch->tasks.size()) {
      // Pairing the notify with a lock/unlock of mu_ closes the lost-wakeup
      // window against a submitter that checked the predicate just before
      // this increment landed.
      { std::lock_guard<std::mutex> g(mu_); }
      done_cv_.notify_all();
    }
    lk.lock();
  }
}

namespace {

struct GlobalPoolHolder {
  std::mutex mu;
  std::unique_ptr<TaskPool> pool = std::make_unique<TaskPool>(0);
};

GlobalPoolHolder& Holder() {
  static GlobalPoolHolder holder;
  return holder;
}

}  // namespace

TaskPool* TaskPool::Global() {
  GlobalPoolHolder& h = Holder();
  std::lock_guard<std::mutex> lk(h.mu);
  return h.pool.get();
}

void TaskPool::SetGlobalThreads(size_t num_threads) {
  GlobalPoolHolder& h = Holder();
  std::lock_guard<std::mutex> lk(h.mu);
  h.pool.reset();  // join the old workers before spawning the new ones
  h.pool = std::make_unique<TaskPool>(num_threads);
}

}  // namespace crackstore
