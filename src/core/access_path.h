// Copyright 2026 The CrackStore Authors
//
// ColumnAccessPath: the type-erased physical-acceleration layer of one
// column. The paper's architecture treats every query as "advice to crack
// the store" (§2.2); this interface is where that advice lands. A path owns
// whatever auxiliary state its strategy needs — a cracker index, a sorted
// copy, or nothing at all — and answers range selections behind a virtual
// interface, so the facade (AdaptiveStore), the column engine and the SQL
// executor never see element widths or strategy internals.
//
// Three concrete paths (each templated over int32_t/int64_t/double
// internally):
//   * crack — query-driven cracking with a pluggable CrackPolicy
//             (standard / stochastic / coarse, core/crack_policy.h);
//   * sort  — upfront sort on first touch, then binary search (Fig. 11's
//             "sort" line);
//   * scan  — stateless full scan per query (the "nocrack" baseline).
//
// String columns compose with all of the above through an encoding
// decorator: an order-preserving dictionary (storage/dictionary.h) presents
// the column as an int64 code domain, string predicates translate to code
// ranges (SelectTyped), and the inner path cracks/sorts/scans codes exactly
// like integers.
//
// Construction is lazy: building the accelerator is deferred to the first
// Select, so its investment is charged to the query that triggered it —
// exactly the accounting Figures 2-3 analyze.
//
// Paths also absorb DML (§2.2/§7's updates question): inserts and deletes
// land in per-path delta structures (pending list + tombstone set) and fold
// back into the accelerator per a DeltaMergePolicy — immediately, past a
// threshold, or rippled into the next selection — preserving the learned
// physical order across maintenance.

#ifndef CRACKSTORE_CORE_ACCESS_PATH_H_
#define CRACKSTORE_CORE_ACCESS_PATH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/crack_policy.h"
#include "core/cracker_index.h"
#include "core/merge_policy.h"
#include "core/oid_span_set.h"
#include "core/range_bounds.h"
#include "core/txn_manager.h"
#include "core/typed_range.h"
#include "storage/bat.h"
#include "obs/query_stats.h"
#include "util/result.h"

namespace crackstore {

/// How a column is accessed across a query sequence.
enum class AccessStrategy : uint8_t {
  kScan = 0,   ///< full scan per query (the "nocrack" baseline)
  kCrack = 1,  ///< query-driven cracking (the paper's proposal)
  kSort = 2,   ///< sort upfront on first touch, then binary search
};

const char* AccessStrategyName(AccessStrategy strategy);

/// Everything needed to build one column's access path.
struct AccessPathConfig {
  AccessStrategy strategy = AccessStrategy::kCrack;
  CrackPolicyOptions policy;  ///< pivot discipline (crack strategy only)
  MergeBudget merge_budget;   ///< piece-fusion budget (crack strategy only)
  DeltaMergeOptions delta_merge;  ///< when write deltas fold back
  /// Concurrent mode: the owner (AdaptiveStore) coordinates callers via a
  /// per-column reader/writer latch; the path guards its delta structures
  /// with an internal delta latch, answers shared-mode selections through
  /// piece-granular range locks, and defers every delta merge to the
  /// owner's maintenance hook (WantsMaintenance -> FlushDeltas under the
  /// exclusive latch). Off by default: the serial paths take no locks.
  bool concurrent = false;
};

/// What a path guarantees under the owner's per-column latch.
enum class PathConcurrency : uint8_t {
  kExclusiveOnly = 0,  ///< every operation needs the exclusive column latch
  kSharedReads = 1,    ///< Select/DML are safe under the shared column latch
};

/// Type-erased snapshot of one piece (int64-widened value decorations).
struct PieceInfo {
  size_t begin = 0;  ///< first position in the accelerator column
  size_t end = 0;    ///< one past the last position
  bool has_lo = false;
  int64_t lo = 0;          ///< if has_lo: every value v in the piece satisfies
  bool lo_strict = false;  ///< lo_strict ? v > lo : v >= lo
  bool has_hi = false;
  int64_t hi = 0;          ///< if has_hi: every value v satisfies
  bool hi_strict = false;  ///< hi_strict ? v < hi : v <= hi
  size_t size() const { return end - begin; }
};

/// An explicit pivot injection — advice arriving from outside any query
/// (a policy warm-up pass, the optimizer, an operator hint).
struct PivotChoice {
  int64_t value = 0;
  /// false: cut before the duplicates of `value` (left side < value);
  /// true: cut after them (left side <= value).
  bool after_duplicates = false;
};

/// Live policy state of one access path (SHOW POLICY / shell support).
struct PathPolicyStatus {
  CrackPolicy configured = CrackPolicy::kStandard;  ///< what was asked for
  CrackPolicy effective = CrackPolicy::kStandard;   ///< what runs now
  WorkloadPattern pattern = WorkloadPattern::kUnknown;  ///< detector verdict
  uint64_t switches = 0;        ///< runtime policy switches (kAuto)
  uint64_t samples = 0;         ///< queries the detector has seen
  double progressive_budget = 0.0;
  size_t progressive_pending = 0;  ///< rows awaiting progressive completion
  bool crack = false;  ///< true when the path actually cracks (policy is live)
};

/// The answer of one access-path selection. Cracked and sorted paths hand
/// out zero-copy contiguous views; scan (and coarse-policy edge pieces)
/// deliver an oid list instead.
struct AccessSelection {
  uint64_t count = 0;      ///< qualifying tuples (always set)
  bool contiguous = false; ///< true: `view` is valid; false: `oids` is
  CrackSelection view;     ///< parallel (values, oids) views
  std::vector<Oid> oids;   ///< qualifying source oids, ascending (only
                           ///< filled when the caller asked for oids)
  size_t bounds_dropped = 0;  ///< boundaries fused by the merge budget
  /// Zero-materialization answer shape: when `has_span_set` is true,
  /// `span_set` fully describes the qualifying rows (spans over the
  /// accelerator layout, exception overlay for hidden/tombstoned rows,
  /// extras for delta inserts and override re-admissions) — independent of
  /// whether `oids` was also gathered. Serial paths only: the spans borrow
  /// the accelerator layout, which concurrent statements may reshuffle
  /// after the answering range locks drop.
  bool has_span_set = false;
  OidSpanSet span_set;
};

/// What an aggregate pushdown computes in one span-kernel pass over the
/// qualifying rows (SIMD reduction over contiguous accelerator spans +
/// O(deltas) scalar corrections). Values are int64-widened: the SQL layer
/// only pushes integer aggregate columns down, and integer sums wrap mod
/// 2^64 exactly like the executor's scalar accumulator.
struct ColumnAggregates {
  uint64_t rows = 0;           ///< qualifying rows (COUNT of the range)
  uint64_t pushdown_rows = 0;  ///< rows reduced by span kernels
  int64_t sum = 0;             ///< wrapping sum over qualifying rows
  bool has_minmax = false;     ///< rows > 0
  int64_t min = 0;
  int64_t max = 0;
  IoStats io;                  ///< cost of the pushdown (facade-filled)
};

/// See file comment.
class ColumnAccessPath {
 public:
  virtual ~ColumnAccessPath() = default;

  virtual AccessStrategy strategy() const = 0;

  /// The policy configuration this path runs (meaningful for kCrack; other
  /// strategies report their config verbatim).
  virtual const AccessPathConfig& config() const = 0;

  /// Tuples in the underlying column.
  virtual size_t size() const = 0;

  /// Range selection over the path's *native accelerator domain* —
  /// element values for numeric columns, dictionary codes for encoded
  /// string columns. `want_oids` asks for the qualifying oid list when the
  /// answer cannot be contiguous (scan; coarse edge pieces; pending write
  /// deltas) — pass false for count-only queries to skip the gather.
  ///
  /// `view` (optional) is the caller's MVCC read filter: rows the snapshot
  /// cannot see are dropped from the physical answer, and rows whose value
  /// postdates the snapshot are re-admitted per view->overrides(). A null
  /// or inactive view reads the latest physical state (the pre-MVCC
  /// behavior, still filtered by the path's own vacuum tombstones).
  virtual AccessSelection Select(const RangeBounds& range, bool want_oids,
                                 IoStats* stats,
                                 const SnapshotView* view = nullptr) = 0;

  /// Typed range selection — the boundary the facade and SQL cross.
  /// Numeric endpoints lower to RangeBounds (the default implementation);
  /// encoding-aware paths translate string endpoints into their code
  /// domain. Mistyped predicates (string bounds on a numeric column and
  /// vice versa) come back as TypeMismatch instead of silently widening.
  /// `view`: see Select.
  virtual Result<AccessSelection> SelectTyped(const TypedRange& range,
                                              bool want_oids, IoStats* stats,
                                              const SnapshotView* view =
                                                  nullptr);

  /// Aggregate pushdown: COUNT/SUM/MIN/MAX of the rows matching `range`,
  /// computed by horizontal SIMD reductions over the answer spans instead
  /// of materializing an oid list. The range still cracks the column
  /// (queries remain advice); snapshot divergence lands as O(overrides)
  /// additive corrections — VisibleMask already excludes overridden and
  /// hidden rows from the span reduction, so re-admissions only add.
  /// Returns Unimplemented when this path cannot push the aggregate down
  /// (non-integer domains; budgeted progressive cracks, which must not
  /// exceed their write budget; concurrent coarse pieces) — callers fall
  /// back to the materialize-then-loop path.
  virtual Result<ColumnAggregates> AggregateRange(const RangeBounds& range,
                                                  IoStats* stats,
                                                  const SnapshotView* view =
                                                      nullptr) {
    (void)range;
    (void)stats;
    (void)view;
    return Status::Unimplemented("aggregate pushdown: unsupported path");
  }

  // --- DML ------------------------------------------------------------------
  // Contract: the owner of the base column applies the physical mutation
  // FIRST (append the row for Insert, overwrite the slot for Update; Delete
  // leaves the append-only base untouched), then notifies the path. A path
  // whose accelerator is not built yet absorbs Insert/Update for free — the
  // lazy build reads the already-mutated base — and only buffers tombstones.
  // Values cross the type-erased boundary dynamically typed (a fractional
  // double must reach a double column intact; int64-widening, as RangeBounds
  // does, would silently truncate it).

  /// Registers the freshly appended row `oid` carrying `value`.
  virtual Status Insert(const Value& value, Oid oid,
                        IoStats* stats = nullptr) = 0;

  /// Tombstones row `oid` *physically*; every later Select excludes it
  /// regardless of any SnapshotView. Under the MVCC facade deletes are
  /// version stamps first (core/txn_manager.h) and reach this method only
  /// when vacuum purges a version below the low-water snapshot; direct
  /// (non-transactional) users keep the original instant-delete semantics.
  virtual Status Delete(Oid oid, IoStats* stats = nullptr) = 0;

  /// Changes the value of live row `oid` (the oid survives, so sibling
  /// columns keep referencing the same logical row).
  virtual Status Update(Oid oid, const Value& value,
                        IoStats* stats = nullptr) = 0;

  /// Folds all pending deltas into the accelerator now, regardless of the
  /// configured DeltaMergePolicy. No-op for paths without pending state.
  /// Concurrent mode: requires the exclusive column latch.
  virtual Status FlushDeltas(IoStats* stats = nullptr) = 0;

  // --- concurrency contract (concurrent mode only) --------------------------
  // The owner serializes via a per-column std::shared_mutex. A path whose
  // concurrency() is kSharedReads accepts Select and DML calls under the
  // *shared* latch once SharedSelectReady() is true (readiness is
  // monotonic); builds, flushes and kExclusiveOnly paths need the exclusive
  // latch. Paths never merge deltas inline in concurrent mode — the owner
  // polls WantsMaintenance() and calls FlushDeltas under the exclusive
  // latch instead, so shared-mode readers only ever overlay deltas.

  /// The latch mode this path's operations need (see above). Constant for
  /// the path's lifetime.
  virtual PathConcurrency concurrency() const {
    return PathConcurrency::kExclusiveOnly;
  }

  /// True once selections are safe under the shared column latch (the
  /// accelerator is built). Monotonic; callable without any latch.
  virtual bool SharedSelectReady() const { return false; }

  /// True when the delta-merge policy says a fold is due; the owner should
  /// take the exclusive latch and FlushDeltas. Callable without any latch.
  virtual bool WantsMaintenance() const { return false; }

  /// Pending delta sizes and maintenance history (shell / EXPLAIN support).
  virtual size_t pending_inserts() const = 0;
  virtual size_t pending_deletes() const = 0;
  virtual size_t merges_performed() const = 0;

  /// Tuples physically held by the accelerator (cracker column / sorted
  /// copy / dictionary code column), 0 when none is built or the strategy
  /// keeps no copy (scan). Vacuum tests assert this shrinks after purged
  /// versions merge out.
  virtual size_t accel_tuples() const { return 0; }

  /// Pieces currently delimiting the column; {[0, n)} when never cracked.
  virtual std::vector<PieceInfo> Pieces() const = 0;

  /// Number of pieces (cheaper than Pieces().size()).
  virtual size_t NumPieces() const = 0;

  /// Applies an explicit pivot: cracks the column at `choice` outside any
  /// query. Unimplemented for paths without a piece table (sort, scan).
  virtual Status ApplyPolicy(const PivotChoice& choice,
                             IoStats* stats = nullptr) = 0;

  /// Human-readable physical state: accelerator kind, active policy, piece
  /// table. The per-column body of AdaptiveStore::ExplainColumn.
  virtual std::string Explain() const = 0;

  /// Live policy state (configured vs effective policy, detector verdict,
  /// progressive backlog). Non-cracking strategies report their configured
  /// policy with crack=false.
  virtual PathPolicyStatus PolicyStatus() const {
    PathPolicyStatus status;
    status.configured = config().policy.policy;
    status.effective = status.configured;
    status.progressive_budget = config().policy.progressive_budget;
    return status;
  }

  /// Re-arms the path's policy engine with fresh options at runtime (SET
  /// POLICY). No-op success for strategies without a policy engine, so a
  /// store-wide policy change never errors on scan/sort columns.
  /// Concurrent mode: requires the exclusive column latch.
  virtual Status SetPolicyOptions(const CrackPolicyOptions& options) {
    (void)options;
    return Status::OK();
  }
};

/// Builds the access path for `column` per `config`. The factory is
/// encoding-aware: kInt32/kInt64/kFloat64 columns run the strategy
/// directly; kString columns are wrapped in an order-preserving dictionary
/// encoding (storage/dictionary.h) whose int64 code column runs the very
/// same strategy underneath — every {encoding} x {strategy} x {policy}
/// combination shares one implementation. Anything else is Unimplemented.
/// Accelerator (and dictionary) construction is lazy (first Select pays).
Result<std::unique_ptr<ColumnAccessPath>> CreateColumnAccessPath(
    std::shared_ptr<Bat> column, const AccessPathConfig& config);

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_ACCESS_PATH_H_
