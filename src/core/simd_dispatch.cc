// Copyright 2026 The CrackStore Authors
//
// Kernel tier implementations. The central piece is CrackMasked: a Hoare
// partition whose scans run over 64-element predicate bitmaps ("out of
// register" offset buffers) instead of per-element branches. Bits are
// consumed in exact Hoare order — lowest misplaced index on the left
// frontier swapped with the highest misplaced index on the right frontier —
// so every tier performs the *same* swap sequence as the scalar reference:
// identical split, identical permuted layout, identical writes. The tiers
// differ only in how the 64-bit block predicate is computed (branchless
// scalar, AVX2 movemask, NEON lane packing).

#include "core/simd_dispatch.h"

#include <cstdlib>
#include <limits>
#include <type_traits>

#include "core/crack_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#define CRACKSTORE_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define CRACKSTORE_NEON_TIER 1
#include <arm_neon.h>
#endif

namespace crackstore {
namespace {

constexpr size_t kChunk = 64;  // elements per predicate bitmap

struct CmpLt {
  template <typename T>
  static bool Pred(T v, T pivot) { return v < pivot; }
};
struct CmpLe {
  template <typename T>
  static bool Pred(T v, T pivot) { return v <= pivot; }
};

// Branchless scalar block predicate: the compiler lowers Pred to setcc, so
// the fill has no data-dependent branches (the predicated tier's whole
// advantage over the scalar reference on branchy mispredicting inputs).
template <typename T, typename C>
uint64_t PredicatedMask64(const T* p, T pivot) {
  uint64_t m = 0;
  for (size_t k = 0; k < kChunk; ++k) {
    m |= uint64_t(C::Pred(p[k], pivot)) << k;
  }
  return m;
}

#if CRACKSTORE_X86

// AVX2 block predicates. Compare direction is chosen so no pivot adjustment
// is ever needed (cmpgt(pivot, v) for Lt avoids the pivot-1 underflow at
// INT_MIN; ~cmpgt(v, pivot) gives Le). Unaligned loads throughout: Cut()
// cracks at arbitrary piece offsets. For doubles the ordered compares
// (_CMP_LT_OQ/_CMP_LE_OQ) send NaN right, matching the scalar predicate.

__attribute__((target("avx2")))
uint64_t Avx2LtI32(const int32_t* p, int32_t pivot) {
  const __m256i pv = _mm256_set1_epi32(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 8; ++k) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8 * k));
    __m256i c = _mm256_cmpgt_epi32(pv, v);
    m |= uint64_t(uint32_t(_mm256_movemask_ps(_mm256_castsi256_ps(c))))
         << (8 * k);
  }
  return m;
}

__attribute__((target("avx2")))
uint64_t Avx2LeI32(const int32_t* p, int32_t pivot) {
  const __m256i pv = _mm256_set1_epi32(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 8; ++k) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8 * k));
    __m256i c = _mm256_cmpgt_epi32(v, pv);
    uint32_t gt = uint32_t(_mm256_movemask_ps(_mm256_castsi256_ps(c)));
    m |= uint64_t(~gt & 0xFFu) << (8 * k);
  }
  return m;
}

__attribute__((target("avx2")))
uint64_t Avx2LtI64(const int64_t* p, int64_t pivot) {
  const __m256i pv = _mm256_set1_epi64x(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * k));
    __m256i c = _mm256_cmpgt_epi64(pv, v);
    m |= uint64_t(uint32_t(_mm256_movemask_pd(_mm256_castsi256_pd(c))))
         << (4 * k);
  }
  return m;
}

__attribute__((target("avx2")))
uint64_t Avx2LeI64(const int64_t* p, int64_t pivot) {
  const __m256i pv = _mm256_set1_epi64x(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * k));
    __m256i c = _mm256_cmpgt_epi64(v, pv);
    uint32_t gt = uint32_t(_mm256_movemask_pd(_mm256_castsi256_pd(c)));
    m |= uint64_t(~gt & 0xFu) << (4 * k);
  }
  return m;
}

__attribute__((target("avx2")))
uint64_t Avx2LtF64(const double* p, double pivot) {
  const __m256d pv = _mm256_set1_pd(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    __m256d v = _mm256_loadu_pd(p + 4 * k);
    __m256d c = _mm256_cmp_pd(v, pv, _CMP_LT_OQ);
    m |= uint64_t(uint32_t(_mm256_movemask_pd(c))) << (4 * k);
  }
  return m;
}

__attribute__((target("avx2")))
uint64_t Avx2LeF64(const double* p, double pivot) {
  const __m256d pv = _mm256_set1_pd(pivot);
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    __m256d v = _mm256_loadu_pd(p + 4 * k);
    __m256d c = _mm256_cmp_pd(v, pv, _CMP_LE_OQ);
    m |= uint64_t(uint32_t(_mm256_movemask_pd(c))) << (4 * k);
  }
  return m;
}

template <typename T, typename C>
uint64_t Avx2Mask64(const T* p, T pivot) {
  constexpr bool lt = std::is_same_v<C, CmpLt>;
  if constexpr (std::is_same_v<T, int32_t>) {
    return lt ? Avx2LtI32(p, pivot) : Avx2LeI32(p, pivot);
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return lt ? Avx2LtI64(p, pivot) : Avx2LeI64(p, pivot);
  } else {
    static_assert(std::is_same_v<T, double>);
    return lt ? Avx2LtF64(p, pivot) : Avx2LeF64(p, pivot);
  }
}

#endif  // CRACKSTORE_X86

#if CRACKSTORE_NEON_TIER

// NEON block predicates (AArch64): per-lane compare masks folded to bits
// via a weighted horizontal add.

template <typename T, typename C>
uint64_t NeonMask64(const T* p, T pivot) {
  constexpr bool lt = std::is_same_v<C, CmpLt>;
  uint64_t m = 0;
  if constexpr (std::is_same_v<T, int32_t>) {
    const int32x4_t pv = vdupq_n_s32(pivot);
    const uint32x4_t lane_bits = {1u, 2u, 4u, 8u};
    for (int k = 0; k < 16; ++k) {
      int32x4_t v = vld1q_s32(p + 4 * k);
      uint32x4_t c = lt ? vcltq_s32(v, pv) : vcleq_s32(v, pv);
      m |= uint64_t(vaddvq_u32(vandq_u32(c, lane_bits))) << (4 * k);
    }
  } else if constexpr (std::is_same_v<T, int64_t>) {
    const int64x2_t pv = vdupq_n_s64(pivot);
    const uint64x2_t lane_bits = {1u, 2u};
    for (int k = 0; k < 32; ++k) {
      int64x2_t v = vld1q_s64(p + 2 * k);
      uint64x2_t c = lt ? vcltq_s64(v, pv) : vcleq_s64(v, pv);
      m |= uint64_t(vaddvq_u64(vandq_u64(c, lane_bits))) << (2 * k);
    }
  } else {
    static_assert(std::is_same_v<T, double>);
    const float64x2_t pv = vdupq_n_f64(pivot);
    const uint64x2_t lane_bits = {1u, 2u};
    for (int k = 0; k < 32; ++k) {
      float64x2_t v = vld1q_f64(p + 2 * k);
      uint64x2_t c = lt ? vcltq_f64(v, pv) : vcleq_f64(v, pv);
      m |= uint64_t(vaddvq_u64(vandq_u64(c, lane_bits))) << (2 * k);
    }
  }
  return m;
}

#endif  // CRACKSTORE_NEON_TIER

// Bitmap-frontier Hoare partition. Maintains one 64-element predicate
// bitmap per frontier (left bits = misplaced !pred, right bits = misplaced
// pred); pairs lowest-left with highest-right — the exact swap sequence of
// internal::Partition2 — and retires a chunk when its bitmap drains. The
// chunks are kept disjoint; once the region between the frontiers dips
// below one chunk the scalar reference finishes the suffix (Hoare is
// memoryless, so the suffix swaps are unchanged).
template <typename T, uint64_t (*MaskFn)(const T*, T), typename C>
CrackSplit CrackMasked(T* data, Oid* oids, size_t n, T pivot) {
  CrackSplit out;
  size_t lo = 0, hi = n;         // [0, lo) pred, [hi, n) !pred — retired
  uint64_t lmis = 0, rmis = 0;   // frontier bitmaps (0 = needs refill)
  size_t lbase = 0, rbase = 0;   // absolute base index of each bitmap
  bool small = false;
  while (!small) {
    while (lmis == 0) {
      if (hi - lo < 2 * kChunk) { small = true; break; }
      lmis = ~MaskFn(data + lo, pivot);
      lbase = lo;
      if (lmis == 0) lo += kChunk;
    }
    if (small) break;
    while (rmis == 0) {
      if (hi - (lbase + kChunk) < kChunk) { small = true; break; }
      rbase = hi - kChunk;
      rmis = MaskFn(data + rbase, pivot);
      if (rmis == 0) hi = rbase;
    }
    if (small) break;
    while (lmis != 0 && rmis != 0) {
      size_t i = lbase + size_t(__builtin_ctzll(lmis));
      size_t tb = 63 - size_t(__builtin_clzll(rmis));
      internal::SwapWithPayload(data, oids, i, rbase + tb);
      out.writes += 2;
      lmis &= lmis - 1;
      rmis ^= uint64_t{1} << tb;
    }
    if (lmis == 0) lo = lbase + kChunk;  // chunk is now all-pred
    if (rmis == 0) hi = rbase;           // chunk is now all-!pred
  }
  // Note: while a frontier bitmap is live its base equals the retire
  // cursor, so [lo, hi) always covers every unretired element.
  CrackSplit tail = internal::Partition2(
      data + lo, oids != nullptr ? oids + lo : nullptr, hi - lo,
      [pivot](T v) { return C::Pred(v, pivot); });
  out.split = lo + tail.split;
  out.writes += tail.writes;
  return out;
}

template <typename T, typename C>
CrackSplit CrackTwoTier(T* data, Oid* oids, size_t n, T pivot,
                        SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return internal::Partition2(data, oids, n, [pivot](T v) {
        return C::Pred(v, pivot);
      });
    case SimdTier::kAvx2:
#if CRACKSTORE_X86
      return CrackMasked<T, Avx2Mask64<T, C>, C>(data, oids, n, pivot);
#else
      break;
#endif
    case SimdTier::kNeon:
#if CRACKSTORE_NEON_TIER
      return CrackMasked<T, NeonMask64<T, C>, C>(data, oids, n, pivot);
#else
      break;
#endif
    case SimdTier::kPredicated:
      break;
  }
  return CrackMasked<T, PredicatedMask64<T, C>, C>(data, oids, n, pivot);
}

template <typename T, uint64_t (*LtFn)(const T*, T),
          uint64_t (*LeFn)(const T*, T)>
void RangeMaskBlocks(const T* data, size_t n, bool has_lo, T lo, bool lo_incl,
                     bool has_hi, T hi, bool hi_incl, uint64_t* bm) {
  size_t w = 0;
  size_t i = 0;
  for (; i + kChunk <= n; i += kChunk, ++w) {
    uint64_t m = ~uint64_t{0};
    if (has_lo) {
      m &= lo_incl ? ~LtFn(data + i, lo) : ~LeFn(data + i, lo);
    }
    if (has_hi) {
      m &= hi_incl ? LeFn(data + i, hi) : LtFn(data + i, hi);
    }
    bm[w] = m;
  }
  if (i < n) {
    uint64_t m = 0;
    for (size_t k = 0; i + k < n; ++k) {
      T v = data[i + k];
      bool ok = (!has_lo || (lo_incl ? v >= lo : v > lo)) &&
                (!has_hi || (hi_incl ? v <= hi : v < hi));
      m |= uint64_t(ok) << k;
    }
    bm[w] = m;
  }
}

// --- aggregate-pushdown reductions ----------------------------------------
// The canonical pattern every tier reproduces (see simd_dispatch.h): wrapping
// uint64 integer sums, the 8-stride double sum, order-free min/max. The
// scalar and predicated tiers share this implementation — a horizontal
// reduction has no data-dependent control flow for predication to remove
// (min/max lower to cmov/maxsd already) — and the NEON tier reuses it too:
// the reductions are bandwidth-bound, and keeping one non-x86 body keeps the
// parity contract trivial. AVX2 gets real vector bodies below.

template <typename T>
SpanAggregates AggCanonical(const T* p, size_t n, const uint64_t* bm) {
  SpanAggregates out;
  if constexpr (std::is_same_v<T, double>) {
    double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      bool ok = bm == nullptr || BitmapTest(bm, i);
      acc[i & 7] += ok ? p[i] : 0.0;
      if (ok) {
        ++out.count;
        if (p[i] < mn) mn = p[i];
        if (p[i] > mx) mx = p[i];
      }
    }
    double s = acc[0];
    for (int j = 1; j < 8; ++j) s += acc[j];
    out.sum_d = s;
    out.min_d = mn;
    out.max_d = mx;
  } else {
    uint64_t s = 0;
    T mn = std::numeric_limits<T>::max();
    T mx = std::numeric_limits<T>::min();
    for (size_t i = 0; i < n; ++i) {
      bool ok = bm == nullptr || BitmapTest(bm, i);
      if (ok) {
        s += uint64_t(int64_t(p[i]));
        ++out.count;
        if (p[i] < mn) mn = p[i];
        if (p[i] > mx) mx = p[i];
      }
    }
    out.sum_i = int64_t(s);
    out.min_i = mn;
    out.max_i = mx;
  }
  return out;
}

#if CRACKSTORE_X86

// Shared scalar tail + lane reduction for the AVX2 bodies. `i` is where the
// vector main loop stopped (a multiple of 8); the double tail continues the
// 8-stride pattern against the lane-extracted accumulators, so the whole
// span is summed exactly as the canonical body would.

__attribute__((target("avx2")))
SpanAggregates Avx2AggI32(const int32_t* p, size_t n, const uint64_t* bm) {
  SpanAggregates out;
  __m256i sum = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi32(std::numeric_limits<int32_t>::max());
  __m256i mx = _mm256_set1_epi32(std::numeric_limits<int32_t>::min());
  const __m256i lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    if (bm != nullptr) {
      uint32_t m8 = uint32_t(bm[i >> 6] >> (i & 63)) & 0xFFu;
      __m256i sel = _mm256_cmpeq_epi32(
          _mm256_and_si256(_mm256_set1_epi32(int(m8)), lane_bits), lane_bits);
      out.count += uint64_t(__builtin_popcount(m8));
      mn = _mm256_min_epi32(mn, _mm256_blendv_epi8(mn, v, sel));
      mx = _mm256_max_epi32(mx, _mm256_blendv_epi8(mx, v, sel));
      v = _mm256_and_si256(v, sel);
    } else {
      out.count += 8;
      mn = _mm256_min_epi32(mn, v);
      mx = _mm256_max_epi32(mx, v);
    }
    __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
    __m256i hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
    sum = _mm256_add_epi64(sum, _mm256_add_epi64(lo, hi));
  }
  alignas(32) int64_t s4[4];
  alignas(32) int32_t mn8[8], mx8[8];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s4), sum);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(mn8), mn);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(mx8), mx);
  uint64_t s =
      uint64_t(s4[0]) + uint64_t(s4[1]) + uint64_t(s4[2]) + uint64_t(s4[3]);
  int32_t mnv = mn8[0], mxv = mx8[0];
  for (int j = 1; j < 8; ++j) {
    if (mn8[j] < mnv) mnv = mn8[j];
    if (mx8[j] > mxv) mxv = mx8[j];
  }
  for (; i < n; ++i) {
    bool ok = bm == nullptr || BitmapTest(bm, i);
    if (ok) {
      s += uint64_t(int64_t(p[i]));
      ++out.count;
      if (p[i] < mnv) mnv = p[i];
      if (p[i] > mxv) mxv = p[i];
    }
  }
  out.sum_i = int64_t(s);
  out.min_i = mnv;
  out.max_i = mxv;
  return out;
}

__attribute__((target("avx2")))
SpanAggregates Avx2AggI64(const int64_t* p, size_t n, const uint64_t* bm) {
  SpanAggregates out;
  __m256i sum = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  __m256i mx = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  const __m256i lane_bits = _mm256_setr_epi64x(1, 2, 4, 8);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    __m256i vmin = v, vmax = v;
    if (bm != nullptr) {
      uint32_t m4 = uint32_t(bm[i >> 6] >> (i & 63)) & 0xFu;
      __m256i sel = _mm256_cmpeq_epi64(
          _mm256_and_si256(_mm256_set1_epi64x(int64_t(m4)), lane_bits),
          lane_bits);
      out.count += uint64_t(__builtin_popcount(m4));
      vmin = _mm256_blendv_epi8(mn, v, sel);
      vmax = _mm256_blendv_epi8(mx, v, sel);
      v = _mm256_and_si256(v, sel);
    } else {
      out.count += 4;
    }
    // AVX2 has no 64-bit min/max: compare + blend.
    mn = _mm256_blendv_epi8(mn, vmin, _mm256_cmpgt_epi64(mn, vmin));
    mx = _mm256_blendv_epi8(mx, vmax, _mm256_cmpgt_epi64(vmax, mx));
    sum = _mm256_add_epi64(sum, v);
  }
  alignas(32) int64_t s4[4], mn4[4], mx4[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s4), sum);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(mn4), mn);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(mx4), mx);
  uint64_t s =
      uint64_t(s4[0]) + uint64_t(s4[1]) + uint64_t(s4[2]) + uint64_t(s4[3]);
  int64_t mnv = mn4[0], mxv = mx4[0];
  for (int j = 1; j < 4; ++j) {
    if (mn4[j] < mnv) mnv = mn4[j];
    if (mx4[j] > mxv) mxv = mx4[j];
  }
  for (; i < n; ++i) {
    bool ok = bm == nullptr || BitmapTest(bm, i);
    if (ok) {
      s += uint64_t(p[i]);
      ++out.count;
      if (p[i] < mnv) mnv = p[i];
      if (p[i] > mxv) mxv = p[i];
    }
  }
  out.sum_i = int64_t(s);
  out.min_i = mnv;
  out.max_i = mxv;
  return out;
}

__attribute__((target("avx2")))
SpanAggregates Avx2AggF64(const double* p, size_t n, const uint64_t* bm) {
  SpanAggregates out;
  // Two accumulators = strides 0..3 and 4..7 of the canonical pattern.
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d mx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256i lane_bits = _mm256_setr_epi64x(1, 2, 4, 8);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d v0 = _mm256_loadu_pd(p + i);
    __m256d v1 = _mm256_loadu_pd(p + i + 4);
    if (bm != nullptr) {
      uint32_t m8 = uint32_t(bm[i >> 6] >> (i & 63)) & 0xFFu;
      __m256d sel0 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
          _mm256_and_si256(_mm256_set1_epi64x(int64_t(m8 & 0xF)), lane_bits),
          lane_bits));
      __m256d sel1 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
          _mm256_and_si256(_mm256_set1_epi64x(int64_t(m8 >> 4)), lane_bits),
          lane_bits));
      out.count += uint64_t(__builtin_popcount(m8));
      mn = _mm256_min_pd(mn, _mm256_blendv_pd(mn, v0, sel0));
      mn = _mm256_min_pd(mn, _mm256_blendv_pd(mn, v1, sel1));
      mx = _mm256_max_pd(mx, _mm256_blendv_pd(mx, v0, sel0));
      mx = _mm256_max_pd(mx, _mm256_blendv_pd(mx, v1, sel1));
      v0 = _mm256_and_pd(v0, sel0);  // masked-off lanes become +0.0
      v1 = _mm256_and_pd(v1, sel1);
    } else {
      out.count += 8;
      mn = _mm256_min_pd(mn, _mm256_min_pd(v0, v1));
      mx = _mm256_max_pd(mx, _mm256_max_pd(v0, v1));
    }
    a0 = _mm256_add_pd(a0, v0);
    a1 = _mm256_add_pd(a1, v1);
  }
  alignas(32) double acc[8], mn4[4], mx4[4];
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(mn4, mn);
  _mm256_storeu_pd(mx4, mx);
  double mnv = mn4[0], mxv = mx4[0];
  for (int j = 1; j < 4; ++j) {
    if (mn4[j] < mnv) mnv = mn4[j];
    if (mx4[j] > mxv) mxv = mx4[j];
  }
  for (; i < n; ++i) {
    bool ok = bm == nullptr || BitmapTest(bm, i);
    acc[i & 7] += ok ? p[i] : 0.0;
    if (ok) {
      ++out.count;
      if (p[i] < mnv) mnv = p[i];
      if (p[i] > mxv) mxv = p[i];
    }
  }
  double s = acc[0];
  for (int j = 1; j < 8; ++j) s += acc[j];
  out.sum_d = s;
  out.min_d = mnv;
  out.max_d = mxv;
  return out;
}

template <typename T>
SpanAggregates Avx2Agg(const T* p, size_t n, const uint64_t* bm) {
  if constexpr (std::is_same_v<T, int32_t>) {
    return Avx2AggI32(p, n, bm);
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return Avx2AggI64(p, n, bm);
  } else {
    static_assert(std::is_same_v<T, double>);
    return Avx2AggF64(p, n, bm);
  }
}

#endif  // CRACKSTORE_X86

template <typename T>
SpanAggregates AggDispatch(const T* p, size_t n, const uint64_t* bm,
                           SimdTier tier) {
#if CRACKSTORE_X86
  if (tier == SimdTier::kAvx2) return Avx2Agg(p, n, bm);
#else
  (void)tier;
#endif
  return AggCanonical(p, n, bm);
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kPredicated: return "predicated";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kNeon: return "neon";
  }
  return "unknown";
}

bool ParseSimdTier(const std::string& name, SimdTier* out) {
  if (name == "scalar") { *out = SimdTier::kScalar; return true; }
  if (name == "predicated") { *out = SimdTier::kPredicated; return true; }
  if (name == "avx2") { *out = SimdTier::kAvx2; return true; }
  if (name == "neon") { *out = SimdTier::kNeon; return true; }
  return false;
}

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
    case SimdTier::kPredicated:
      return true;
    case SimdTier::kAvx2:
#if CRACKSTORE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdTier::kNeon:
#if CRACKSTORE_NEON_TIER
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdTier BestSupportedSimdTier() {
  if (SimdTierSupported(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (SimdTierSupported(SimdTier::kNeon)) return SimdTier::kNeon;
  return SimdTier::kPredicated;
}

SimdTier ActiveSimdTier() {
  static const SimdTier tier = [] {
    const char* env = std::getenv("CRACKSTORE_SIMD");
    if (env != nullptr && *env != '\0') {
      SimdTier requested;
      if (ParseSimdTier(env, &requested) && SimdTierSupported(requested)) {
        return requested;
      }
      // Unknown or unsupported request: clamp to the best the hardware has.
    }
    return BestSupportedSimdTier();
  }();
  return tier;
}

size_t BitmapCount(const uint64_t* bm, size_t n) {
  size_t words = BitmapWords(n);
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += size_t(__builtin_popcountll(bm[w]));
  }
  return count;
}

void BitmapFill(uint64_t* bm, size_t n) {
  size_t words = BitmapWords(n);
  for (size_t w = 0; w < words; ++w) bm[w] = ~uint64_t{0};
  size_t tail = n & 63;
  if (words > 0 && tail != 0) bm[words - 1] = (uint64_t{1} << tail) - 1;
}

template <typename T>
CrackSplit CrackInTwoLtTier(T* data, Oid* oids, size_t n, T pivot,
                            SimdTier tier) {
  return CrackTwoTier<T, CmpLt>(data, oids, n, pivot, tier);
}

template <typename T>
CrackSplit CrackInTwoLeTier(T* data, Oid* oids, size_t n, T pivot,
                            SimdTier tier) {
  return CrackTwoTier<T, CmpLe>(data, oids, n, pivot, tier);
}

template <typename T>
Crack3Split CrackInThreeTier(T* data, Oid* oids, size_t n, T lo, bool lo_incl,
                             T hi, bool hi_incl, SimdTier tier) {
  if (tier == SimdTier::kScalar) {
    return CrackInThreeScalar(data, oids, n, lo, lo_incl, hi, hi_incl);
  }
  // Two crack-in-two passes: split off `below`, then split the remainder at
  // the upper boundary. Same split positions as the single-pass DNF.
  Crack3Split out;
  CrackSplit below = lo_incl ? CrackInTwoLtTier(data, oids, n, lo, tier)
                             : CrackInTwoLeTier(data, oids, n, lo, tier);
  out.first = below.split;
  T* mid = data + below.split;
  Oid* mid_oids = oids != nullptr ? oids + below.split : nullptr;
  size_t rest = n - below.split;
  CrackSplit upper = hi_incl ? CrackInTwoLeTier(mid, mid_oids, rest, hi, tier)
                             : CrackInTwoLtTier(mid, mid_oids, rest, hi, tier);
  out.second = below.split + upper.split;
  out.writes = below.writes + upper.writes;
  return out;
}

template <typename T>
void RangeMatchMask(const T* data, size_t n, bool has_lo, T lo, bool lo_incl,
                    bool has_hi, T hi, bool hi_incl, uint64_t* bm,
                    SimdTier tier) {
  if (n == 0) return;
  switch (tier) {
    case SimdTier::kScalar: {
      size_t words = BitmapWords(n);
      for (size_t w = 0; w < words; ++w) bm[w] = 0;
      for (size_t i = 0; i < n; ++i) {
        T v = data[i];
        bool ok = (!has_lo || (lo_incl ? v >= lo : v > lo)) &&
                  (!has_hi || (hi_incl ? v <= hi : v < hi));
        if (ok) BitmapSet(bm, i);
      }
      return;
    }
    case SimdTier::kAvx2:
#if CRACKSTORE_X86
      RangeMaskBlocks<T, Avx2Mask64<T, CmpLt>, Avx2Mask64<T, CmpLe>>(
          data, n, has_lo, lo, lo_incl, has_hi, hi, hi_incl, bm);
      return;
#else
      break;
#endif
    case SimdTier::kNeon:
#if CRACKSTORE_NEON_TIER
      RangeMaskBlocks<T, NeonMask64<T, CmpLt>, NeonMask64<T, CmpLe>>(
          data, n, has_lo, lo, lo_incl, has_hi, hi, hi_incl, bm);
      return;
#else
      break;
#endif
    case SimdTier::kPredicated:
      break;
  }
  RangeMaskBlocks<T, PredicatedMask64<T, CmpLt>, PredicatedMask64<T, CmpLe>>(
      data, n, has_lo, lo, lo_incl, has_hi, hi, hi_incl, bm);
}

template <typename T>
SpanAggregates AggregateSpanTier(const T* data, size_t n, SimdTier tier) {
  return AggDispatch(data, n, nullptr, tier);
}

template <typename T>
SpanAggregates AggregateSpanMaskedTier(const T* data, size_t n,
                                       const uint64_t* bm, SimdTier tier) {
  return AggDispatch(data, n, bm, tier);
}

template CrackSplit CrackInTwoLtTier<int32_t>(int32_t*, Oid*, size_t, int32_t,
                                              SimdTier);
template CrackSplit CrackInTwoLtTier<int64_t>(int64_t*, Oid*, size_t, int64_t,
                                              SimdTier);
template CrackSplit CrackInTwoLtTier<double>(double*, Oid*, size_t, double,
                                             SimdTier);
template CrackSplit CrackInTwoLeTier<int32_t>(int32_t*, Oid*, size_t, int32_t,
                                              SimdTier);
template CrackSplit CrackInTwoLeTier<int64_t>(int64_t*, Oid*, size_t, int64_t,
                                              SimdTier);
template CrackSplit CrackInTwoLeTier<double>(double*, Oid*, size_t, double,
                                             SimdTier);
template Crack3Split CrackInThreeTier<int32_t>(int32_t*, Oid*, size_t, int32_t,
                                               bool, int32_t, bool, SimdTier);
template Crack3Split CrackInThreeTier<int64_t>(int64_t*, Oid*, size_t, int64_t,
                                               bool, int64_t, bool, SimdTier);
template Crack3Split CrackInThreeTier<double>(double*, Oid*, size_t, double,
                                              bool, double, bool, SimdTier);
template void RangeMatchMask<int32_t>(const int32_t*, size_t, bool, int32_t,
                                      bool, bool, int32_t, bool, uint64_t*,
                                      SimdTier);
template void RangeMatchMask<int64_t>(const int64_t*, size_t, bool, int64_t,
                                      bool, bool, int64_t, bool, uint64_t*,
                                      SimdTier);
template void RangeMatchMask<double>(const double*, size_t, bool, double, bool,
                                     bool, double, bool, uint64_t*, SimdTier);
template SpanAggregates AggregateSpanTier<int32_t>(const int32_t*, size_t,
                                                   SimdTier);
template SpanAggregates AggregateSpanTier<int64_t>(const int64_t*, size_t,
                                                   SimdTier);
template SpanAggregates AggregateSpanTier<double>(const double*, size_t,
                                                  SimdTier);
template SpanAggregates AggregateSpanMaskedTier<int32_t>(const int32_t*,
                                                         size_t,
                                                         const uint64_t*,
                                                         SimdTier);
template SpanAggregates AggregateSpanMaskedTier<int64_t>(const int64_t*,
                                                         size_t,
                                                         const uint64_t*,
                                                         SimdTier);
template SpanAggregates AggregateSpanMaskedTier<double>(const double*, size_t,
                                                        const uint64_t*,
                                                        SimdTier);

}  // namespace crackstore
