// Copyright 2026 The CrackStore Authors

#include "core/workload_monitor.h"

#include <cmath>

namespace crackstore {

const char* WorkloadPatternName(WorkloadPattern pattern) {
  switch (pattern) {
    case WorkloadPattern::kUnknown:
      return "unknown";
    case WorkloadPattern::kRandom:
      return "random";
    case WorkloadPattern::kSequential:
      return "sequential";
    case WorkloadPattern::kSkewed:
      return "skewed";
  }
  return "?";
}

WorkloadMonitor::WorkloadMonitor(WorkloadMonitorOptions options)
    : options_(options) {
  if (options_.window < 2) options_.window = 2;
  if (options_.min_samples < 2) options_.min_samples = 2;
  ring_.resize(options_.window, 0.0);
}

void WorkloadMonitor::Record(double sample) {
  if (total_ == 0) {
    min_seen_ = sample;
    max_seen_ = sample;
  } else {
    if (sample < min_seen_) min_seen_ = sample;
    if (sample > max_seen_) max_seen_ = sample;
  }
  ring_[head_] = sample;
  head_ = (head_ + 1) % options_.window;
  if (count_ < options_.window) ++count_;
  ++total_;
}

WorkloadPattern WorkloadMonitor::Classify() const {
  if (count_ < options_.min_samples) return WorkloadPattern::kUnknown;

  // Walk the window chronologically: the oldest live entry sits at head_
  // when the ring is full, at slot 0 otherwise.
  const size_t start = (count_ == options_.window) ? head_ : 0;
  const double span = max_seen_ - min_seen_;
  const double local_limit = options_.locality_fraction * span;

  size_t ups = 0;
  size_t downs = 0;
  size_t local = 0;
  const size_t steps = count_ - 1;
  double prev = ring_[start];
  for (size_t i = 1; i < count_; ++i) {
    const double cur = ring_[(start + i) % options_.window];
    const double delta = cur - prev;
    if (delta > 0) ++ups;
    if (delta < 0) ++downs;
    if (std::fabs(delta) <= local_limit) ++local;
    prev = cur;
  }

  const double monotone_frac =
      static_cast<double>(ups > downs ? ups : downs) / steps;
  if (monotone_frac >= options_.monotone_threshold)
    return WorkloadPattern::kSequential;
  // span == 0 makes every delta local: a workload pinned to one value is
  // the extreme skewed case.
  const double local_frac = static_cast<double>(local) / steps;
  if (local_frac >= options_.locality_threshold)
    return WorkloadPattern::kSkewed;
  return WorkloadPattern::kRandom;
}

void WorkloadMonitor::Reset() {
  head_ = 0;
  count_ = 0;
  total_ = 0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

}  // namespace crackstore
