// Copyright 2026 The CrackStore Authors
//
// Latching primitives for concurrent access to a cracked store. Cracking is
// hostile to naive concurrency — every read is a potential write to the
// piece layout — so the store uses a three-level protocol:
//
//   1. a per-column reader/writer latch (std::shared_mutex, owned by the
//      facade): DML and shared-capable selections take it shared, builds,
//      delta merges and policy-steered selections take it exclusive;
//   2. a per-column *delta latch* (plain mutex): writers append pending
//      inserts / tombstones under it, readers overlay the delta under it;
//   3. a piece-granular RangeLockTable (this file) keyed on slot ranges of
//      the cracker column: queries whose bounds land in different pieces
//      shuffle their pieces concurrently under the *shared* column latch,
//      because pieces are disjoint slot ranges.
//
// Lock order (outer to inner): column latch(es) -> table base latch ->
// {range locks | delta latch | tombstone latch | registry/io leaves}. A
// thread never holds two range locks at once and never sleeps while holding
// one, so the table needs no deadlock detection.

#ifndef CRACKSTORE_CORE_LATCH_H_
#define CRACKSTORE_CORE_LATCH_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/instruments.h"
#include "util/macros.h"

namespace crackstore {

/// A lock table over half-open slot ranges [begin, end). Two holders
/// conflict iff their ranges overlap and at least one is exclusive. The
/// holder set is expected to stay small (one entry per in-flight query), so
/// conflict checks are a linear scan under one mutex; the expensive work —
/// the crack kernel's shuffle — runs outside it.
class RangeLockTable {
 public:
  RangeLockTable() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(RangeLockTable);

  /// Blocks until [begin, end) has no conflicting holder, then registers
  /// the caller. Empty ranges (begin >= end) are no-ops.
  void Acquire(size_t begin, size_t end, bool exclusive) {
    if (begin >= end) return;
    std::unique_lock<std::mutex> lk(mu_);
    obs::RecordLatchAcquisition();
    if (Conflicts(begin, end, exclusive)) {
      // Only a blocked acquisition pays for the clock reads; the fast path
      // above stays a mutex + linear scan.
      const auto wait_start = std::chrono::steady_clock::now();
      cv_.wait(lk, [&] { return !Conflicts(begin, end, exclusive); });
      const auto waited = std::chrono::steady_clock::now() - wait_start;
      obs::RecordLatchWait(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()));
    }
    held_.push_back(Held{begin, end, exclusive});
  }

  /// Releases one registration made by Acquire with identical arguments.
  void Release(size_t begin, size_t end, bool exclusive) {
    if (begin >= end) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = held_.begin(); it != held_.end(); ++it) {
        if (it->begin == begin && it->end == end &&
            it->exclusive == exclusive) {
          held_.erase(it);
          break;
        }
      }
    }
    cv_.notify_all();
  }

  /// Holders currently registered (test support).
  size_t holders() const {
    std::lock_guard<std::mutex> lk(mu_);
    return held_.size();
  }

 private:
  struct Held {
    size_t begin;
    size_t end;
    bool exclusive;
  };

  bool Conflicts(size_t begin, size_t end, bool exclusive) const {
    for (const Held& h : held_) {
      if (h.begin < end && begin < h.end && (exclusive || h.exclusive)) {
        return true;
      }
    }
    return false;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Held> held_;
};

/// RAII holder of one RangeLockTable registration. Movable so factories can
/// hand guards out; the moved-from guard releases nothing.
class RangeLockGuard {
 public:
  RangeLockGuard() = default;

  RangeLockGuard(RangeLockTable* table, size_t begin, size_t end,
                 bool exclusive)
      : table_(table), begin_(begin), end_(end), exclusive_(exclusive) {
    if (table_ != nullptr) table_->Acquire(begin_, end_, exclusive_);
  }

  RangeLockGuard(RangeLockGuard&& other) noexcept
      : table_(other.table_),
        begin_(other.begin_),
        end_(other.end_),
        exclusive_(other.exclusive_) {
    other.table_ = nullptr;
  }

  RangeLockGuard& operator=(RangeLockGuard&& other) noexcept {
    if (this != &other) {
      Reset();
      table_ = other.table_;
      begin_ = other.begin_;
      end_ = other.end_;
      exclusive_ = other.exclusive_;
      other.table_ = nullptr;
    }
    return *this;
  }

  RangeLockGuard(const RangeLockGuard&) = delete;
  RangeLockGuard& operator=(const RangeLockGuard&) = delete;

  ~RangeLockGuard() { Reset(); }

  void Reset() {
    if (table_ != nullptr) {
      table_->Release(begin_, end_, exclusive_);
      table_ = nullptr;
    }
  }

 private:
  RangeLockTable* table_ = nullptr;
  size_t begin_ = 0;
  size_t end_ = 0;
  bool exclusive_ = false;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_LATCH_H_
