// Copyright 2026 The CrackStore Authors

#include "core/oid_set_ops.h"

#include <algorithm>
#include <iterator>

namespace crackstore {

std::vector<Oid> IntersectSortedLinear(const std::vector<Oid>& a,
                                       const std::vector<Oid>& b) {
  std::vector<Oid> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Oid> IntersectSortedGalloping(const std::vector<Oid>& small,
                                          const std::vector<Oid>& large) {
  std::vector<Oid> out;
  out.reserve(small.size());
  size_t cursor = 0;
  size_t n = large.size();
  for (Oid probe : small) {
    if (cursor >= n) break;
    // Exponential search: double the step until large[cursor+step] >= probe
    // (or the end), establishing the window (cursor+step/2, cursor+step].
    size_t step = 1;
    while (cursor + step < n && large[cursor + step] < probe) step <<= 1;
    size_t window_lo = cursor + step / 2;
    size_t window_hi = std::min(cursor + step + 1, n);
    const Oid* first = large.data() + window_lo;
    const Oid* last = large.data() + window_hi;
    const Oid* hit = std::lower_bound(first, last, probe);
    cursor = static_cast<size_t>(hit - large.data());
    if (cursor < n && large[cursor] == probe) {
      out.push_back(probe);
      ++cursor;  // oid lists are duplicate-free; move past the match
    }
  }
  return out;
}

bool ShouldGallop(size_t a_size, size_t b_size) {
  size_t small = std::min(a_size, b_size);
  size_t large = std::max(a_size, b_size);
  return small > 0 && large / small >= kGallopRatio;
}

std::vector<Oid> IntersectSorted(const std::vector<Oid>& a,
                                 const std::vector<Oid>& b) {
  const std::vector<Oid>& small = a.size() <= b.size() ? a : b;
  const std::vector<Oid>& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return {};
  if (ShouldGallop(small.size(), large.size())) {
    return IntersectSortedGalloping(small, large);
  }
  return IntersectSortedLinear(small, large);
}

}  // namespace crackstore
