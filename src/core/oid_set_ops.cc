// Copyright 2026 The CrackStore Authors

#include "core/oid_set_ops.h"

#include <algorithm>
#include <iterator>

namespace crackstore {

std::vector<Oid> IntersectSortedLinear(const std::vector<Oid>& a,
                                       const std::vector<Oid>& b) {
  std::vector<Oid> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Oid> IntersectSortedGalloping(const std::vector<Oid>& small,
                                          const std::vector<Oid>& large) {
  std::vector<Oid> out;
  out.reserve(small.size());
  size_t cursor = 0;
  size_t n = large.size();
  for (Oid probe : small) {
    if (cursor >= n) break;
    // Exponential search: double the step until large[cursor+step] >= probe
    // (or the end), establishing the window (cursor+step/2, cursor+step].
    size_t step = 1;
    while (cursor + step < n && large[cursor + step] < probe) step <<= 1;
    size_t window_lo = cursor + step / 2;
    size_t window_hi = std::min(cursor + step + 1, n);
    const Oid* first = large.data() + window_lo;
    const Oid* last = large.data() + window_hi;
    const Oid* hit = std::lower_bound(first, last, probe);
    cursor = static_cast<size_t>(hit - large.data());
    if (cursor < n && large[cursor] == probe) {
      out.push_back(probe);
      ++cursor;  // oid lists are duplicate-free; move past the match
    }
  }
  return out;
}

bool ShouldGallop(size_t a_size, size_t b_size) {
  size_t small = std::min(a_size, b_size);
  size_t large = std::max(a_size, b_size);
  return small > 0 && large / small >= kGallopRatio;
}

std::vector<Oid> IntersectSorted(const std::vector<Oid>& a,
                                 const std::vector<Oid>& b) {
  const std::vector<Oid>& small = a.size() <= b.size() ? a : b;
  const std::vector<Oid>& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return {};
  if (ShouldGallop(small.size(), large.size())) {
    return IntersectSortedGalloping(small, large);
  }
  return IntersectSortedLinear(small, large);
}

bool SpanSetIntersectable(const OidSpanSet& set) { return set.identity(); }

std::vector<Oid> IntersectWithIdentitySpans(const std::vector<Oid>& sorted,
                                            const OidSpanSet& set) {
  std::vector<Oid> out;
  out.reserve(std::min<uint64_t>(sorted.size(), set.count()));
  const Oid base = set.identity_base();
  size_t cursor = 0;
  size_t concat = 0;  // concatenated span position of each span's begin
  for (const OidSpan& s : set.spans()) {
    if (cursor >= sorted.size()) break;
    const Oid span_lo = base + s.begin;
    const Oid span_hi = base + s.end;
    const Oid* first = sorted.data() + cursor;
    const Oid* last = sorted.data() + sorted.size();
    cursor = static_cast<size_t>(std::lower_bound(first, last, span_lo) -
                                 sorted.data());
    while (cursor < sorted.size() && sorted[cursor] < span_hi) {
      const Oid oid = sorted[cursor];
      if (!set.IsException(concat + static_cast<size_t>(oid - span_lo))) {
        out.push_back(oid);
      }
      ++cursor;
    }
    concat += s.size();
  }
  if (set.extras() > 0) {
    std::vector<Oid> extras = set.extra_oids();
    std::sort(extras.begin(), extras.end());
    std::vector<Oid> hits = IntersectSorted(sorted, extras);
    if (!hits.empty()) {
      // Extras (delta inserts, override re-admissions) can fall below the
      // span oids; one merge keeps the result ascending.
      size_t mid = out.size();
      out.insert(out.end(), hits.begin(), hits.end());
      std::inplace_merge(out.begin(), out.begin() + mid, out.end());
    }
  }
  return out;
}

OidSpanSet IntersectIdentitySpanSets(const OidSpanSet& a,
                                     const OidSpanSet& b) {
  OidSpanSet out;
  out.BindIdentity(0);  // spans in absolute oid space
  const Oid base_a = a.identity_base();
  const Oid base_b = b.identity_base();
  size_t ia = 0;
  size_t ib = 0;
  const auto& sa = a.spans();
  const auto& sb = b.spans();
  while (ia < sa.size() && ib < sb.size()) {
    const Oid lo_a = base_a + sa[ia].begin;
    const Oid hi_a = base_a + sa[ia].end;
    const Oid lo_b = base_b + sb[ib].begin;
    const Oid hi_b = base_b + sb[ib].end;
    const Oid lo = std::max(lo_a, lo_b);
    const Oid hi = std::min(hi_a, hi_b);
    if (lo < hi) {
      out.AddSpan(static_cast<size_t>(lo), static_cast<size_t>(hi));
    }
    if (hi_a <= hi_b) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return out;
}

}  // namespace crackstore
