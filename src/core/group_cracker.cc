// Copyright 2026 The CrackStore Authors

#include "core/group_cracker.h"

#include <algorithm>
#include <map>

#include "core/txn_manager.h"
#include "util/string_util.h"

namespace crackstore {

namespace {

template <typename T>
GroupCrackResult CrackGroupTyped(const std::shared_ptr<Bat>& column,
                                 IoStats* stats) {
  size_t n = column->size();
  const T* src = column->TailData<T>();
  Oid base = column->head_base();

  // Pass 1: histogram in value order (ordered map keeps output deterministic
  // and the pieces sorted, which later enables merge-join style consumption).
  std::map<T, size_t> histogram;
  for (size_t i = 0; i < n; ++i) ++histogram[src[i]];

  // Assign contiguous ranges.
  GroupCrackResult out;
  out.values = Bat::Create(column->tail_type(), column->name() + "#group");
  out.oids = Bat::Create(ValueType::kOid, column->name() + "#groupmap");
  out.values->Reserve(n);
  out.oids->Reserve(n);
  std::map<T, size_t> cursor;  // next write slot per group
  size_t offset = 0;
  for (const auto& [value, count] : histogram) {
    GroupPiece piece;
    piece.value = static_cast<int64_t>(value);
    piece.begin = offset;
    piece.end = offset + count;
    out.groups.push_back(piece);
    cursor[value] = offset;
    offset += count;
  }

  // Pass 2: scatter values and oids into their cluster slots.
  T* dst = out.values->MutableTailData<T>();
  Oid* om = out.oids->MutableTailData<Oid>();
  for (size_t i = 0; i < n; ++i) {
    size_t& slot = cursor[src[i]];
    dst[slot] = src[i];
    om[slot] = base + i;
    ++slot;
  }
  out.values->SetCountUnsafe(n);
  out.oids->SetCountUnsafe(n);

  if (stats != nullptr) {
    stats->tuples_read += 2 * n;  // histogram pass + scatter pass
    stats->tuples_written += n;
    ++stats->cracks;
    stats->pieces_created += out.groups.size();
  }
  return out;
}

}  // namespace

Result<GroupCrackResult> CrackGroup(const std::shared_ptr<Bat>& column,
                                    IoStats* stats) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  switch (column->tail_type()) {
    case ValueType::kInt32:
      return CrackGroupTyped<int32_t>(column, stats);
    case ValueType::kInt64:
      return CrackGroupTyped<int64_t>(column, stats);
    default:
      return Status::Unimplemented(
          StrFormat("group cracking over %s not supported",
                    ValueTypeName(column->tail_type())));
  }
}

Result<std::vector<GroupAggregate>> AggregateGroups(
    const GroupCrackResult& cracked, const std::shared_ptr<Bat>& agg_column,
    AggKind kind, IoStats* stats, const SnapshotView* group_view,
    const SnapshotView* agg_view) {
  if (agg_column == nullptr) return Status::InvalidArgument("null column");
  if (agg_column->tail_type() != ValueType::kInt64 &&
      agg_column->tail_type() != ValueType::kInt32) {
    return Status::Unimplemented("aggregate column must be integer");
  }
  bool is32 = agg_column->tail_type() == ValueType::kInt32;
  bool gv_active = group_view != nullptr && group_view->active();
  bool av_active = agg_view != nullptr && agg_view->active();
  Oid base = agg_column->head_base();
  auto fetch = [&](Oid oid) -> int64_t {
    if (av_active) {
      // The aggregate input at the snapshot: the physical cell is newer
      // than the snapshot for overridden rows.
      if (const Value* ov = agg_view->OverrideFor(oid)) return ov->ToInt64();
    }
    size_t idx = static_cast<size_t>(oid - base);
    CRACK_DCHECK(idx < agg_column->size());
    return is32 ? agg_column->Get<int32_t>(idx) : agg_column->Get<int64_t>(idx);
  };

  if (gv_active) {
    // Transactional pass: membership is decided per row against the
    // snapshot, so the clustered fast path below (piece size == group
    // cardinality) does not apply. Rows hidden at the view drop out; rows
    // whose group key is overridden migrate to their snapshot key's group
    // (possibly one no physical piece holds).
    struct Accum {
      int64_t count = 0;
      int64_t sum = 0;
      int64_t mn = INT64_MAX;
      int64_t mx = INT64_MIN;
    };
    std::map<int64_t, Accum> groups;
    auto admit = [&](int64_t group, Oid oid) {
      Accum& a = groups[group];
      ++a.count;
      if (kind != AggKind::kCount) {
        int64_t v = fetch(oid);
        a.sum += v;
        a.mn = std::min(a.mn, v);
        a.mx = std::max(a.mx, v);
      }
    };
    const Oid* oids = cracked.oids->TailData<Oid>();
    for (const GroupPiece& g : cracked.groups) {
      for (size_t i = g.begin; i < g.end; ++i) {
        if (group_view->Hides(oids[i])) continue;
        admit(g.value, oids[i]);
      }
    }
    for (const auto& [oid, value] : group_view->overrides()) {
      admit(value.ToInt64(), oid);
    }
    std::vector<GroupAggregate> out;
    out.reserve(groups.size());
    for (const auto& [group, a] : groups) {
      GroupAggregate agg;
      agg.group = group;
      switch (kind) {
        case AggKind::kCount:
          agg.value = a.count;
          break;
        case AggKind::kSum:
          agg.value = a.sum;
          break;
        case AggKind::kMin:
          agg.value = a.mn;
          break;
        case AggKind::kMax:
          agg.value = a.mx;
          break;
      }
      out.push_back(agg);
    }
    if (stats != nullptr) stats->tuples_read += cracked.oids->size();
    return out;
  }

  std::vector<GroupAggregate> out;
  out.reserve(cracked.groups.size());
  const Oid* oids = cracked.oids->TailData<Oid>();
  for (const GroupPiece& g : cracked.groups) {
    GroupAggregate agg;
    agg.group = g.value;
    switch (kind) {
      case AggKind::kCount:
        agg.value = static_cast<int64_t>(g.size());
        break;
      case AggKind::kSum: {
        int64_t sum = 0;
        for (size_t i = g.begin; i < g.end; ++i) sum += fetch(oids[i]);
        agg.value = sum;
        break;
      }
      case AggKind::kMin: {
        int64_t mn = INT64_MAX;
        for (size_t i = g.begin; i < g.end; ++i) {
          mn = std::min(mn, fetch(oids[i]));
        }
        agg.value = mn;
        break;
      }
      case AggKind::kMax: {
        int64_t mx = INT64_MIN;
        for (size_t i = g.begin; i < g.end; ++i) {
          mx = std::max(mx, fetch(oids[i]));
        }
        agg.value = mx;
        break;
      }
    }
    out.push_back(agg);
  }
  if (stats != nullptr && kind != AggKind::kCount) {
    stats->tuples_read += cracked.oids->size();
  }
  return out;
}

}  // namespace crackstore
