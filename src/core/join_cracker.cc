// Copyright 2026 The CrackStore Authors

#include "core/join_cracker.h"

#include <unordered_map>
#include <unordered_set>

#include "core/crack_kernels.h"
#include "util/string_util.h"

namespace crackstore {

namespace {

/// Clones `src` into a shuffle-able (values, oids) pair.
JoinCrackSide CloneSide(const std::shared_ptr<Bat>& src, IoStats* stats) {
  JoinCrackSide side;
  side.values = src->Clone(src->name() + "#joincrack");
  side.oids = Bat::Create(ValueType::kOid, src->name() + "#joinmap");
  size_t n = src->size();
  side.oids->Reserve(n);
  Oid* om = side.oids->MutableTailData<Oid>();
  Oid base = src->head_base();
  for (size_t i = 0; i < n; ++i) om[i] = base + i;
  side.oids->SetCountUnsafe(n);
  if (stats != nullptr) {
    stats->tuples_read += n;
    stats->tuples_written += n;
  }
  return side;
}

template <typename T>
void PartitionByMembership(JoinCrackSide* side,
                           const std::unordered_set<T>& other_keys,
                           IoStats* stats) {
  T* data = side->values->MutableTailData<T>();
  Oid* oids = side->oids->MutableTailData<Oid>();
  size_t n = side->values->size();
  CrackSplit split = internal::Partition2(
      data, oids, n, [&other_keys](T v) { return other_keys.count(v) > 0; });
  side->split = split.split;
  if (stats != nullptr) {
    stats->tuples_read += n;
    stats->tuples_written += split.writes;
    ++stats->cracks;
    stats->pieces_created += 2;
  }
}

template <typename T>
JoinCrackResult CrackJoinTyped(const std::shared_ptr<Bat>& left,
                               const std::shared_ptr<Bat>& right,
                               IoStats* stats) {
  JoinCrackResult out;
  out.left = CloneSide(left, stats);
  out.right = CloneSide(right, stats);

  // Key sets of both sides (the semijoin hash builds).
  std::unordered_set<T> left_keys;
  left_keys.reserve(left->size() * 2);
  const T* ld = left->TailData<T>();
  for (size_t i = 0; i < left->size(); ++i) left_keys.insert(ld[i]);

  std::unordered_set<T> right_keys;
  right_keys.reserve(right->size() * 2);
  const T* rd = right->TailData<T>();
  for (size_t i = 0; i < right->size(); ++i) right_keys.insert(rd[i]);

  if (stats != nullptr) {
    stats->tuples_read += left->size() + right->size();
  }

  PartitionByMembership<T>(&out.left, right_keys, stats);
  PartitionByMembership<T>(&out.right, left_keys, stats);
  return out;
}

template <typename T>
std::vector<OidPair> JoinAreasTyped(const JoinCrackResult& cracked,
                                    IoStats* stats) {
  // Hash join over the matching areas only.
  BatView lv = cracked.left.matching();
  BatView rv = cracked.right.matching();
  BatView lo = cracked.left.matching_oids();
  BatView ro = cracked.right.matching_oids();

  std::unordered_map<T, std::vector<Oid>> build;
  build.reserve(lv.size() * 2);
  const T* ld = lv.data<T>();
  for (size_t i = 0; i < lv.size(); ++i) {
    build[ld[i]].push_back(lo.Get<Oid>(i));
  }
  std::vector<OidPair> out;
  const T* rd = rv.data<T>();
  for (size_t i = 0; i < rv.size(); ++i) {
    auto it = build.find(rd[i]);
    if (it == build.end()) continue;
    Oid right_oid = ro.Get<Oid>(i);
    for (Oid left_oid : it->second) out.push_back(OidPair{left_oid, right_oid});
  }
  if (stats != nullptr) {
    stats->tuples_read += lv.size() + rv.size();
    stats->tuples_written += out.size();
  }
  return out;
}

template <typename T>
std::vector<OidPair> HashJoinTyped(const std::shared_ptr<Bat>& left,
                                   const std::shared_ptr<Bat>& right,
                                   IoStats* stats) {
  std::unordered_map<T, std::vector<Oid>> build;
  build.reserve(left->size() * 2);
  const T* ld = left->TailData<T>();
  Oid lbase = left->head_base();
  for (size_t i = 0; i < left->size(); ++i) {
    build[ld[i]].push_back(lbase + i);
  }
  std::vector<OidPair> out;
  const T* rd = right->TailData<T>();
  Oid rbase = right->head_base();
  for (size_t i = 0; i < right->size(); ++i) {
    auto it = build.find(rd[i]);
    if (it == build.end()) continue;
    for (Oid l : it->second) out.push_back(OidPair{l, rbase + i});
  }
  if (stats != nullptr) {
    stats->tuples_read += left->size() + right->size();
    stats->tuples_written += out.size();
  }
  return out;
}

}  // namespace

Result<JoinCrackResult> CrackJoin(const std::shared_ptr<Bat>& left,
                                  const std::shared_ptr<Bat>& right,
                                  IoStats* stats) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join operand");
  }
  if (left->tail_type() != right->tail_type()) {
    return Status::TypeMismatch(
        StrFormat("join type mismatch: %s vs %s",
                  ValueTypeName(left->tail_type()),
                  ValueTypeName(right->tail_type())));
  }
  switch (left->tail_type()) {
    case ValueType::kInt32:
      return CrackJoinTyped<int32_t>(left, right, stats);
    case ValueType::kInt64:
      return CrackJoinTyped<int64_t>(left, right, stats);
    case ValueType::kFloat64:
      return CrackJoinTyped<double>(left, right, stats);
    default:
      return Status::Unimplemented("join cracking requires numeric columns");
  }
}

std::vector<OidPair> JoinMatchingAreas(const JoinCrackResult& cracked,
                                       IoStats* stats) {
  switch (cracked.left.values->tail_type()) {
    case ValueType::kInt32:
      return JoinAreasTyped<int32_t>(cracked, stats);
    case ValueType::kInt64:
      return JoinAreasTyped<int64_t>(cracked, stats);
    case ValueType::kFloat64:
      return JoinAreasTyped<double>(cracked, stats);
    default:
      CRACK_DCHECK(false);
      return {};
  }
}

Result<std::vector<OidPair>> HashJoinOids(const std::shared_ptr<Bat>& left,
                                          const std::shared_ptr<Bat>& right,
                                          IoStats* stats) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join operand");
  }
  if (left->tail_type() != right->tail_type()) {
    return Status::TypeMismatch("join type mismatch");
  }
  switch (left->tail_type()) {
    case ValueType::kInt32:
      return HashJoinTyped<int32_t>(left, right, stats);
    case ValueType::kInt64:
      return HashJoinTyped<int64_t>(left, right, stats);
    case ValueType::kFloat64:
      return HashJoinTyped<double>(left, right, stats);
    default:
      return Status::Unimplemented("hash join requires numeric columns");
  }
}

}  // namespace crackstore
