// Copyright 2026 The CrackStore Authors

#include "core/join_cracker.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/crack_kernels.h"
#include "core/txn_manager.h"
#include "util/string_util.h"

namespace crackstore {

namespace {

bool ViewActive(const SnapshotView* view) {
  return view != nullptr && view->active();
}

/// Narrows an override Value into the join key domain (mirrors the access
/// paths' defensive cast).
template <typename T>
T CastKey(const Value& v) {
  if constexpr (std::is_floating_point_v<T>) {
    return v.is_double() ? static_cast<T>(v.AsDouble())
                         : static_cast<T>(v.ToInt64());
  } else {
    int64_t wide = v.is_double() ? static_cast<int64_t>(v.AsDouble())
                                 : v.ToInt64();
    return static_cast<T>(
        std::clamp(wide, static_cast<int64_t>(std::numeric_limits<T>::min()),
                   static_cast<int64_t>(std::numeric_limits<T>::max())));
  }
}

/// The value `oid` holds at `view`'s snapshot: the override when the
/// physical value is newer than the snapshot, the raw value otherwise.
/// Returns false when the row is invisible at the view.
template <typename T>
bool EffectiveAt(const SnapshotView* view, Oid oid, T raw, T* out) {
  if (!ViewActive(view)) {
    *out = raw;
    return true;
  }
  if (const Value* ov = view->OverrideFor(oid)) {
    *out = CastKey<T>(*ov);
    return true;
  }
  if (view->Hides(oid)) return false;
  *out = raw;
  return true;
}

/// Clones `src` into a shuffle-able (values, oids) pair.
JoinCrackSide CloneSide(const std::shared_ptr<Bat>& src, IoStats* stats) {
  JoinCrackSide side;
  side.values = src->Clone(src->name() + "#joincrack");
  side.oids = Bat::Create(ValueType::kOid, src->name() + "#joinmap");
  size_t n = src->size();
  side.oids->Reserve(n);
  Oid* om = side.oids->MutableTailData<Oid>();
  Oid base = src->head_base();
  for (size_t i = 0; i < n; ++i) om[i] = base + i;
  side.oids->SetCountUnsafe(n);
  if (stats != nullptr) {
    stats->tuples_read += n;
    stats->tuples_written += n;
  }
  return side;
}

template <typename T>
void PartitionByMembership(JoinCrackSide* side,
                           const std::unordered_set<T>& other_keys,
                           IoStats* stats) {
  T* data = side->values->MutableTailData<T>();
  Oid* oids = side->oids->MutableTailData<Oid>();
  size_t n = side->values->size();
  CrackSplit split = internal::Partition2(
      data, oids, n, [&other_keys](T v) { return other_keys.count(v) > 0; });
  side->split = split.split;
  if (stats != nullptr) {
    stats->tuples_read += n;
    stats->tuples_written += split.writes;
    ++stats->cracks;
    stats->pieces_created += 2;
  }
}

template <typename T>
JoinCrackResult CrackJoinTyped(const std::shared_ptr<Bat>& left,
                               const std::shared_ptr<Bat>& right,
                               IoStats* stats) {
  JoinCrackResult out;
  out.left = CloneSide(left, stats);
  out.right = CloneSide(right, stats);

  // Key sets of both sides (the semijoin hash builds).
  std::unordered_set<T> left_keys;
  left_keys.reserve(left->size() * 2);
  const T* ld = left->TailData<T>();
  for (size_t i = 0; i < left->size(); ++i) left_keys.insert(ld[i]);

  std::unordered_set<T> right_keys;
  right_keys.reserve(right->size() * 2);
  const T* rd = right->TailData<T>();
  for (size_t i = 0; i < right->size(); ++i) right_keys.insert(rd[i]);

  if (stats != nullptr) {
    stats->tuples_read += left->size() + right->size();
  }

  PartitionByMembership<T>(&out.left, right_keys, stats);
  PartitionByMembership<T>(&out.right, left_keys, stats);
  return out;
}

template <typename T>
std::vector<OidPair> JoinAreasTyped(const JoinCrackResult& cracked,
                                    IoStats* stats,
                                    const SnapshotView* left_view,
                                    const SnapshotView* right_view) {
  bool lv_active = ViewActive(left_view);
  bool rv_active = ViewActive(right_view);

  // Main pass: hash join over the matching areas only. Rows hidden at a
  // view drop out here; overridden rows (whose key at the snapshot differs
  // from the physical one) also drop out — the override passes below
  // re-join them against effective values. Any pair of visible
  // non-overridden rows matches on physical keys, so both of its rows sit
  // inside the matching areas by construction.
  BatView lv = cracked.left.matching();
  BatView rv = cracked.right.matching();
  BatView lo = cracked.left.matching_oids();
  BatView ro = cracked.right.matching_oids();

  std::unordered_map<T, std::vector<Oid>> build;
  build.reserve(lv.size() * 2);
  const T* ld = lv.data<T>();
  for (size_t i = 0; i < lv.size(); ++i) {
    Oid oid = lo.Get<Oid>(i);
    if (lv_active && left_view->Hides(oid)) continue;
    build[ld[i]].push_back(oid);
  }
  std::vector<OidPair> out;
  const T* rd = rv.data<T>();
  for (size_t i = 0; i < rv.size(); ++i) {
    Oid right_oid = ro.Get<Oid>(i);
    if (rv_active && right_view->Hides(right_oid)) continue;
    auto it = build.find(rd[i]);
    if (it == build.end()) continue;
    for (Oid left_oid : it->second) out.push_back(OidPair{left_oid, right_oid});
  }
  if (stats != nullptr) {
    stats->tuples_read += lv.size() + rv.size();
  }

  // Override passes: an overridden key may match rows anywhere in the
  // other side (including its non-matching area, which was partitioned by
  // physical keys), so they scan the full clone. Pass A pairs left
  // overrides with every visible right row (effective values, right
  // overrides included); pass B pairs right overrides with visible
  // non-overridden left rows — together exactly the pairs with at least
  // one overridden member, each counted once.
  if (lv_active && !left_view->overrides().empty()) {
    const T* rall = cracked.right.values->TailData<T>();
    const Oid* rall_oids = cracked.right.oids->TailData<Oid>();
    size_t rn = cracked.right.values->size();
    std::unordered_map<T, std::vector<Oid>> lov;
    for (const auto& [loid, lval] : left_view->overrides()) {
      lov[CastKey<T>(lval)].push_back(loid);
    }
    for (size_t i = 0; i < rn; ++i) {
      T rkey;
      if (!EffectiveAt<T>(right_view, rall_oids[i], rall[i], &rkey)) continue;
      auto it = lov.find(rkey);
      if (it == lov.end()) continue;
      for (Oid loid : it->second) out.push_back(OidPair{loid, rall_oids[i]});
    }
    if (stats != nullptr) stats->tuples_read += rn;
  }
  if (rv_active && !right_view->overrides().empty()) {
    const T* lall = cracked.left.values->TailData<T>();
    const Oid* lall_oids = cracked.left.oids->TailData<Oid>();
    size_t ln = cracked.left.values->size();
    std::unordered_map<T, std::vector<Oid>> rov;
    for (const auto& [roid, rval] : right_view->overrides()) {
      rov[CastKey<T>(rval)].push_back(roid);
    }
    for (size_t i = 0; i < ln; ++i) {
      Oid loid = lall_oids[i];
      if (lv_active && left_view->Hides(loid)) continue;  // pass A owns these
      auto it = rov.find(lall[i]);
      if (it == rov.end()) continue;
      for (Oid roid : it->second) out.push_back(OidPair{loid, roid});
    }
    if (stats != nullptr) stats->tuples_read += ln;
  }

  if (stats != nullptr) stats->tuples_written += out.size();
  return out;
}

template <typename T>
std::vector<OidPair> HashJoinTyped(const std::shared_ptr<Bat>& left,
                                   const std::shared_ptr<Bat>& right,
                                   IoStats* stats,
                                   const SnapshotView* left_view,
                                   const SnapshotView* right_view) {
  // Full columns in hand: build and probe with effective (snapshot)
  // values directly — no re-admission pass needed.
  std::unordered_map<T, std::vector<Oid>> build;
  build.reserve(left->size() * 2);
  const T* ld = left->TailData<T>();
  Oid lbase = left->head_base();
  for (size_t i = 0; i < left->size(); ++i) {
    T key;
    if (!EffectiveAt<T>(left_view, lbase + i, ld[i], &key)) continue;
    build[key].push_back(lbase + i);
  }
  std::vector<OidPair> out;
  const T* rd = right->TailData<T>();
  Oid rbase = right->head_base();
  for (size_t i = 0; i < right->size(); ++i) {
    T key;
    if (!EffectiveAt<T>(right_view, rbase + i, rd[i], &key)) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (Oid l : it->second) out.push_back(OidPair{l, rbase + i});
  }
  if (stats != nullptr) {
    stats->tuples_read += left->size() + right->size();
    stats->tuples_written += out.size();
  }
  return out;
}

}  // namespace

Result<JoinCrackResult> CrackJoin(const std::shared_ptr<Bat>& left,
                                  const std::shared_ptr<Bat>& right,
                                  IoStats* stats) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join operand");
  }
  if (left->tail_type() != right->tail_type()) {
    return Status::TypeMismatch(
        StrFormat("join type mismatch: %s vs %s",
                  ValueTypeName(left->tail_type()),
                  ValueTypeName(right->tail_type())));
  }
  switch (left->tail_type()) {
    case ValueType::kInt32:
      return CrackJoinTyped<int32_t>(left, right, stats);
    case ValueType::kInt64:
      return CrackJoinTyped<int64_t>(left, right, stats);
    case ValueType::kFloat64:
      return CrackJoinTyped<double>(left, right, stats);
    default:
      return Status::Unimplemented("join cracking requires numeric columns");
  }
}

std::vector<OidPair> JoinMatchingAreas(const JoinCrackResult& cracked,
                                       IoStats* stats,
                                       const SnapshotView* left_view,
                                       const SnapshotView* right_view) {
  switch (cracked.left.values->tail_type()) {
    case ValueType::kInt32:
      return JoinAreasTyped<int32_t>(cracked, stats, left_view, right_view);
    case ValueType::kInt64:
      return JoinAreasTyped<int64_t>(cracked, stats, left_view, right_view);
    case ValueType::kFloat64:
      return JoinAreasTyped<double>(cracked, stats, left_view, right_view);
    default:
      CRACK_DCHECK(false);
      return {};
  }
}

Result<std::vector<OidPair>> HashJoinOids(const std::shared_ptr<Bat>& left,
                                          const std::shared_ptr<Bat>& right,
                                          IoStats* stats,
                                          const SnapshotView* left_view,
                                          const SnapshotView* right_view) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join operand");
  }
  if (left->tail_type() != right->tail_type()) {
    return Status::TypeMismatch("join type mismatch");
  }
  switch (left->tail_type()) {
    case ValueType::kInt32:
      return HashJoinTyped<int32_t>(left, right, stats, left_view, right_view);
    case ValueType::kInt64:
      return HashJoinTyped<int64_t>(left, right, stats, left_view, right_view);
    case ValueType::kFloat64:
      return HashJoinTyped<double>(left, right, stats, left_view, right_view);
    default:
      return Status::Unimplemented("hash join requires numeric columns");
  }
}

}  // namespace crackstore
