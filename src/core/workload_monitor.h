// Copyright 2026 The CrackStore Authors
//
// Per-column workload detector: a small ring of recent predicate bounds
// that classifies the query pattern a column is seeing. Halim et al.
// ("Stochastic Database Cracking", VLDB 2012) show the standard policy is
// fragile exactly when the bounds are not independently random — sequential
// sweeps and clustered (skewed) workloads keep shaving slivers off one huge
// piece. The detector reduces each query to one scalar sample (the midpoint
// of its clamped range) and classifies the recent window by two cheap
// statistics:
//
//   * monotone run fraction — the fraction of consecutive deltas sharing
//     the majority sign. Near 1.0 for sequential sweeps.
//   * bound locality — the fraction of deltas small relative to the
//     all-time value span. Near 1.0 for skewed/clustered workloads that
//     hammer one region.
//
// CrackPolicyEngine (core/crack_policy.h) feeds the classification into
// CrackPolicy::kAuto: random patterns run the standard policy (query-bound
// pivots make maximal progress), sequential/skewed patterns run the
// stochastic policy (random auxiliary pivots defeat the sliver pathology).

#ifndef CRACKSTORE_CORE_WORKLOAD_MONITOR_H_
#define CRACKSTORE_CORE_WORKLOAD_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crackstore {

/// What the recent predicate-bound window looks like.
enum class WorkloadPattern : uint8_t {
  kUnknown = 0,     ///< too few samples to say
  kRandom = 1,      ///< bounds jump around the domain independently
  kSequential = 2,  ///< bounds sweep monotonically (cursor-style)
  kSkewed = 3,      ///< bounds cluster in a small region of the domain
};

const char* WorkloadPatternName(WorkloadPattern pattern);

struct WorkloadMonitorOptions {
  /// Ring capacity: how many recent queries the classifier looks at.
  size_t window = 32;
  /// Below this many samples the pattern stays kUnknown.
  size_t min_samples = 6;
  /// Fraction of deltas sharing the majority sign at or above which the
  /// window is called sequential.
  double monotone_threshold = 0.8;
  /// Fraction of "local" deltas at or above which the window is called
  /// skewed.
  double locality_threshold = 0.7;
  /// A delta is "local" when |delta| <= locality_fraction * all-time span.
  double locality_fraction = 0.125;
};

/// See file comment. Not internally synchronized: callers serialize Record
/// and Classify (CrackPolicyEngine guards it with the access path's engine
/// mutex on the concurrent path).
class WorkloadMonitor {
 public:
  explicit WorkloadMonitor(WorkloadMonitorOptions options = {});

  /// Feeds one query's sample (the midpoint of its clamped predicate
  /// range).
  void Record(double sample);

  /// Classifies the current window. kUnknown below min_samples.
  WorkloadPattern Classify() const;

  /// Total samples ever recorded (not capped by the window).
  uint64_t samples() const { return total_; }

  /// Drops all state (runtime policy reset).
  void Reset();

 private:
  WorkloadMonitorOptions options_;
  std::vector<double> ring_;  ///< capacity options_.window
  size_t head_ = 0;           ///< next write slot
  size_t count_ = 0;          ///< live entries, <= window
  uint64_t total_ = 0;
  /// All-time value span (not window-local): the yardstick that makes the
  /// locality statistic meaningful once a sweep has covered the domain.
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_WORKLOAD_MONITOR_H_
