// Copyright 2026 The CrackStore Authors
//
// The MVCC core of CrackStore: versioned delta visibility for a store whose
// physical layout keeps reorganizing underneath the readers.
//
// PR 2 gave the store tombstone visibility ("a deleted row disappears the
// instant the tombstone lands") and PR 4 made the physical delta structures
// concurrent; this module replaces the boolean liveness model with snapshot
// semantics. Every row-level event — insert, delete, value overwrite — is a
// *version stamp*: an oid carries a [begin, end) interval of commit
// timestamps, and superseded values hang off an append-only per-column
// version log (BigFoot's WAL-pipeline observation: keep the version history
// append-only and separate from the cracked base, exactly the shape the
// delta layer already has). A reader never consults raw tombstone bits;
// it evaluates stamps against its Snapshot:
//
//   visible(row, S)  :=  committed_before(begin, S) && !committed_before(end, S)
//
// where an uncommitted stamp (a transaction marker) is "committed" only for
// the transaction that wrote it. The physical accelerators (cracker
// indexes, sorted copies, dictionary code columns) keep every version's
// rows until a *vacuum* pass folds versions below the low-water snapshot
// into the existing FlushDeltas/Merge maintenance machinery.
//
// Three collaborating pieces:
//   * TxnManager      — monotone commit timestamps, transaction registry,
//                       low-water mark over the open snapshots;
//   * VersionedTable  — one table's version stamps + per-column value logs,
//                       guarded by an internal latch (the version-side
//                       sibling of the per-column delta latch);
//   * SnapshotView    — the per-(statement, column) read filter handed down
//                       to ColumnAccessPath::Select*, answering "is this
//                       oid visible?" and "which rows carry a different
//                       value at my snapshot?".
//
// Concurrency contract: VersionedTable methods are individually
// thread-safe (internal shared_mutex, a leaf lock — never call out while
// holding it). SnapshotView reads row stamps through the VersionedTable's
// latch per probe, and carries its value overrides by copy, so paths can
// evaluate it under any (or no) column latch.

#ifndef CRACKSTORE_CORE_TXN_MANAGER_H_
#define CRACKSTORE_CORE_TXN_MANAGER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/types.h"
#include "util/result.h"

namespace crackstore {

/// Commit timestamp. The value space is split: plain values are committed
/// timestamps (monotone, allocated by TxnManager); values with the high bit
/// set are *transaction markers* — stamps written by a still-running
/// transaction, rewritten to its commit timestamp at commit.
using Ts = uint64_t;

/// Transaction identity. 0 is reserved (kNoTxn = "auto-commit caller").
using TxnId = uint64_t;

inline constexpr TxnId kNoTxn = 0;

/// The "never ends" sentinel of a row version's [begin, end) interval.
inline constexpr Ts kTsInfinity = std::numeric_limits<uint64_t>::max();

/// High bit: the stamp is a transaction marker, not a commit timestamp.
inline constexpr Ts kTxnStampFlag = uint64_t{1} << 63;

/// The begin stamp of a rolled-back insert: a marker owned by txn 0, which
/// matches no live transaction — the row is visible to nobody, ever.
inline constexpr Ts kTsAborted = kTxnStampFlag;

inline Ts TxnStamp(TxnId txn) { return kTxnStampFlag | txn; }
inline bool IsTxnStamp(Ts stamp) {
  return stamp != kTsInfinity && (stamp & kTxnStampFlag) != 0;
}
inline TxnId TxnOfStamp(Ts stamp) { return stamp & ~kTxnStampFlag; }

/// A point-in-time read position: every version committed at or before
/// `read_ts` is visible, plus the uncommitted writes of `txn` (its own
/// statements must see their own effects).
struct Snapshot {
  Ts read_ts = 0;
  TxnId txn = kNoTxn;
};

/// True when `stamp` denotes an event this snapshot observes as committed.
inline bool StampVisible(Ts stamp, const Snapshot& snap) {
  if (stamp == kTsInfinity) return false;
  if (stamp & kTxnStampFlag) {
    TxnId owner = TxnOfStamp(stamp);
    return owner != kNoTxn && owner == snap.txn;
  }
  return stamp <= snap.read_ts;
}

/// One row's version interval plus the write-conflict bookkeeping.
/// Rows without an entry are implicit {begin: 0, end: inf}: present since
/// table registration, visible to every snapshot.
struct RowVersion {
  Ts begin = 0;            ///< insert stamp (0 = since load)
  Ts end = kTsInfinity;    ///< delete stamp
  Ts write_ts = 0;         ///< last committed writer (first-committer-wins)
  TxnId writer = kNoTxn;   ///< in-flight writer holding the row

  bool VisibleTo(const Snapshot& snap) const {
    return StampVisible(begin, snap) && !StampVisible(end, snap);
  }
};

/// One superseded value of (column, oid): `value` was current until the
/// write stamped `end` replaced it. A snapshot that does not observe `end`
/// still reads `value`.
struct ValueVersion {
  Value value;
  Ts end = kTsInfinity;
};

class VersionedTable;

/// See file comment. Default-constructed views are *inactive*: they hide
/// nothing and carry no overrides (the pre-MVCC fast path).
class SnapshotView {
 public:
  SnapshotView() = default;

  bool active() const { return table_ != nullptr; }

  /// Row-level visibility at this view's snapshot (vacuum-purged rows are
  /// invisible to everyone).
  bool RowVisible(Oid oid) const;

  /// True when `oid` must be dropped from a path's physical answer: either
  /// the row is invisible, or its value at this snapshot differs from the
  /// physical one (the caller re-admits it through overrides()).
  bool Hides(Oid oid) const {
    if (!active()) return false;
    return overridden_.count(oid) > 0 || !RowVisible(oid);
  }

  /// Batch visibility: sets bit i of `bm` iff !Hides(oids[i]). Takes the
  /// version-log latch once for the whole batch instead of once per row —
  /// the branchless sibling of the per-row Hides() probe. `bm` must hold
  /// BitmapWords(n) words; tail bits of the last word are zeroed.
  void VisibleMask(const Oid* oids, size_t n, uint64_t* bm) const;

  /// VisibleMask for the contiguous oid run [first, first + n) — the shape
  /// every base-column scan has (oid = base + slot).
  void VisibleRangeMask(Oid first, size_t n, uint64_t* bm) const;

  /// The value this snapshot reads for `oid`, when it differs from the
  /// physical one; nullptr otherwise. Linear over overrides() — they are
  /// few (only rows updated since the snapshot).
  const Value* OverrideFor(Oid oid) const;

  /// (oid, value-at-snapshot) for every row of this view's column whose
  /// current physical value postdates the snapshot. Paths re-admit these
  /// against the predicate after filtering their physical answer.
  const std::vector<std::pair<Oid, Value>>& overrides() const {
    return overrides_;
  }

  const Snapshot& snapshot() const { return snap_; }

  /// A copy of this view with its value overrides replaced — encoding
  /// decorators use it to translate overrides into the inner path's domain
  /// (e.g. strings to dictionary codes). Row visibility is unchanged.
  SnapshotView WithOverrides(
      std::vector<std::pair<Oid, Value>> overrides) const;

 private:
  friend class VersionedTable;
  Snapshot snap_;
  const VersionedTable* table_ = nullptr;
  /// Rows at or beyond this oid postdate the snapshot (appended after the
  /// view was opened) and are invisible even without a version entry.
  Oid horizon_ = kInvalidOid;
  /// True when the table held no version state at view build: every row
  /// below the horizon is visible and stays visible at this snapshot
  /// (later commits carry timestamps beyond it), so probes skip the
  /// version-log latch entirely — the hot-loop fast path of force-active
  /// views in concurrent stores.
  bool all_below_horizon_visible_ = false;
  std::vector<std::pair<Oid, Value>> overrides_;
  std::unordered_set<Oid> overridden_;
};

/// Per-table MVCC state: row version stamps, per-column superseded-value
/// logs, and the vacuum-purged set. All methods thread-safe; the internal
/// latch is a leaf lock.
class VersionedTable {
 public:
  /// `initial_rows` / `base_oid` describe the rows present at registration
  /// (they stay implicitly visible-to-all until a write stamps them).
  VersionedTable(Oid base_oid, size_t initial_rows)
      : horizon_(base_oid + initial_rows) {}
  CRACK_DISALLOW_COPY_AND_ASSIGN(VersionedTable);

  /// Registers a freshly allocated row. Call *before* the physical base
  /// append so no reader can observe the row without its stamp. `stamp` is
  /// a txn marker (or a commit ts for replay paths like MarkDeleted).
  void NoteInsert(Oid oid, Ts stamp);

  /// Row-level write admission for DELETE/UPDATE under snapshot `snap`.
  enum class Admission : uint8_t {
    kOk = 0,       ///< row locked for `writer`; stamp away
    kSkip = 1,     ///< row invisible at `snap` (already deleted) — skip it
    kConflict = 2  ///< write-write conflict (first-committer-wins)
  };
  /// On kOk the row is write-locked by `writer` until CommitTxn/RollbackTxn
  /// releases it — record the oid in the transaction's touched set even if
  /// the statement later skips the row.
  Admission AdmitWrite(Oid oid, const Snapshot& snap, TxnId writer,
                       std::string* conflict_detail);

  /// Stamps the end of `oid`'s current version (delete).
  void StampDelete(Oid oid, Ts stamp);

  /// Logs that `column`'s value of `oid` — previously `old_value` — was
  /// superseded at `stamp`.
  void StampUpdate(Oid oid, const std::string& column, Value old_value,
                   Ts stamp);

  /// Rewrites every marker of `txn` on `touched` rows (and their value-log
  /// entries) to the commit timestamp `cts`, and releases the row locks.
  void CommitTxn(TxnId txn, Ts cts, const std::vector<Oid>& touched);

  /// Undoes `txn`'s stamps on `touched` rows: inserts become aborted
  /// (invisible to all, reclaimed by vacuum), delete stamps revert to
  /// infinity, value-log entries drop (the caller restored the physical
  /// values first), and the row locks release.
  void RollbackTxn(TxnId txn, const std::vector<Oid>& touched);

  /// Commit-time validation of first-committer-wins: returns Aborted if any
  /// touched row was committed-written after `snap` by someone else. With
  /// eager AdmitWrite locking this cannot fire; it is the formal guard.
  Status ValidateWriteSet(const Snapshot& snap, TxnId txn,
                          const std::vector<Oid>& touched) const;

  /// The read filter for (snapshot, column). `force_active` produces an
  /// active view even over empty state — required in concurrent stores,
  /// where rows may be appended while the statement runs (the horizon
  /// hides them).
  SnapshotView ViewFor(const Snapshot& snap, const std::string& column,
                       bool force_active = false) const;

  /// Row-level visibility without a view (LiveOids / COUNT(*) loops).
  bool RowVisibleAt(Oid oid, const Snapshot& snap) const;

  /// Oids invisible at `snap` among [base, base + rows): committed deletes,
  /// uncommitted/aborted inserts and vacuum-purged rows — the hand-over set
  /// MarkDeleted replays onto a fresh store. Ascending.
  std::vector<Oid> InvisibleOids(const Snapshot& snap, Oid base,
                                 size_t rows) const;

  /// The vacuum-purged rows (physically dead to everyone), ascending —
  /// replayed into freshly created access paths, which rebuild from the
  /// append-only base.
  std::vector<Oid> PurgedOids() const;

  struct VacuumResult {
    std::vector<Oid> purged;            ///< rows to physically purge now
    uint64_t versions_dropped = 0;      ///< fully-visible stamps folded away
    uint64_t chain_entries_dropped = 0; ///< superseded values reclaimed
  };
  /// Reclaims everything no snapshot at or above `low_water` can ever read:
  /// rows whose end stamp is committed at or below it (and aborted inserts)
  /// move to the purged set; value-log entries superseded at or below it
  /// drop; fully-visible begin-only stamps fold away entirely.
  VacuumResult Vacuum(Ts low_water);

  struct Counts {
    size_t row_versions = 0;
    size_t chain_entries = 0;
    size_t purged = 0;
  };
  Counts counts() const;

  /// True when no version state exists at all (fast-path probe).
  bool empty() const;

  /// One past the highest oid ever registered (initial rows + inserts) —
  /// the oid-range bound DML validation checks against without touching
  /// the base latch.
  Oid horizon() const;

 private:
  friend class SnapshotView;

  bool RowVisibleLocked(Oid oid, const Snapshot& snap) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<Oid, RowVersion> rows_;
  /// column -> oid -> superseded values, oldest first.
  std::map<std::string, std::unordered_map<Oid, std::vector<ValueVersion>>>
      chains_;
  std::unordered_set<Oid> purged_;
  /// One past the highest oid ever registered (insert stamps move it).
  Oid horizon_;
};

/// Issues transaction identities, commit timestamps and snapshots, and
/// tracks the low-water mark vacuum must respect. Thread-safe.
class TxnManager {
 public:
  TxnManager() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(TxnManager);

  /// The auto-commit read position: everything committed so far.
  Snapshot LatestSnapshot() const;

  /// Opens a transaction pinned at the current committed state. The
  /// transaction participates in the low-water mark until finished.
  TxnId Begin();

  Result<Snapshot> SnapshotOf(TxnId txn) const;
  bool IsActive(TxnId txn) const;

  /// Allocates the commit timestamp and retires the transaction. The
  /// caller stamps the transaction's markers with the returned ts.
  Result<Ts> FinishCommit(TxnId txn);
  Status FinishRollback(TxnId txn);

  /// The oldest read position any live transaction holds (or the latest
  /// committed ts when none are open): versions ending at or below it are
  /// invisible to every present and future snapshot.
  Ts low_water() const;

  /// Commit timestamps handed out so far.
  Ts last_commit_ts() const;

  /// Fast-forwards the timestamp sequence past `ts` (recovery replay: new
  /// commits must stamp above every replayed commit). No-op when the
  /// sequence is already beyond it.
  void AdvanceTo(Ts ts) {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_ts_ <= ts) next_ts_ = ts + 1;
  }

  size_t active_count() const;

 private:
  mutable std::mutex mu_;
  Ts next_ts_ = 1;
  TxnId next_txn_ = 1;
  std::map<TxnId, Ts> active_;  ///< txn -> pinned read_ts
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_TXN_MANAGER_H_
