// Copyright 2026 The CrackStore Authors

#include "core/crack_policy.h"

namespace crackstore {

const char* CrackPolicyName(CrackPolicy policy) {
  switch (policy) {
    case CrackPolicy::kStandard:
      return "standard";
    case CrackPolicy::kStochastic:
      return "stochastic";
    case CrackPolicy::kCoarse:
      return "coarse";
  }
  return "?";
}

bool ParseCrackPolicy(const std::string& s, CrackPolicy* out) {
  if (s == "standard") {
    *out = CrackPolicy::kStandard;
  } else if (s == "stochastic" || s == "ddc") {
    *out = CrackPolicy::kStochastic;
  } else if (s == "coarse" || s == "dd1c") {
    *out = CrackPolicy::kCoarse;
  } else {
    return false;
  }
  return true;
}

CrackPolicy CrackPolicyFromString(const std::string& s) {
  CrackPolicy policy = CrackPolicy::kStandard;
  (void)ParseCrackPolicy(s, &policy);
  return policy;
}

}  // namespace crackstore
