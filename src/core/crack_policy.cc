// Copyright 2026 The CrackStore Authors

#include "core/crack_policy.h"

#include "obs/instruments.h"

namespace crackstore {

const char* CrackPolicyName(CrackPolicy policy) {
  switch (policy) {
    case CrackPolicy::kStandard:
      return "standard";
    case CrackPolicy::kStochastic:
      return "stochastic";
    case CrackPolicy::kCoarse:
      return "coarse";
    case CrackPolicy::kAuto:
      return "auto";
    case CrackPolicy::kProgressive:
      return "progressive";
  }
  return "?";
}

bool ParseCrackPolicy(const std::string& s, CrackPolicy* out) {
  if (s == "standard") {
    *out = CrackPolicy::kStandard;
  } else if (s == "stochastic" || s == "ddc") {
    *out = CrackPolicy::kStochastic;
  } else if (s == "coarse" || s == "dd1c") {
    *out = CrackPolicy::kCoarse;
  } else if (s == "auto") {
    *out = CrackPolicy::kAuto;
  } else if (s == "progressive") {
    *out = CrackPolicy::kProgressive;
  } else {
    return false;
  }
  return true;
}

CrackPolicy CrackPolicyFromString(const std::string& s) {
  CrackPolicy policy = CrackPolicy::kStandard;
  (void)ParseCrackPolicy(s, &policy);
  return policy;
}

void CrackPolicyEngine::Observe(double sample) {
  if (options_.policy != CrackPolicy::kAuto) return;
  monitor_.Record(sample);
  observed_.store(monitor_.samples(), std::memory_order_relaxed);
  const WorkloadPattern pattern = monitor_.Classify();
  pattern_.store(pattern, std::memory_order_relaxed);
  if (pattern == WorkloadPattern::kUnknown) return;

  const CrackPolicy target = pattern == WorkloadPattern::kRandom
                                 ? CrackPolicy::kStandard
                                 : CrackPolicy::kStochastic;
  if (target == effective_.load(std::memory_order_relaxed)) {
    streak_ = 0;
    return;
  }
  if (target == pending_target_) {
    ++streak_;
  } else {
    pending_target_ = target;
    streak_ = 1;
  }
  if (streak_ >= kConfirmStreak) {
    effective_.store(target, std::memory_order_relaxed);
    switches_.fetch_add(1, std::memory_order_relaxed);
    obs::RecordPolicySwitch();
    streak_ = 0;
  }
}

void CrackPolicyEngine::Reset(const CrackPolicyOptions& options) {
  options_ = options;
  rng_ = Pcg32(options.seed);
  monitor_ = WorkloadMonitor(options.monitor);
  effective_.store(InitialEffective(options.policy),
                   std::memory_order_relaxed);
  pattern_.store(WorkloadPattern::kUnknown, std::memory_order_relaxed);
  switches_.store(0, std::memory_order_relaxed);
  observed_.store(0, std::memory_order_relaxed);
  pending_target_ = CrackPolicy::kStandard;
  streak_ = 0;
}

}  // namespace crackstore
