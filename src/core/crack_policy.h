// Copyright 2026 The CrackStore Authors
//
// Cracking policies: *where* a query's advice places pivots. The source
// paper always cracks exactly at the query bounds, which Halim et al.
// ("Stochastic Database Cracking", VLDB 2012) show is fragile: sequential
// or skewed workloads keep cutting slivers off one huge piece and every
// query degenerates to a near-full scan. The cure is to decouple the pivot
// choice from the query bounds:
//
//   * kStandard   — pivots are the query bounds (the CIDR'05 behavior);
//   * kStochastic — DDC-style: before cutting at a bound that lands in a
//     large piece, crack that piece at randomly drawn elements until the
//     enclosing piece is small, so progress is made regardless of the
//     workload pattern;
//   * kCoarse     — DD1C-style: pieces at or below a size threshold are
//     never cracked further; queries whose bounds land inside such a piece
//     filter it instead. Caps the piece table (and its administration) at a
//     granularity of the caller's choosing.
//
// The policy is orthogonal to the access strategy: any ColumnAccessPath of
// kind kCrack can run any policy (core/access_path.h composes the two).

#ifndef CRACKSTORE_CORE_CRACK_POLICY_H_
#define CRACKSTORE_CORE_CRACK_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/rng.h"

namespace crackstore {

/// Pivot-choice discipline of a cracked column. See file comment.
enum class CrackPolicy : uint8_t {
  kStandard = 0,    ///< pivot = query bound (CIDR'05)
  kStochastic = 1,  ///< random auxiliary pivots in large touched pieces (DDC)
  kCoarse = 2,      ///< stop cracking below a piece-size threshold (DD1C)
};

const char* CrackPolicyName(CrackPolicy policy);

/// Parses a policy name ("standard", "stochastic", "coarse") or research
/// alias ("ddc" -> stochastic, "dd1c" -> coarse) into `*out`. Returns false
/// (leaving `*out` untouched) for anything else.
bool ParseCrackPolicy(const std::string& s, CrackPolicy* out);

/// Lenient variant: falls back to kStandard on unknown input.
CrackPolicy CrackPolicyFromString(const std::string& s);

/// A policy plus its tuning knobs.
struct CrackPolicyOptions {
  CrackPolicy policy = CrackPolicy::kStandard;
  /// kStochastic: auxiliary pivots are drawn until the piece enclosing the
  /// query bound is at or below this size. kCoarse: pieces at or below this
  /// size are never cracked (their queries filter instead). Ignored by
  /// kStandard.
  size_t min_piece_size = 1024;
  /// Seed of the deterministic pivot stream (kStochastic only).
  uint64_t seed = 20120101;
};

/// The per-column decision engine behind a CrackPolicyOptions: answers
/// "crack this piece?" / "inject a random pivot first?" and owns the
/// deterministic pivot stream. One instance per access path, so two columns
/// with the same seed draw identical pivot sequences.
class CrackPolicyEngine {
 public:
  explicit CrackPolicyEngine(CrackPolicyOptions options)
      : options_(options), rng_(options.seed) {}

  const CrackPolicyOptions& options() const { return options_; }
  CrackPolicy policy() const { return options_.policy; }

  /// kCoarse: may a piece of `piece_size` tuples be cracked at all?
  bool ShouldCrack(size_t piece_size) const {
    return options_.policy != CrackPolicy::kCoarse ||
           piece_size > options_.min_piece_size;
  }

  /// kStochastic: does a piece of `piece_size` tuples still warrant an
  /// auxiliary random pivot before the query-bound cut?
  bool WantsAuxiliaryPivot(size_t piece_size) const {
    return options_.policy == CrackPolicy::kStochastic &&
           piece_size > options_.min_piece_size;
  }

  /// Draws a slot uniformly from [begin, end); the element there becomes
  /// the auxiliary pivot.
  size_t DrawSlot(size_t begin, size_t end) {
    CRACK_DCHECK(begin < end);
    return begin + static_cast<size_t>(rng_.NextInRange(
                       0, static_cast<int64_t>(end - begin - 1)));
  }

 private:
  CrackPolicyOptions options_;
  Pcg32 rng_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_CRACK_POLICY_H_
