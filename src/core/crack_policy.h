// Copyright 2026 The CrackStore Authors
//
// Cracking policies: *where* a query's advice places pivots, and *how much*
// reorganization a query may perform. The source paper always cracks
// exactly at the query bounds, which Halim et al. ("Stochastic Database
// Cracking", VLDB 2012) show is fragile: sequential or skewed workloads
// keep cutting slivers off one huge piece and every query degenerates to a
// near-full scan. The cure is to decouple the pivot choice from the query
// bounds:
//
//   * kStandard    — pivots are the query bounds (the CIDR'05 behavior);
//   * kStochastic  — DDC-style: before cutting at a bound that lands in a
//     large piece, crack that piece at randomly drawn elements until the
//     enclosing piece is small, so progress is made regardless of the
//     workload pattern;
//   * kCoarse      — DD1C-style: pieces at or below a size threshold are
//     never cracked further; queries whose bounds land inside such a piece
//     filter it instead. Caps the piece table (and its administration) at a
//     granularity of the caller's choosing;
//   * kAuto        — self-driving: a per-column workload detector
//     (core/workload_monitor.h) classifies the recent predicate pattern and
//     switches the *effective* policy at runtime — standard for random
//     workloads (where it wins the ablation), stochastic for sequential/
//     skewed ones (where query-bound pivots degenerate). Switches are
//     plain atomic stores riding the shared-latch path: no stop-the-world;
//   * kProgressive — budgeted partial cracking: each query's reorganization
//     is bounded to `progressive_budget` × the touched piece's size. The
//     partition frontier is carried over per piece and completed
//     incrementally by later queries, turning the brutal first-query crack
//     spikes into a smooth tail-latency curve.
//
// The policy is orthogonal to the access strategy: any ColumnAccessPath of
// kind kCrack can run any policy (core/access_path.h composes the two).

#ifndef CRACKSTORE_CORE_CRACK_POLICY_H_
#define CRACKSTORE_CORE_CRACK_POLICY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/workload_monitor.h"
#include "util/rng.h"

namespace crackstore {

/// Pivot-choice discipline of a cracked column. See file comment.
enum class CrackPolicy : uint8_t {
  kStandard = 0,     ///< pivot = query bound (CIDR'05)
  kStochastic = 1,   ///< random auxiliary pivots in large touched pieces (DDC)
  kCoarse = 2,       ///< stop cracking below a piece-size threshold (DD1C)
  kAuto = 3,         ///< workload detector picks standard/stochastic live
  kProgressive = 4,  ///< budgeted partial cracks, frontier carried per piece
};

const char* CrackPolicyName(CrackPolicy policy);

/// Parses a policy name ("standard", "stochastic", "coarse", "auto",
/// "progressive") or research alias ("ddc" -> stochastic, "dd1c" ->
/// coarse) into `*out`. Returns false (leaving `*out` untouched) for
/// anything else.
bool ParseCrackPolicy(const std::string& s, CrackPolicy* out);

/// Lenient variant: falls back to kStandard on unknown input.
CrackPolicy CrackPolicyFromString(const std::string& s);

/// A policy plus its tuning knobs.
struct CrackPolicyOptions {
  CrackPolicy policy = CrackPolicy::kStandard;
  /// kStochastic: auxiliary pivots are drawn until the piece enclosing the
  /// query bound is at or below this size. kCoarse: pieces at or below this
  /// size are never cracked (their queries filter instead). Ignored by
  /// kStandard.
  size_t min_piece_size = 1024;
  /// Seed of the deterministic pivot stream (kStochastic only).
  uint64_t seed = 20120101;
  /// kProgressive: a query may spend at most this fraction of the touched
  /// piece's size in partition writes (subject to a small absolute floor so
  /// tiny pieces still converge). Ignored by the other policies.
  double progressive_budget = 0.1;
  /// kAuto: detector tuning.
  WorkloadMonitorOptions monitor;
};

/// The per-column decision engine behind a CrackPolicyOptions: answers
/// "crack this piece?" / "inject a random pivot first?", owns the
/// deterministic pivot stream, and — under kAuto — owns the workload
/// detector that steers the effective policy at runtime. One instance per
/// access path, so two columns with the same seed draw identical pivot
/// sequences.
///
/// Thread contract: Observe / DrawSlot / Reset mutate state and must be
/// serialized by the caller (the access path holds its engine mutex on the
/// concurrent path). effective / ShouldCrack / WantsAuxiliaryPivot /
/// pattern / switches are lock-free atomic reads, safe from any thread
/// while a switch lands.
class CrackPolicyEngine {
 public:
  explicit CrackPolicyEngine(CrackPolicyOptions options)
      : options_(options),
        rng_(options.seed),
        monitor_(options.monitor),
        effective_(InitialEffective(options.policy)) {}

  const CrackPolicyOptions& options() const { return options_; }

  /// The configured policy (what the user asked for; kAuto stays kAuto).
  CrackPolicy policy() const { return options_.policy; }

  /// The policy decisions are currently made under: the configured policy,
  /// except under kAuto where the detector steers it live.
  CrackPolicy effective() const {
    return effective_.load(std::memory_order_relaxed);
  }

  /// kCoarse: may a piece of `piece_size` tuples be cracked at all?
  bool ShouldCrack(size_t piece_size) const {
    return effective() != CrackPolicy::kCoarse ||
           piece_size > options_.min_piece_size;
  }

  /// kStochastic: does a piece of `piece_size` tuples still warrant an
  /// auxiliary random pivot before the query-bound cut?
  bool WantsAuxiliaryPivot(size_t piece_size) const {
    return effective() == CrackPolicy::kStochastic &&
           piece_size > options_.min_piece_size;
  }

  /// Draws a slot uniformly from [begin, end); the element there becomes
  /// the auxiliary pivot.
  size_t DrawSlot(size_t begin, size_t end) {
    CRACK_DCHECK(begin < end);
    return begin + static_cast<size_t>(rng_.NextInRange(
                       0, static_cast<int64_t>(end - begin - 1)));
  }

  /// kAuto: feeds one query's predicate sample (the clamped range
  /// midpoint) to the detector and, when a reclassification is confirmed,
  /// switches the effective policy. No-op under the other policies.
  void Observe(double sample);

  /// The detector's current classification (kUnknown unless kAuto).
  WorkloadPattern pattern() const {
    return pattern_.load(std::memory_order_relaxed);
  }

  /// Runtime policy switches performed so far (kAuto).
  uint64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }

  /// Queries the detector has seen (kAuto).
  uint64_t observed_samples() const {
    return observed_.load(std::memory_order_relaxed);
  }

  /// Re-arms the engine with fresh options (runtime SET POLICY): resets the
  /// pivot stream, the detector, and the switch count.
  void Reset(const CrackPolicyOptions& options);

 private:
  /// kAuto starts out stochastic: the robust prior — near-optimal on
  /// sequential/skewed workloads and only mildly more expensive than
  /// standard on random ones, so the few queries before the detector has
  /// enough samples are never catastrophic.
  static CrackPolicy InitialEffective(CrackPolicy configured) {
    return configured == CrackPolicy::kAuto ? CrackPolicy::kStochastic
                                            : configured;
  }

  CrackPolicyOptions options_;
  Pcg32 rng_;
  WorkloadMonitor monitor_;
  std::atomic<CrackPolicy> effective_;
  std::atomic<WorkloadPattern> pattern_{WorkloadPattern::kUnknown};
  std::atomic<uint64_t> switches_{0};
  std::atomic<uint64_t> observed_{0};
  /// Hysteresis: a disagreeing classification must repeat this many times
  /// in a row before the switch lands (spurious flips churn the rng-free
  /// fast path for nothing).
  static constexpr int kConfirmStreak = 2;
  CrackPolicy pending_target_ = CrackPolicy::kStandard;
  int streak_ = 0;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CORE_CRACK_POLICY_H_
