// Copyright 2026 The CrackStore Authors

#include "core/projection_cracker.h"

#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace crackstore {

namespace {

/// Builds the dense surrogate column 0..n-1.
std::shared_ptr<Bat> MakeOidColumn(size_t n, const std::string& name) {
  auto bat = Bat::Create(ValueType::kOid, name);
  bat->Reserve(n);
  Oid* data = bat->MutableTailData<Oid>();
  for (size_t i = 0; i < n; ++i) data[i] = i;
  bat->SetCountUnsafe(n);
  return bat;
}

}  // namespace

Result<ProjectionCrackResult> CrackProjection(
    const std::shared_ptr<Relation>& relation,
    const std::vector<std::string>& attrs, IoStats* stats) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (attrs.empty()) return Status::InvalidArgument("empty attribute list");

  std::unordered_set<std::string> wanted;
  for (const auto& a : attrs) {
    if (relation->schema().FieldIndex(a) < 0) {
      return Status::NotFound("no column '" + a + "' in " + relation->name());
    }
    if (!wanted.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute: " + a);
    }
  }
  if (wanted.size() == relation->num_columns()) {
    return Status::InvalidArgument(
        "projection covers every column; nothing to crack off");
  }

  size_t n = relation->num_rows();
  std::vector<ColumnDef> proj_defs{{"oid", ValueType::kOid}};
  std::vector<std::shared_ptr<Bat>> proj_cols{
      MakeOidColumn(n, relation->name() + "#psi1.oid")};
  std::vector<ColumnDef> rest_defs{{"oid", ValueType::kOid}};
  std::vector<std::shared_ptr<Bat>> rest_cols{
      MakeOidColumn(n, relation->name() + "#psi2.oid")};

  // Vertical split: BATs are shared (zero copy) — the fragments reference
  // the same physical columns, which is exactly what a BAT-based store does.
  for (size_t i = 0; i < relation->num_columns(); ++i) {
    const ColumnDef& def = relation->schema().column(i);
    if (wanted.count(def.name) > 0) {
      proj_defs.push_back(def);
      proj_cols.push_back(relation->column(i));
    } else {
      rest_defs.push_back(def);
      rest_cols.push_back(relation->column(i));
    }
  }
  if (stats != nullptr) {
    stats->tuples_written += 2 * n;  // the surrogate columns
    stats->pieces_created += 2;
  }

  ProjectionCrackResult out;
  CRACK_ASSIGN_OR_RETURN(
      out.projected,
      Relation::FromColumns(relation->name() + "#psi1",
                            Schema(std::move(proj_defs)),
                            std::move(proj_cols)));
  CRACK_ASSIGN_OR_RETURN(
      out.remainder,
      Relation::FromColumns(relation->name() + "#psi2",
                            Schema(std::move(rest_defs)),
                            std::move(rest_cols)));
  return out;
}

Result<std::shared_ptr<Relation>> ReconstructProjection(
    const ProjectionCrackResult& cracked, const Schema& original_schema,
    const std::string& name, IoStats* stats) {
  if (cracked.projected == nullptr || cracked.remainder == nullptr) {
    return Status::InvalidArgument("incomplete projection crack result");
  }
  size_t n = cracked.projected->num_rows();
  if (cracked.remainder->num_rows() != n) {
    return Status::InvalidArgument("fragment cardinality mismatch");
  }

  // 1:1 join on the surrogate oids. The fragments may have been reordered
  // independently, so build the oid -> row map of the remainder.
  auto rem_oids = cracked.remainder->column("oid");
  if (!rem_oids.ok()) return rem_oids.status();
  std::unordered_map<Oid, size_t> rem_index;
  rem_index.reserve(n * 2);
  const Oid* ro = (*rem_oids)->TailData<Oid>();
  for (size_t i = 0; i < n; ++i) {
    if (!rem_index.emplace(ro[i], i).second) {
      return Status::InvalidArgument("duplicate surrogate oid in remainder");
    }
  }

  auto proj_oids = cracked.projected->column("oid");
  if (!proj_oids.ok()) return proj_oids.status();
  const Oid* po = (*proj_oids)->TailData<Oid>();

  auto result = Relation::Create(name, original_schema);
  if (!result.ok()) return result.status();
  std::shared_ptr<Relation> rel = *result;

  // Column sources in original order.
  for (size_t c = 0; c < original_schema.num_columns(); ++c) {
    const ColumnDef& def = original_schema.column(c);
    bool from_projected =
        cracked.projected->schema().FieldIndex(def.name) >= 0;
    const std::shared_ptr<Relation>& frag =
        from_projected ? cracked.projected : cracked.remainder;
    auto src = frag->column(def.name);
    if (!src.ok()) {
      return Status::NotFound("column '" + def.name +
                              "' missing from both fragments");
    }
    auto dst = rel->column(c);
    for (size_t i = 0; i < n; ++i) {
      size_t src_row;
      if (from_projected) {
        src_row = i;
      } else {
        auto it = rem_index.find(po[i]);
        if (it == rem_index.end()) {
          return Status::InvalidArgument("surrogate oid missing in remainder");
        }
        src_row = it->second;
      }
      Status st = dst->AppendValue((*src)->GetValue(src_row));
      if (!st.ok()) return st;
    }
  }
  if (stats != nullptr) {
    stats->tuples_read += n * original_schema.num_columns();
    stats->tuples_written += n * original_schema.num_columns();
  }
  return rel;
}

}  // namespace crackstore
