// Copyright 2026 The CrackStore Authors

#include "sim/crack_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/cracker_index.h"
#include "storage/bat.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {

namespace {

/// One simulated run; steps are appended into `*acc` (field-wise summed so
/// repetitions can be averaged).
void RunOnce(const CrackSimOptions& options, uint64_t seed,
             std::vector<CrackSimStep>* acc) {
  uint64_t n = options.num_granules;
  int64_t n64 = static_cast<int64_t>(n);
  std::shared_ptr<Bat> column = BuildPermutationColumn(n, seed, "granules");

  // The paper's simulation cracks the granule vector in place; the clone
  // into the cracker column is an implementation detail of the MonetDB
  // module and is not part of the §2.2 cost model (the first query's
  // whole-vector crack already accounts for "the database is effectively
  // completely rewritten").
  CrackerIndex<int64_t> index(column, /*stats=*/nullptr);

  Pcg32 rng(seed ^ 0xC0FFEE);
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(options.selectivity *
                                           static_cast<double>(n))));

  for (size_t i = 1; i <= options.steps; ++i) {
    int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n64 - width + 1));
    int64_t hi = std::min<int64_t>(n64, lo + width - 1);

    IoStats stats;
    CrackSelection sel = index.Select(lo, true, hi, true, &stats);

    CrackSimStep& step = (*acc)[i - 1];
    step.step = i;
    step.answer += sel.count();
    // Cost model (§2.2): every granule of a cracked piece is read and then
    // written to its (possibly new) location; delivering the answer reads
    // and writes the qualifying range. The kernels' tuples_read equals the
    // total size of the pieces cracked for this query.
    uint64_t touched = stats.tuples_read;
    step.crack_touched += touched;
    step.crack_moved += stats.tuples_written;
    step.crack_reads += touched + sel.count();
    step.crack_writes += touched + sel.count();
    // Baseline: read the whole vector, write out the answer.
    step.scan_reads += n;
    step.scan_writes += sel.count();
    step.pieces = std::max(step.pieces, index.num_pieces());
  }
}

}  // namespace

Result<CrackSimResult> RunCrackSimulation(const CrackSimOptions& options) {
  if (options.num_granules == 0) {
    return Status::InvalidArgument("simulation needs granules");
  }
  if (options.selectivity <= 0.0 || options.selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  if (options.steps == 0) {
    return Status::InvalidArgument("simulation needs steps");
  }
  if (options.repetitions == 0) {
    return Status::InvalidArgument("simulation needs repetitions");
  }

  uint64_t n = options.num_granules;
  CrackSimResult result;
  result.steps.assign(options.steps, CrackSimStep{});
  uint64_t log2n =
      n < 2 ? 1 : static_cast<uint64_t>(std::ceil(std::log2(n)));
  result.sort_upfront_writes = n * log2n;
  result.sort_breakeven_queries = static_cast<double>(log2n);

  for (uint64_t rep = 0; rep < options.repetitions; ++rep) {
    RunOnce(options, options.seed + rep * 0x9E3779B9ULL, &result.steps);
  }

  // Average the summed counters over the repetitions and derive the two
  // figure series.
  uint64_t reps = options.repetitions;
  uint64_t cum_crack_cost = 0;
  uint64_t cum_scan_cost = 0;
  for (CrackSimStep& step : result.steps) {
    step.answer /= reps;
    step.crack_touched /= reps;
    step.crack_moved /= reps;
    step.crack_reads /= reps;
    step.crack_writes /= reps;
    step.scan_reads /= reps;
    step.scan_writes /= reps;

    // Fig. 2: writes beyond the answer, as a fraction of N. Step 1 lands at
    // 1-σ ("the database is effectively completely rewritten" for small σ);
    // it decays as pieces shrink.
    uint64_t overhead = step.crack_writes > step.answer
                            ? step.crack_writes - step.answer
                            : 0;
    step.fractional_write_overhead =
        static_cast<double>(overhead) / static_cast<double>(n);

    // Fig. 3: accumulated crack cost (reads + writes) against the baseline
    // of scanning the vector and writing the answer (= 1.0). Starts at
    // exactly 2.0, breaks even "after a handful of queries", converges to
    // ~2σ/(1+σ).
    cum_crack_cost += step.crack_reads + step.crack_writes;
    cum_scan_cost += step.scan_reads + step.scan_writes;
    step.cumulative_overhead = static_cast<double>(cum_crack_cost) /
                               static_cast<double>(cum_scan_cost);
  }
  return result;
}

}  // namespace crackstore
