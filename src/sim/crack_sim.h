// Copyright 2026 The CrackStore Authors
//
// The small-scale simulation of paper §2.2 (Figs. 2 and 3): "Consider a
// database represented as a vector where the elements denote the granule of
// interest, i.e. tuples or disk pages. From this vector we draw at random a
// range with fixed σ and update the cracker index. During each step we only
// touch the pieces that should be cracked to solve the query."
//
// Cost model (matching the paper's accounting):
//   * cracking a piece rewrites it: piece size counts as reads AND writes;
//   * answering reads the qualifying range (σN) and writes it to the result;
//   * the scan baseline reads the whole vector per query (and writes the
//     answer);
//   * the upfront-sort alternative costs N·log2(N) writes once.
//
// A real CrackerIndex runs underneath — the touched-piece sizes come from
// actual cracks over a shuffled granule vector, not from a formula.

#ifndef CRACKSTORE_SIM_CRACK_SIM_H_
#define CRACKSTORE_SIM_CRACK_SIM_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace crackstore {

/// Simulation parameters.
struct CrackSimOptions {
  uint64_t num_granules = 100000;  ///< N (vector length)
  double selectivity = 0.05;       ///< σ per query (fixed)
  size_t steps = 20;               ///< sequence length
  uint64_t seed = 20040901;
  uint64_t repetitions = 1;        ///< runs averaged (smooths the curves)
};

/// Per-step accounting of one simulated query.
struct CrackSimStep {
  size_t step = 0;                ///< 1-based
  uint64_t answer = 0;            ///< qualifying granules (≈ σN)
  uint64_t crack_touched = 0;     ///< granules in pieces cracked this step
  uint64_t crack_moved = 0;       ///< granules relocated by the kernels
  uint64_t crack_reads = 0;       ///< crack_touched + answer
  uint64_t crack_writes = 0;      ///< crack_moved + answer
  uint64_t scan_reads = 0;        ///< baseline: N
  uint64_t scan_writes = 0;       ///< baseline: answer
  size_t pieces = 0;              ///< pieces after this step

  /// Fig. 2's y-axis: write overhead beyond the answer (the relocations the
  /// crack performed), as a fraction of N.
  double fractional_write_overhead = 0.0;
  /// Fig. 3's y-axis: cumulative crack cost / cumulative scan-read cost.
  double cumulative_overhead = 0.0;
};

/// Whole-run summary.
struct CrackSimResult {
  std::vector<CrackSimStep> steps;
  uint64_t sort_upfront_writes = 0;   ///< N·ceil(log2 N), the alternative
  double sort_breakeven_queries = 0;  ///< ≈ log2(N): queries to recover it
};

/// Runs the §2.2 simulation. Deterministic in options.seed.
Result<CrackSimResult> RunCrackSimulation(const CrackSimOptions& options);

}  // namespace crackstore

#endif  // CRACKSTORE_SIM_CRACK_SIM_H_
