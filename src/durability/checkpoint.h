// Copyright 2026 The CrackStore Authors
//
// Checkpoint files: a versioned snapshot of the *base* state — catalog
// (table names + schemas), base BAT contents (numeric tails raw, string
// tails re-interned through their heaps), head oid bases, and the set of
// dead oids (committed deletes not yet vacuumed). Nothing else: cracker
// indexes, crack caches, dictionaries, and workload-detector state are
// disposable by construction (the paper's point) and rebuild lazily.
//
// File layout:
//   [8B magic "CRKSTOR1"][u32 format_version][u32 crc][u64 body_len][body]
//   body = [u64 last_commit_ts][u64 next_lsn]
//          [u32 ntables][bytes table_image ...]
//          [u32 npolicies][bytes "table.column" u8 policy f64 budget ...]
//   crc  = CRC-32(body)
//
// Format v2 appends the per-column crack-policy section (the one piece of
// accelerator state worth keeping: what the workload taught each column),
// so a reopened store resumes its tuned policy instead of re-learning it.
// v1 files (no policy section) still load.
//
// The same table-image codec serializes a single table into a WAL record,
// so AddTable after the last checkpoint is crash-safe too.

#ifndef CRACKSTORE_DURABILITY_CHECKPOINT_H_
#define CRACKSTORE_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/relation.h"
#include "storage/types.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace durability {

/// Writer-side view of one table.
struct TableSnapshot {
  const Relation* rel = nullptr;
  Oid head_base = 0;
  std::vector<Oid> dead_oids;  ///< committed-invisible rows at snapshot time
};

/// Loader-side result for one table.
struct LoadedTable {
  std::shared_ptr<Relation> rel;
  Oid head_base = 0;
  std::vector<Oid> dead_oids;
};

/// Serializes one table (schema + base columns + dead set) to `out`.
void EncodeTableImage(const TableSnapshot& table, std::string* out);

/// Parses one table image produced by EncodeTableImage.
Result<LoadedTable> DecodeTableImage(std::string_view image);

/// One column's tuned crack-policy state (v2 checkpoints): the effective
/// policy the workload converged on and the progressive budget it ran
/// with. A reopened store seeds the column's fresh access path with these
/// instead of the store-wide default.
struct ColumnPolicyState {
  std::string column_key;          ///< "table.column"
  uint8_t policy = 0;              ///< CrackPolicy numeric value
  double progressive_budget = 0.0;
};

/// Everything a checkpoint file holds.
struct CheckpointData {
  uint64_t last_commit_ts = 0;
  uint64_t next_lsn = 1;  ///< WAL lsn sequence continues from here
  std::vector<LoadedTable> tables;
  std::vector<ColumnPolicyState> policies;  ///< empty for v1 files
};

/// Writes a checkpoint atomically to `dir/name` (tmp + fsync + rename +
/// dir fsync).
Status WriteCheckpoint(const std::string& dir, const std::string& name,
                       uint64_t last_commit_ts, uint64_t next_lsn,
                       const std::vector<TableSnapshot>& tables,
                       const std::vector<ColumnPolicyState>& policies = {},
                       uint64_t* bytes_written = nullptr);

/// Reads and validates `path`. Any framing or checksum failure is an
/// IoError — a checkpoint is written atomically, so unlike the WAL there is
/// no benign torn-tail case.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace durability
}  // namespace crackstore

#endif  // CRACKSTORE_DURABILITY_CHECKPOINT_H_
