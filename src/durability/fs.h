// Copyright 2026 The CrackStore Authors
//
// Small POSIX file helpers for the durability layer: whole-file reads,
// atomic (tmp + rename + fsync) writes, and explicit file/directory syncs.
// Durability code funnels every disk touch through these so the fsync
// discipline lives in one place.

#ifndef CRACKSTORE_DURABILITY_FS_H_
#define CRACKSTORE_DURABILITY_FS_H_

#include <string>

#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace durability {

/// True if `path` names an existing file or directory.
bool PathExists(const std::string& path);

/// Creates `path` as a directory if it does not exist (single level).
Status EnsureDir(const std::string& path);

/// Reads the whole file into a string. NotFound if it does not exist.
Result<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `dir/name` atomically: write `name.tmp`, fsync it,
/// rename over `name`, fsync the directory. Readers see the old file or the
/// new one, never a torn write.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& contents);

/// fsyncs an open descriptor / a directory by path.
Status SyncFd(int fd, const std::string& what);
Status SyncDir(const std::string& dir);

/// Truncates `path` to `size` bytes (torn-tail cleanup).
Status TruncateFile(const std::string& path, uint64_t size);

/// Removes a file; OK if it was already absent.
Status RemoveFile(const std::string& path);

/// Joins a directory and a file name with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace durability
}  // namespace crackstore

#endif  // CRACKSTORE_DURABILITY_FS_H_
