// Copyright 2026 The CrackStore Authors

#include "durability/log_format.h"

#include "util/crc32.h"

namespace crackstore {
namespace durability {

namespace {

// Value tags. Stable on-disk identifiers — append only, never renumber.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt32 = 1;
constexpr uint8_t kTagInt64 = 2;
constexpr uint8_t kTagFloat64 = 3;
constexpr uint8_t kTagString = 4;
constexpr uint8_t kTagOid = 5;

constexpr size_t kFrameHeaderBytes =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t);

// The frame checksum covers the lsn and body length, not just the body.
// CRC-32 of an empty body alone is 0, so any run of >= 16 zero bytes in a
// damaged region would parse as a well-formed empty frame — enough to fool
// the mid-log-corruption probe into misclassifying a torn tail. Chaining
// the header into the CRC makes such accidental frames a 2^-32 event.
uint32_t FrameCrc(uint64_t lsn, uint32_t body_len, std::string_view body) {
  char header[sizeof(uint64_t) + sizeof(uint32_t)];
  std::memcpy(header, &lsn, sizeof(lsn));
  std::memcpy(header + sizeof(lsn), &body_len, sizeof(body_len));
  return Crc32(body, Crc32(std::string_view(header, sizeof(header))));
}

// Attempts to parse one frame at `*offset`. On success advances the offset,
// fills lsn/body, and returns true. On failure leaves the offset unchanged
// and returns false (the caller classifies torn tail vs corruption).
bool TryParseFrame(std::string_view log, size_t* offset, uint64_t prev_lsn,
                   uint64_t* lsn, std::string_view* body) {
  size_t pos = *offset;
  uint32_t crc, body_len;
  if (!GetRaw(log, &pos, lsn) || !GetRaw(log, &pos, &crc) ||
      !GetRaw(log, &pos, &body_len)) {
    return false;
  }
  if (pos + body_len > log.size()) return false;
  if (*lsn <= prev_lsn) return false;
  std::string_view candidate(log.data() + pos, body_len);
  if (FrameCrc(*lsn, body_len, candidate) != crc) return false;
  *body = candidate;
  *offset = pos + body_len;
  return true;
}

}  // namespace

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutRaw<uint8_t>(out, kTagNull);
  } else if (v.is_int32()) {
    PutRaw<uint8_t>(out, kTagInt32);
    PutRaw<int32_t>(out, v.AsInt32());
  } else if (v.is_int64()) {
    PutRaw<uint8_t>(out, kTagInt64);
    PutRaw<int64_t>(out, v.AsInt64());
  } else if (v.is_double()) {
    PutRaw<uint8_t>(out, kTagFloat64);
    PutRaw<double>(out, v.AsDouble());
  } else if (v.is_string()) {
    PutRaw<uint8_t>(out, kTagString);
    PutBytes(out, v.AsString());
  } else {
    PutRaw<uint8_t>(out, kTagOid);
    PutRaw<uint64_t>(out, static_cast<uint64_t>(v.AsOid()));
  }
}

bool GetValue(std::string_view buf, size_t* offset, Value* out) {
  uint8_t tag;
  if (!GetRaw(buf, offset, &tag)) return false;
  switch (tag) {
    case kTagNull:
      *out = Value();
      return true;
    case kTagInt32: {
      int32_t v;
      if (!GetRaw(buf, offset, &v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagInt64: {
      int64_t v;
      if (!GetRaw(buf, offset, &v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagFloat64: {
      double v;
      if (!GetRaw(buf, offset, &v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!GetBytes(buf, offset, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    case kTagOid: {
      uint64_t v;
      if (!GetRaw(buf, offset, &v)) return false;
      *out = Value::FromOid(static_cast<Oid>(v));
      return true;
    }
    default:
      return false;
  }
}

size_t AppendFrame(std::string* out, uint64_t lsn, std::string_view body) {
  size_t before = out->size();
  PutRaw<uint64_t>(out, lsn);
  PutRaw<uint32_t>(out,
                   FrameCrc(lsn, static_cast<uint32_t>(body.size()), body));
  PutRaw<uint32_t>(out, static_cast<uint32_t>(body.size()));
  out->append(body.data(), body.size());
  return out->size() - before;
}

Result<FrameScan> ScanFrames(
    std::string_view log, uint64_t prev_lsn,
    const std::function<Status(uint64_t lsn, std::string_view body)>& sink) {
  FrameScan scan;
  scan.last_lsn = prev_lsn;
  size_t offset = 0;
  while (offset < log.size()) {
    uint64_t lsn;
    std::string_view body;
    if (TryParseFrame(log, &offset, scan.last_lsn, &lsn, &body)) {
      if (sink) {
        Status s = sink(lsn, body);
        if (!s.ok()) return s;
      }
      scan.last_lsn = lsn;
      ++scan.records;
      scan.valid_bytes = offset;
      continue;
    }
    // Bad frame at `offset`. Crash-ordering argument: an append either
    // reached the disk wholly or left a mangled *final* region — there is no
    // ordering under which a later frame is intact while an earlier one is
    // not. So probe every byte position after the bad frame for a
    // well-formed, lsn-consistent frame; finding one proves mid-log damage.
    for (size_t probe = offset + 1;
         probe + kFrameHeaderBytes <= log.size(); ++probe) {
      size_t p = probe;
      uint64_t later_lsn;
      std::string_view later_body;
      if (TryParseFrame(log, &p, scan.last_lsn, &later_lsn, &later_body)) {
        return Status::IoError(
            "log corruption: bad frame at byte " + std::to_string(offset) +
            " precedes intact frame lsn=" + std::to_string(later_lsn));
      }
    }
    scan.torn_tail = true;
    break;
  }
  return scan;
}

}  // namespace durability
}  // namespace crackstore
