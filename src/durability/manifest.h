// Copyright 2026 The CrackStore Authors
//
// MANIFEST: the root of a database directory. A tiny checksummed text file
// naming the current checkpoint (if any) and WAL segment; updated with an
// atomic rename so openers always see a consistent generation. The layout of
// a database directory is:
//
//   <path>/MANIFEST
//   <path>/checkpoint-<gen>.ckpt     (absent before the first checkpoint)
//   <path>/wal-<gen>.log

#ifndef CRACKSTORE_DURABILITY_MANIFEST_H_
#define CRACKSTORE_DURABILITY_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace durability {

struct Manifest {
  uint64_t generation = 0;
  std::string checkpoint_file;  ///< relative name; empty = no checkpoint yet
  std::string wal_file;         ///< relative name

  std::string CheckpointName() const {
    return "checkpoint-" + std::to_string(generation) + ".ckpt";
  }
  std::string WalName() const {
    return "wal-" + std::to_string(generation) + ".log";
  }
};

/// Reads `dir/MANIFEST`. NotFound when the directory has no manifest (a
/// fresh database); IoError on a malformed or corrupt one.
Result<Manifest> ReadManifest(const std::string& dir);

/// Atomically replaces `dir/MANIFEST`.
Status WriteManifest(const std::string& dir, const Manifest& manifest);

}  // namespace durability
}  // namespace crackstore

#endif  // CRACKSTORE_DURABILITY_MANIFEST_H_
