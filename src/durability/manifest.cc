// Copyright 2026 The CrackStore Authors

#include "durability/manifest.h"

#include <cstdio>
#include <sstream>

#include "durability/fs.h"
#include "util/crc32.h"

namespace crackstore {
namespace durability {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kHeader[] = "crackstore-manifest v1";
}  // namespace

Result<Manifest> ReadManifest(const std::string& dir) {
  CRACK_ASSIGN_OR_RETURN(std::string contents,
                         ReadFile(JoinPath(dir, kManifestName)));
  std::istringstream in(contents);
  std::string header;
  if (!std::getline(in, header) || header != kHeader) {
    return Status::IoError("manifest: bad header");
  }
  Manifest m;
  std::string body = header + "\n";
  uint32_t stored_crc = 0;
  bool have_crc = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "crc") {
      fields >> std::hex >> stored_crc;
      have_crc = true;
      break;
    }
    body += line + "\n";
    if (key == "generation") {
      fields >> m.generation;
    } else if (key == "checkpoint") {
      fields >> m.checkpoint_file;
      if (m.checkpoint_file == "none") m.checkpoint_file.clear();
    } else if (key == "wal") {
      fields >> m.wal_file;
    } else {
      return Status::IoError("manifest: unknown key '" + key + "'");
    }
  }
  if (!have_crc || Crc32(body) != stored_crc) {
    return Status::IoError("manifest: checksum mismatch");
  }
  if (m.wal_file.empty()) {
    return Status::IoError("manifest: missing wal entry");
  }
  return m;
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "generation " << manifest.generation << "\n";
  out << "checkpoint "
      << (manifest.checkpoint_file.empty() ? "none" : manifest.checkpoint_file)
      << "\n";
  out << "wal " << manifest.wal_file << "\n";
  std::string body = out.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n", Crc32(body));
  return WriteFileAtomic(dir, kManifestName, body + crc_line);
}

}  // namespace durability
}  // namespace crackstore
