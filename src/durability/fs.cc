// Copyright 2026 The CrackStore Authors

#include "durability/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace crackstore {
namespace durability {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  if (errno == ENOENT) {
    // Create missing parents (mkdir -p), then retry this component.
    size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      CRACK_RETURN_NOT_OK(EnsureDir(path.substr(0, slash)));
      if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::OK();
      }
    }
  }
  return Status::IoError(Errno("mkdir", path));
}

Result<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(Errno("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(Errno("read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) return Status::IoError(Errno("fsync", what));
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(Errno("open dir", dir));
  Status s = SyncFd(fd, dir);
  ::close(fd);
  return s;
}

Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& contents) {
  std::string tmp = JoinPath(dir, name + ".tmp");
  std::string final_path = JoinPath(dir, name);
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("open", tmp));
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(Errno("write", tmp));
    }
    off += static_cast<size_t>(n);
  }
  Status s = SyncFd(fd, tmp);
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError(Errno("rename", final_path));
  }
  return SyncDir(dir);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError(Errno("truncate", path));
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(Errno("unlink", path));
  }
  return Status::OK();
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace durability
}  // namespace crackstore
