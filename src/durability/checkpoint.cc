// Copyright 2026 The CrackStore Authors

#include "durability/checkpoint.h"

#include <cstring>

#include "durability/fs.h"
#include "durability/log_format.h"
#include "util/crc32.h"

namespace crackstore {
namespace durability {

namespace {

constexpr char kMagic[8] = {'C', 'R', 'K', 'S', 'T', 'O', 'R', '1'};
/// v2 appended the per-column policy section; v1 files (no section) load
/// with an empty policy list.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMinFormatVersion = 1;

}  // namespace

void EncodeTableImage(const TableSnapshot& table, std::string* out) {
  const Relation& rel = *table.rel;
  PutBytes(out, rel.name());
  const Schema& schema = rel.schema();
  PutRaw<uint32_t>(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutBytes(out, col.name);
    PutRaw<uint8_t>(out, static_cast<uint8_t>(col.type));
  }
  PutRaw<uint64_t>(out, table.head_base);
  const uint64_t nrows = rel.num_rows();
  PutRaw<uint64_t>(out, nrows);
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    const Bat& bat = *rel.column(c);
    if (bat.tail_type() == ValueType::kString) {
      // Strings round-trip by content: offsets are heap-relative and heaps
      // are rebuilt on load, so serialize the text itself.
      for (uint64_t r = 0; r < nrows; ++r) PutBytes(out, bat.GetString(r));
    } else {
      out->append(reinterpret_cast<const char*>(bat.raw_data()),
                  bat.tail_bytes());
    }
  }
  PutRaw<uint64_t>(out, static_cast<uint64_t>(table.dead_oids.size()));
  for (Oid oid : table.dead_oids) PutRaw<uint64_t>(out, oid);
}

Result<LoadedTable> DecodeTableImage(std::string_view image) {
  size_t offset = 0;
  std::string name;
  uint32_t ncols;
  if (!GetBytes(image, &offset, &name) || !GetRaw(image, &offset, &ncols)) {
    return Status::IoError("table image: bad header");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    uint8_t type;
    if (!GetBytes(image, &offset, &def.name) ||
        !GetRaw(image, &offset, &type) ||
        type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IoError("table image: bad column def");
    }
    def.type = static_cast<ValueType>(type);
    cols.push_back(std::move(def));
  }
  LoadedTable loaded;
  uint64_t nrows;
  if (!GetRaw(image, &offset, &loaded.head_base) ||
      !GetRaw(image, &offset, &nrows)) {
    return Status::IoError("table image: bad row header");
  }
  CRACK_ASSIGN_OR_RETURN(loaded.rel,
                         Relation::Create(name, Schema(std::move(cols))));
  for (size_t c = 0; c < loaded.rel->num_columns(); ++c) {
    Bat& bat = *loaded.rel->column(c);
    if (bat.tail_type() == ValueType::kString) {
      std::string s;
      for (uint64_t r = 0; r < nrows; ++r) {
        if (!GetBytes(image, &offset, &s)) {
          return Status::IoError("table image: truncated string column");
        }
        bat.AppendString(s);
      }
    } else {
      const size_t width = ValueTypeWidth(bat.tail_type());
      const size_t bytes = nrows * width;
      if (offset + bytes > image.size()) {
        return Status::IoError("table image: truncated numeric column");
      }
      bat.Reserve(nrows);
      std::memcpy(bat.mutable_raw_data(), image.data() + offset, bytes);
      bat.SetCountUnsafe(nrows);
      offset += bytes;
    }
    bat.set_head_base(loaded.head_base);
  }
  uint64_t ndead;
  if (!GetRaw(image, &offset, &ndead)) {
    return Status::IoError("table image: bad dead-oid header");
  }
  loaded.dead_oids.reserve(ndead);
  for (uint64_t i = 0; i < ndead; ++i) {
    uint64_t oid;
    if (!GetRaw(image, &offset, &oid)) {
      return Status::IoError("table image: truncated dead-oid list");
    }
    loaded.dead_oids.push_back(oid);
  }
  if (offset != image.size()) {
    return Status::IoError("table image: trailing bytes");
  }
  return loaded;
}

Status WriteCheckpoint(const std::string& dir, const std::string& name,
                       uint64_t last_commit_ts, uint64_t next_lsn,
                       const std::vector<TableSnapshot>& tables,
                       const std::vector<ColumnPolicyState>& policies,
                       uint64_t* bytes_written) {
  std::string body;
  PutRaw<uint64_t>(&body, last_commit_ts);
  PutRaw<uint64_t>(&body, next_lsn);
  PutRaw<uint32_t>(&body, static_cast<uint32_t>(tables.size()));
  for (const TableSnapshot& table : tables) {
    std::string image;
    EncodeTableImage(table, &image);
    PutBytes(&body, image);
  }
  PutRaw<uint32_t>(&body, static_cast<uint32_t>(policies.size()));
  for (const ColumnPolicyState& p : policies) {
    PutBytes(&body, p.column_key);
    PutRaw<uint8_t>(&body, p.policy);
    PutRaw<double>(&body, p.progressive_budget);
  }

  std::string file;
  file.reserve(sizeof(kMagic) + 16 + body.size());
  file.append(kMagic, sizeof(kMagic));
  PutRaw<uint32_t>(&file, kFormatVersion);
  PutRaw<uint32_t>(&file, Crc32(body));
  PutRaw<uint64_t>(&file, static_cast<uint64_t>(body.size()));
  file.append(body);
  if (bytes_written != nullptr) *bytes_written = file.size();
  return WriteFileAtomic(dir, name, file);
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  CRACK_ASSIGN_OR_RETURN(std::string file, ReadFile(path));
  std::string_view view(file);
  if (view.size() < sizeof(kMagic) ||
      std::memcmp(view.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("checkpoint " + path + ": bad magic");
  }
  size_t offset = sizeof(kMagic);
  uint32_t version, crc;
  uint64_t body_len;
  if (!GetRaw(view, &offset, &version) || !GetRaw(view, &offset, &crc) ||
      !GetRaw(view, &offset, &body_len)) {
    return Status::IoError("checkpoint " + path + ": truncated header");
  }
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::IoError("checkpoint " + path + ": unsupported version " +
                           std::to_string(version));
  }
  if (offset + body_len != view.size()) {
    return Status::IoError("checkpoint " + path + ": length mismatch");
  }
  std::string_view body = view.substr(offset, body_len);
  if (Crc32(body) != crc) {
    return Status::IoError("checkpoint " + path + ": checksum mismatch");
  }
  CheckpointData data;
  size_t pos = 0;
  uint32_t ntables;
  if (!GetRaw(body, &pos, &data.last_commit_ts) ||
      !GetRaw(body, &pos, &data.next_lsn) || !GetRaw(body, &pos, &ntables)) {
    return Status::IoError("checkpoint " + path + ": bad body header");
  }
  data.tables.reserve(ntables);
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string image;
    if (!GetBytes(body, &pos, &image)) {
      return Status::IoError("checkpoint " + path + ": truncated table");
    }
    CRACK_ASSIGN_OR_RETURN(LoadedTable table, DecodeTableImage(image));
    data.tables.push_back(std::move(table));
  }
  if (version >= 2) {
    uint32_t npolicies;
    if (!GetRaw(body, &pos, &npolicies)) {
      return Status::IoError("checkpoint " + path + ": bad policy header");
    }
    data.policies.reserve(npolicies);
    for (uint32_t i = 0; i < npolicies; ++i) {
      ColumnPolicyState p;
      if (!GetBytes(body, &pos, &p.column_key) ||
          !GetRaw(body, &pos, &p.policy) ||
          !GetRaw(body, &pos, &p.progressive_budget)) {
        return Status::IoError("checkpoint " + path +
                               ": truncated policy section");
      }
      data.policies.push_back(std::move(p));
    }
  }
  return data;
}

}  // namespace durability
}  // namespace crackstore
