// Copyright 2026 The CrackStore Authors
//
// Shared on-disk codec for the durability layer: CRC-framed log records and
// a typed little-endian value encoding. The frame layout is the rowstore
// journal's — [u64 lsn][u32 crc][u32 body_len][body] with strictly
// increasing lsns, crc = CRC-32 chained over lsn, body_len, and body (the
// header is covered so zero runs can't forge empty frames) — promoted here
// so the commit log, checkpoint
// files, and the journal share one codec and one recovery scanner.
//
// The scanner's contract is the classic WAL recovery rule: a frame that runs
// past end-of-log, or whose checksum fails with *no* well-formed frame after
// it, is a torn tail (the expected residue of a crash mid-append) and replay
// stops cleanly before it. A bad frame *followed by* a well-formed frame
// cannot have been produced by append-crash ordering — that is media
// corruption and must surface as an error, never silent truncation.

#ifndef CRACKSTORE_DURABILITY_LOG_FORMAT_H_
#define CRACKSTORE_DURABILITY_LOG_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

#include "storage/types.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace durability {

// ---------------------------------------------------------------------------
// Primitive putters/getters over a byte buffer.

template <typename T>
inline void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
inline bool GetRaw(std::string_view buf, size_t* offset, T* out) {
  if (*offset + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

inline void PutBytes(std::string* out, std::string_view s) {
  PutRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

inline bool GetBytes(std::string_view buf, size_t* offset, std::string* out) {
  uint32_t len;
  if (!GetRaw(buf, offset, &len)) return false;
  if (*offset + len > buf.size()) return false;
  out->assign(buf.data() + *offset, len);
  *offset += len;
  return true;
}

/// Serializes a dynamically-typed Value as [u8 tag][payload]. Strings are
/// length-prefixed; numerics are fixed-width little-endian.
void PutValue(std::string* out, const Value& v);

/// Inverse of PutValue. Returns false on a malformed encoding.
bool GetValue(std::string_view buf, size_t* offset, Value* out);

// ---------------------------------------------------------------------------
// Frame codec.

/// Appends one CRC frame wrapping `body` to `out`; returns bytes appended.
size_t AppendFrame(std::string* out, uint64_t lsn, std::string_view body);

/// Result of scanning a log tail: how much of it parsed cleanly.
struct FrameScan {
  uint64_t records = 0;     ///< well-formed frames consumed
  uint64_t last_lsn = 0;    ///< lsn of the last good frame (0 if none)
  size_t valid_bytes = 0;   ///< byte length of the clean prefix
  bool torn_tail = false;   ///< trailing garbage was classified as torn tail
};

/// Scans `log` frame by frame, invoking `sink(lsn, body)` for each
/// well-formed record (sink may be null). `prev_lsn` seeds the
/// strictly-increasing lsn check (0 for a fresh log).
///
/// Returns the scan summary on success — including the torn-tail case, where
/// `valid_bytes < log.size()` and the caller should truncate the physical
/// log to `valid_bytes`. Returns IoError for mid-log corruption: a bad frame
/// with at least one well-formed, lsn-consistent frame somewhere after it.
Result<FrameScan> ScanFrames(
    std::string_view log, uint64_t prev_lsn,
    const std::function<Status(uint64_t lsn, std::string_view body)>& sink);

}  // namespace durability
}  // namespace crackstore

#endif  // CRACKSTORE_DURABILITY_LOG_FORMAT_H_
