// Copyright 2026 The CrackStore Authors

#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "durability/fs.h"
#include "durability/log_format.h"
#include "obs/instruments.h"

namespace crackstore {
namespace durability {

namespace {

constexpr uint8_t kRecordCommit = 1;
constexpr uint8_t kRecordTableImage = 2;

bool DecodeOp(std::string_view buf, size_t* offset, WalOp* op) {
  uint8_t kind;
  uint64_t oid;
  if (!GetRaw(buf, offset, &kind)) return false;
  if (kind < static_cast<uint8_t>(WalOpKind::kInsert) ||
      kind > static_cast<uint8_t>(WalOpKind::kUpdate)) {
    return false;
  }
  op->kind = static_cast<WalOpKind>(kind);
  if (!GetBytes(buf, offset, &op->table)) return false;
  if (!GetRaw(buf, offset, &oid)) return false;
  op->oid = oid;
  switch (op->kind) {
    case WalOpKind::kInsert: {
      uint32_t ncols;
      if (!GetRaw(buf, offset, &ncols)) return false;
      op->row.resize(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        if (!GetValue(buf, offset, &op->row[i])) return false;
      }
      return true;
    }
    case WalOpKind::kDelete:
      return true;
    case WalOpKind::kUpdate:
      if (!GetBytes(buf, offset, &op->column)) return false;
      return GetValue(buf, offset, &op->value);
  }
  return false;
}

bool DecodeCommitPayload(std::string_view buf, size_t* offset,
                         WalCommit* commit) {
  uint32_t nops;
  if (!GetRaw(buf, offset, &commit->commit_ts)) return false;
  if (!GetRaw(buf, offset, &nops)) return false;
  commit->ops.resize(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    if (!DecodeOp(buf, offset, &commit->ops[i])) return false;
  }
  return *offset == buf.size();
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "off") return FsyncPolicy::kOff;
  if (name == "commit") return FsyncPolicy::kCommit;
  if (name == "interval") return FsyncPolicy::kInterval;
  return Status::InvalidArgument("unknown fsync policy '" + name +
                                 "' (expected off|commit|interval)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOff:
      return "off";
    case FsyncPolicy::kCommit:
      return "commit";
    case FsyncPolicy::kInterval:
      return "interval";
  }
  return "?";
}

void EncodeCommitRecord(const WalCommit& commit, std::string* body) {
  PutRaw<uint8_t>(body, kRecordCommit);
  PutRaw<uint64_t>(body, commit.commit_ts);
  PutRaw<uint32_t>(body, static_cast<uint32_t>(commit.ops.size()));
  for (const WalOp& op : commit.ops) {
    PutRaw<uint8_t>(body, static_cast<uint8_t>(op.kind));
    PutBytes(body, op.table);
    PutRaw<uint64_t>(body, op.oid);
    switch (op.kind) {
      case WalOpKind::kInsert:
        PutRaw<uint32_t>(body, static_cast<uint32_t>(op.row.size()));
        for (const Value& v : op.row) PutValue(body, v);
        break;
      case WalOpKind::kDelete:
        break;
      case WalOpKind::kUpdate:
        PutBytes(body, op.column);
        PutValue(body, op.value);
        break;
    }
  }
}

void EncodeTableImageRecord(std::string_view image, std::string* body) {
  PutRaw<uint8_t>(body, kRecordTableImage);
  body->append(image.data(), image.size());
}

Result<WalReplayStats> ReplayWalFile(
    const std::string& path,
    const std::function<Status(const WalCommit&)>& on_commit,
    const std::function<Status(std::string_view image)>& on_image) {
  WalReplayStats stats;
  auto contents = ReadFile(path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return stats;  // fresh log
    return contents.status();
  }
  auto sink = [&](uint64_t lsn, std::string_view body) -> Status {
    (void)lsn;
    size_t offset = 0;
    uint8_t kind;
    if (!GetRaw(body, &offset, &kind)) {
      return Status::IoError("wal record missing kind byte");
    }
    switch (kind) {
      case kRecordCommit: {
        WalCommit commit;
        if (!DecodeCommitPayload(body, &offset, &commit)) {
          return Status::IoError("malformed wal commit record");
        }
        if (commit.commit_ts > stats.max_commit_ts) {
          stats.max_commit_ts = commit.commit_ts;
        }
        ++stats.commits;
        if (on_commit) return on_commit(commit);
        return Status::OK();
      }
      case kRecordTableImage: {
        ++stats.table_images;
        if (on_image) return on_image(body.substr(offset));
        return Status::OK();
      }
      default:
        return Status::IoError("unknown wal record kind " +
                               std::to_string(kind));
    }
  };
  auto scan = ScanFrames(*contents, /*prev_lsn=*/0, sink);
  CRACK_RETURN_NOT_OK(scan.status());
  stats.records = scan->records;
  stats.last_lsn = scan->last_lsn;
  stats.valid_bytes = scan->valid_bytes;
  stats.torn_tail = scan->torn_tail;
  return stats;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string path,
                                                   FsyncPolicy policy,
                                                   double interval_seconds,
                                                   uint64_t next_lsn,
                                                   uint64_t append_offset) {
  if (PathExists(path)) {
    CRACK_RETURN_NOT_OK(TruncateFile(path, append_offset));
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open wal " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(path), fd, policy, interval_seconds, next_lsn, append_offset));
}

WalWriter::WalWriter(std::string path, int fd, FsyncPolicy policy,
                     double interval_seconds, uint64_t next_lsn,
                     uint64_t file_bytes)
    : path_(std::move(path)),
      policy_(policy),
      interval_(std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interval_seconds))),
      fd_(fd),
      next_lsn_(next_lsn),
      file_bytes_(file_bytes),
      last_sync_(std::chrono::steady_clock::now()) {}

WalWriter::~WalWriter() {
  Status s = Close();
  (void)s;
}

Result<uint64_t> WalWriter::AppendRecord(std::string_view body,
                                         bool is_commit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IoError("wal writer closed: " + path_);
  uint64_t lsn = next_lsn_++;
  std::string frame;
  frame.reserve(16 + body.size());
  AppendFrame(&frame, lsn, body);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write wal " + path_ + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  file_bytes_ += frame.size();
  bytes_appended_ += frame.size();
  appended_lsn_ = lsn;
  if (is_commit) ++commits_appended_;
  obs::RecordWalAppend(frame.size());
  return lsn;
}

Result<uint64_t> WalWriter::AppendCommit(const WalCommit& commit) {
  std::string body;
  EncodeCommitRecord(commit, &body);
  return AppendRecord(body, /*is_commit=*/true);
}

Result<uint64_t> WalWriter::AppendTableImage(std::string_view image) {
  std::string body;
  body.reserve(1 + image.size());
  EncodeTableImageRecord(image, &body);
  return AppendRecord(body, /*is_commit=*/false);
}

Status WalWriter::CommitDurable(uint64_t lsn) {
  if (policy_ == FsyncPolicy::kOff) return Status::OK();
  if (policy_ == FsyncPolicy::kInterval) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (durable_lsn_ >= lsn) return Status::OK();
    auto now = std::chrono::steady_clock::now();
    if (now - last_sync_ < interval_) return Status::OK();
    return SyncLocked();
  }
  // kCommit: group commit. Whoever gets the sync mutex first fsyncs on
  // behalf of every commit appended so far; later arrivals whose lsn is
  // already durable return without touching the disk.
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (durable_lsn_ >= lsn) return Status::OK();
  return SyncLocked();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  uint64_t target_lsn, target_commits;
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::OK();
    fd = fd_;
    target_lsn = appended_lsn_;
    target_commits = commits_appended_;
  }
  if (target_lsn > durable_lsn_) {
    CRACK_RETURN_NOT_OK(SyncFd(fd, path_));
    uint64_t batch = target_commits - commits_durable_;
    if (batch > 0) obs::RecordWalGroupCommit(batch);
    obs::RecordWalFsync();
    durable_lsn_ = target_lsn;
    commits_durable_ = target_commits;
  }
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status WalWriter::Close() {
  Status s = Sync();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return s;
}

}  // namespace durability
}  // namespace crackstore
