// Copyright 2026 The CrackStore Authors
//
// Write-ahead commit log. The MVCC design makes this log cheap: uncommitted
// work lives only in memory (undo + version stamps), so the WAL carries pure
// redo — one record per committed transaction holding its commit stamp and
// the logical operations it performed, in commit-stamp order. Replay of a
// clean prefix therefore reconstructs exactly a committed prefix of history.
//
// Accelerators (cracker indexes, crack caches, workload-detector state) are
// deliberately NOT logged: the paper's disposability claim — the cracker
// index can always be rebuilt from the base BATs — is what keeps this log
// small and recovery simple.
//
// Record body layout: [u8 record_kind][payload]
//   kCommit:     [u64 commit_ts][u32 nops][op ...]
//     op:        [u8 op_kind][bytes table][u64 oid][op-specific]
//       insert:  [u32 ncols][value ...]        (full row, schema order)
//       delete:  (nothing)
//       update:  [bytes column][value]         (the new value)
//   kTableImage: [table image]                  (checkpoint codec; emitted by
//                                               AddTable so tables created
//                                               after the last checkpoint
//                                               survive a crash)

#ifndef CRACKSTORE_DURABILITY_WAL_H_
#define CRACKSTORE_DURABILITY_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace durability {

/// When the log forces data to stable storage.
enum class FsyncPolicy {
  kOff,       ///< never fsync (buffered writes only; fastest, weakest)
  kCommit,    ///< fsync on every commit, with group-commit batching
  kInterval,  ///< fsync at most once per configured interval
};

/// Parses "off" / "commit" / "interval"; InvalidArgument otherwise.
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

enum class WalOpKind : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
};

/// One logical redo operation inside a committed transaction.
struct WalOp {
  WalOpKind kind = WalOpKind::kInsert;
  std::string table;
  Oid oid = kInvalidOid;
  std::vector<Value> row;  ///< kInsert: full row in schema order
  std::string column;      ///< kUpdate
  Value value;             ///< kUpdate: the new value
};

/// One committed transaction: its commit stamp plus redo ops in statement
/// order.
struct WalCommit {
  uint64_t commit_ts = 0;
  std::vector<WalOp> ops;
};

/// Serializes / parses a kCommit record body (including the kind byte).
void EncodeCommitRecord(const WalCommit& commit, std::string* body);

/// Wraps raw table-image bytes into a kTableImage record body.
void EncodeTableImageRecord(std::string_view image, std::string* body);

/// Summary of a WAL file scan.
struct WalReplayStats {
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t table_images = 0;
  uint64_t max_commit_ts = 0;
  uint64_t last_lsn = 0;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Reads and decodes `path` front to back. `on_commit` / `on_image` receive
/// records in log order. A missing file yields empty stats (a fresh log). A
/// torn tail stops replay cleanly and is reported in the stats (callers
/// truncate to `valid_bytes` before appending); mid-log corruption is an
/// IoError.
Result<WalReplayStats> ReplayWalFile(
    const std::string& path,
    const std::function<Status(const WalCommit&)>& on_commit,
    const std::function<Status(std::string_view image)>& on_image);

/// Appender for one WAL segment file. Appends are internally serialized;
/// `CommitDurable` implements group commit: concurrent committers that find
/// their record already covered by another thread's fsync return without
/// issuing their own.
class WalWriter {
 public:
  /// Opens `path` for appending at `append_offset` (the recovery scan's
  /// valid_bytes; the file is truncated there first). `next_lsn` continues
  /// the recovered lsn sequence.
  static Result<std::unique_ptr<WalWriter>> Open(std::string path,
                                                 FsyncPolicy policy,
                                                 double interval_seconds,
                                                 uint64_t next_lsn,
                                                 uint64_t append_offset);

  ~WalWriter();
  CRACK_DISALLOW_COPY_AND_ASSIGN(WalWriter);

  /// Appends one commit record; returns its lsn. Durability is separate —
  /// call CommitDurable after the in-memory commit is published.
  Result<uint64_t> AppendCommit(const WalCommit& commit);

  /// Appends one table-image record; returns its lsn.
  Result<uint64_t> AppendTableImage(std::string_view image);

  /// Makes the log durable through `lsn` according to the fsync policy.
  /// Under kCommit this is the group-commit rendezvous; under kInterval it
  /// fsyncs only when the interval elapsed; under kOff it is a no-op.
  Status CommitDurable(uint64_t lsn);

  /// Unconditional flush + fsync (rotation, checkpoint, close).
  Status Sync();

  /// Syncs and closes the file. Idempotent.
  Status Close();

  uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }
  uint64_t bytes_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_appended_;
  }
  /// Current file size (recovered prefix + appends) — the checkpoint
  /// trigger's growth signal.
  uint64_t file_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return file_bytes_;
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, FsyncPolicy policy,
            double interval_seconds, uint64_t next_lsn, uint64_t file_bytes);

  Result<uint64_t> AppendRecord(std::string_view body, bool is_commit);
  Status SyncLocked();  // requires sync_mu_ held

  const std::string path_;
  const FsyncPolicy policy_;
  const std::chrono::steady_clock::duration interval_;

  mutable std::mutex mu_;  // guards append state and the fd
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t file_bytes_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t appended_lsn_ = 0;      // lsn of the last appended record
  uint64_t commits_appended_ = 0;  // commit records appended so far

  std::mutex sync_mu_;  // serializes fsyncs; taken after appends complete
  uint64_t durable_lsn_ = 0;
  uint64_t commits_durable_ = 0;
  std::chrono::steady_clock::time_point last_sync_;
};

}  // namespace durability
}  // namespace crackstore

#endif  // CRACKSTORE_DURABILITY_WAL_H_
