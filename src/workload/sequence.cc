// Copyright 2026 The CrackStore Authors

#include "workload/sequence.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace crackstore {

const char* ProfileName(Profile profile) {
  switch (profile) {
    case Profile::kHomerun:
      return "homerun";
    case Profile::kHiking:
      return "hiking";
    case Profile::kStrolling:
      return "strolling";
    case Profile::kStrollingConverge:
      return "strolling-converge";
  }
  return "?";
}

Profile ProfileFromString(const std::string& s) {
  if (s == "hiking") return Profile::kHiking;
  if (s == "strolling") return Profile::kStrolling;
  if (s == "strolling-converge") return Profile::kStrollingConverge;
  return Profile::kHomerun;
}

namespace {

/// Width (in domain values) for selectivity `sel` over N, at least 1.
int64_t WidthFor(double sel, uint64_t n) {
  double w = sel * static_cast<double>(n);
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(w)));
}

std::vector<RangeQuery> GenerateHomerun(const MqsSpec& spec, Pcg32* rng) {
  int64_t n = static_cast<int64_t>(spec.num_rows);
  size_t k = spec.sequence_length;
  int64_t target_w = WidthFor(spec.target_selectivity, spec.num_rows);

  // Final destination: a random window of σN values.
  int64_t t_lo = rng->NextInRange(1, n - target_w + 1);
  int64_t t_hi = t_lo + target_w - 1;

  std::vector<RangeQuery> out;
  out.reserve(k);
  int64_t prev_lo = 1;
  int64_t prev_hi = n;
  for (size_t i = 1; i <= k; ++i) {
    double sel = Contraction(spec.rho, i, k, spec.target_selectivity);
    int64_t w = std::max(WidthFor(sel, spec.num_rows), target_w);
    // Nested zoom: window of width w containing [t_lo, t_hi], inside the
    // previous window.
    int64_t lo_min = std::max(prev_lo, t_hi - w + 1);
    int64_t lo_max = std::min(t_lo, prev_hi - w + 1);
    if (lo_max < lo_min) lo_max = lo_min;  // numeric edge: degenerate room
    int64_t lo = rng->NextInRange(lo_min, lo_max);
    int64_t hi = lo + w - 1;
    RangeQuery q;
    q.lo = lo;
    q.hi = hi;
    q.step = i;
    q.selectivity = static_cast<double>(w) / static_cast<double>(n);
    out.push_back(q);
    prev_lo = lo;
    prev_hi = hi;
  }
  // Exactness of the destination: force the last step onto the target.
  out.back().lo = t_lo;
  out.back().hi = t_hi;
  out.back().selectivity =
      static_cast<double>(target_w) / static_cast<double>(n);
  return out;
}

std::vector<RangeQuery> GenerateHiking(const MqsSpec& spec, Pcg32* rng) {
  int64_t n = static_cast<int64_t>(spec.num_rows);
  size_t k = spec.sequence_length;
  int64_t w = WidthFor(spec.target_selectivity, spec.num_rows);

  // Destination window and a random starting position.
  int64_t t_lo = rng->NextInRange(1, n - w + 1);
  int64_t cur_lo = rng->NextInRange(1, n - w + 1);

  std::vector<RangeQuery> out;
  out.reserve(k);
  for (size_t i = 1; i <= k; ++i) {
    // Shift contracts with ρ(i; k, 0): early steps leap (small overlap δ),
    // late steps crawl (δ -> 100%). The walk homes in on the target.
    double shift_frac = Contraction(spec.rho, i, k, /*sigma=*/0.0);
    int64_t max_shift = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(shift_frac * static_cast<double>(w))));
    int64_t distance = t_lo - cur_lo;
    int64_t shift = std::clamp<int64_t>(distance, -max_shift, max_shift);
    cur_lo = std::clamp<int64_t>(cur_lo + shift, 1, n - w + 1);

    RangeQuery q;
    q.lo = cur_lo;
    q.hi = cur_lo + w - 1;
    q.step = i;
    q.selectivity = static_cast<double>(w) / static_cast<double>(n);
    out.push_back(q);
  }
  return out;
}

std::vector<RangeQuery> GenerateStrolling(const MqsSpec& spec, Pcg32* rng,
                                          bool converge) {
  int64_t n = static_cast<int64_t>(spec.num_rows);
  size_t k = spec.sequence_length;
  std::vector<RangeQuery> out;
  out.reserve(k);
  for (size_t i = 1; i <= k; ++i) {
    // Converge mode: the i-th selectivity factor (Fig. 11); random mode:
    // draw a random step number to find a selectivity (with replacement).
    size_t step_for_sel =
        converge ? i : static_cast<size_t>(rng->NextInRange(
                           1, static_cast<int64_t>(k)));
    double sel =
        Contraction(spec.rho, step_for_sel, k, spec.target_selectivity);
    int64_t w = WidthFor(sel, spec.num_rows);
    int64_t lo = rng->NextInRange(1, std::max<int64_t>(1, n - w + 1));
    RangeQuery q;
    q.lo = lo;
    q.hi = std::min(n, lo + w - 1);
    q.step = i;
    q.selectivity = static_cast<double>(q.width()) / static_cast<double>(n);
    out.push_back(q);
  }
  return out;
}

}  // namespace

Result<std::vector<RangeQuery>> GenerateSequence(const MqsSpec& spec) {
  if (spec.num_rows == 0) {
    return Status::InvalidArgument("MQS needs N > 0");
  }
  if (spec.sequence_length == 0) {
    return Status::InvalidArgument("MQS needs k > 0");
  }
  if (spec.target_selectivity <= 0.0 || spec.target_selectivity > 1.0) {
    return Status::InvalidArgument("MQS needs sigma in (0, 1]");
  }
  int64_t target_w = WidthFor(spec.target_selectivity, spec.num_rows);
  if (target_w > static_cast<int64_t>(spec.num_rows)) {
    return Status::InvalidArgument("target window exceeds the domain");
  }

  Pcg32 rng(spec.seed);
  switch (spec.profile) {
    case Profile::kHomerun:
      return GenerateHomerun(spec, &rng);
    case Profile::kHiking:
      return GenerateHiking(spec, &rng);
    case Profile::kStrolling:
      return GenerateStrolling(spec, &rng, /*converge=*/false);
    case Profile::kStrollingConverge:
      return GenerateStrolling(spec, &rng, /*converge=*/true);
  }
  return Status::InvalidArgument("unknown profile");
}

}  // namespace crackstore
