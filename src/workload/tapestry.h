// Copyright 2026 The CrackStore Authors
//
// DBtapestry (paper §4): the benchmark's data generator. It produces a table
// with N rows and α columns where every column holds a permutation of the
// numbers 1..N. Construction follows the paper: a small seed table with a
// permutation of a small integer range is replicated (with offsets) to reach
// the required size, then shuffled to obtain a random tuple distribution.

#ifndef CRACKSTORE_WORKLOAD_TAPESTRY_H_
#define CRACKSTORE_WORKLOAD_TAPESTRY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// Generator parameters: MQS dimensions α (arity) and N (cardinality) plus
/// the construction knobs.
struct TapestryOptions {
  uint64_t num_rows = 1000000;    ///< N
  uint64_t num_columns = 2;       ///< α
  uint64_t seed = 20040901;       ///< master RNG seed (report date!)
  uint64_t seed_table_size = 1024;  ///< size of the replicated seed block
};

/// Column names are "c0", "c1", ...; values per column are a permutation of
/// 1..N (int64). Fails when num_rows or num_columns is zero.
Result<std::shared_ptr<Relation>> BuildTapestry(const std::string& name,
                                                const TapestryOptions& options);

/// Builds a single permutation column of 1..n (helper for column-level
/// experiments and tests).
std::shared_ptr<Bat> BuildPermutationColumn(uint64_t n, uint64_t seed,
                                            const std::string& name = "perm");

}  // namespace crackstore

#endif  // CRACKSTORE_WORKLOAD_TAPESTRY_H_
