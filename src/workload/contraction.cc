// Copyright 2026 The CrackStore Authors

#include "workload/contraction.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace crackstore {

const char* ContractionModelName(ContractionModel model) {
  switch (model) {
    case ContractionModel::kLinear:
      return "linear";
    case ContractionModel::kExponential:
      return "exponential";
    case ContractionModel::kLogarithmic:
      return "logarithmic";
  }
  return "?";
}

ContractionModel ContractionModelFromString(const std::string& s) {
  if (s == "exponential" || s == "exp") return ContractionModel::kExponential;
  if (s == "logarithmic" || s == "log") return ContractionModel::kLogarithmic;
  return ContractionModel::kLinear;
}

double Contraction(ContractionModel model, size_t i, size_t k, double sigma) {
  CRACK_DCHECK(k > 0);
  CRACK_DCHECK(sigma >= 0.0 && sigma <= 1.0);
  if (i >= k) return sigma;
  double di = static_cast<double>(i);
  double dk = static_cast<double>(k);
  switch (model) {
    case ContractionModel::kLinear:
      // (1 - i (1-σ) / k): a constant tuple count removed per step.
      return 1.0 - di * (1.0 - sigma) / dk;
    case ContractionModel::kExponential:
      // σ + (1-σ) e^{-2 (1-σ) i² / k}: quick trim, long fine-tuning tail.
      return sigma +
             (1.0 - sigma) * std::exp(-2.0 * (1.0 - sigma) * di * di / dk);
    case ContractionModel::kLogarithmic: {
      // 1 - (1-σ) e^{-2 (1-σ) (k-i)² / k}: the mirrored case.
      double rem = dk - di;
      return 1.0 -
             (1.0 - sigma) * std::exp(-2.0 * (1.0 - sigma) * rem * rem / dk);
    }
  }
  return sigma;
}

}  // namespace crackstore
