// Copyright 2026 The CrackStore Authors

#include "workload/tapestry.h"

#include <numeric>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace crackstore {

namespace {

/// Builds a permutation of 1..n the tapestry way: a shuffled seed block of
/// size s is replicated ceil(n/s) times with offsets s, 2s, ... (each
/// replica a permutation of its own value range), truncated to n, then
/// globally shuffled. The result is a uniform random permutation of 1..n.
std::vector<int64_t> TapestryPermutation(uint64_t n, uint64_t seed_block,
                                         Pcg32* rng) {
  std::vector<int64_t> seed_perm(seed_block);
  std::iota(seed_perm.begin(), seed_perm.end(), int64_t{1});
  Shuffle(&seed_perm, rng);

  std::vector<int64_t> values;
  values.reserve(n);
  uint64_t offset = 0;
  while (values.size() < n) {
    for (uint64_t i = 0; i < seed_block && values.size() < n; ++i) {
      int64_t v = seed_perm[i] + static_cast<int64_t>(offset);
      // Values beyond n are folded back by re-drawing from the remainder on
      // the final (truncated) replica; simplest correct approach: collect
      // then fix up below.
      values.push_back(v);
    }
    offset += seed_block;
  }
  // The final replica may contain values > n (when n is not a multiple of
  // the seed block). Remap them onto the unused values <= n.
  std::vector<int64_t> overflow_slots;
  std::vector<bool> used(n + 1, false);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= static_cast<int64_t>(n)) {
      used[static_cast<size_t>(values[i])] = true;
    } else {
      overflow_slots.push_back(static_cast<int64_t>(i));
    }
  }
  if (!overflow_slots.empty()) {
    std::vector<int64_t> unused;
    for (uint64_t v = 1; v <= n; ++v) {
      if (!used[v]) unused.push_back(static_cast<int64_t>(v));
    }
    CRACK_DCHECK(unused.size() == overflow_slots.size());
    for (size_t i = 0; i < overflow_slots.size(); ++i) {
      values[static_cast<size_t>(overflow_slots[i])] = unused[i];
    }
  }
  Shuffle(&values, rng);
  return values;
}

}  // namespace

std::shared_ptr<Bat> BuildPermutationColumn(uint64_t n, uint64_t seed,
                                            const std::string& name) {
  Pcg32 rng(seed);
  std::vector<int64_t> values =
      TapestryPermutation(n, std::min<uint64_t>(n, 1024), &rng);
  return Bat::FromVector(values, name);
}

Result<std::shared_ptr<Relation>> BuildTapestry(
    const std::string& name, const TapestryOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("tapestry needs at least one row");
  }
  if (options.num_columns == 0) {
    return Status::InvalidArgument("tapestry needs at least one column");
  }
  if (options.seed_table_size == 0) {
    return Status::InvalidArgument("seed table size must be positive");
  }

  std::vector<ColumnDef> defs;
  std::vector<std::shared_ptr<Bat>> columns;
  defs.reserve(options.num_columns);
  columns.reserve(options.num_columns);
  for (uint64_t c = 0; c < options.num_columns; ++c) {
    std::string col_name = StrFormat("c%llu", static_cast<unsigned long long>(c));
    defs.push_back(ColumnDef{col_name, ValueType::kInt64});
    // Independent RNG stream per column so columns are uncorrelated.
    Pcg32 rng(options.seed + 0x9E3779B97F4A7C15ULL * (c + 1));
    uint64_t seed_block =
        std::min<uint64_t>(options.num_rows, options.seed_table_size);
    std::vector<int64_t> values =
        TapestryPermutation(options.num_rows, seed_block, &rng);
    columns.push_back(Bat::FromVector(values, name + "." + col_name));
  }
  return Relation::FromColumns(name, Schema(std::move(defs)),
                               std::move(columns));
}

}  // namespace crackstore
