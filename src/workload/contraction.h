// Copyright 2026 The CrackStore Authors
//
// Selectivity distribution functions ρ(i; k, σ) (paper §4, Fig. 8): they
// model how a user contracts an initial ill-phrased query down to the target
// of σN tuples over a k-step session.
//
//   * linear:      a constant number of tuples is shaved off per step;
//   * exponential: the candidate set is trimmed quickly at the start, the
//                  fine-tuning happens in the tail;
//   * logarithmic: the complement — the hard reduction happens late.
//
// NOTE on fidelity: the published formulae for the exponential/logarithmic
// models are typographically corrupted in all available copies of the paper
// ("σ+(1−σ)e^{−(1−σ)2ki²}"). We reconstruct them with exponent
// 2(1−σ)·i²/k (resp. mirrored), which reproduces the three curve shapes of
// Fig. 8 exactly: fast-early, straight, and fast-late contraction meeting at
// ρ(k)=σ. See EXPERIMENTS.md.

#ifndef CRACKSTORE_WORKLOAD_CONTRACTION_H_
#define CRACKSTORE_WORKLOAD_CONTRACTION_H_

#include <cstddef>
#include <string>

namespace crackstore {

/// The three convergence models of §4.
enum class ContractionModel : uint8_t {
  kLinear = 0,
  kExponential = 1,
  kLogarithmic = 2,
};

const char* ContractionModelName(ContractionModel model);

/// Parses "linear", "exponential"/"exp", "logarithmic"/"log"; defaults to
/// kLinear.
ContractionModel ContractionModelFromString(const std::string& s);

/// Evaluates ρ(i; k, σ): the selectivity at step i (1-based, i in [0, k]) of
/// a k-step sequence converging to target selectivity σ ∈ [0, 1].
/// Guarantees: ρ(0) ≈ 1 for exponential/logarithmic (exactly 1 for linear),
/// ρ(k) = σ, and ρ is non-increasing in i.
double Contraction(ContractionModel model, size_t i, size_t k, double sigma);

}  // namespace crackstore

#endif  // CRACKSTORE_WORKLOAD_CONTRACTION_H_
