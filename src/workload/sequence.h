// Copyright 2026 The CrackStore Authors
//
// Multi-query sequence generation (paper §4): the MQS(α, N, k, σ, ρ, δ)
// space with the three idealized user profiles.
//
//   * homerun:   monotone zoom — every query's range is nested inside the
//                previous one and contains the final target window of σN
//                tuples, sizes following ρ.
//   * hiking:    fixed-size σN windows that slide toward the target; the
//                pair-wise overlap δ of consecutive windows grows to 100%
//                as the shift distance contracts with ρ.
//   * strolling: no intra-query dependency — random windows, either with
//                ρ-driven sizes ("converge", Fig. 11) or fully random draws.

#ifndef CRACKSTORE_WORKLOAD_SEQUENCE_H_
#define CRACKSTORE_WORKLOAD_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "workload/contraction.h"

namespace crackstore {

/// One range query over the tapestry value domain [1, N]; bounds inclusive.
struct RangeQuery {
  int64_t lo = 1;
  int64_t hi = 1;
  size_t step = 0;            ///< 1-based position in the sequence
  double selectivity = 0.0;   ///< (hi - lo + 1) / N

  int64_t width() const { return hi - lo + 1; }
};

/// The user profiles of §4.
enum class Profile : uint8_t {
  kHomerun = 0,
  kHiking = 1,
  kStrolling = 2,          ///< fully random step draws (with replacement)
  kStrollingConverge = 3,  ///< ρ-driven sizes, random positions (Fig. 11)
};

const char* ProfileName(Profile profile);

/// Parses "homerun", "hiking", "strolling", "strolling-converge".
Profile ProfileFromString(const std::string& s);

/// The query-sequence space descriptor (paper's Definition, eq. 2):
/// MQS(α, N, k, σ, ρ, δ). α (table arity) lives in TapestryOptions; δ is
/// derived from ρ for the hiking profile as the complement of the shift
/// distance.
struct MqsSpec {
  uint64_t num_rows = 1000000;       ///< N
  size_t sequence_length = 20;       ///< k
  double target_selectivity = 0.05;  ///< σ
  ContractionModel rho = ContractionModel::kLinear;
  Profile profile = Profile::kHomerun;
  uint64_t seed = 20040901;
};

/// Generates the k queries of `spec`. Deterministic in spec.seed.
/// Guarantees per profile:
///   * homerun: queries nested, last query is exactly the target window;
///   * hiking: every query has width ≈ σN, the last sits on the target;
///   * strolling(-converge): widths per ρ (or random draws), positions
///     uniform.
Result<std::vector<RangeQuery>> GenerateSequence(const MqsSpec& spec);

}  // namespace crackstore

#endif  // CRACKSTORE_WORKLOAD_SEQUENCE_H_
