// Copyright 2026 The CrackStore Authors
//
// Parser for the SQL subset. Grammar (keywords case-insensitive):
//
//   statement   := select_stmt | insert_stmt | delete_stmt | update_stmt
//                | txn_stmt | vacuum_stmt | checkpoint_stmt | explain_stmt
//                | show_stmt | policy_stmt
//   txn_stmt    := BEGIN [TRANSACTION] [;] | COMMIT [;]
//                | ROLLBACK [;] | ABORT [;]
//   vacuum_stmt := VACUUM [;]
//   checkpoint_stmt := CHECKPOINT [;]
//   explain_stmt:= EXPLAIN ANALYZE statement
//   show_stmt   := SHOW STATS [LIKE string] [;] | SHOW POLICY [;]
//   policy_stmt := SET POLICY policy_name [BUDGET fraction] [;]
//   policy_name := standard | stochastic | coarse | auto | progressive
//                | ddc | dd1c
//   fraction    := number ['.' number]
//
// POLICY and BUDGET are deliberately NOT lexer keywords — they match by
// identifier text, so `UPDATE t SET policy = 5` still works on a column
// named "policy".
//   select_stmt := SELECT select_list FROM table [join] [where] [group] [;]
//   insert_stmt := INSERT INTO table VALUES '(' literal (',' literal)* ')' [;]
//   delete_stmt := DELETE FROM table [where] [;]
//   update_stmt := UPDATE table SET assignment (',' assignment)* [where] [;]
//   assignment  := column '=' literal
//   select_list := '*' | COUNT '(' '*' ')' | item (',' item)*
//   item        := column | agg '(' column ')'
//   agg         := COUNT | SUM | MIN | MAX
//   join        := JOIN table ON qualified '=' qualified
//   qualified   := table '.' column
//   where       := WHERE predicate (AND predicate)*
//   predicate   := column op literal | column BETWEEN literal AND literal
//   op          := '<' | '<=' | '>' | '>=' | '=' | '<>'
//   literal     := number | string        (strings single-quoted, '' escape)
//   group       := GROUP BY column
//
// The WHERE clause is exactly the paper's selection-cracker shape: simple
// (range) conditions `attr θ cst` / `attr ∈ [low, high]` in conjunctive
// form (§3.1, eq. 1) — shared verbatim by SELECT, DELETE and UPDATE, so
// every DML predicate is also advice to crack. Literals are typed end to
// end: a string literal stays a string through the predicate (TypedRange)
// or DML value (Value) until the dictionary-encoded access path translates
// it to its code domain; BETWEEN endpoints must be of one family.

#ifndef CRACKSTORE_SQL_PARSER_H_
#define CRACKSTORE_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/range_bounds.h"
#include "core/typed_range.h"
#include "sql/lexer.h"
#include "storage/types.h"
#include "util/result.h"

namespace crackstore {
namespace sql {

/// Aggregate functions of the subset.
enum class AggFunc : uint8_t { kNone = 0, kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// One SELECT-list item: a plain column or agg(column).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;  ///< empty for COUNT(*)
};

/// JOIN clause (single equi-join).
struct JoinClause {
  std::string table;
  std::string left_table;   ///< qualifier of the left join column
  std::string left_column;
  std::string right_table;  ///< qualifier of the right join column
  std::string right_column;
};

/// One conjunct of the WHERE clause, already normalized to a typed range
/// (integer literals int64-widened, string literals kept as strings).
struct Predicate {
  std::string column;
  TypedRange range;
};

/// A parsed SELECT statement.
struct SelectStatement {
  bool select_star = false;
  bool count_star = false;
  std::vector<SelectItem> items;
  std::string table;
  std::optional<JoinClause> join;
  std::vector<Predicate> where;
  std::optional<std::string> group_by;
};

/// A parsed INSERT statement (positional, typed literals: integers widen
/// to the column types at execution, strings intern into the column's
/// dictionary).
struct InsertStatement {
  std::string table;
  std::vector<Value> values;
};

/// A parsed DELETE statement (empty `where` = all rows).
struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;
};

/// One SET clause of an UPDATE (typed literal).
struct SetClause {
  std::string column;
  Value value;
};

/// A parsed UPDATE statement (empty `where` = all rows).
struct UpdateStatement {
  std::string table;
  std::vector<SetClause> sets;
  std::vector<Predicate> where;
};

/// What a statement is.
enum class StatementKind : uint8_t {
  kSelect = 0,
  kInsert,
  kDelete,
  kUpdate,
  kBegin,     ///< BEGIN [TRANSACTION] — open a snapshot transaction
  kCommit,    ///< COMMIT — publish the session transaction
  kRollback,  ///< ROLLBACK / ABORT — undo the session transaction
  kVacuum,    ///< VACUUM — reclaim versions below the low-water snapshot
  kCheckpoint,  ///< CHECKPOINT — snapshot base state, truncate the WAL
  kExplainAnalyze,  ///< EXPLAIN ANALYZE stmt — run with a bound QueryTrace
  kShowStats,       ///< SHOW STATS [LIKE 'pat'] — dump the metrics registry
  kSetPolicy,       ///< SET POLICY name [BUDGET f] — runtime policy switch
  kShowPolicy,      ///< SHOW POLICY — per-column live policy state
};

/// A parsed statement of any kind; only the member matching `kind` is set.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;
  InsertStatement insert;
  DeleteStatement del;
  UpdateStatement update;
  /// kExplainAnalyze: the wrapped statement (shared_ptr keeps Statement
  /// copyable; never null for that kind).
  std::shared_ptr<Statement> explain_inner;
  /// kShowStats: LIKE pattern ('%'/'_' wildcards); empty = all instruments.
  std::string show_stats_pattern;
  /// kSetPolicy: the policy name as written (validated by the executor so
  /// the error message can name the store's accepted spellings).
  std::string set_policy_name;
  /// kSetPolicy: BUDGET fraction; negative when the clause was absent.
  double set_policy_budget = -1.0;
  /// Wall time ParseStatement spent on this statement (EXPLAIN ANALYZE
  /// reports it as the `parse` span; 0 for hand-built statements).
  double parse_seconds = 0.0;
};

/// Parses one statement of any kind. Errors carry the offending position.
Result<Statement> ParseStatement(const std::string& statement);

/// Parses one SELECT statement (legacy entry; DML is rejected).
Result<SelectStatement> Parse(const std::string& statement);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_PARSER_H_
