// Copyright 2026 The CrackStore Authors
//
// Parser for the SQL subset. Grammar (keywords case-insensitive):
//
//   statement   := SELECT select_list FROM table [join] [where] [group] [;]
//   select_list := '*' | COUNT '(' '*' ')' | item (',' item)*
//   item        := column | agg '(' column ')'
//   agg         := COUNT | SUM | MIN | MAX
//   join        := JOIN table ON qualified '=' qualified
//   qualified   := table '.' column
//   where       := WHERE predicate (AND predicate)*
//   predicate   := column op number | column BETWEEN number AND number
//   op          := '<' | '<=' | '>' | '>=' | '=' | '<>'
//   group       := GROUP BY column
//
// The WHERE clause is exactly the paper's selection-cracker shape: simple
// (range) conditions `attr θ cst` / `attr ∈ [low, high]` in conjunctive
// form (§3.1, eq. 1).

#ifndef CRACKSTORE_SQL_PARSER_H_
#define CRACKSTORE_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/range_bounds.h"
#include "sql/lexer.h"
#include "util/result.h"

namespace crackstore {
namespace sql {

/// Aggregate functions of the subset.
enum class AggFunc : uint8_t { kNone = 0, kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// One SELECT-list item: a plain column or agg(column).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;  ///< empty for COUNT(*)
};

/// JOIN clause (single equi-join).
struct JoinClause {
  std::string table;
  std::string left_table;   ///< qualifier of the left join column
  std::string left_column;
  std::string right_table;  ///< qualifier of the right join column
  std::string right_column;
};

/// One conjunct of the WHERE clause, already normalized to RangeBounds.
struct Predicate {
  std::string column;
  RangeBounds range;
};

/// A parsed SELECT statement.
struct SelectStatement {
  bool select_star = false;
  bool count_star = false;
  std::vector<SelectItem> items;
  std::string table;
  std::optional<JoinClause> join;
  std::vector<Predicate> where;
  std::optional<std::string> group_by;
};

/// Parses one statement. Errors carry the offending position.
Result<SelectStatement> Parse(const std::string& statement);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_PARSER_H_
