// Copyright 2026 The CrackStore Authors

#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace crackstore {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords{
      "SELECT", "FROM",  "WHERE",   "AND",   "JOIN",   "ON",
      "GROUP",  "BY",    "COUNT",   "SUM",   "MIN",    "MAX",
      "BETWEEN", "AS",   "INTO",    "ORDER", "LIMIT",  "INSERT",
      "VALUES", "DELETE", "UPDATE", "SET",
      "BEGIN",  "COMMIT", "ROLLBACK", "ABORT", "TRANSACTION", "VACUUM",
      "CHECKPOINT", "EXPLAIN", "ANALYZE", "SHOW", "STATS", "LIKE"};
  return kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      token.type = TokenType::kNumber;
      token.text = input.substr(start, i - start);
      token.number = std::strtoll(token.text.c_str(), nullptr, 10);
    } else if (c == '\'') {
      // Single-quoted string literal; '' escapes an embedded quote.
      ++i;  // opening quote
      std::string decoded;
      bool terminated = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            decoded += '\'';
            i += 2;
            continue;
          }
          ++i;  // closing quote
          terminated = true;
          break;
        }
        decoded += input[i];
        ++i;
      }
      if (!terminated) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal starting at position %zu "
                      "(expected a closing ')",
                      token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(decoded);
    } else if (c == '<' || c == '>') {
      token.type = TokenType::kOperator;
      token.text = std::string(1, c);
      ++i;
      if (i < n && input[i] == '=') {
        token.text += '=';
        ++i;
      } else if (c == '<' && i < n && input[i] == '>') {
        token.text = "<>";
        ++i;
      }
    } else if (c == '=') {
      token.type = TokenType::kOperator;
      token.text = "=";
      ++i;
    } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
               c == ';') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at position %zu", c, i));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace crackstore
