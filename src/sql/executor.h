// Copyright 2026 The CrackStore Authors
//
// Executor: maps parsed statements onto the AdaptiveStore — the step where
// "every query is first analyzed for its contribution to break the database
// into pieces" (paper abstract). WHERE conjuncts become Ξ cracks (one per
// referenced column), JOIN becomes a ^ crack, GROUP BY an Ω crack. DML
// (INSERT/DELETE/UPDATE) routes through the same access paths: its WHERE
// predicates crack the store exactly like a SELECT's before the write
// deltas land.

#ifndef CRACKSTORE_SQL_EXECUTOR_H_
#define CRACKSTORE_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "obs/trace.h"
#include "sql/parser.h"
#include "util/result.h"

namespace crackstore {
namespace sql {

/// Shape of a statement's result.
enum class OutputKind : uint8_t {
  kCount = 0,     ///< single counter (COUNT(*))
  kRows = 1,      ///< materialized rows (SELECT * / SELECT cols)
  kGroups = 2,    ///< (group, aggregate) pairs (GROUP BY)
  kAffected = 3,  ///< rows touched by DML (INSERT/DELETE/UPDATE)
  kTxn = 4,       ///< transaction control / VACUUM acknowledgement
};

/// The result of executing one statement.
struct QueryOutput {
  OutputKind kind = OutputKind::kCount;
  uint64_t count = 0;                     ///< always set
  std::shared_ptr<Relation> rows;         ///< kRows
  std::vector<GroupAggregate> groups;     ///< kGroups
  std::string group_column;               ///< kGroups: the grouping column
  std::string agg_description;            ///< kGroups: e.g. "sum(c1)"
  std::string message;                    ///< kTxn: human-readable ack
  double seconds = 0.0;
  IoStats io;
};

/// Parses and executes `statement` (SELECT or DML) against `store` in
/// auto-commit mode. Transaction-control statements (BEGIN/COMMIT/ROLLBACK)
/// need a SqlSession and are rejected here.
Result<QueryOutput> ExecuteSql(AdaptiveStore* store,
                               const std::string& statement);

/// Executes an already-parsed statement of any kind (auto-commit; `txn`
/// selects the transaction every read/DML runs in).
Result<QueryOutput> Execute(AdaptiveStore* store, const Statement& stmt,
                            TxnId txn = kNoTxn);

/// Executes with an explicit execution context: `ctx.trace` (when set) is
/// bound to the executing thread for the statement's duration, so every
/// crack, latch and snapshot event lands in that trace. This is the seam
/// EXPLAIN ANALYZE and the shell's `trace on` mode use.
Result<QueryOutput> Execute(AdaptiveStore* store, const Statement& stmt,
                            const obs::ExecContext& ctx, TxnId txn = kNoTxn);

/// Executes an already-parsed SELECT (at `txn`'s snapshot).
Result<QueryOutput> Execute(AdaptiveStore* store, const SelectStatement& stmt,
                            TxnId txn = kNoTxn);

/// Renders the metrics registry as an aligned table (instruments matching
/// the LIKE `pattern`; empty = all). Shared by SHOW STATS and the shell's
/// `stats` command so both surfaces show the same registry.
std::string RenderStats(const std::string& pattern);

/// One SQL session: the unit that owns a current transaction. BEGIN opens
/// a snapshot transaction, every following statement runs inside it (reads
/// see the snapshot plus the session's own writes), COMMIT/ROLLBACK end
/// it; outside a transaction every statement auto-commits. A session is
/// single-threaded; open one per shell/worker for per-session snapshots.
class SqlSession {
 public:
  explicit SqlSession(AdaptiveStore* store) : store_(store) {}

  /// Parses and executes one statement, tracking BEGIN/COMMIT/ROLLBACK.
  Result<QueryOutput> ExecuteSql(const std::string& statement);
  /// Same, with `ctx.trace` bound for the statement (shell `trace on`).
  Result<QueryOutput> ExecuteSql(const std::string& statement,
                                 const obs::ExecContext& ctx);
  Result<QueryOutput> Execute(const Statement& stmt);

  bool in_txn() const { return txn_ != kNoTxn; }
  TxnId txn() const { return txn_; }

  /// Rolls back an open transaction (session teardown support).
  Status Close();

 private:
  AdaptiveStore* store_;
  TxnId txn_ = kNoTxn;
};

/// Renders `output` as human-readable text (shell support).
std::string FormatOutput(const QueryOutput& output, size_t max_rows = 20);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_EXECUTOR_H_
