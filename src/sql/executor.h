// Copyright 2026 The CrackStore Authors
//
// Executor: maps a parsed SELECT onto the AdaptiveStore — the step where
// "every query is first analyzed for its contribution to break the database
// into pieces" (paper abstract). WHERE conjuncts become Ξ cracks (one per
// referenced column), JOIN becomes a ^ crack, GROUP BY an Ω crack.

#ifndef CRACKSTORE_SQL_EXECUTOR_H_
#define CRACKSTORE_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "sql/parser.h"
#include "util/result.h"

namespace crackstore {
namespace sql {

/// Shape of a statement's result.
enum class OutputKind : uint8_t {
  kCount = 0,   ///< single counter (COUNT(*))
  kRows = 1,    ///< materialized rows (SELECT * / SELECT cols)
  kGroups = 2,  ///< (group, aggregate) pairs (GROUP BY)
};

/// The result of executing one statement.
struct QueryOutput {
  OutputKind kind = OutputKind::kCount;
  uint64_t count = 0;                     ///< always set
  std::shared_ptr<Relation> rows;         ///< kRows
  std::vector<GroupAggregate> groups;     ///< kGroups
  std::string group_column;               ///< kGroups: the grouping column
  std::string agg_description;            ///< kGroups: e.g. "sum(c1)"
  double seconds = 0.0;
  IoStats io;
};

/// Parses and executes `statement` against `store`.
Result<QueryOutput> ExecuteSql(AdaptiveStore* store,
                               const std::string& statement);

/// Executes an already-parsed statement.
Result<QueryOutput> Execute(AdaptiveStore* store, const SelectStatement& stmt);

/// Renders `output` as human-readable text (shell support).
std::string FormatOutput(const QueryOutput& output, size_t max_rows = 20);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_EXECUTOR_H_
