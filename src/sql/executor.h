// Copyright 2026 The CrackStore Authors
//
// Executor: maps parsed statements onto the AdaptiveStore — the step where
// "every query is first analyzed for its contribution to break the database
// into pieces" (paper abstract). WHERE conjuncts become Ξ cracks (one per
// referenced column), JOIN becomes a ^ crack, GROUP BY an Ω crack. DML
// (INSERT/DELETE/UPDATE) routes through the same access paths: its WHERE
// predicates crack the store exactly like a SELECT's before the write
// deltas land.

#ifndef CRACKSTORE_SQL_EXECUTOR_H_
#define CRACKSTORE_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "sql/parser.h"
#include "util/result.h"

namespace crackstore {
namespace sql {

/// Shape of a statement's result.
enum class OutputKind : uint8_t {
  kCount = 0,     ///< single counter (COUNT(*))
  kRows = 1,      ///< materialized rows (SELECT * / SELECT cols)
  kGroups = 2,    ///< (group, aggregate) pairs (GROUP BY)
  kAffected = 3,  ///< rows touched by DML (INSERT/DELETE/UPDATE)
};

/// The result of executing one statement.
struct QueryOutput {
  OutputKind kind = OutputKind::kCount;
  uint64_t count = 0;                     ///< always set
  std::shared_ptr<Relation> rows;         ///< kRows
  std::vector<GroupAggregate> groups;     ///< kGroups
  std::string group_column;               ///< kGroups: the grouping column
  std::string agg_description;            ///< kGroups: e.g. "sum(c1)"
  double seconds = 0.0;
  IoStats io;
};

/// Parses and executes `statement` (SELECT or DML) against `store`.
Result<QueryOutput> ExecuteSql(AdaptiveStore* store,
                               const std::string& statement);

/// Executes an already-parsed statement of any kind.
Result<QueryOutput> Execute(AdaptiveStore* store, const Statement& stmt);

/// Executes an already-parsed SELECT.
Result<QueryOutput> Execute(AdaptiveStore* store, const SelectStatement& stmt);

/// Renders `output` as human-readable text (shell support).
std::string FormatOutput(const QueryOutput& output, size_t max_rows = 20);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_EXECUTOR_H_
