// Copyright 2026 The CrackStore Authors

#include "sql/executor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace crackstore {
namespace sql {

namespace {

Result<AggKind> ToAggKind(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return AggKind::kCount;
    case AggFunc::kSum:
      return AggKind::kSum;
    case AggFunc::kMin:
      return AggKind::kMin;
    case AggFunc::kMax:
      return AggKind::kMax;
    case AggFunc::kNone:
      break;
  }
  return Status::InvalidArgument("not an aggregate");
}

/// Materializes the rows named by `oids` (source positions) from `rel`,
/// keeping only `columns` (empty = all, in schema order). Snapshot-correct:
/// cells whose physical value postdates `txn`'s snapshot materialize the
/// value the snapshot reads (the version log's override).
Result<std::shared_ptr<Relation>> MaterializeRows(
    AdaptiveStore* store, const std::shared_ptr<Relation>& rel,
    const std::vector<Oid>& oids, const std::vector<std::string>& columns,
    TxnId txn, IoStats* io) {
  std::vector<ColumnDef> defs;
  std::vector<size_t> sources;
  if (columns.empty()) {
    defs = rel->schema().columns();
    for (size_t i = 0; i < defs.size(); ++i) sources.push_back(i);
  } else {
    for (const std::string& name : columns) {
      int idx = rel->schema().FieldIndex(name);
      if (idx < 0) {
        return Status::NotFound("no column '" + name + "' in " + rel->name());
      }
      defs.push_back(rel->schema().column(static_cast<size_t>(idx)));
      sources.push_back(static_cast<size_t>(idx));
    }
  }
  CRACK_ASSIGN_OR_RETURN(std::shared_ptr<Relation> out,
                         Relation::Create(rel->name() + "_result",
                                          Schema(std::move(defs))));
  for (size_t c = 0; c < sources.size(); ++c) {
    const std::shared_ptr<Bat>& src = rel->column(sources[c]);
    const std::shared_ptr<Bat>& dst = out->column(c);
    const std::string& name = rel->schema().column(sources[c]).name;
    CRACK_ASSIGN_OR_RETURN(SnapshotView view,
                           store->ReadView(rel->name(), name, txn));
    std::unordered_map<Oid, const Value*> overridden;
    for (const auto& [oid, value] : view.overrides()) {
      overridden.emplace(oid, &value);
    }
    Oid base = src->head_base();
    for (Oid oid : oids) {
      auto ov = overridden.find(oid);
      Status st =
          ov != overridden.end()
              ? dst->AppendValue(*ov->second)
              : dst->AppendValue(src->GetValue(static_cast<size_t>(
                    oid - base)));
      if (!st.ok()) return st;
    }
  }
  io->tuples_read += oids.size() * sources.size();
  io->tuples_written += oids.size() * sources.size();
  return out;
}

/// Rewrites parsed predicates into the facade's conjunct shape.
std::vector<AdaptiveStore::ColumnRange> ToConjuncts(
    const std::vector<Predicate>& where) {
  std::vector<AdaptiveStore::ColumnRange> conjuncts;
  conjuncts.reserve(where.size());
  for (const Predicate& p : where) {
    conjuncts.push_back({p.column, p.range});
  }
  return conjuncts;
}

/// Collects the qualifying oids of a WHERE clause. Every predicate routes
/// through the referenced column's access path (cracking it under the crack
/// strategy); the answer shape (contiguous piece vs oid list) is erased by
/// QueryResult::CollectOids.
Result<std::vector<Oid>> WhereOids(AdaptiveStore* store,
                                   const std::string& table,
                                   const std::vector<Predicate>& where,
                                   TxnId txn, IoStats* io) {
  CRACK_ASSIGN_OR_RETURN(
      QueryResult qr,
      store->SelectConjunction(table, ToConjuncts(where), Delivery::kView,
                               txn));
  *io += qr.io;
  return std::move(qr).CollectOids();
}

}  // namespace

Result<QueryOutput> Execute(AdaptiveStore* store, const SelectStatement& stmt,
                            TxnId txn) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  QueryOutput out;
  WallTimer timer;
  obs::TraceSpan stmt_span("select-stmt", stmt.table, &out.io);
  // Planning here is statement-shape dispatch plus name resolution; the
  // span closes right before the first store call of the chosen path.
  obs::TraceSpan plan_span("plan", stmt.table);

  // --- GROUP BY: the Ω cracker path. ---------------------------------
  if (stmt.group_by.has_value()) {
    if (!stmt.where.empty() || stmt.join.has_value()) {
      return Status::Unimplemented(
          "GROUP BY with WHERE/JOIN is not supported by this subset");
    }
    AggKind kind = AggKind::kCount;
    std::string agg_column = *stmt.group_by;
    if (stmt.count_star) {
      // COUNT(*) per group.
    } else {
      if (stmt.items.size() != 1 || stmt.items[0].agg == AggFunc::kNone) {
        return Status::Unimplemented(
            "GROUP BY needs exactly one aggregate select item (or "
            "COUNT(*))");
      }
      CRACK_ASSIGN_OR_RETURN(kind, ToAggKind(stmt.items[0].agg));
      agg_column = stmt.items[0].column;
    }
    plan_span.Close();
    CRACK_ASSIGN_OR_RETURN(
        out.groups, store->GroupBy(stmt.table, *stmt.group_by, agg_column,
                                   kind, txn));
    out.kind = OutputKind::kGroups;
    out.count = out.groups.size();
    out.group_column = *stmt.group_by;
    out.agg_description =
        stmt.count_star
            ? "count(*)"
            : StrFormat("%s(%s)", AggFuncName(stmt.items[0].agg),
                        agg_column.c_str());
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // --- JOIN: the ^ cracker path. --------------------------------------
  if (stmt.join.has_value()) {
    if (!stmt.count_star) {
      return Status::Unimplemented("JOIN supports COUNT(*) delivery only");
    }
    if (!stmt.where.empty()) {
      return Status::Unimplemented("JOIN with WHERE is not supported");
    }
    const JoinClause& join = *stmt.join;
    // Resolve which qualifier names which operand.
    std::string lt = join.left_table, lc = join.left_column;
    std::string rt = join.right_table, rc = join.right_column;
    if (lt == join.table && rt == stmt.table) {
      std::swap(lt, rt);
      std::swap(lc, rc);
    }
    if (lt != stmt.table || rt != join.table) {
      return Status::InvalidArgument(
          "join condition must reference both joined tables");
    }
    plan_span.Close();
    CRACK_ASSIGN_OR_RETURN(
        QueryResult qr,
        store->JoinEquals(lt, lc, rt, rc, Delivery::kCount, txn));
    out.kind = OutputKind::kCount;
    out.count = qr.count;
    out.io += qr.io;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // --- Plain selection: the Ξ cracker path. ----------------------------
  CRACK_ASSIGN_OR_RETURN(std::shared_ptr<Relation> rel,
                         store->table(stmt.table));

  // COUNT(*).
  if (stmt.count_star) {
    plan_span.Close();
    if (stmt.where.empty()) {
      CRACK_ASSIGN_OR_RETURN(out.count, store->LiveRowCount(stmt.table, txn));
    } else if (stmt.where.size() == 1) {
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          store->SelectRange(stmt.table, stmt.where[0].column,
                             stmt.where[0].range, Delivery::kCount, txn));
      out.count = qr.count;
      out.io += qr.io;
    } else {
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          store->SelectConjunction(stmt.table, ToConjuncts(stmt.where),
                                   Delivery::kCount, txn));
      out.count = qr.count;
      out.io += qr.io;
    }
    out.kind = OutputKind::kCount;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // Single aggregate without GROUP BY: SELECT SUM(c) FROM t [WHERE ...].
  if (stmt.items.size() == 1 && stmt.items[0].agg != AggFunc::kNone) {
    CRACK_ASSIGN_OR_RETURN(std::shared_ptr<Bat> agg_col,
                           rel->column(stmt.items[0].column));
    if (agg_col->tail_type() != ValueType::kInt64 &&
        agg_col->tail_type() != ValueType::kInt32) {
      return Status::Unimplemented("aggregates need integer columns");
    }
    plan_span.Close();
    // Aggregate pushdown: a WHERE-less aggregate, or one whose single
    // conjunct predicates the aggregated column itself, reduces over the
    // cracked spans directly — no oid list, no value gather. Paths that
    // cannot push down (progressive budgets, string predicates) report
    // Unimplemented and the select-based loop below remains the oracle.
    const bool pushable =
        stmt.where.empty() || (stmt.where.size() == 1 &&
                               stmt.where[0].column == stmt.items[0].column);
    if (pushable) {
      TypedRange agg_range =
          stmt.where.empty() ? TypedRange::All() : stmt.where[0].range;
      Result<ColumnAggregates> agg = store->AggregateRange(
          stmt.table, stmt.items[0].column, agg_range, txn);
      if (agg.ok()) {
        int64_t acc = 0;
        switch (stmt.items[0].agg) {
          case AggFunc::kCount:
            acc = static_cast<int64_t>(agg->rows);
            break;
          case AggFunc::kSum:
            acc = agg->sum;
            break;
          case AggFunc::kMin:
            acc = agg->has_minmax ? agg->min : 0;
            break;
          case AggFunc::kMax:
            acc = agg->has_minmax ? agg->max : 0;
            break;
          case AggFunc::kNone:
            break;
        }
        out.io += agg->io;
        out.kind = OutputKind::kGroups;  // a single (global, value) row
        out.groups.push_back(GroupAggregate{0, acc});
        out.count = 1;
        out.group_column = "<all>";
        out.agg_description = StrFormat(
            "%s(%s)", AggFuncName(stmt.items[0].agg),
            stmt.items[0].column.c_str());
        out.seconds = timer.ElapsedSeconds();
        return out;
      }
    }
    std::vector<Oid> oids;
    if (stmt.where.empty()) {
      CRACK_ASSIGN_OR_RETURN(oids, store->LiveOids(stmt.table, txn));
    } else {
      CRACK_ASSIGN_OR_RETURN(
          oids, WhereOids(store, stmt.table, stmt.where, txn, &out.io));
    }
    // Aggregate the values the snapshot reads, not the physical ones.
    CRACK_ASSIGN_OR_RETURN(
        SnapshotView agg_view,
        store->ReadView(stmt.table, stmt.items[0].column, txn));
    std::unordered_map<Oid, int64_t> agg_overrides;
    for (const auto& [oid, value] : agg_view.overrides()) {
      agg_overrides.emplace(oid, value.ToInt64());
    }
    bool is32 = agg_col->tail_type() == ValueType::kInt32;
    Oid base = agg_col->head_base();
    int64_t acc = 0;
    bool first = true;
    for (Oid oid : oids) {
      size_t row = static_cast<size_t>(oid - base);
      int64_t v = is32 ? agg_col->Get<int32_t>(row)
                       : agg_col->Get<int64_t>(row);
      auto ov = agg_overrides.find(oid);
      if (ov != agg_overrides.end()) v = ov->second;
      switch (stmt.items[0].agg) {
        case AggFunc::kCount:
          ++acc;
          break;
        case AggFunc::kSum:
          acc += v;
          break;
        case AggFunc::kMin:
          acc = first ? v : std::min(acc, v);
          break;
        case AggFunc::kMax:
          acc = first ? v : std::max(acc, v);
          break;
        case AggFunc::kNone:
          break;
      }
      first = false;
    }
    out.io.tuples_read += oids.size();
    out.kind = OutputKind::kGroups;  // a single (global, value) row
    out.groups.push_back(GroupAggregate{0, acc});
    out.count = 1;
    out.group_column = "<all>";
    out.agg_description = StrFormat("%s(%s)", AggFuncName(stmt.items[0].agg),
                                    stmt.items[0].column.c_str());
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // SELECT * / SELECT cols: materialize qualifying rows.
  std::vector<std::string> projection;
  if (!stmt.select_star) {
    for (const SelectItem& item : stmt.items) {
      if (item.agg != AggFunc::kNone) {
        return Status::Unimplemented(
            "mixing aggregates and plain columns needs GROUP BY");
      }
      projection.push_back(item.column);
    }
  }
  plan_span.Close();
  std::vector<Oid> oids;
  if (stmt.where.empty()) {
    CRACK_ASSIGN_OR_RETURN(oids, store->LiveOids(stmt.table, txn));
  } else {
    CRACK_ASSIGN_OR_RETURN(
        oids, WhereOids(store, stmt.table, stmt.where, txn, &out.io));
  }
  {
    obs::TraceSpan mat_span("materialize", stmt.table, &out.io);
    CRACK_ASSIGN_OR_RETURN(
        out.rows, MaterializeRows(store, rel, oids, projection, txn, &out.io));
  }
  out.kind = OutputKind::kRows;
  out.count = out.rows->num_rows();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<QueryOutput> Execute(AdaptiveStore* store, const Statement& stmt,
                            TxnId txn) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return Execute(store, stmt.select, txn);
    case StatementKind::kInsert: {
      QueryOutput out;
      // Literals arrive typed from the parser; the store coerces numerics
      // to the column widths and routes strings through the dictionary.
      std::vector<Value> row = stmt.insert.values;
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          store->Insert(stmt.insert.table, std::move(row), txn));
      out.kind = OutputKind::kAffected;
      out.count = qr.count;
      out.io += qr.io;
      out.seconds = qr.seconds;
      return out;
    }
    case StatementKind::kDelete: {
      QueryOutput out;
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          store->Delete(stmt.del.table, ToConjuncts(stmt.del.where), txn));
      out.kind = OutputKind::kAffected;
      out.count = qr.count;
      out.io += qr.io;
      out.seconds = qr.seconds;
      return out;
    }
    case StatementKind::kUpdate: {
      QueryOutput out;
      std::vector<AdaptiveStore::Assignment> sets;
      sets.reserve(stmt.update.sets.size());
      for (const SetClause& s : stmt.update.sets) {
        sets.push_back({s.column, s.value});
      }
      CRACK_ASSIGN_OR_RETURN(
          QueryResult qr,
          store->Update(stmt.update.table, sets,
                        ToConjuncts(stmt.update.where), txn));
      out.kind = OutputKind::kAffected;
      out.count = qr.count;
      out.io += qr.io;
      out.seconds = qr.seconds;
      return out;
    }
    case StatementKind::kVacuum: {
      QueryOutput out;
      CRACK_ASSIGN_OR_RETURN(AdaptiveStore::VacuumStats stats,
                             store->Vacuum());
      out.kind = OutputKind::kTxn;
      out.count = stats.rows_purged;
      out.message = StrFormat(
          "VACUUM: purged %llu row version(s), folded %llu stamp(s), "
          "dropped %llu superseded value(s) below ts %llu",
          static_cast<unsigned long long>(stats.rows_purged),
          static_cast<unsigned long long>(stats.versions_dropped),
          static_cast<unsigned long long>(stats.chain_entries_dropped),
          static_cast<unsigned long long>(stats.low_water));
      return out;
    }
    case StatementKind::kCheckpoint: {
      QueryOutput out;
      CRACK_RETURN_NOT_OK(store->Checkpoint());
      out.kind = OutputKind::kTxn;
      out.count = store->checkpoints_taken();
      out.message = StrFormat(
          "CHECKPOINT: base snapshot written (%llu this session), commit "
          "log truncated",
          static_cast<unsigned long long>(store->checkpoints_taken()));
      return out;
    }
    case StatementKind::kExplainAnalyze: {
      if (!stmt.explain_inner) {
        return Status::InvalidArgument("EXPLAIN ANALYZE without a statement");
      }
      obs::QueryTrace trace;
      if (stmt.parse_seconds > 0.0) {
        trace.AddCompletedSpan("parse", stmt.parse_seconds);
      }
      WallTimer timer;
      QueryOutput inner;
      {
        obs::TraceBinding bind(&trace);
        CRACK_ASSIGN_OR_RETURN(inner, Execute(store, *stmt.explain_inner,
                                              txn));
      }
      const double seconds = timer.ElapsedSeconds();
      // Keep the inner statement's count/io/rows so callers (and tests) can
      // cross-check the report against the store's own introspection.
      QueryOutput out = std::move(inner);
      out.kind = OutputKind::kTxn;
      out.message = trace.Render(out.io, seconds);
      out.seconds = seconds;
      return out;
    }
    case StatementKind::kShowStats: {
      QueryOutput out;
      out.kind = OutputKind::kTxn;
      out.message = RenderStats(stmt.show_stats_pattern);
      out.count = obs::MetricsRegistry::Global()
                      .Rows(stmt.show_stats_pattern)
                      .size();
      return out;
    }
    case StatementKind::kSetPolicy: {
      QueryOutput out;
      CrackPolicyOptions opts = store->options().policy;
      if (!ParseCrackPolicy(stmt.set_policy_name, &opts.policy)) {
        return Status::InvalidArgument(StrFormat(
            "unknown policy '%s' (use standard, stochastic, coarse, auto "
            "or progressive)",
            stmt.set_policy_name.c_str()));
      }
      if (stmt.set_policy_budget >= 0.0) {
        if (stmt.set_policy_budget <= 0.0 || stmt.set_policy_budget > 1.0) {
          return Status::InvalidArgument("BUDGET must be in (0, 1]");
        }
        opts.progressive_budget = stmt.set_policy_budget;
      }
      CRACK_RETURN_NOT_OK(store->SetPolicy(opts));
      out.kind = OutputKind::kTxn;
      out.message = StrFormat("SET POLICY: %s (budget %.3f)",
                              CrackPolicyName(opts.policy),
                              opts.progressive_budget);
      return out;
    }
    case StatementKind::kShowPolicy: {
      QueryOutput out;
      out.kind = OutputKind::kTxn;
      std::vector<AdaptiveStore::ColumnPolicy> report = store->PolicyReport();
      out.count = report.size();
      if (report.empty()) {
        out.message = "no column accelerators yet (nothing queried)";
        return out;
      }
      TablePrinter table;
      table.SetHeader({"table", "column", "policy", "effective", "pattern",
                       "switches", "samples", "pending"});
      for (const AdaptiveStore::ColumnPolicy& row : report) {
        const PathPolicyStatus& s = row.status;
        table.AddRow({row.table, row.column, CrackPolicyName(s.configured),
                      s.crack ? CrackPolicyName(s.effective) : "-",
                      WorkloadPatternName(s.pattern),
                      std::to_string(s.switches), std::to_string(s.samples),
                      std::to_string(s.progressive_pending)});
      }
      out.message = table.RenderAligned();
      return out;
    }
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return Status::InvalidArgument(
          "transaction control needs a SqlSession (the stateless entry "
          "point is auto-commit only)");
  }
  return Status::InvalidArgument("unknown statement kind");
}

Result<QueryOutput> Execute(AdaptiveStore* store, const Statement& stmt,
                            const obs::ExecContext& ctx, TxnId txn) {
  obs::TraceBinding bind(ctx.trace);
  if (ctx.trace != nullptr && stmt.parse_seconds > 0.0) {
    ctx.trace->AddCompletedSpan("parse", stmt.parse_seconds);
  }
  return Execute(store, stmt, txn);
}

std::string RenderStats(const std::string& pattern) {
  TablePrinter table;
  table.SetHeader({"instrument", "type", "value"});
  for (const obs::MetricRow& row :
       obs::MetricsRegistry::Global().Rows(pattern)) {
    table.AddRow({row[0], row[1], row[2]});
  }
  if (table.num_rows() == 0) {
    return pattern.empty()
               ? std::string("no instruments registered\n")
               : StrFormat("no instruments match '%s'\n", pattern.c_str());
  }
  return table.RenderAligned();
}

Result<QueryOutput> ExecuteSql(AdaptiveStore* store,
                               const std::string& statement) {
  CRACK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  obs::RecordSqlStatement();
  return Execute(store, stmt);
}

Result<QueryOutput> SqlSession::ExecuteSql(const std::string& statement) {
  CRACK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  obs::RecordSqlStatement();
  return Execute(stmt);
}

Result<QueryOutput> SqlSession::ExecuteSql(const std::string& statement,
                                           const obs::ExecContext& ctx) {
  CRACK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  obs::RecordSqlStatement();
  obs::TraceBinding bind(ctx.trace);
  if (ctx.trace != nullptr && stmt.parse_seconds > 0.0) {
    ctx.trace->AddCompletedSpan("parse", stmt.parse_seconds);
  }
  return Execute(stmt);
}

Result<QueryOutput> SqlSession::Execute(const Statement& stmt) {
  if (store_ == nullptr) return Status::InvalidArgument("null store");
  QueryOutput out;
  out.kind = OutputKind::kTxn;
  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (in_txn()) {
        return Status::InvalidArgument(
            StrFormat("already in transaction %llu (COMMIT or ROLLBACK "
                      "first)",
                      static_cast<unsigned long long>(txn_)));
      }
      CRACK_ASSIGN_OR_RETURN(txn_, store_->Begin());
      out.message = StrFormat("BEGIN: transaction %llu at snapshot ts %llu",
                              static_cast<unsigned long long>(txn_),
                              static_cast<unsigned long long>(
                                  store_->txn_manager().last_commit_ts()));
      return out;
    }
    case StatementKind::kCommit: {
      if (!in_txn()) {
        return Status::InvalidArgument("no open transaction to COMMIT");
      }
      TxnId finished = txn_;
      txn_ = kNoTxn;  // the transaction ends either way
      CRACK_RETURN_NOT_OK(store_->Commit(finished));
      out.message = StrFormat("COMMIT: transaction %llu",
                              static_cast<unsigned long long>(finished));
      return out;
    }
    case StatementKind::kRollback: {
      if (!in_txn()) {
        return Status::InvalidArgument("no open transaction to ROLLBACK");
      }
      TxnId finished = txn_;
      txn_ = kNoTxn;
      CRACK_RETURN_NOT_OK(store_->Rollback(finished));
      out.message = StrFormat("ROLLBACK: transaction %llu",
                              static_cast<unsigned long long>(finished));
      return out;
    }
    default:
      return sql::Execute(store_, stmt, txn_);
  }
}

Status SqlSession::Close() {
  if (!in_txn()) return Status::OK();
  TxnId finished = txn_;
  txn_ = kNoTxn;
  return store_->Rollback(finished);
}

std::string FormatOutput(const QueryOutput& output, size_t max_rows) {
  std::string out;
  switch (output.kind) {
    case OutputKind::kCount:
      out = StrFormat("count: %llu\n",
                      static_cast<unsigned long long>(output.count));
      break;
    case OutputKind::kAffected:
      out = StrFormat("%llu row(s) affected\n",
                      static_cast<unsigned long long>(output.count));
      break;
    case OutputKind::kTxn:
      out = output.message + "\n";
      break;
    case OutputKind::kGroups: {
      out = StrFormat("%s | %s\n", output.group_column.c_str(),
                      output.agg_description.c_str());
      size_t shown = 0;
      for (const GroupAggregate& g : output.groups) {
        if (++shown > max_rows) {
          out += StrFormat("... (%zu groups)\n", output.groups.size());
          break;
        }
        out += StrFormat("%lld | %lld\n", static_cast<long long>(g.group),
                         static_cast<long long>(g.value));
      }
      break;
    }
    case OutputKind::kRows: {
      const Relation& rel = *output.rows;
      out = rel.schema().ToString() + "\n";
      size_t limit = std::min(max_rows, rel.num_rows());
      for (size_t i = 0; i < limit; ++i) {
        std::vector<std::string> cells;
        for (const Value& v : rel.GetRow(i)) cells.push_back(v.ToString());
        out += StrJoin(cells, " | ") + "\n";
      }
      if (rel.num_rows() > limit) {
        out += StrFormat("... (%zu rows)\n", rel.num_rows());
      }
      break;
    }
  }
  out += StrFormat("(%.3f ms)\n", output.seconds * 1e3);
  return out;
}

}  // namespace sql
}  // namespace crackstore
