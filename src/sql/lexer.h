// Copyright 2026 The CrackStore Authors
//
// Tokenizer for the SQL subset of the cracking frontend. The paper places
// the cracker "between the semantic analyzer and the query optimizer"; this
// module is the front of that pipeline.

#ifndef CRACKSTORE_SQL_LEXER_H_
#define CRACKSTORE_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace crackstore {
namespace sql {

/// Token categories.
enum class TokenType : uint8_t {
  kIdentifier,  ///< table/column names (case-preserved)
  kKeyword,     ///< SELECT, FROM, WHERE, ... (upper-cased in `text`)
  kNumber,      ///< integer literal (value in `number`)
  kString,      ///< single-quoted string literal (decoded in `text`)
  kSymbol,      ///< ( ) , . * =
  kOperator,    ///< < <= > >= = <>
  kEnd,         ///< end of input
};

/// One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t number = 0;
  size_t position = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return (type == TokenType::kSymbol || type == TokenType::kOperator) &&
           text == s;
  }
};

/// Splits `input` into tokens (a kEnd token is appended). String literals
/// are single-quoted with '' as the escape for an embedded quote
/// ('it''s' -> it's). Fails on unexpected characters, malformed numbers,
/// or an unterminated string literal.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace crackstore

#endif  // CRACKSTORE_SQL_LEXER_H_
