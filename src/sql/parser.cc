// Copyright 2026 The CrackStore Authors

#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "util/string_util.h"
#include "util/timer.h"

namespace crackstore {
namespace sql {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kNone:
      return "none";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

namespace {

/// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseAny() {
    Statement out;
    if (Peek().IsKeyword("INSERT")) {
      out.kind = StatementKind::kInsert;
      CRACK_RETURN_NOT_OK(ParseInsert(&out.insert));
    } else if (Peek().IsKeyword("DELETE")) {
      out.kind = StatementKind::kDelete;
      CRACK_RETURN_NOT_OK(ParseDelete(&out.del));
    } else if (Peek().IsKeyword("UPDATE")) {
      out.kind = StatementKind::kUpdate;
      CRACK_RETURN_NOT_OK(ParseUpdate(&out.update));
    } else if (Peek().IsKeyword("BEGIN")) {
      Advance();
      if (Peek().IsKeyword("TRANSACTION")) Advance();
      out.kind = StatementKind::kBegin;
    } else if (Peek().IsKeyword("COMMIT")) {
      Advance();
      out.kind = StatementKind::kCommit;
    } else if (Peek().IsKeyword("ROLLBACK") || Peek().IsKeyword("ABORT")) {
      Advance();
      out.kind = StatementKind::kRollback;
    } else if (Peek().IsKeyword("VACUUM")) {
      Advance();
      out.kind = StatementKind::kVacuum;
    } else if (Peek().IsKeyword("CHECKPOINT")) {
      Advance();
      out.kind = StatementKind::kCheckpoint;
    } else if (Peek().IsKeyword("EXPLAIN")) {
      Advance();
      CRACK_RETURN_NOT_OK(ExpectKeyword("ANALYZE"));
      out.kind = StatementKind::kExplainAnalyze;
      CRACK_ASSIGN_OR_RETURN(Statement inner, ParseAny());
      out.explain_inner = std::make_shared<Statement>(std::move(inner));
      return out;  // the wrapped statement consumes the terminator
    } else if (Peek().IsKeyword("SHOW")) {
      Advance();
      if (Peek().IsKeyword("STATS")) {
        Advance();
        out.kind = StatementKind::kShowStats;
        if (Peek().IsKeyword("LIKE")) {
          Advance();
          if (Peek().type != TokenType::kString) {
            return Error("expected a quoted pattern after LIKE");
          }
          out.show_stats_pattern = Advance().text;
        }
      } else if (IsIdentWord(Peek(), "POLICY")) {
        Advance();
        out.kind = StatementKind::kShowPolicy;
      } else {
        return Error("expected STATS or POLICY after SHOW");
      }
    } else if (Peek().IsKeyword("SET")) {
      // A statement-leading SET is the policy knob (UPDATE owns the other
      // SET). POLICY/BUDGET are identifier-text matches, not keywords.
      Advance();
      if (!IsIdentWord(Peek(), "POLICY")) {
        return Error("expected POLICY after SET");
      }
      Advance();
      out.kind = StatementKind::kSetPolicy;
      CRACK_ASSIGN_OR_RETURN(out.set_policy_name,
                             ExpectIdentifier("policy name"));
      if (IsIdentWord(Peek(), "BUDGET")) {
        Advance();
        CRACK_ASSIGN_OR_RETURN(out.set_policy_budget, ExpectFraction());
      }
    } else {
      out.kind = StatementKind::kSelect;
      CRACK_ASSIGN_OR_RETURN(out.select, ParseSelect());
      return out;  // ParseSelect consumes the terminator itself
    }
    CRACK_RETURN_NOT_OK(ExpectStatementEnd());
    return out;
  }

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    CRACK_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    CRACK_RETURN_NOT_OK(ParseSelectList(&stmt));
    CRACK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    CRACK_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (Peek().IsKeyword("JOIN")) {
      CRACK_RETURN_NOT_OK(ParseJoin(&stmt));
    }
    if (Peek().IsKeyword("WHERE")) {
      CRACK_RETURN_NOT_OK(ParseWhere(&stmt.where));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      CRACK_RETURN_NOT_OK(ExpectKeyword("BY"));
      CRACK_ASSIGN_OR_RETURN(std::string col,
                             ExpectIdentifier("grouping column"));
      stmt.group_by = col;
    }
    CRACK_RETURN_NOT_OK(ExpectStatementEnd());
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("%s (near position %zu, got '%s')", message.c_str(),
                  Peek().position, Peek().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return Error(StrFormat("expected %s", kw));
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!Peek().IsSymbol(s)) return Error(StrFormat("expected '%s'", s));
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(StrFormat("expected %s", what));
    }
    return Advance().text;
  }

  Result<int64_t> ExpectNumber() {
    if (Peek().type != TokenType::kNumber) return Error("expected a number");
    return Advance().number;
  }

  /// Case-insensitive identifier-text match (soft keywords like POLICY /
  /// BUDGET that must keep working as column names elsewhere).
  static bool IsIdentWord(const Token& t, const char* word) {
    if (t.type != TokenType::kIdentifier) return false;
    const std::string& s = t.text;
    size_t i = 0;
    for (; word[i] != '\0'; ++i) {
      if (i >= s.size() ||
          std::toupper(static_cast<unsigned char>(s[i])) != word[i]) {
        return false;
      }
    }
    return i == s.size();
  }

  /// A decimal fraction. The lexer is integer-only ('.' is a symbol), so
  /// `0.05` arrives as number('0') '.' number('05') — reassemble the texts
  /// and let strtod do the arithmetic.
  Result<double> ExpectFraction() {
    if (Peek().type != TokenType::kNumber) {
      return Error("expected a budget fraction (e.g. 0.1)");
    }
    std::string text = Advance().text;
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().type != TokenType::kNumber) {
        return Error("expected digits after '.' in budget fraction");
      }
      text += ".";
      text += Advance().text;
    }
    return std::strtod(text.c_str(), nullptr);
  }

  /// A typed literal: integer -> Value(int64), 'string' -> Value(string).
  Result<Value> ExpectLiteral() {
    if (Peek().type == TokenType::kNumber) return Value(Advance().number);
    if (Peek().type == TokenType::kString) return Value(Advance().text);
    return Error("expected a literal (number or 'string')");
  }

  static AggFunc KeywordToAgg(const Token& t) {
    if (t.IsKeyword("COUNT")) return AggFunc::kCount;
    if (t.IsKeyword("SUM")) return AggFunc::kSum;
    if (t.IsKeyword("MIN")) return AggFunc::kMin;
    if (t.IsKeyword("MAX")) return AggFunc::kMax;
    return AggFunc::kNone;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Peek().IsSymbol("*")) {
      Advance();
      stmt->select_star = true;
      return Status::OK();
    }
    while (true) {
      AggFunc agg = KeywordToAgg(Peek());
      if (agg != AggFunc::kNone) {
        Advance();
        CRACK_RETURN_NOT_OK(ExpectSymbol("("));
        if (agg == AggFunc::kCount && Peek().IsSymbol("*")) {
          Advance();
          stmt->count_star = true;
        } else {
          SelectItem item;
          item.agg = agg;
          CRACK_ASSIGN_OR_RETURN(item.column,
                                 ExpectIdentifier("aggregate column"));
          stmt->items.push_back(std::move(item));
        }
        CRACK_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        SelectItem item;
        CRACK_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column name"));
        stmt->items.push_back(std::move(item));
      }
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseJoin(SelectStatement* stmt) {
    Advance();  // JOIN
    JoinClause join;
    CRACK_ASSIGN_OR_RETURN(join.table, ExpectIdentifier("join table"));
    CRACK_RETURN_NOT_OK(ExpectKeyword("ON"));
    CRACK_ASSIGN_OR_RETURN(join.left_table,
                           ExpectIdentifier("qualified column"));
    CRACK_RETURN_NOT_OK(ExpectSymbol("."));
    CRACK_ASSIGN_OR_RETURN(join.left_column, ExpectIdentifier("column"));
    if (!Peek().IsSymbol("=")) return Error("expected '=' in join condition");
    Advance();
    CRACK_ASSIGN_OR_RETURN(join.right_table,
                           ExpectIdentifier("qualified column"));
    CRACK_RETURN_NOT_OK(ExpectSymbol("."));
    CRACK_ASSIGN_OR_RETURN(join.right_column, ExpectIdentifier("column"));
    stmt->join = std::move(join);
    return Status::OK();
  }

  Status ExpectStatementEnd() {
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return Status::OK();
  }

  Status ParseInsert(InsertStatement* stmt) {
    Advance();  // INSERT
    CRACK_RETURN_NOT_OK(ExpectKeyword("INTO"));
    CRACK_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    CRACK_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    CRACK_RETURN_NOT_OK(ExpectSymbol("("));
    while (true) {
      CRACK_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      stmt->values.push_back(std::move(v));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return ExpectSymbol(")");
  }

  Status ParseDelete(DeleteStatement* stmt) {
    Advance();  // DELETE
    CRACK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    CRACK_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (Peek().IsKeyword("WHERE")) {
      CRACK_RETURN_NOT_OK(ParseWhere(&stmt->where));
    }
    return Status::OK();
  }

  Status ParseUpdate(UpdateStatement* stmt) {
    Advance();  // UPDATE
    CRACK_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    CRACK_RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      SetClause set;
      CRACK_ASSIGN_OR_RETURN(set.column, ExpectIdentifier("SET column"));
      if (!Peek().IsSymbol("=")) return Error("expected '=' in SET clause");
      Advance();
      CRACK_ASSIGN_OR_RETURN(set.value, ExpectLiteral());
      stmt->sets.push_back(std::move(set));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (Peek().IsKeyword("WHERE")) {
      CRACK_RETURN_NOT_OK(ParseWhere(&stmt->where));
    }
    return Status::OK();
  }

  Status ParseWhere(std::vector<Predicate>* where) {
    Advance();  // WHERE
    while (true) {
      Predicate pred;
      CRACK_ASSIGN_OR_RETURN(pred.column,
                             ExpectIdentifier("predicate column"));
      if (Peek().IsKeyword("BETWEEN")) {
        Advance();
        CRACK_ASSIGN_OR_RETURN(Value lo, ExpectLiteral());
        CRACK_RETURN_NOT_OK(ExpectKeyword("AND"));
        CRACK_ASSIGN_OR_RETURN(Value hi, ExpectLiteral());
        if (lo.is_string() != hi.is_string()) {
          return Error("BETWEEN endpoints must both be numbers or both be "
                       "strings");
        }
        pred.range = TypedRange::Closed(std::move(lo), std::move(hi));
      } else if (Peek().type == TokenType::kOperator) {
        std::string op = Advance().text;
        CRACK_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        if (op == "<") {
          pred.range = TypedRange::LessThan(std::move(v));
        } else if (op == "<=") {
          pred.range = TypedRange::AtMost(std::move(v));
        } else if (op == ">") {
          pred.range = TypedRange::GreaterThan(std::move(v));
        } else if (op == ">=") {
          pred.range = TypedRange::AtLeast(std::move(v));
        } else if (op == "=") {
          pred.range = TypedRange::Equal(std::move(v));
        } else {
          return Error("operator '" + op + "' is not supported (use ranges)");
        }
      } else {
        return Error("expected a comparison operator or BETWEEN");
      }
      where->push_back(std::move(pred));
      if (!Peek().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& statement) {
  WallTimer timer;
  CRACK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens));
  CRACK_ASSIGN_OR_RETURN(Statement stmt, parser.ParseAny());
  stmt.parse_seconds = timer.ElapsedSeconds();
  return stmt;
}

Result<SelectStatement> Parse(const std::string& statement) {
  CRACK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace sql
}  // namespace crackstore
