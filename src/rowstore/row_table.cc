// Copyright 2026 The CrackStore Authors

#include "rowstore/row_table.h"

namespace crackstore {

std::shared_ptr<RowTable> RowTable::Create(std::string name, Schema schema,
                                           RowTableOptions options,
                                           std::shared_ptr<Journal> journal) {
  if (journal == nullptr) journal = std::make_shared<Journal>();
  return std::shared_ptr<RowTable>(new RowTable(
      std::move(name), std::move(schema), options, std::move(journal)));
}

Status RowTable::Insert(const std::vector<Value>& values) {
  std::string encoded;
  CRACK_RETURN_NOT_OK(codec_.Encode(values, &encoded));
  file_.Append(encoded);
  if (options_.journaled) {
    journal_->Append(name_, encoded);
  }
  return Status::OK();
}

void RowTable::ScanRows(
    const std::function<void(const std::vector<Value>&)>& fn) {
  file_.Scan([&](TupleId, std::string_view bytes) {
    auto decoded = codec_.Decode(bytes);
    CRACK_DCHECK(decoded.ok());
    fn(*decoded);
  });
}

Status RowTable::ScanColumn(
    size_t col, const std::function<void(TupleId, const Value&)>& fn) {
  if (col >= schema().num_columns()) {
    return Status::InvalidArgument("column index out of range");
  }
  Status st;
  file_.Scan([&](TupleId id, std::string_view bytes) {
    auto v = codec_.DecodeColumn(bytes, col);
    CRACK_DCHECK(v.ok());
    fn(id, *v);
  });
  return st;
}

Result<std::vector<Value>> RowTable::Read(TupleId id) {
  std::string_view bytes = file_.Read(id);
  return codec_.Decode(bytes);
}

IoStats RowTable::CollectStats() const {
  IoStats out = file_.stats();
  out += journal_->stats();
  return out;
}

}  // namespace crackstore
