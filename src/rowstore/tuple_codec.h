// Copyright 2026 The CrackStore Authors
//
// Serialization of N-ary tuples into page bytes and back. Fixed-width fields
// are stored raw; strings get a 4-byte length prefix.

#ifndef CRACKSTORE_ROWSTORE_TUPLE_CODEC_H_
#define CRACKSTORE_ROWSTORE_TUPLE_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "storage/relation.h"
#include "storage/types.h"
#include "util/result.h"

namespace crackstore {

/// Encodes/decodes tuples of a fixed schema.
class TupleCodec {
 public:
  explicit TupleCodec(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Serializes `values` (must match the schema) into `*out` (cleared first).
  Status Encode(const std::vector<Value>& values, std::string* out) const;

  /// Parses a byte string previously produced by Encode.
  Result<std::vector<Value>> Decode(std::string_view bytes) const;

  /// Decodes only column `col` (projection pushdown into the codec).
  Result<Value> DecodeColumn(std::string_view bytes, size_t col) const;

 private:
  Schema schema_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_TUPLE_CODEC_H_
