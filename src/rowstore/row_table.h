// Copyright 2026 The CrackStore Authors
//
// RowTable: an N-ary table in the row-store substrate — schema + heap file +
// (shared) journal. This is the "traditional relational engine" class of the
// paper's experiments (MySQL/PostgreSQL/SQLite stand-ins).

#ifndef CRACKSTORE_ROWSTORE_ROW_TABLE_H_
#define CRACKSTORE_ROWSTORE_ROW_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rowstore/heap_file.h"
#include "rowstore/journal.h"
#include "rowstore/tuple_codec.h"
#include "storage/relation.h"
#include "util/result.h"

namespace crackstore {

/// Behaviour knobs of the row-store substrate, modelling the spread between
/// the engines in the paper's Fig. 1.
struct RowTableOptions {
  /// When true, every insert is journaled (full transactional engine, the
  /// PostgreSQL/MySQL shape). When false, inserts skip the journal (SQLite
  /// in-memory / MyISAM-light shape).
  bool journaled = true;
  size_t page_size = kDefaultPageSize;
};

/// A paged, journaled N-ary table.
class RowTable {
 public:
  /// Creates an empty table. The journal may be shared across tables (one
  /// per "database"); pass nullptr for a private journal.
  static std::shared_ptr<RowTable> Create(std::string name, Schema schema,
                                          RowTableOptions options = {},
                                          std::shared_ptr<Journal> journal =
                                              nullptr);

  CRACK_DISALLOW_COPY_AND_ASSIGN(RowTable);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return codec_.schema(); }
  size_t num_rows() const { return file_.num_tuples(); }
  size_t num_pages() const { return file_.num_pages(); }

  /// Inserts one tuple (encode, page write, journal record).
  Status Insert(const std::vector<Value>& values);

  /// Seals the current transaction batch.
  void Commit() { journal_->Commit(); }

  /// Physical-order scan decoding every tuple; `fn` receives the values.
  void ScanRows(const std::function<void(const std::vector<Value>&)>& fn);

  /// Physical-order scan decoding only column `col` (cheaper predicate scan).
  Status ScanColumn(size_t col,
                    const std::function<void(TupleId, const Value&)>& fn);

  /// Raw scan of encoded tuples (no decode cost).
  void ScanRaw(const std::function<void(TupleId, std::string_view)>& fn) {
    file_.Scan(fn);
  }

  /// Random read of one tuple.
  Result<std::vector<Value>> Read(TupleId id);

  const TupleCodec& codec() const { return codec_; }
  HeapFile& file() { return file_; }
  const std::shared_ptr<Journal>& journal() const { return journal_; }

  /// Combined I/O counters of file and (share of) journal.
  IoStats CollectStats() const;

 private:
  RowTable(std::string name, Schema schema, RowTableOptions options,
           std::shared_ptr<Journal> journal)
      : name_(std::move(name)),
        codec_(std::move(schema)),
        options_(options),
        file_(options.page_size),
        journal_(std::move(journal)) {}

  std::string name_;
  TupleCodec codec_;
  RowTableOptions options_;
  HeapFile file_;
  std::shared_ptr<Journal> journal_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_ROW_TABLE_H_
