// Copyright 2026 The CrackStore Authors
//
// Slotted page: the unit of simulated disk I/O in the row-store substrate.
// Tuples are byte strings inserted from the front; the slot directory grows
// from the back (classic N-ary slotted-page layout).

#ifndef CRACKSTORE_ROWSTORE_PAGE_H_
#define CRACKSTORE_ROWSTORE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "util/macros.h"

namespace crackstore {

using PageId = uint32_t;

/// Default page size (8 KiB, PostgreSQL's default).
inline constexpr size_t kDefaultPageSize = 8192;

/// A fixed-size slotted page.
class Page {
 public:
  explicit Page(size_t page_size = kDefaultPageSize)
      : data_(page_size, 0), free_start_(0) {}

  /// Number of tuples stored.
  size_t num_slots() const { return slots_.size(); }

  /// Bytes still available for one more tuple of length `len` (including its
  /// slot entry).
  bool HasRoomFor(size_t len) const {
    return free_start_ + len + (slots_.size() + 1) * sizeof(Slot) <=
           data_.size();
  }

  /// Inserts a tuple; returns its slot index or -1 when full.
  int Insert(std::string_view tuple) {
    if (!HasRoomFor(tuple.size())) return -1;
    std::memcpy(data_.data() + free_start_, tuple.data(), tuple.size());
    slots_.push_back(Slot{static_cast<uint32_t>(free_start_),
                          static_cast<uint32_t>(tuple.size())});
    free_start_ += tuple.size();
    return static_cast<int>(slots_.size()) - 1;
  }

  /// Reads the tuple in `slot`.
  std::string_view Get(size_t slot) const {
    CRACK_DCHECK(slot < slots_.size());
    const Slot& s = slots_[slot];
    return std::string_view(reinterpret_cast<const char*>(data_.data()) + s.offset,
                            s.length);
  }

  /// Page capacity in bytes.
  size_t page_size() const { return data_.size(); }

  /// Bytes of payload stored.
  size_t used_bytes() const { return free_start_; }

 private:
  struct Slot {
    uint32_t offset;
    uint32_t length;
  };

  std::vector<uint8_t> data_;
  std::vector<Slot> slots_;
  size_t free_start_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_PAGE_H_
