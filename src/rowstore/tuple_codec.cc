// Copyright 2026 The CrackStore Authors

#include "rowstore/tuple_codec.h"

#include <cstring>

#include "util/string_util.h"

namespace crackstore {

namespace {

template <typename T>
void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T GetRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

Status TupleCodec::Encode(const std::vector<Value>& values,
                          std::string* out) const {
  out->clear();
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu != schema arity %zu", values.size(),
                  schema_.num_columns()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    switch (schema_.column(i).type) {
      case ValueType::kInt32:
        if (!v.is_int32()) return Status::TypeMismatch("expected int32");
        PutRaw<int32_t>(out, v.AsInt32());
        break;
      case ValueType::kInt64:
        if (v.is_int64()) {
          PutRaw<int64_t>(out, v.AsInt64());
        } else if (v.is_int32()) {
          PutRaw<int64_t>(out, v.AsInt32());
        } else {
          return Status::TypeMismatch("expected int64");
        }
        break;
      case ValueType::kFloat64:
        if (!v.is_double()) return Status::TypeMismatch("expected float64");
        PutRaw<double>(out, v.AsDouble());
        break;
      case ValueType::kOid:
        if (!v.is_oid()) return Status::TypeMismatch("expected oid");
        PutRaw<Oid>(out, v.AsOid());
        break;
      case ValueType::kString: {
        if (!v.is_string()) return Status::TypeMismatch("expected string");
        const std::string& s = v.AsString();
        PutRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Value>> TupleCodec::Decode(std::string_view bytes) const {
  std::vector<Value> out;
  out.reserve(schema_.num_columns());
  const char* p = bytes.data();
  const char* end = bytes.data() + bytes.size();
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    switch (schema_.column(i).type) {
      case ValueType::kInt32:
        if (p + sizeof(int32_t) > end) return Status::OutOfRange("truncated");
        out.push_back(Value(GetRaw<int32_t>(p)));
        p += sizeof(int32_t);
        break;
      case ValueType::kInt64:
        if (p + sizeof(int64_t) > end) return Status::OutOfRange("truncated");
        out.push_back(Value(GetRaw<int64_t>(p)));
        p += sizeof(int64_t);
        break;
      case ValueType::kFloat64:
        if (p + sizeof(double) > end) return Status::OutOfRange("truncated");
        out.push_back(Value(GetRaw<double>(p)));
        p += sizeof(double);
        break;
      case ValueType::kOid:
        if (p + sizeof(Oid) > end) return Status::OutOfRange("truncated");
        out.push_back(Value::FromOid(GetRaw<Oid>(p)));
        p += sizeof(Oid);
        break;
      case ValueType::kString: {
        if (p + sizeof(uint32_t) > end) return Status::OutOfRange("truncated");
        uint32_t len = GetRaw<uint32_t>(p);
        p += sizeof(uint32_t);
        if (p + len > end) return Status::OutOfRange("truncated string");
        out.push_back(Value(std::string(p, len)));
        p += len;
        break;
      }
    }
  }
  if (p != end) return Status::OutOfRange("trailing bytes in tuple");
  return out;
}

Result<Value> TupleCodec::DecodeColumn(std::string_view bytes,
                                       size_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::InvalidArgument("column index out of range");
  }
  const char* p = bytes.data();
  const char* end = bytes.data() + bytes.size();
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    ValueType t = schema_.column(i).type;
    size_t fixed = ValueTypeWidth(t);
    if (t == ValueType::kString) {
      if (p + sizeof(uint32_t) > end) return Status::OutOfRange("truncated");
      uint32_t len = GetRaw<uint32_t>(p);
      if (i == col) {
        if (p + sizeof(uint32_t) + len > end) {
          return Status::OutOfRange("truncated string");
        }
        return Value(std::string(p + sizeof(uint32_t), len));
      }
      p += sizeof(uint32_t) + len;
      continue;
    }
    if (p + fixed > end) return Status::OutOfRange("truncated");
    if (i == col) {
      switch (t) {
        case ValueType::kInt32:
          return Value(GetRaw<int32_t>(p));
        case ValueType::kInt64:
          return Value(GetRaw<int64_t>(p));
        case ValueType::kFloat64:
          return Value(GetRaw<double>(p));
        case ValueType::kOid:
          return Value::FromOid(GetRaw<Oid>(p));
        case ValueType::kString:
          break;  // handled above
      }
    }
    p += fixed;
  }
  return Status::Internal("unreachable: column not decoded");
}

}  // namespace crackstore
