// Copyright 2026 The CrackStore Authors
//
// Journal: a redo log giving the row-store substrate its transactional cost
// profile. Every mutating statement appends encoded records; Commit() seals
// the batch. The paper's Fig. 1(a) shows materializing into a new table is
// the most expensive delivery mode precisely because "the DBMS has to ensure
// transaction behavior" — this module is where that cost lives here.

#ifndef CRACKSTORE_ROWSTORE_JOURNAL_H_
#define CRACKSTORE_ROWSTORE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/query_stats.h"
#include "util/macros.h"
#include "util/result.h"

namespace crackstore {

/// Append-only redo journal. Records are (lsn, crc32, table, payload); the
/// "disk" is an in-memory byte log, but every byte is really copied and
/// checksummed (like real WAL records), so the cost shows up in wall-clock
/// as well as in the counters.
class Journal {
 public:
  Journal() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(Journal);

  /// Appends one redo record (checksummed); returns its log sequence
  /// number.
  uint64_t Append(std::string_view table, std::string_view payload);

  /// Seals the current batch (simulated group-commit boundary).
  void Commit();

  /// Re-reads the whole log, verifying record framing and checksums — the
  /// integrity audit of a sealed log. Strict: ANY invalid byte, including a
  /// clean torn tail, is an IoError. Recovery wants Recover() instead.
  Result<uint64_t> VerifyLog() const;

  /// What a recovery scan found.
  struct RecoveryScan {
    uint64_t records = 0;     ///< intact records in the recovered prefix
    uint64_t last_lsn = 0;    ///< lsn of the last intact record
    uint64_t valid_bytes = 0; ///< size of the recovered prefix
    bool torn_tail = false;   ///< a partial record was truncated away
  };

  /// The recovery-time scan of a real engine: a record cut short at the end
  /// of the log is a torn tail — the crash interrupted the append — so the
  /// log is truncated back to the last intact record and appending resumes
  /// from there. A bad record FOLLOWED by an intact one cannot be a torn
  /// tail (appends land in order): that is media corruption, reported as
  /// IoError with the log untouched.
  Result<RecoveryScan> Recover();

  /// Durably rotates the log out to `dir/name`: the bytes are written with
  /// fsync on both the file and the directory entry before the in-memory
  /// log resets — a crash after rotation must find the rotated segment.
  Status RotateTo(const std::string& dir, const std::string& name);

  /// Test support: flips one byte of the log to simulate media corruption.
  void CorruptByteForTesting(size_t offset);
  /// Test support: drops every byte past `bytes` to simulate a torn tail.
  void TruncateForTesting(size_t bytes);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t num_commits() const { return num_commits_; }
  size_t log_bytes() const { return log_.size(); }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 private:
  std::vector<char> log_;
  uint64_t next_lsn_ = 1;
  uint64_t num_commits_ = 0;
  IoStats stats_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_JOURNAL_H_
