// Copyright 2026 The CrackStore Authors
//
// Journal: a redo log giving the row-store substrate its transactional cost
// profile. Every mutating statement appends encoded records; Commit() seals
// the batch. The paper's Fig. 1(a) shows materializing into a new table is
// the most expensive delivery mode precisely because "the DBMS has to ensure
// transaction behavior" — this module is where that cost lives here.

#ifndef CRACKSTORE_ROWSTORE_JOURNAL_H_
#define CRACKSTORE_ROWSTORE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/query_stats.h"
#include "util/macros.h"
#include "util/result.h"

namespace crackstore {

/// Append-only redo journal. Records are (lsn, crc32, table, payload); the
/// "disk" is an in-memory byte log, but every byte is really copied and
/// checksummed (like real WAL records), so the cost shows up in wall-clock
/// as well as in the counters.
class Journal {
 public:
  Journal() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(Journal);

  /// Appends one redo record (checksummed); returns its log sequence
  /// number.
  uint64_t Append(std::string_view table, std::string_view payload);

  /// Seals the current batch (simulated group-commit boundary).
  void Commit();

  /// Re-reads the whole log, verifying record framing and checksums — the
  /// recovery-time scan of a real engine. Returns the number of records, or
  /// IoError on the first corrupt one.
  Result<uint64_t> VerifyLog() const;

  /// Test support: flips one byte of the log to simulate media corruption.
  void CorruptByteForTesting(size_t offset);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t num_commits() const { return num_commits_; }
  size_t log_bytes() const { return log_.size(); }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 private:
  std::vector<char> log_;
  uint64_t next_lsn_ = 1;
  uint64_t num_commits_ = 0;
  IoStats stats_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_JOURNAL_H_
