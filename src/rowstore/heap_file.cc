// Copyright 2026 The CrackStore Authors

#include "rowstore/heap_file.h"

namespace crackstore {

TupleId HeapFile::Append(std::string_view tuple) {
  if (pages_.empty() || !pages_.back()->HasRoomFor(tuple.size())) {
    pages_.push_back(std::make_unique<Page>(page_size_));
    ++stats_.page_writes;  // page allocation == eventual flush
  }
  int slot = pages_.back()->Insert(tuple);
  CRACK_CHECK(slot >= 0);  // a fresh page must fit any sane tuple
  ++num_tuples_;
  ++stats_.tuples_written;
  return TupleId{static_cast<PageId>(pages_.size() - 1),
                 static_cast<uint32_t>(slot)};
}

std::string_view HeapFile::Read(TupleId id, bool count_io) {
  CRACK_DCHECK(id.page < pages_.size());
  if (count_io) {
    ++stats_.page_reads;
    ++stats_.tuples_read;
  }
  return pages_[id.page]->Get(id.slot);
}

void HeapFile::Scan(
    const std::function<void(TupleId, std::string_view)>& fn) {
  for (PageId p = 0; p < pages_.size(); ++p) {
    ++stats_.page_reads;
    const Page& page = *pages_[p];
    for (size_t s = 0; s < page.num_slots(); ++s) {
      ++stats_.tuples_read;
      fn(TupleId{p, static_cast<uint32_t>(s)}, page.Get(s));
    }
  }
}

}  // namespace crackstore
