// Copyright 2026 The CrackStore Authors
//
// HeapFile: an unordered collection of slotted pages with I/O accounting.
// This is the storage of the row-store substrate; page touches are counted
// so experiments can report deterministic I/O alongside wall-clock time.

#ifndef CRACKSTORE_ROWSTORE_HEAP_FILE_H_
#define CRACKSTORE_ROWSTORE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "rowstore/page.h"
#include "obs/query_stats.h"
#include "util/macros.h"

namespace crackstore {

/// Physical address of a tuple.
struct TupleId {
  PageId page;
  uint32_t slot;
};

/// Append-oriented paged heap.
class HeapFile {
 public:
  explicit HeapFile(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}
  CRACK_DISALLOW_COPY_AND_ASSIGN(HeapFile);

  /// Appends a tuple, allocating a new page when the tail page is full.
  /// Counts one page write (pages are flushed once per fill in steady state,
  /// amortized accounting happens in stats().page_writes on page close).
  TupleId Append(std::string_view tuple);

  /// Reads a tuple by id; counts a page read when `count_io` is true.
  std::string_view Read(TupleId id, bool count_io = true);

  /// Full scan in physical order; `fn` is called with each tuple's bytes.
  /// Counts one page read per page and one tuple read per tuple.
  void Scan(const std::function<void(TupleId, std::string_view)>& fn);

  size_t num_pages() const { return pages_.size(); }
  size_t num_tuples() const { return num_tuples_; }

  /// Tuples stored in page `p` (cursor support for pull-based scans).
  size_t PageSlotCount(PageId p) const {
    CRACK_DCHECK(p < pages_.size());
    return pages_[p]->num_slots();
  }

  /// Running I/O counters (mutable access so callers can Reset()).
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 private:
  size_t page_size_;
  std::vector<std::unique_ptr<Page>> pages_;
  size_t num_tuples_ = 0;
  IoStats stats_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_ROWSTORE_HEAP_FILE_H_
