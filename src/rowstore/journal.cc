// Copyright 2026 The CrackStore Authors

#include "rowstore/journal.h"

#include <cstring>
#include <string>

#include "durability/fs.h"
#include "durability/log_format.h"
#include "util/crc32.h"

namespace crackstore {

// Record layout (shared with the durability WAL, durability/log_format.h):
//   [u64 lsn][u32 crc][u32 body_len][body]
// where body = [u32 table_len][table bytes][u32 payload_len][payload bytes]
// and crc = CRC-32 of body.

uint64_t Journal::Append(std::string_view table, std::string_view payload) {
  uint64_t lsn = next_lsn_++;

  std::string body;
  body.reserve(2 * sizeof(uint32_t) + table.size() + payload.size());
  durability::PutBytes(&body, table);
  durability::PutBytes(&body, payload);

  std::string record;
  durability::AppendFrame(&record, lsn, body);
  log_.insert(log_.end(), record.begin(), record.end());
  ++stats_.journal_writes;
  return lsn;
}

void Journal::Commit() { ++num_commits_; }

Result<uint64_t> Journal::VerifyLog() const {
  std::string_view log(log_.data(), log_.size());
  auto scan = durability::ScanFrames(log, /*prev_lsn=*/0, nullptr);
  CRACK_RETURN_NOT_OK(scan.status());
  if (scan->torn_tail) {
    return Status::IoError(
        "journal tail fails checksum/frame verification (torn or corrupt "
        "record)");
  }
  return scan->records;
}

Result<Journal::RecoveryScan> Journal::Recover() {
  std::string_view log(log_.data(), log_.size());
  auto scan = durability::ScanFrames(log, /*prev_lsn=*/0, nullptr);
  CRACK_RETURN_NOT_OK(scan.status());
  RecoveryScan out;
  out.records = scan->records;
  out.last_lsn = scan->last_lsn;
  out.valid_bytes = scan->valid_bytes;
  out.torn_tail = scan->torn_tail;
  if (scan->torn_tail) {
    log_.resize(scan->valid_bytes);
  }
  // Appends resume above the recovered prefix.
  next_lsn_ = scan->last_lsn + 1;
  return out;
}

Status Journal::RotateTo(const std::string& dir, const std::string& name) {
  CRACK_RETURN_NOT_OK(durability::WriteFileAtomic(
      dir, name, std::string(log_.data(), log_.size())));
  log_.clear();
  return Status::OK();
}

void Journal::CorruptByteForTesting(size_t offset) {
  CRACK_CHECK(offset < log_.size());
  log_[offset] = static_cast<char>(log_[offset] ^ 0x5A);
}

void Journal::TruncateForTesting(size_t bytes) {
  if (bytes < log_.size()) log_.resize(bytes);
}

}  // namespace crackstore
