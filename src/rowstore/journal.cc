// Copyright 2026 The CrackStore Authors

#include "rowstore/journal.h"

#include <cstring>
#include <string>

#include "util/crc32.h"

namespace crackstore {

namespace {

// Record layout: [u64 lsn][u32 crc][u32 body_len][body]
// where body = [u32 table_len][table bytes][u32 payload_len][payload bytes]
// and crc = CRC-32 of body.

template <typename T>
void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<char>& log, size_t* offset, T* out) {
  if (*offset + sizeof(T) > log.size()) return false;
  std::memcpy(out, log.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

uint64_t Journal::Append(std::string_view table, std::string_view payload) {
  uint64_t lsn = next_lsn_++;

  std::string body;
  body.reserve(2 * sizeof(uint32_t) + table.size() + payload.size());
  PutRaw<uint32_t>(&body, static_cast<uint32_t>(table.size()));
  body.append(table.data(), table.size());
  PutRaw<uint32_t>(&body, static_cast<uint32_t>(payload.size()));
  body.append(payload.data(), payload.size());
  uint32_t crc = Crc32(body);

  std::string record;
  record.reserve(sizeof(lsn) + sizeof(crc) + sizeof(uint32_t) + body.size());
  PutRaw<uint64_t>(&record, lsn);
  PutRaw<uint32_t>(&record, crc);
  PutRaw<uint32_t>(&record, static_cast<uint32_t>(body.size()));
  record.append(body);

  log_.insert(log_.end(), record.begin(), record.end());
  ++stats_.journal_writes;
  return lsn;
}

void Journal::Commit() { ++num_commits_; }

Result<uint64_t> Journal::VerifyLog() const {
  size_t offset = 0;
  uint64_t records = 0;
  uint64_t prev_lsn = 0;
  while (offset < log_.size()) {
    uint64_t lsn;
    uint32_t crc;
    uint32_t body_len;
    if (!GetRaw(log_, &offset, &lsn) || !GetRaw(log_, &offset, &crc) ||
        !GetRaw(log_, &offset, &body_len)) {
      return Status::IoError("truncated journal record header");
    }
    if (offset + body_len > log_.size()) {
      return Status::IoError("truncated journal record body");
    }
    if (lsn <= prev_lsn) {
      return Status::IoError("journal LSNs not strictly increasing");
    }
    std::string_view body(log_.data() + offset, body_len);
    if (Crc32(body) != crc) {
      return Status::IoError("journal record checksum mismatch");
    }
    offset += body_len;
    prev_lsn = lsn;
    ++records;
  }
  return records;
}

void Journal::CorruptByteForTesting(size_t offset) {
  CRACK_CHECK(offset < log_.size());
  log_[offset] = static_cast<char>(log_[offset] ^ 0x5A);
}

}  // namespace crackstore
