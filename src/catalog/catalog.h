// Copyright 2026 The CrackStore Authors
//
// Catalog: the system-table registry. The paper (§3.2) contrasts two homes
// for piece administration: the *system catalog* (each partition create/drop
// is a schema change that locks a critical resource — expensive, the SQL-
// level route of §5.1) and a *cracker index* (cheap in-memory structure, the
// MonetDB route). This module is the former; core/cracker_index.h the latter.
// Catalog mutations are counted so the experiments can expose the difference.

#ifndef CRACKSTORE_CATALOG_CATALOG_H_
#define CRACKSTORE_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rowstore/row_table.h"
#include "obs/query_stats.h"
#include "storage/relation.h"
#include "util/result.h"
#include "util/status.h"

namespace crackstore {

/// Metadata of one horizontal fragment of a partitioned table (the catalog's
/// view of a piece: value bounds, size, and location).
struct FragmentInfo {
  std::string fragment_table;  ///< name of the table holding the fragment
  std::string column;          ///< the attribute the bounds describe
  int64_t lo = 0;              ///< lower value bound
  int64_t hi = 0;              ///< upper value bound
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  uint64_t row_count = 0;
};

/// A registry of tables (row- or column-organized) and partitioned-table
/// fragment lists. Every mutation increments catalog_ops and, to model the
/// locking/recompilation cost the paper describes, a configurable synthetic
/// page write against the system tables.
class Catalog {
 public:
  Catalog() = default;
  CRACK_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Registers a column-store relation under its name.
  Status RegisterRelation(std::shared_ptr<Relation> relation);

  /// Registers a row-store table under its name.
  Status RegisterRowTable(std::shared_ptr<RowTable> table);

  Result<std::shared_ptr<Relation>> GetRelation(const std::string& name) const;
  Result<std::shared_ptr<RowTable>> GetRowTable(const std::string& name) const;

  /// Removes a table of either kind (and its partition list if any).
  Status DropTable(const std::string& name);

  /// Declares `base` a partitioned table (UNION-TABLE style, paper §1).
  Status CreatePartitionedTable(const std::string& base);

  /// Appends a fragment to a partitioned table's list.
  Status AddFragment(const std::string& base, FragmentInfo info);

  /// All fragments of `base` in registration order.
  Result<std::vector<FragmentInfo>> GetFragments(const std::string& base) const;

  /// Fragments of `base` whose value bounds intersect [lo, hi] on `column`
  /// (the catalog-level pruning a partitioned-table optimizer performs).
  Result<std::vector<FragmentInfo>> FragmentsIntersecting(
      const std::string& base, const std::string& column, int64_t lo,
      int64_t hi) const;

  bool HasTable(const std::string& name) const;
  size_t num_tables() const { return relations_.size() + row_tables_.size(); }

  /// Names of all registered row tables (registration order by name).
  std::vector<std::string> RowTableNames() const;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 private:
  void CountMutation() {
    ++stats_.catalog_ops;
    // A catalog change dirties a system-table page (locking + flush).
    ++stats_.page_writes;
  }

  std::map<std::string, std::shared_ptr<Relation>> relations_;
  std::map<std::string, std::shared_ptr<RowTable>> row_tables_;
  std::map<std::string, std::vector<FragmentInfo>> partitions_;
  IoStats stats_;
};

}  // namespace crackstore

#endif  // CRACKSTORE_CATALOG_CATALOG_H_
