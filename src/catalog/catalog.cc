// Copyright 2026 The CrackStore Authors

#include "catalog/catalog.h"

#include <algorithm>

namespace crackstore {

Status Catalog::RegisterRelation(std::shared_ptr<Relation> relation) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (HasTable(relation->name())) {
    return Status::AlreadyExists("table exists: " + relation->name());
  }
  relations_.emplace(relation->name(), std::move(relation));
  CountMutation();
  return Status::OK();
}

Status Catalog::RegisterRowTable(std::shared_ptr<RowTable> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (HasTable(table->name())) {
    return Status::AlreadyExists("table exists: " + table->name());
  }
  row_tables_.emplace(table->name(), std::move(table));
  CountMutation();
  return Status::OK();
}

Result<std::shared_ptr<Relation>> Catalog::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation: " + name);
  }
  return it->second;
}

Result<std::shared_ptr<RowTable>> Catalog::GetRowTable(
    const std::string& name) const {
  auto it = row_tables_.find(name);
  if (it == row_tables_.end()) {
    return Status::NotFound("no row table: " + name);
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  bool erased = relations_.erase(name) > 0 || row_tables_.erase(name) > 0;
  if (!erased) return Status::NotFound("no table: " + name);
  partitions_.erase(name);
  CountMutation();
  return Status::OK();
}

Status Catalog::CreatePartitionedTable(const std::string& base) {
  if (partitions_.count(base) > 0) {
    return Status::AlreadyExists("already partitioned: " + base);
  }
  partitions_[base] = {};
  CountMutation();
  return Status::OK();
}

Status Catalog::AddFragment(const std::string& base, FragmentInfo info) {
  auto it = partitions_.find(base);
  if (it == partitions_.end()) {
    return Status::NotFound("not a partitioned table: " + base);
  }
  it->second.push_back(std::move(info));
  CountMutation();
  return Status::OK();
}

Result<std::vector<FragmentInfo>> Catalog::GetFragments(
    const std::string& base) const {
  auto it = partitions_.find(base);
  if (it == partitions_.end()) {
    return Status::NotFound("not a partitioned table: " + base);
  }
  return it->second;
}

Result<std::vector<FragmentInfo>> Catalog::FragmentsIntersecting(
    const std::string& base, const std::string& column, int64_t lo,
    int64_t hi) const {
  auto all = GetFragments(base);
  if (!all.ok()) return all.status();
  std::vector<FragmentInfo> out;
  for (const auto& f : *all) {
    if (f.column != column) {
      out.push_back(f);  // no bounds knowledge on this attribute: must touch
      continue;
    }
    // Interval intersection with inclusivity at the fragment edges.
    bool below = f.hi < lo || (f.hi == lo && !f.hi_inclusive);
    bool above = f.lo > hi || (f.lo == hi && !f.lo_inclusive);
    if (!below && !above) out.push_back(f);
  }
  return out;
}

bool Catalog::HasTable(const std::string& name) const {
  return relations_.count(name) > 0 || row_tables_.count(name) > 0;
}

std::vector<std::string> Catalog::RowTableNames() const {
  std::vector<std::string> out;
  out.reserve(row_tables_.size());
  for (const auto& [name, table] : row_tables_) out.push_back(name);
  return out;
}

}  // namespace crackstore
