// Copyright 2026 The CrackStore Authors
//
// Quickstart: the smallest end-to-end CrackStore program.
//
//   1. Build a table (here: a DBtapestry permutation table).
//   2. Register it with an AdaptiveStore.
//   3. Fire range queries — every query physically reorganizes the store a
//      little, so repeated/narrowing queries get faster.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/adaptive_store.h"
#include "workload/tapestry.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  // 1. A 1M-row, 2-column table; every column a permutation of 1..N.
  TapestryOptions topts;
  topts.num_rows = 1000000;
  auto table = BuildTapestry("R", topts);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. Open a database. DbOptions{} is an in-memory store with cracking on
  //    (the defaults); set .path and .durability for one that survives a
  //    restart.
  auto db = AdaptiveStore::Open(DbOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  AdaptiveStore& store = **db;
  if (Status s = store.AddTable(*table); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 3. The same SELECT, eight times. The first call pays for cloning and
  //    cracking the column; later calls are answered from the cracker index
  //    without touching unrelated tuples.
  std::printf("query: SELECT count(*) FROM R WHERE 400000 <= c0 <= 500000\n");
  for (int run = 1; run <= 8; ++run) {
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(400000, 500000));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  run %d: count=%llu  time=%8.3f ms  tuples touched=%llu  pieces=%zu\n",
        run, static_cast<unsigned long long>(result->count),
        result->seconds * 1e3,
        static_cast<unsigned long long>(result->io.tuples_read),
        *store.NumPieces("R", "c0"));
  }

  // A narrower follow-up only cracks inside the already-isolated piece.
  std::printf("query: SELECT count(*) FROM R WHERE 420000 <= c0 <= 430000\n");
  auto narrower =
      store.SelectRange("R", "c0", RangeBounds::Closed(420000, 430000));
  std::printf(
      "  count=%llu  time=%8.3f ms  tuples touched=%llu  pieces=%zu\n",
      static_cast<unsigned long long>(narrower->count),
      narrower->seconds * 1e3,
      static_cast<unsigned long long>(narrower->io.tuples_read),
      *store.NumPieces("R", "c0"));

  // Materialize a result table from the (already cracked) store.
  auto materialized = store.SelectRange(
      "R", "c0", RangeBounds::Closed(420000, 430000), Delivery::kMaterialize);
  std::printf("materialized '%s' with %zu rows\n",
              materialized->materialized->name().c_str(),
              materialized->materialized->num_rows());
  return 0;
}
