// Copyright 2026 The CrackStore Authors
//
// Scientific-database exploration (the paper's "strolling" user, §4): a
// researcher samples a large sensor-readings table in more or less random
// directions. There is no a-priori workload to tune an index for — exactly
// the setting the paper argues cracking is built for. We compare three
// physical designs over the same 96-query session:
//   scans           — no auxiliary structure at all,
//   upfront sort    — pay N·log N once, answer by binary search,
//   cracking        — pay as you go.
// This is a runnable miniature of Figure 11.
//
// Build & run:  ./build/examples/sensor_exploration

#include <cstdio>

#include "core/adaptive_store.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  constexpr uint64_t kRows = 1000000;
  TapestryOptions topts;
  topts.num_rows = kRows;
  auto readings = *BuildTapestry("readings", topts);

  MqsSpec spec;
  spec.num_rows = kRows;
  spec.sequence_length = 96;
  spec.target_selectivity = 0.05;
  spec.profile = Profile::kStrollingConverge;
  auto queries = *GenerateSequence(spec);

  struct Candidate {
    const char* name;
    AccessStrategy strategy;
    double first_query_ms = 0;
    double total_ms = 0;
    uint64_t touched = 0;
  };
  Candidate candidates[] = {
      {"scan", AccessStrategy::kScan},
      {"sort", AccessStrategy::kSort},
      {"crack", AccessStrategy::kCrack},
  };

  for (Candidate& c : candidates) {
    DbOptions opts;
    opts.strategy = c.strategy;
    opts.track_lineage = false;
    auto db = AdaptiveStore::Open(opts);
    if (!db.ok()) return 1;
    AdaptiveStore& store = **db;
    (void)store.AddTable(readings);
    bool first = true;
    for (const RangeQuery& q : queries) {
      auto result = *store.SelectRange("readings", "c0",
                                       RangeBounds::Closed(q.lo, q.hi));
      if (first) {
        c.first_query_ms = result.seconds * 1e3;
        first = false;
      }
      c.total_ms += result.seconds * 1e3;
      c.touched += result.io.tuples_read + result.io.tuples_written;
    }
  }

  std::printf("strategy | 1st query ms | session ms | touched tuples\n");
  std::printf("---------+--------------+------------+---------------\n");
  for (const Candidate& c : candidates) {
    std::printf("%-8s | %12.3f | %10.3f | %14llu\n", c.name,
                c.first_query_ms, c.total_ms,
                static_cast<unsigned long long>(c.touched));
  }
  std::printf(
      "\nReading the table: sorting pays everything on query #1; scanning\n"
      "pays the same price on *every* query; cracking spreads the\n"
      "investment over the session and only for regions actually visited.\n");
  return 0;
}
