// Copyright 2026 The CrackStore Authors
//
// Data-mining drill-down (the paper's "homerun" user, §4): an analyst zooms
// into a region of statistical interest over a 16-step refinement session.
// We run the identical session twice — against plain scans and against the
// cracking store — and print the per-step and cumulative times side by
// side. This is a runnable miniature of Figure 10.
//
// Build & run:  ./build/examples/datamining_zoom

#include <cstdio>

#include "core/adaptive_store.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  constexpr uint64_t kRows = 1000000;
  TapestryOptions topts;
  topts.num_rows = kRows;
  topts.num_columns = 3;  // e.g. (timestamp, sensor, magnitude) surrogates
  auto table = *BuildTapestry("events", topts);

  // A 16-step homerun session: the user trims the candidate set quickly
  // (exponential contraction) down to 2% of the table.
  MqsSpec spec;
  spec.num_rows = kRows;
  spec.sequence_length = 16;
  spec.target_selectivity = 0.02;
  spec.rho = ContractionModel::kExponential;
  spec.profile = Profile::kHomerun;
  auto queries = *GenerateSequence(spec);

  AdaptiveStoreOptions scan_opts;
  scan_opts.strategy = AccessStrategy::kScan;
  AdaptiveStore scans(scan_opts);
  AdaptiveStore cracks;  // default: cracking
  (void)scans.AddTable(table);
  (void)cracks.AddTable(table);

  std::printf("step | selectivity |   scan ms | crack ms | crack touched\n");
  std::printf("-----+-------------+-----------+----------+--------------\n");
  double scan_total = 0;
  double crack_total = 0;
  for (const RangeQuery& q : queries) {
    RangeBounds range = RangeBounds::Closed(q.lo, q.hi);
    auto s = *scans.SelectRange("events", "c0", range);
    auto c = *cracks.SelectRange("events", "c0", range);
    scan_total += s.seconds;
    crack_total += c.seconds;
    std::printf("%4zu | %10.1f%% | %9.3f | %8.3f | %13llu\n", q.step,
                q.selectivity * 100, s.seconds * 1e3, c.seconds * 1e3,
                static_cast<unsigned long long>(c.io.tuples_read));
  }
  std::printf("-----+-------------+-----------+----------+--------------\n");
  std::printf("totals: scan %.3f ms, crack %.3f ms (%.1fx), final pieces=%zu\n",
              scan_total * 1e3, crack_total * 1e3,
              scan_total / crack_total, *cracks.NumPieces("events", "c0"));

  // The lineage DAG of the session (paper Figs. 5-6), ready for graphviz.
  std::printf("\nlineage (dot, first lines):\n");
  std::string dot = cracks.lineage().ToDot();
  std::printf("%.400s...\n", dot.c_str());
  return 0;
}
