// Copyright 2026 The CrackStore Authors
//
// string_catalog: dictionary-encoded string columns through the public
// facade. A product catalog (name:string, qty:int64) is queried with string
// range/equality predicates — each one is advice to crack the column's
// order-preserving code domain — and then mutated with DML whose unseen,
// out-of-order strings exercise the encoding's gapped code assignment. The
// EXPLAIN output shows the dictionary and the piece table the workload
// taught the store.
//
// Build: part of the default CMake build (example_string_catalog).

#include <cstdio>
#include <string>
#include <vector>

#include "crackstore/crackstore.h"

using crackstore::AdaptiveStore;
using crackstore::Delivery;
using crackstore::Relation;
using crackstore::Schema;
using crackstore::TypedRange;
using crackstore::Value;
using crackstore::ValueType;

int main() {
  crackstore::DbOptions opts;
  opts.strategy = crackstore::AccessStrategy::kCrack;
  auto db = AdaptiveStore::Open(opts);
  if (!db.ok()) return 1;
  AdaptiveStore& store = **db;

  auto rel = *Relation::Create(
      "catalog",
      Schema({{"name", ValueType::kString}, {"qty", ValueType::kInt64}}));
  const std::vector<std::pair<std::string, int64_t>> rows = {
      {"anvil", 3},    {"bolt", 500},  {"crate", 12},  {"dowel", 90},
      {"gasket", 40},  {"hinge", 75},  {"lever", 8},   {"pulley", 16},
      {"rivet", 800},  {"spring", 64}, {"washer", 320}};
  for (const auto& [name, qty] : rows) {
    if (!rel->AppendRow({Value(name), Value(qty)}).ok()) return 1;
  }
  if (!store.AddTable(rel).ok()) return 1;

  // A string range predicate: the first query builds the dictionary and
  // cracks the code column at the translated bounds.
  auto mid = store.SelectRange(
      "catalog", "name",
      TypedRange::Closed(Value(std::string("c")), Value(std::string("m"))),
      Delivery::kView);
  if (!mid.ok()) return 1;
  std::printf("names in [c, m]: %llu\n",
              static_cast<unsigned long long>(mid->count));

  // Equality over a string + a numeric band over a sibling column: the
  // conjunction intersects two independently cracked access paths.
  auto conj = store.SelectConjunction(
      "catalog",
      {{"name", TypedRange::AtLeast(Value(std::string("p")))},
       {"qty", crackstore::RangeBounds::AtLeast(100)}});
  if (!conj.ok()) return 1;
  std::printf("names >= 'p' with qty >= 100: %llu\n",
              static_cast<unsigned long long>(conj->count));

  // DML with unseen strings: "flange" sorts between existing keys, so the
  // dictionary assigns it a midpoint code without disturbing the learned
  // piece table.
  if (!store.Insert("catalog", {Value(std::string("flange")), Value(int64_t{25})})
           .ok()) {
    return 1;
  }
  if (!store
           .Update("catalog", {{"name", Value(std::string("bolt (m4)"))}},
                   {{"name", TypedRange::Equal(Value(std::string("bolt")))}})
           .ok()) {
    return 1;
  }
  if (!store.Delete("catalog",
                    {{"name", TypedRange::LessThan(Value(std::string("b")))}})
           .ok()) {
    return 1;
  }

  auto after = store.SelectRange("catalog", "name", TypedRange::All());
  if (!after.ok()) return 1;
  std::printf("rows after insert/update/delete: %llu\n",
              static_cast<unsigned long long>(after->count));

  // The same queries through the SQL frontend the shell uses.
  auto sql = crackstore::sql::ExecuteSql(
      &store, "SELECT COUNT(*) FROM catalog WHERE name BETWEEN 'f' AND 'r'");
  if (!sql.ok()) return 1;
  std::printf("SQL count in ['f', 'r']: %llu\n",
              static_cast<unsigned long long>(sql->count));

  auto explain = store.ExplainColumn("catalog", "name");
  if (!explain.ok()) return 1;
  std::printf("\n%s", explain->c_str());
  return 0;
}
