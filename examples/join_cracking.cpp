// Copyright 2026 The CrackStore Authors
//
// Join (^) and group (Ω) cracking: a foreign-key workload where the first
// join reorganizes both operands into matching / non-matching areas — a
// semijoin index as a by-product — so repeated joins touch only matching
// tuples, and where grouping clusters a column once for all later
// aggregates (paper §3.1, §3.3).
//
// Build & run:  ./build/examples/join_cracking

#include <cstdio>

#include "core/adaptive_store.h"
#include "core/join_cracker.h"
#include "util/rng.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  // orders(customer_id, amount): 400k rows over 60k of 100k customers.
  // customers(id, region): 100k rows, 8 regions.
  constexpr int64_t kCustomers = 100000;
  constexpr int64_t kOrders = 400000;
  Pcg32 rng(2026);

  auto orders = *Relation::Create(
      "orders", Schema({{"customer_id", ValueType::kInt64},
                        {"amount", ValueType::kInt64}}));
  for (int64_t i = 0; i < kOrders; ++i) {
    (void)orders->AppendRow({Value(rng.NextInRange(1, 60000)),
                             Value(rng.NextInRange(1, 500))});
  }
  auto customers = *Relation::Create(
      "customers",
      Schema({{"id", ValueType::kInt64}, {"region", ValueType::kInt64}}));
  for (int64_t i = 1; i <= kCustomers; ++i) {
    (void)customers->AppendRow({Value(i), Value(rng.NextInRange(1, 8))});
  }

  auto db = AdaptiveStore::Open(DbOptions{});
  if (!db.ok()) return 1;
  AdaptiveStore& store = **db;
  (void)store.AddTable(orders);
  (void)store.AddTable(customers);

  // First join: ^-cracks both operands (the expensive, investing call).
  auto first = *store.JoinEquals("orders", "customer_id", "customers", "id");
  std::printf("join #1: %llu pairs, %8.3f ms (cracked both operands)\n",
              static_cast<unsigned long long>(first.count),
              first.seconds * 1e3);
  // Second join: the cached matching areas answer it.
  auto second = *store.JoinEquals("orders", "customer_id", "customers", "id");
  std::printf("join #2: %llu pairs, %8.3f ms (reused ^ pieces)\n",
              static_cast<unsigned long long>(second.count),
              second.seconds * 1e3);

  // The non-matching area of `customers` is exactly the anti-join — the
  // customers without orders, free of charge after the crack.
  IoStats stats;
  auto cracked = *CrackJoin(*customers->column("id"),
                            *orders->column("customer_id"), &stats);
  std::printf(
      "customers with orders: %zu, without orders (outer-join rest): %zu\n",
      cracked.left.matching().size(), cracked.left.non_matching().size());

  // Ω: cluster customers by region once; aggregates reuse the clustering.
  auto counts = *store.GroupBy("customers", "region", "id", AggKind::kCount);
  std::printf("regions: %zu (count per region:", counts.size());
  for (const GroupAggregate& g : counts) {
    std::printf(" %lld", static_cast<long long>(g.value));
  }
  std::printf(")\n");

  // The lineage records the ^ application (paper Fig. 5).
  std::printf("lineage nodes: %zu\n", store.lineage().num_pieces());
  return 0;
}
