// Copyright 2026 The CrackStore Authors
//
// Streaming updates under cracking (the paper's §4 hiking motivation: "the
// database is continuously filled with stream/sensor information and the
// application has to keep track of or localize interesting elements in a
// limited window", combined with §7's open updates question).
//
// A sliding-window monitor: every tick appends a batch of new readings and
// expires the oldest ones, while an analyst keeps probing a value band. The
// UpdatableCrackerIndex absorbs the churn in its delta structures and folds
// it back with boundary-preserving merges — the learned cracking survives.
//
// Build & run:  ./build/examples/stream_updates

#include <cstdio>
#include <deque>

#include "core/updatable_cracker_index.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  constexpr uint64_t kInitial = 500000;   // readings already in the store
  constexpr int kTicks = 50;
  constexpr int kBatch = 2000;            // arrivals (and expiries) per tick

  auto column = BuildPermutationColumn(kInitial, 2026, "readings.value");
  UpdatableCrackerIndexOptions opts;
  opts.auto_merge_fraction = 0.02;  // fold deltas at 2% churn
  UpdatableCrackerIndex<int64_t> index(column, nullptr, opts);

  Pcg32 rng(7);
  std::deque<Oid> window;  // oids in arrival order (for expiry)
  for (Oid oid = 0; oid < kInitial; ++oid) window.push_back(oid);
  Oid next_oid = kInitial;

  std::printf(
      "tick | alerts in band | query ms | pending | merges | pieces\n");
  std::printf(
      "-----+----------------+----------+---------+--------+-------\n");
  double total_ms = 0;
  for (int tick = 1; tick <= kTicks; ++tick) {
    // Ingest a batch and expire the same number of oldest readings.
    for (int i = 0; i < kBatch; ++i) {
      int64_t value = rng.NextInRange(1, static_cast<int64_t>(kInitial));
      if (!index.Insert(value, next_oid).ok()) return 1;
      window.push_back(next_oid);
      ++next_oid;
      if (!index.Delete(window.front()).ok()) return 1;
      window.pop_front();
    }

    // The analyst's probe: a fixed alert band.
    WallTimer timer;
    auto sel = index.Select(200000, true, 210000, true);
    double ms = timer.ElapsedMillis();
    total_ms += ms;
    if (tick % 5 == 0 || tick == 1) {
      std::printf("%4d | %14llu | %8.3f | %7zu | %6zu | %5zu\n", tick,
                  static_cast<unsigned long long>(sel.count()), ms,
                  index.pending_inserts(), index.merges_performed(),
                  index.num_pieces());
    }
  }
  std::printf(
      "\n%d ticks, %d updates each; query band stayed answerable in %.3f ms"
      " average\nwhile %d%% of the store churned — the cracked pieces and"
      " their boundaries\nsurvived every merge.\n",
      kTicks, kBatch, total_ms / kTicks,
      static_cast<int>(100.0 * kTicks * kBatch / kInitial));
  return 0;
}
