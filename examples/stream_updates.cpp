// Copyright 2026 The CrackStore Authors
//
// Streaming updates under cracking (the paper's §4 hiking motivation: "the
// database is continuously filled with stream/sensor information and the
// application has to keep track of or localize interesting elements in a
// limited window", combined with §7's open updates question).
//
// A sliding-window monitor: every tick appends a batch of new readings and
// expires the oldest ones, while an analyst keeps probing a value band —
// everything through the public AdaptiveStore facade, so the writes route
// through the same type-erased access path the selections crack. The path's
// delta structures absorb the churn and fold it back with
// boundary-preserving merges — the learned cracking survives.
//
// Build & run:  ./build/example_stream_updates

#include <cstdio>
#include <deque>

#include "core/adaptive_store.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

using namespace crackstore;  // NOLINT — example brevity

int main() {
  constexpr uint64_t kInitial = 500000;   // readings already in the store
  constexpr int kTicks = 50;
  constexpr int kBatch = 2000;            // arrivals (and expiries) per tick

  auto column = BuildPermutationColumn(kInitial, 2026, "readings.value");
  auto relation = Relation::FromColumns(
      "readings", Schema({{"value", ValueType::kInt64}}), {column});
  if (!relation.ok()) return 1;

  DbOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.delta_merge.policy = DeltaMergePolicy::kThreshold;
  opts.delta_merge.threshold_fraction = 0.02;  // fold deltas at 2% churn
  opts.track_lineage = false;                  // long-running stream
  auto db = AdaptiveStore::Open(opts);
  if (!db.ok()) return 1;
  AdaptiveStore& store = **db;
  if (!store.AddTable(*relation).ok()) return 1;

  Pcg32 rng(7);
  std::deque<Oid> window;  // oids in arrival order (for expiry)
  for (Oid oid = 0; oid < kInitial; ++oid) window.push_back(oid);

  std::printf(
      "tick | alerts in band | query ms | pending | merges | pieces\n");
  std::printf(
      "-----+----------------+----------+---------+--------+-------\n");
  double total_ms = 0;
  for (int tick = 1; tick <= kTicks; ++tick) {
    // Ingest a batch and expire the same number of oldest readings.
    std::vector<Oid> expired;
    expired.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      int64_t value = rng.NextInRange(1, static_cast<int64_t>(kInitial));
      auto inserted = store.Insert("readings", {Value(value)});
      if (!inserted.ok()) return 1;
      window.push_back(window.back() + 1);
      expired.push_back(window.front());
      window.pop_front();
    }
    if (!store.DeleteOids("readings", expired).ok()) return 1;

    // The analyst's probe: a fixed alert band.
    WallTimer timer;
    auto sel = store.SelectRange("readings", "value",
                                 RangeBounds::Closed(200000, 210000));
    if (!sel.ok()) return 1;
    double ms = timer.ElapsedMillis();
    total_ms += ms;
    if (tick % 5 == 0 || tick == 1) {
      auto path = store.AccessPathFor("readings", "value");
      size_t pending = path.ok() ? (*path)->pending_inserts() : 0;
      size_t merges = path.ok() ? (*path)->merges_performed() : 0;
      std::printf("%4d | %14llu | %8.3f | %7zu | %6zu | %5zu\n", tick,
                  static_cast<unsigned long long>(sel->count), ms, pending,
                  merges, *store.NumPieces("readings", "value"));
    }
  }
  std::printf(
      "\n%d ticks, %d updates each; query band stayed answerable in %.3f ms"
      " average\nwhile %d%% of the store churned — the cracked pieces and"
      " their boundaries\nsurvived every merge, with every write routed"
      " through the public facade.\n",
      kTicks, kBatch, total_ms / kTicks,
      static_cast<int>(100.0 * kTicks * kBatch / kInitial));
  return 0;
}
