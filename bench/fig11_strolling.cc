// Copyright 2026 The CrackStore Authors
//
// Figure 11: "Random converge experiment (MonetDB)" — a k-step strolling
// sequence converging to a 5% target (ρ-driven sizes, random positions),
// comparing three strategies: plain scans (nocrack), one-time upfront sort
// (sort), and cracking (crack). Expected shape: cracking beats scanning
// after a few queries; sorting wins only once the sequence is long enough
// to amortize the upfront N log N investment (the paper puts the crossover
// beyond ~100 random queries).
//
// Output: CSV rows (step, nocrack_s, sort_s, crack_s, nocrack_reads,
// sort_reads, crack_reads) — all cumulative.

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t k = flags.GetUint("k", 128);
  double sigma = flags.GetDouble("sigma", 0.05);
  uint64_t seed = flags.GetUint("seed", 20040901);
  std::string policy_name = flags.GetString("policy", "standard");
  CrackPolicy policy = CrackPolicy::kStandard;
  if (!ParseCrackPolicy(policy_name, &policy)) {
    std::fprintf(stderr,
                 "unknown --policy=%s (use "
                 "standard|stochastic|coarse|auto|progressive, or "
                 "ddc|dd1c)\n",
                 policy_name.c_str());
    return 2;
  }

  bench::Banner("fig11_strolling", "Fig. 11 of CIDR'05 cracking",
                StrFormat("n=%llu k=%zu sigma=%.2f policy=%s (--n=, --k=, "
                          "--sigma=, --policy=)",
                          static_cast<unsigned long long>(n), k, sigma,
                          CrackPolicyName(policy)));

  TapestryOptions topts;
  topts.num_rows = n;
  topts.seed = seed;
  auto rel = *BuildTapestry("R", topts);

  MqsSpec spec;
  spec.num_rows = n;
  spec.sequence_length = k;
  spec.target_selectivity = sigma;
  spec.profile = Profile::kStrollingConverge;
  spec.seed = seed;
  auto queries = *GenerateSequence(spec);

  struct Strategy {
    const char* name;
    AccessStrategy strategy;
    std::vector<double> seconds;
    std::vector<uint64_t> reads;
  };
  std::vector<Strategy> strategies{
      {"nocrack", AccessStrategy::kScan, {}, {}},
      {"sort", AccessStrategy::kSort, {}, {}},
      {"crack", AccessStrategy::kCrack, {}, {}},
  };

  for (Strategy& s : strategies) {
    AdaptiveStoreOptions opts;
    opts.strategy = s.strategy;
    opts.policy.policy = policy;  // pivot discipline of the crack line
    opts.track_lineage = false;
    auto store_or = bench::OpenStore(flags, opts);
    CRACK_CHECK(store_or.ok());
    AdaptiveStore& store = **store_or;
    CRACK_CHECK(store.AddTable(rel).ok());
    double total_seconds = 0;
    uint64_t total_reads = 0;
    for (const RangeQuery& q : queries) {
      auto result =
          store.SelectRange("R", "c0", RangeBounds::Closed(q.lo, q.hi));
      CRACK_CHECK(result.ok());
      total_seconds += result->seconds;
      // The sort build charges N log N writes; count reads+writes so the
      // upfront investment is visible in deterministic units too.
      total_reads += result->io.tuples_read + result->io.tuples_written;
      s.seconds.push_back(total_seconds);
      s.reads.push_back(total_reads);
    }
  }

  TablePrinter out;
  out.SetHeader({"step", "nocrack_s", "sort_s", "crack_s", "nocrack_cost",
                 "sort_cost", "crack_cost"});
  for (size_t step = 0; step < k; ++step) {
    out.AddRow({StrFormat("%zu", step + 1),
                StrFormat("%.6f", strategies[0].seconds[step]),
                StrFormat("%.6f", strategies[1].seconds[step]),
                StrFormat("%.6f", strategies[2].seconds[step]),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      strategies[0].reads[step])),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      strategies[1].reads[step])),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      strategies[2].reads[step]))});
  }
  out.PrintCsv(stdout);

  for (const Strategy& s : strategies) {
    std::fprintf(stderr, "# %s: total %.3fs, %llu touched tuples\n", s.name,
                 s.seconds.back(),
                 static_cast<unsigned long long>(s.reads.back()));
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
