// Copyright 2026 The CrackStore Authors
//
// Figure 10: "Homerun experiment (MonetDB)" — cumulative response time of a
// homerun query sequence of up to 128 steps against a 1M tapestry column,
// with and without cracking, for target selectivities 5%, 45% and 75%.
// Expected shape: the nocrack lines grow linearly (every query scans);
// cracking overtakes after a few steps and per-step times approach those of
// a fully indexed table.
//
// Output: CSV rows (step, then cumulative seconds and cumulative
// tuples_read for crack/nocrack at each selectivity).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

struct Series {
  std::vector<double> cumulative_seconds;
  std::vector<uint64_t> cumulative_reads;
};

Series RunSeries(const bench::Flags& flags,
                 const std::shared_ptr<Relation>& rel,
                 const std::vector<RangeQuery>& queries,
                 AccessStrategy strategy) {
  AdaptiveStoreOptions opts;
  opts.strategy = strategy;
  opts.track_lineage = false;
  auto store_or = bench::OpenStore(flags, opts);
  CRACK_CHECK(store_or.ok());
  AdaptiveStore& store = **store_or;
  CRACK_CHECK(store.AddTable(rel).ok());

  Series series;
  double total_seconds = 0;
  uint64_t total_reads = 0;
  for (const RangeQuery& q : queries) {
    auto result =
        store.SelectRange(rel->name(), "c0", RangeBounds::Closed(q.lo, q.hi));
    CRACK_CHECK(result.ok());
    total_seconds += result->seconds;
    total_reads += result->io.tuples_read;
    series.cumulative_seconds.push_back(total_seconds);
    series.cumulative_reads.push_back(total_reads);
  }
  return series;
}

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t k = flags.GetUint("k", 128);
  uint64_t seed = flags.GetUint("seed", 20040901);
  ContractionModel rho =
      ContractionModelFromString(flags.GetString("rho", "linear"));

  bench::Banner("fig10_homerun", "Fig. 10 of CIDR'05 cracking",
                StrFormat("n=%llu k=%zu rho=%s (--n=, --k=, --rho=linear|"
                          "exp|log, --seed=)",
                          static_cast<unsigned long long>(n), k,
                          ContractionModelName(rho)));

  TapestryOptions topts;
  topts.num_rows = n;
  topts.seed = seed;
  auto rel = *BuildTapestry("R", topts);

  const std::vector<double> targets{0.05, 0.45, 0.75};
  std::vector<Series> crack_series;
  std::vector<Series> scan_series;
  for (double sigma : targets) {
    MqsSpec spec;
    spec.num_rows = n;
    spec.sequence_length = k;
    spec.target_selectivity = sigma;
    spec.rho = rho;
    spec.profile = Profile::kHomerun;
    spec.seed = seed;
    auto queries = *GenerateSequence(spec);
    crack_series.push_back(RunSeries(flags, rel, queries, AccessStrategy::kCrack));
    scan_series.push_back(RunSeries(flags, rel, queries, AccessStrategy::kScan));
  }

  std::vector<std::string> header{"step"};
  for (double sigma : targets) {
    header.push_back(StrFormat("crack_%.0fpct_s", sigma * 100));
    header.push_back(StrFormat("nocrack_%.0fpct_s", sigma * 100));
    header.push_back(StrFormat("crack_%.0fpct_reads", sigma * 100));
    header.push_back(StrFormat("nocrack_%.0fpct_reads", sigma * 100));
  }
  TablePrinter out;
  out.SetHeader(header);
  for (size_t step = 0; step < k; ++step) {
    std::vector<std::string> row{StrFormat("%zu", step + 1)};
    for (size_t t = 0; t < targets.size(); ++t) {
      row.push_back(
          StrFormat("%.6f", crack_series[t].cumulative_seconds[step]));
      row.push_back(
          StrFormat("%.6f", scan_series[t].cumulative_seconds[step]));
      row.push_back(StrFormat("%llu", static_cast<unsigned long long>(
                                          crack_series[t]
                                              .cumulative_reads[step])));
      row.push_back(StrFormat("%llu", static_cast<unsigned long long>(
                                          scan_series[t]
                                              .cumulative_reads[step])));
    }
    out.AddRow(std::move(row));
  }
  out.PrintCsv(stdout);

  for (size_t t = 0; t < targets.size(); ++t) {
    std::fprintf(
        stderr, "# sigma=%.0f%%: total crack %.3fs vs nocrack %.3fs (%.1fx)\n",
        targets[t] * 100, crack_series[t].cumulative_seconds.back(),
        scan_series[t].cumulative_seconds.back(),
        scan_series[t].cumulative_seconds.back() /
            std::max(1e-9, crack_series[t].cumulative_seconds.back()));
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
