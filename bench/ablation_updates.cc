// Copyright 2026 The CrackStore Authors
//
// Ablation (§2.2/§7): "What are the effects of updates on the scheme
// proposed?" — quantified end-to-end through the public AdaptiveStore
// facade, so every write crosses the type-erased access path exactly as
// SQL DML does. A 128-query random range workload is interleaved with
// varying update rates (inserts+deletes per query); the sweep reports how
// query cost and merge cost move as volatility grows, for each
// DeltaMergePolicy (immediate / threshold at two fractions / ripple).
//
// Output: CSV rows (updates_per_query, merge_policy, total_seconds,
// tuples_read, tuples_written, merges, pending_at_end, final_pieces).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

struct PolicyPoint {
  DeltaMergePolicy policy;
  double fraction;
  const char* label;
};

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t queries = flags.GetUint("queries", 128);
  double sigma = flags.GetDouble("sigma", 0.02);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("ablation_updates",
                "§2.2/§7 updates question, DML through the facade",
                StrFormat("n=%llu queries=%zu sigma=%.2f",
                          static_cast<unsigned long long>(n), queries,
                          sigma));

  int64_t n64 = static_cast<int64_t>(n);
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(sigma * static_cast<double>(n)));

  const PolicyPoint kPolicies[] = {
      {DeltaMergePolicy::kImmediate, 0.0, "immediate"},
      {DeltaMergePolicy::kThreshold, 0.01, "threshold-0.01"},
      {DeltaMergePolicy::kThreshold, 0.10, "threshold-0.10"},
      {DeltaMergePolicy::kRippleOnSelect, 0.0, "ripple"},
  };

  TablePrinter out;
  out.SetHeader({"updates_per_query", "merge_policy", "total_seconds",
                 "tuples_read", "tuples_written", "merges", "pending_at_end",
                 "final_pieces"});

  for (uint64_t updates_per_query : {0ULL, 1ULL, 10ULL, 100ULL}) {
    for (const PolicyPoint& point : kPolicies) {
      auto column = BuildPermutationColumn(n, seed, "c0");
      auto relation = Relation::FromColumns(
          "R", Schema({{"c0", ValueType::kInt64}}), {column});
      CRACK_CHECK(relation.ok());

      AdaptiveStoreOptions opts;
      opts.strategy = AccessStrategy::kCrack;
      opts.delta_merge.policy = point.policy;
      if (point.fraction > 0) {
        opts.delta_merge.threshold_fraction = point.fraction;
      }
      opts.track_lineage = false;  // measure the write path, not the DAG
      AdaptiveStore store(opts);
      CRACK_CHECK(store.AddTable(*relation).ok());

      Pcg32 rng(seed ^ 0x5EED);
      std::vector<Oid> live_inserted;
      WallTimer timer;
      for (size_t q = 0; q < queries; ++q) {
        for (uint64_t u = 0; u < updates_per_query; ++u) {
          if (rng.NextBounded(4) != 0 || live_inserted.empty()) {
            int64_t v = rng.NextInRange(1, n64);
            auto inserted = store.Insert("R", {Value(v)});
            CRACK_CHECK(inserted.ok());
            auto rel = *store.table("R");
            live_inserted.push_back(rel->column(size_t{0})->head_base() +
                                    rel->num_rows() - 1);
          } else {
            size_t pick = rng.NextBounded(
                static_cast<uint32_t>(live_inserted.size()));
            CRACK_CHECK(
                store.DeleteOids("R", {live_inserted[pick]}).ok());
            live_inserted.erase(live_inserted.begin() +
                                static_cast<ptrdiff_t>(pick));
          }
        }
        int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n64 - width));
        auto sel = store.SelectRange("R", "c0",
                                     RangeBounds::Closed(lo, lo + width - 1));
        CRACK_CHECK(sel.ok());
      }
      double seconds = timer.ElapsedSeconds();
      const IoStats& io = store.total_io();
      auto path = store.AccessPathFor("R", "c0");
      size_t merges = path.ok() ? (*path)->merges_performed() : 0;
      size_t pending = path.ok() ? (*path)->pending_inserts() : 0;
      out.AddRow({StrFormat("%llu",
                            static_cast<unsigned long long>(updates_per_query)),
                  point.label,
                  StrFormat("%.6f", seconds),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(io.tuples_read)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(io.tuples_written)),
                  StrFormat("%zu", merges),
                  StrFormat("%zu", pending),
                  StrFormat("%zu", *store.NumPieces("R", "c0"))});
    }
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
