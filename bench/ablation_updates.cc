// Copyright 2026 The CrackStore Authors
//
// Ablation (§2.2/§7): "What are the effects of updates on the scheme
// proposed?" — quantified with the differential UpdatableCrackerIndex.
// A 128-query random range workload is interleaved with varying update
// rates (inserts+deletes per query); the sweep reports how query cost and
// merge cost move as volatility grows, for two auto-merge thresholds.
//
// Output: CSV rows (updates_per_query, merge_fraction, total_seconds,
// tuples_read, tuples_written, merges_observed, final_pieces).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/updatable_cracker_index.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t queries = flags.GetUint("queries", 128);
  double sigma = flags.GetDouble("sigma", 0.02);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("ablation_updates",
                "§2.2/§7 updates question, differential scheme",
                StrFormat("n=%llu queries=%zu sigma=%.2f",
                          static_cast<unsigned long long>(n), queries,
                          sigma));

  int64_t n64 = static_cast<int64_t>(n);
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(sigma * static_cast<double>(n)));

  TablePrinter out;
  out.SetHeader({"updates_per_query", "merge_fraction", "total_seconds",
                 "tuples_read", "tuples_written", "merges", "pending_at_end",
                 "final_pieces"});

  for (uint64_t updates_per_query : {0ULL, 1ULL, 10ULL, 100ULL}) {
    for (double merge_fraction : {0.001, 0.01, 0.10}) {
      auto column = BuildPermutationColumn(n, seed, "R.c0");
      UpdatableCrackerIndexOptions opts;
      opts.auto_merge_fraction = merge_fraction;
      IoStats io;
      WallTimer timer;
      UpdatableCrackerIndex<int64_t> index(column, &io, opts);
      Pcg32 rng(seed ^ 0x5EED);
      Oid next_oid = n;
      std::vector<Oid> live_inserted;
      for (size_t q = 0; q < queries; ++q) {
        for (uint64_t u = 0; u < updates_per_query; ++u) {
          if (rng.NextBounded(4) != 0 || live_inserted.empty()) {
            int64_t v = rng.NextInRange(1, n64);
            CRACK_CHECK(index.Insert(v, next_oid).ok());
            live_inserted.push_back(next_oid);
            ++next_oid;
          } else {
            size_t pick = rng.NextBounded(
                static_cast<uint32_t>(live_inserted.size()));
            CRACK_CHECK(index.Delete(live_inserted[pick]).ok());
            live_inserted.erase(live_inserted.begin() +
                                static_cast<ptrdiff_t>(pick));
          }
        }
        int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n64 - width));
        auto sel = index.Select(lo, true, lo + width - 1, true, &io);
        (void)sel.count();
      }
      double seconds = timer.ElapsedSeconds();
      out.AddRow({StrFormat("%llu",
                            static_cast<unsigned long long>(updates_per_query)),
                  StrFormat("%.2f", merge_fraction),
                  StrFormat("%.6f", seconds),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(io.tuples_read)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(io.tuples_written)),
                  StrFormat("%zu", index.merges_performed()),
                  StrFormat("%zu", index.pending_inserts()),
                  StrFormat("%zu", index.num_pieces())});
    }
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
