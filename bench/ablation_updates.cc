// Copyright 2026 The CrackStore Authors
//
// Ablation (§2.2/§7): "What are the effects of updates on the scheme
// proposed?" — quantified end-to-end through the public AdaptiveStore
// facade, so every write crosses the type-erased access path exactly as
// SQL DML does. Two phases per (updates_per_query, merge_policy) point:
//
//   * auto-commit — a 128-query random range workload interleaved with
//     varying update rates (inserts+deletes per query), the PR 2 shape;
//   * txn-mixed   — the same workload wrapped in snapshot transactions
//     that alternate COMMIT and ROLLBACK, so MVCC stamping, conflict
//     admission and undo cost show up in the perf trajectory, followed by
//     a VACUUM whose reclaim is measured separately.
//
// Output: CSV rows (phase, updates_per_query, merge_policy, total_seconds,
// vacuum_seconds, tuples_read, tuples_written, merges, pending_at_end,
// versions_at_end, final_pieces); --json=PATH additionally writes the
// series as a BENCH_*.json document (the trajectory CI uploads).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

struct PolicyPoint {
  DeltaMergePolicy policy;
  double fraction;
  const char* label;
};

struct RowOut {
  const char* phase;
  uint64_t updates_per_query;
  const char* policy;
  double seconds;
  double vacuum_seconds;
  uint64_t tuples_read;
  uint64_t tuples_written;
  size_t merges;
  size_t pending;
  size_t versions;
  size_t pieces;
};

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t queries = flags.GetUint("queries", 128);
  double sigma = flags.GetDouble("sigma", 0.02);
  uint64_t seed = flags.GetUint("seed", 20040901);
  std::string json_path = flags.GetString("json", "");

  bench::Banner("ablation_updates",
                "§2.2/§7 updates question, DML + MVCC txns through the facade",
                StrFormat("n=%llu queries=%zu sigma=%.2f "
                          "(--n= --queries= --sigma= --seed= --json=)",
                          static_cast<unsigned long long>(n), queries,
                          sigma));

  int64_t n64 = static_cast<int64_t>(n);
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(sigma * static_cast<double>(n)));

  const PolicyPoint kPolicies[] = {
      {DeltaMergePolicy::kImmediate, 0.0, "immediate"},
      {DeltaMergePolicy::kThreshold, 0.01, "threshold-0.01"},
      {DeltaMergePolicy::kThreshold, 0.10, "threshold-0.10"},
      {DeltaMergePolicy::kRippleOnSelect, 0.0, "ripple"},
  };

  std::vector<RowOut> rows;
  for (int phase = 0; phase <= 1; ++phase) {
    bool txn_mixed = phase == 1;
    for (uint64_t updates_per_query : {0ULL, 1ULL, 10ULL, 100ULL}) {
      for (const PolicyPoint& point : kPolicies) {
        auto column = BuildPermutationColumn(n, seed, "c0");
        auto relation = Relation::FromColumns(
            "R", Schema({{"c0", ValueType::kInt64}}), {column});
        CRACK_CHECK(relation.ok());

        AdaptiveStoreOptions opts;
        opts.strategy = AccessStrategy::kCrack;
        opts.delta_merge.policy = point.policy;
        if (point.fraction > 0) {
          opts.delta_merge.threshold_fraction = point.fraction;
        }
        opts.track_lineage = false;  // measure the write path, not the DAG
        auto store_or = bench::OpenStore(flags, opts);
        CRACK_CHECK(store_or.ok());
        AdaptiveStore& store = **store_or;
        CRACK_CHECK(store.AddTable(*relation).ok());

        Pcg32 rng(seed ^ 0x5EED);
        std::vector<Oid> live_inserted;
        WallTimer timer;
        for (size_t q = 0; q < queries; ++q) {
          TxnId txn = kNoTxn;
          if (txn_mixed) {
            auto begun = store.Begin();
            CRACK_CHECK(begun.ok());
            txn = *begun;
          }
          for (uint64_t u = 0; u < updates_per_query; ++u) {
            if (rng.NextBounded(4) != 0 || live_inserted.empty()) {
              int64_t v = rng.NextInRange(1, n64);
              auto inserted = store.Insert("R", {Value(v)}, txn);
              CRACK_CHECK(inserted.ok());
              live_inserted.push_back(inserted->inserted_oid);
            } else {
              size_t pick = rng.NextBounded(
                  static_cast<uint32_t>(live_inserted.size()));
              CRACK_CHECK(
                  store.DeleteOids("R", {live_inserted[pick]}, txn).ok());
              live_inserted.erase(live_inserted.begin() +
                                  static_cast<ptrdiff_t>(pick));
            }
          }
          int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n64 - width));
          auto sel = store.SelectRange("R", "c0",
                                       RangeBounds::Closed(lo, lo + width - 1),
                                       Delivery::kCount, txn);
          CRACK_CHECK(sel.ok());
          if (txn_mixed) {
            // Alternate committers and aborters: half the write volume is
            // undone, so both stamping and rollback cost are in the clock.
            if (q % 2 == 0) {
              CRACK_CHECK(store.Commit(txn).ok());
            } else {
              CRACK_CHECK(store.Rollback(txn).ok());
              // The rolled-back inserts are dead; stop deleting them.
              size_t undone = std::min<uint64_t>(live_inserted.size(),
                                                 updates_per_query);
              live_inserted.resize(live_inserted.size() - undone);
            }
          }
        }
        double seconds = timer.ElapsedSeconds();
        // Version-log footprint before vacuum reclaims it.
        size_t versions = 0;
        auto counts = store.VersionCountsFor("R");
        if (counts.ok()) {
          versions = counts->row_versions + counts->chain_entries;
        }
        double vacuum_seconds = 0.0;
        if (txn_mixed) {
          WallTimer vtimer;
          CRACK_CHECK(store.Vacuum().ok());
          vacuum_seconds = vtimer.ElapsedSeconds();
        }
        const IoStats& io = store.total_io();
        auto path = store.AccessPathFor("R", "c0");
        RowOut row;
        row.phase = txn_mixed ? "txn-mixed" : "auto-commit";
        row.updates_per_query = updates_per_query;
        row.policy = point.label;
        row.seconds = seconds;
        row.vacuum_seconds = vacuum_seconds;
        row.tuples_read = io.tuples_read;
        row.tuples_written = io.tuples_written;
        row.merges = path.ok() ? (*path)->merges_performed() : 0;
        row.pending = path.ok() ? (*path)->pending_inserts() : 0;
        row.versions = versions;
        row.pieces = *store.NumPieces("R", "c0");
        rows.push_back(row);
        std::fprintf(stderr, "# %s u=%llu %s  %.3fs (+%.3fs vacuum)\n",
                     row.phase,
                     static_cast<unsigned long long>(updates_per_query),
                     row.policy, row.seconds, row.vacuum_seconds);
      }
    }
  }

  TablePrinter out;
  out.SetHeader({"phase", "updates_per_query", "merge_policy",
                 "total_seconds", "vacuum_seconds", "tuples_read",
                 "tuples_written", "merges", "pending_at_end",
                 "versions_at_end", "final_pieces"});
  for (const RowOut& r : rows) {
    out.AddRow({r.phase,
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.updates_per_query)),
                r.policy, StrFormat("%.6f", r.seconds),
                StrFormat("%.6f", r.vacuum_seconds),
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.tuples_read)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.tuples_written)),
                StrFormat("%zu", r.merges), StrFormat("%zu", r.pending),
                StrFormat("%zu", r.versions), StrFormat("%zu", r.pieces)});
  }
  out.PrintCsv(stdout);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_updates\",\n"
                 "  \"n\": %llu,\n  \"queries\": %zu,\n  \"results\": [\n",
                 static_cast<unsigned long long>(n), queries);
    for (size_t i = 0; i < rows.size(); ++i) {
      const RowOut& r = rows[i];
      std::fprintf(
          f,
          "    {\"phase\": \"%s\", \"updates_per_query\": %llu, "
          "\"merge_policy\": \"%s\", \"total_seconds\": %.6f, "
          "\"vacuum_seconds\": %.6f, \"tuples_read\": %llu, "
          "\"tuples_written\": %llu, \"merges\": %zu, "
          "\"pending_at_end\": %zu, \"versions_at_end\": %zu, "
          "\"final_pieces\": %zu}%s\n",
          r.phase, static_cast<unsigned long long>(r.updates_per_query),
          r.policy, r.seconds, r.vacuum_seconds,
          static_cast<unsigned long long>(r.tuples_read),
          static_cast<unsigned long long>(r.tuples_written), r.merges,
          r.pending, r.versions, r.pieces,
          i + 1 < rows.size() ? "," : "");
    }
    // Commit-log activity for the run (all zeros when --db= is absent and
    // the store is purely in memory) — the WAL-overhead gate in CI reads
    // these alongside the timings.
    std::fprintf(
        f, "  ],\n  \"wal\": %s\n}\n",
        obs::MetricsRegistry::Global().RenderJson("wal.%").c_str());
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
