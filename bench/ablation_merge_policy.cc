// Copyright 2026 The CrackStore Authors
//
// Ablation (§3.2 / §7): "the cracker index grows quickly ... Fusion of
// pieces becomes a necessity, but which heuristic works best, with minimal
// amount of work, remains an open issue." This binary sweeps the fusion
// policies (none / lru / fifo / smallest) across piece budgets on a random
// range workload and reports total work and wall-clock, quantifying how
// much navigation knowledge each policy sacrifices.
//
// Output: CSV rows (policy, budget, queries, seconds_total, tuples_read,
// tuples_written, final_pieces, bounds_dropped).

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cracker_index.h"
#include "core/merge_policy.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t queries = flags.GetUint("queries", 256);
  double sigma = flags.GetDouble("sigma", 0.02);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("ablation_merge_policy",
                "§3.2/§7 piece-fusion heuristics sweep",
                StrFormat("n=%llu queries=%zu sigma=%.2f",
                          static_cast<unsigned long long>(n), queries,
                          sigma));

  auto column = BuildPermutationColumn(n, seed, "R.c0");
  int64_t n64 = static_cast<int64_t>(n);
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(sigma * static_cast<double>(n)));

  struct Config {
    MergePolicyKind kind;
    size_t budget;
  };
  std::vector<Config> configs{{MergePolicyKind::kNone, 0}};
  for (MergePolicyKind kind : {MergePolicyKind::kLeastRecentlyUsed,
                               MergePolicyKind::kOldestFirst,
                               MergePolicyKind::kSmallestPieces}) {
    for (size_t budget : {8, 32, 128}) {
      configs.push_back({kind, budget});
    }
  }

  TablePrinter out;
  out.SetHeader({"policy", "budget", "queries", "seconds_total",
                 "tuples_read", "tuples_written", "final_pieces",
                 "bounds_dropped"});
  for (const Config& config : configs) {
    IoStats io;
    WallTimer timer;
    CrackerIndex<int64_t> index(column, &io);
    MergeBudget budget{config.kind, config.budget};
    Pcg32 rng(seed ^ 0xAB);
    size_t dropped = 0;
    for (size_t q = 0; q < queries; ++q) {
      int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n64 - width + 1));
      index.Select(lo, true, lo + width - 1, true, &io);
      dropped += EnforceMergeBudget(&index, budget, &io);
    }
    double seconds = timer.ElapsedSeconds();
    out.AddRow({MergePolicyKindName(config.kind),
                StrFormat("%zu", config.budget), StrFormat("%zu", queries),
                StrFormat("%.6f", seconds),
                StrFormat("%llu",
                          static_cast<unsigned long long>(io.tuples_read)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(io.tuples_written)),
                StrFormat("%zu", index.num_pieces()),
                StrFormat("%zu", dropped)});
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
