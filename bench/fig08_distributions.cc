// Copyright 2026 The CrackStore Authors
//
// Figure 8: "Selectivity distribution (σ = 0.2, k = 20)" — the three
// contraction models ρ(i; k, σ) that drive the multi-query benchmark:
// linear, exponential and logarithmic convergence toward the target
// selectivity.
//
// Output: CSV rows (step, linear, exponential, logarithmic, target).

#include "bench_common.h"
#include "workload/contraction.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  size_t k = flags.GetUint("k", 20);
  double sigma = flags.GetDouble("sigma", 0.2);

  bench::Banner("fig08_distributions", "Fig. 8 of CIDR'05 cracking",
                StrFormat("k=%zu sigma=%.2f (--k=, --sigma=)", k, sigma));

  TablePrinter out;
  out.SetHeader({"step", "linear", "exponential", "logarithmic", "target"});
  for (size_t i = 0; i <= k; ++i) {
    out.AddRow({StrFormat("%zu", i),
                StrFormat("%.4f",
                          Contraction(ContractionModel::kLinear, i, k, sigma)),
                StrFormat("%.4f", Contraction(ContractionModel::kExponential,
                                              i, k, sigma)),
                StrFormat("%.4f", Contraction(ContractionModel::kLogarithmic,
                                              i, k, sigma)),
                StrFormat("%.4f", sigma)});
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
